"""Counter Braids (Lu et al., SIGMETRICS 2008) — single-layer variant
with iterative message-passing decoding.

The related-work shared-counter architecture the paper contrasts with
(Section 2.1): each flow hashes to ``d`` counters (all shared), every
packet increments *all* of them, and flow sizes are recovered offline
by message passing over the flow/counter bipartite graph:

- counter-to-flow message: ``c_j - sum of other flows' current
  estimates`` (how much of the counter is "left over" for this flow);
- flow estimate: min over its counters of the incoming messages
  (counters only over-count, never under-count).

Iterating min/max messages converges to the true sizes when the graph
is sparse enough (asymptotically optimal per Lu et al.); with heavy
load it still yields a tight upper bound. Decoding needs the flow
list, which the offline query phase has.

The per-packet cost is ``d`` SRAM accesses — the "per-arrival packet
updates at least three counters" drawback the CAESAR paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError, QueryError
from repro.hashing.family import BankedIndexer
from repro.sram.counterarray import BankedCounterArray
from repro.types import FlowIdArray


def _leave_one_out_min(m: npt.NDArray[np.float64]) -> npt.NDArray[np.float64]:
    """Row-wise min over all columns except each column itself.

    Computed from the row minimum and second minimum — O(F*d), no
    per-edge Python loop.
    """
    order = np.argsort(m, axis=1)
    first = np.take_along_axis(m, order[:, :1], axis=1)  # row min
    second = np.take_along_axis(m, order[:, 1:2], axis=1)  # second min
    out = np.broadcast_to(first, m.shape).copy()
    rows = np.arange(len(m))
    out[rows, order[:, 0]] = second[:, 0]
    return out


def message_passing_decode(
    counter_values: npt.NDArray[np.float64],
    idx: npt.NDArray[np.int64],
    iterations: int = 20,
) -> npt.NDArray[np.float64]:
    """Edge-based min-sum message passing on a flow/counter bipartite
    graph (the decoder of Lu et al. 2008).

    ``counter_values`` are the (possibly already layer-corrected)
    counter contents indexed globally; ``idx`` has shape ``(F, d)`` —
    row ``i`` lists flow ``i``'s counters. Messages live on edges:

    - flow -> counter: the leave-one-out minimum of the counter ->
      flow messages (clipped at 0 — sizes are non-negative);
    - counter -> flow: the counter value minus every *other* incident
      flow's message.

    The final estimate is the minimum incoming message per flow.
    Shared by the single- and two-layer braids. Exact on sparse graphs;
    an upper bound under overload.
    """
    if len(idx) == 0:
        return np.zeros(0)
    d = idx.shape[1]
    if d == 1:
        # Degenerate graph: a counter's value is the only information.
        return np.clip(counter_values[idx[:, 0]].astype(np.float64), 0.0, None)
    num_counters = len(counter_values)
    # counter -> flow messages, initialized with the raw counter values.
    m_in = counter_values[idx].astype(np.float64).copy()
    est = np.clip(m_in.min(axis=1), 0.0, None)
    for _ in range(iterations):
        # flow -> counter: leave-one-out min of incoming, clipped at 0.
        m_out = np.clip(_leave_one_out_min(m_in), 0.0, None)
        # counter -> flow: value minus the other incident flows' mass.
        load = np.zeros(num_counters)
        np.add.at(load, idx.ravel(), m_out.ravel())
        m_in = counter_values[idx] - (load[idx] - m_out)
        new_est = np.clip(m_in.min(axis=1), 0.0, None)
        if np.allclose(new_est, est, atol=1e-9):
            return new_est
        est = new_est
    return est


@dataclass(frozen=True)
class CounterBraidsConfig:
    """Parameters: ``d`` counters per flow over ``d`` banks of ``bank_size``."""

    d: int = 3
    bank_size: int = 4096
    counter_capacity: int = 2**30
    seed: int = 0xB2A1D5

    def __post_init__(self) -> None:
        if self.d < 2:
            raise ConfigError(f"d must be >= 2, got {self.d}")
        if self.bank_size < 1:
            raise ConfigError(f"bank_size must be >= 1, got {self.bank_size}")


class CounterBraids:
    """Single-layer Counter Braids with min-sum decoding."""

    def __init__(self, config: CounterBraidsConfig) -> None:
        self.config = config
        self.indexer = BankedIndexer(config.d, config.bank_size, seed=config.seed)
        self.counters = BankedCounterArray(
            k=config.d,
            bank_size=config.bank_size,
            counter_capacity=config.counter_capacity,
        )
        self._packets_seen = 0

    def process(self, packets: FlowIdArray) -> None:
        """Every packet increments all ``d`` of its flow's counters."""
        packets = np.asarray(packets, dtype=np.uint64)
        if len(packets) == 0:
            return
        uniq, counts = np.unique(packets, return_counts=True)
        idx = self.indexer.indices(uniq)  # (U, d)
        self.counters.add_at(idx.ravel(), np.repeat(counts, self.config.d))
        self._packets_seen += len(packets)

    def decode(
        self,
        flow_ids: FlowIdArray,
        iterations: int = 20,
    ) -> npt.NDArray[np.float64]:
        """Message-passing decode of all listed flows' sizes.

        ``flow_ids`` must contain every flow that touched the braid —
        message passing reasons about *all* mass in each counter, so a
        partial list would mis-attribute the missing flows' packets.
        """
        flow_ids = np.asarray(flow_ids, dtype=np.uint64)
        if len(flow_ids) == 0:
            return np.zeros(0)
        idx = self.indexer.indices(flow_ids)  # (F, d) global counter indices
        return message_passing_decode(
            self.counters.values.astype(np.float64), idx, iterations
        )

    def estimate(self, flow_ids: FlowIdArray) -> npt.NDArray[np.float64]:
        """Alias for :meth:`decode` (FlowSizeEstimator protocol).

        Note the full-flow-list requirement documented on decode.
        """
        if self._packets_seen == 0:
            raise QueryError("nothing recorded yet")
        return self.decode(flow_ids)

    @property
    def num_packets(self) -> int:
        return self._packets_seen


@dataclass(frozen=True)
class TwoLayerBraidsConfig:
    """The original two-layer geometry of Lu et al.

    Layer 1: ``d1`` shallow counters per flow, ``layer1_bits`` wide.
    Layer 2: ``d2`` deep counters per *overflowing layer-1 counter*.
    Layer 1 absorbs the mice in a few bits; elephants carry into the
    much smaller layer 2 — the memory-compression trick the CAESAR
    paper credits the scheme with (at the cost of >= d1 memory accesses
    per packet).
    """

    d1: int = 3
    layer1_bank: int = 4096
    layer1_bits: int = 8
    d2: int = 3
    layer2_bank: int = 512
    seed: int = 0xB2A1D2

    def __post_init__(self) -> None:
        if self.d1 < 2 or self.d2 < 2:
            raise ConfigError("d1 and d2 must be >= 2")
        if self.layer1_bank < 1 or self.layer2_bank < 1:
            raise ConfigError("bank sizes must be >= 1")
        if not 1 <= self.layer1_bits <= 32:
            raise ConfigError("layer1_bits must be in [1, 32]")

    @property
    def memory_kilobytes(self) -> float:
        layer1 = self.d1 * self.layer1_bank * (self.layer1_bits + 1)  # +1 status bit
        layer2 = self.d2 * self.layer2_bank * 32  # deep counters
        return (layer1 + layer2) / 8192.0


class TwoLayerCounterBraids:
    """Two-layer Counter Braids with layered message-passing decoding.

    Layer-1 counters store values modulo ``2^layer1_bits``; every wrap
    sends one carry into the counter's ``d2`` layer-2 counters. Decoding
    runs message passing twice: first on layer 2 (whose "flows" are the
    layer-1 counters, recovering each one's carry count), then on the
    carry-corrected layer 1.
    """

    def __init__(self, config: TwoLayerBraidsConfig) -> None:
        self.config = config
        self.l1_indexer = BankedIndexer(config.d1, config.layer1_bank, seed=config.seed)
        self.l2_indexer = BankedIndexer(
            config.d2, config.layer2_bank, seed=config.seed ^ 0x2A
        )
        self._l1 = np.zeros(config.d1 * config.layer1_bank, dtype=np.int64)
        self._l2 = np.zeros(config.d2 * config.layer2_bank, dtype=np.int64)
        # Overflow status bits (1 bit per layer-1 counter, as in the
        # original design): the decoder must know *which* layer-1
        # counters ever wrapped, otherwise the layer-2 graph is flooded
        # with phantom zero-carry flows and message passing collapses.
        self._overflowed = np.zeros(config.d1 * config.layer1_bank, dtype=bool)
        self._wrap = 1 << config.layer1_bits
        self._packets_seen = 0

    def process(self, packets: FlowIdArray) -> None:
        """Every packet increments all d1 layer-1 counters; wraps carry
        into layer 2 (vectorized per distinct flow)."""
        packets = np.asarray(packets, dtype=np.uint64)
        if len(packets) == 0:
            return
        uniq, counts = np.unique(packets, return_counts=True)
        idx = self.l1_indexer.indices(uniq)
        np.add.at(self._l1, idx.ravel(), np.repeat(counts, self.config.d1))
        # Resolve carries: each full wrap of a layer-1 counter is one
        # increment of its d2 layer-2 counters.
        carries, self._l1 = np.divmod(self._l1, self._wrap)
        overflowed = np.nonzero(carries)[0]
        if len(overflowed):
            self._overflowed[overflowed] = True
            l2_idx = self.l2_indexer.indices(overflowed.astype(np.uint64))
            np.add.at(
                self._l2,
                l2_idx.ravel(),
                np.repeat(carries[overflowed], self.config.d2),
            )
        self._packets_seen += len(packets)

    @property
    def num_packets(self) -> int:
        return self._packets_seen

    def decode(self, flow_ids: FlowIdArray, iterations: int = 25) -> npt.NDArray[np.float64]:
        """Layered decode of all listed flows (full-list requirement as
        in the single-layer braid)."""
        flow_ids = np.asarray(flow_ids, dtype=np.uint64)
        if len(flow_ids) == 0:
            return np.zeros(0)
        # Layer 2 first: recover the carry count of every layer-1
        # counter whose status bit is set (the others carried nothing).
        carriers = np.nonzero(self._overflowed)[0]
        carries = np.zeros(len(self._l1))
        if len(carriers):
            l2_idx = self.l2_indexer.indices(carriers.astype(np.uint64))
            carries[carriers] = message_passing_decode(
                self._l2.astype(np.float64), l2_idx, iterations
            )
        corrected = self._l1.astype(np.float64) + carries * self._wrap
        # Then layer 1 with wrap-corrected values.
        idx = self.l1_indexer.indices(flow_ids)
        return message_passing_decode(corrected, idx, iterations)

    def estimate(self, flow_ids: FlowIdArray) -> npt.NDArray[np.float64]:
        """FlowSizeEstimator protocol alias for :meth:`decode`."""
        if self._packets_seen == 0:
            raise QueryError("nothing recorded yet")
        return self.decode(flow_ids)
