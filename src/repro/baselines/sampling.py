"""Sampled counting (NetFlow-style) — the Section 2.2 family.

The paper's related work covers probabilistic-sampling schemes (Cisco
NetFlow and friends): keep each packet with probability ``p``, count
the survivors exactly (per-flow dict — affordable because sampling
shrinks the state), estimate ``count / p``. Included so the
related-work shootout spans all three families the paper discusses:
compression (§2.1), sampling (§2.2), and cache-assisted sharing
(§2.3).

The estimator is unbiased with variance ``x (1-p)/p`` — tolerable for
elephants, hopeless for mice (a size-10 flow at p = 1/100 is usually
never seen at all), which is exactly the critique the paper levels at
the family: "the filtered flows inevitably introduce significant
estimation errors".
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError
from repro.types import FlowIdArray


class SampledCounter:
    """Uniform packet sampling with exact counting of the samples."""

    def __init__(self, sampling_rate: float, seed: int = 0x5A11) -> None:
        if not 0 < sampling_rate <= 1:
            raise ConfigError(f"sampling_rate must be in (0, 1], got {sampling_rate}")
        self.sampling_rate = float(sampling_rate)
        self._rng = np.random.default_rng(seed)
        self._counts: dict[int, int] = {}
        self._packets_seen = 0

    def process(self, packets: FlowIdArray) -> None:
        """Sample a batch and count survivors (vectorized thinning)."""
        packets = np.asarray(packets, dtype=np.uint64)
        self._packets_seen += len(packets)
        if len(packets) == 0:
            return
        kept = packets[self._rng.random(len(packets)) < self.sampling_rate]
        ids, counts = np.unique(kept, return_counts=True)
        store = self._counts
        for fid, cnt in zip(ids.tolist(), counts.tolist()):
            store[fid] = store.get(fid, 0) + cnt

    @property
    def num_packets(self) -> int:
        return self._packets_seen

    @property
    def num_tracked_flows(self) -> int:
        """Flows with at least one sampled packet — the state size."""
        return len(self._counts)

    def estimate(self, flow_ids: FlowIdArray) -> npt.NDArray[np.float64]:
        """Inverse-probability estimates (0 for never-sampled flows)."""
        inv = 1.0 / self.sampling_rate
        return np.array(
            [self._counts.get(int(f), 0) * inv for f in np.asarray(flow_ids, np.uint64)]
        )

    def memory_kilobytes(self, bits_per_entry: int = 96) -> float:
        """State footprint: tracked flows x (id + counter) bits."""
        return self.num_tracked_flows * bits_per_entry / 8192.0
