"""DISCO-style polynomial compression (Hu et al., ICDCS 2010).

DISCO regresses the stored counter onto the real count with a
polynomial curve: stored value ``c`` represents ``rep(c) = a * c^gamma``
with ``gamma > 1``, so the counter grows like ``n^(1/gamma)`` and a
few stored bits cover a large dynamic range. The scale ``a`` is
calibrated so the largest storable value represents ``max_value``:

    a = max_value / capacity^gamma

Updating by an arbitrary value (CASE's eviction path) requires
``inverse(v) = (v / a)^(1/gamma)`` — the "power operation" the CAESAR
paper charges CASE's time budget with.

:class:`DiscoSketch` is the standalone per-packet scheme (one hashed
counter per flow, probabilistic increments).
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.baselines.compression.base import CompressedCounterArray, CompressionCurve
from repro.errors import ConfigError
from repro.hashing.family import HashFamily
from repro.types import FlowIdArray


class DiscoCurve(CompressionCurve):
    """``rep(c) = a * c^gamma``, calibrated to a maximum value."""

    def __init__(self, gamma: float, capacity: int, max_value: float) -> None:
        if gamma < 1.0:
            raise ConfigError(f"gamma must be >= 1, got {gamma}")
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        if max_value <= 0:
            raise ConfigError(f"max_value must be > 0, got {max_value}")
        self.gamma = float(gamma)
        self.capacity = int(capacity)
        self.scale = max_value / capacity**self.gamma

    def rep(self, c: npt.NDArray[np.float64]) -> npt.NDArray[np.float64]:
        c = np.asarray(c, dtype=np.float64)
        return self.scale * c**self.gamma

    def inverse(self, v: npt.NDArray[np.float64]) -> npt.NDArray[np.float64]:
        v = np.asarray(v, dtype=np.float64)
        return (np.maximum(v, 0.0) / self.scale) ** (1.0 / self.gamma)


class DiscoSketch:
    """Standalone DISCO: one compressed counter per hashed flow slot."""

    def __init__(
        self,
        num_counters: int,
        counter_capacity: int,
        max_value: float,
        gamma: float = 2.0,
        seed: int = 0xD15C0,
    ) -> None:
        self.curve = DiscoCurve(gamma, counter_capacity, max_value)
        self.array = CompressedCounterArray(
            self.curve, num_counters, counter_capacity, seed=seed
        )
        self._family = HashFamily(1, seed=seed ^ 0xF10)
        self.num_counters = num_counters

    def _slots(self, flow_ids: FlowIdArray) -> npt.NDArray[np.int64]:
        h = self._family.hash_array(0, np.asarray(flow_ids, np.uint64))
        return (h % np.uint64(self.num_counters)).astype(np.int64)

    def process(self, packets: FlowIdArray) -> None:
        """Per-packet probabilistic increments."""
        self.array.increment_batch(self._slots(packets))

    def estimate(self, flow_ids: FlowIdArray) -> npt.NDArray[np.float64]:
        """Decompressed per-flow estimates."""
        return self.array.estimate(self._slots(flow_ids))
