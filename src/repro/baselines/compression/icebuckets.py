"""ICE-Buckets — Independent Counter Estimation buckets
(Einziger, Fellman & Kassner, INFOCOM 2015).

CEDAR-style shared-level counters, but the counter array is partitioned
into *buckets*, each with its own estimation scale: a bucket starts at
the finest (most accurate) scale and is *upgraded* to the next coarser
scale only when one of its counters is about to overflow. Small-flow
buckets therefore keep near-exact resolution while elephant buckets
stretch — the storage-efficiency fix for the uniform-scale waste the
CAESAR paper criticizes in Section 2.1.

Upgrading a bucket re-encodes its counters at the coarser scale with
probabilistic rounding (unbiased).
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.baselines.compression.cedar import cedar_levels
from repro.errors import ConfigError
from repro.hashing.family import HashFamily
from repro.types import FlowIdArray


class IceBucketsSketch:
    """Bucketized multi-scale CEDAR counters."""

    def __init__(
        self,
        num_counters: int,
        counter_capacity: int,
        max_value: float,
        bucket_size: int = 64,
        num_scales: int = 8,
        seed: int = 0x1CE,
    ) -> None:
        if num_counters < 1:
            raise ConfigError(f"num_counters must be >= 1, got {num_counters}")
        if bucket_size < 1:
            raise ConfigError(f"bucket_size must be >= 1, got {bucket_size}")
        if num_scales < 1:
            raise ConfigError(f"num_scales must be >= 1, got {num_scales}")
        self.num_counters = int(num_counters)
        self.counter_capacity = int(counter_capacity)
        self.bucket_size = int(bucket_size)
        self.num_buckets = (self.num_counters + bucket_size - 1) // bucket_size
        # Scale s has deltas growing geometrically; the coarsest scale
        # must cover max_value within the index capacity.
        deltas = np.geomspace(1e-3, 2.0, num_scales)
        tables = [cedar_levels(float(d), counter_capacity) for d in deltas]
        # Drop leading scales that cannot even represent max_value at
        # the top index? No: finer scales are *meant* to top out early —
        # that is what triggers an upgrade. Only the coarsest must cover.
        if tables[-1][-1] < max_value:
            raise ConfigError(
                f"coarsest scale tops out at {tables[-1][-1]:.3g} < max_value {max_value:.3g}; "
                "increase num_scales or counter_capacity"
            )
        self.levels = np.stack(tables)  # (num_scales, capacity+1)
        self._probs = np.minimum(1.0, 1.0 / np.diff(self.levels, axis=1))
        self.num_scales = num_scales
        self._values = np.zeros(self.num_counters, dtype=np.int64)
        self._bucket_scale = np.zeros(self.num_buckets, dtype=np.int64)
        self._rng = np.random.default_rng(seed)
        self._family = HashFamily(1, seed=seed ^ 0xF10)
        self.upgrades = 0
        self.saturated_updates = 0

    # -- updates ---------------------------------------------------------------

    def _slots(self, flow_ids: FlowIdArray) -> npt.NDArray[np.int64]:
        h = self._family.hash_array(0, np.asarray(flow_ids, np.uint64))
        return (h % np.uint64(self.num_counters)).astype(np.int64)

    def _upgrade_bucket(self, b: int) -> None:
        """Re-encode every counter of bucket ``b`` at the next scale."""
        old_scale = self._bucket_scale[b]
        new_scale = old_scale + 1
        lo = b * self.bucket_size
        hi = min(lo + self.bucket_size, self.num_counters)
        vals = self._values[lo:hi]
        represented = self.levels[old_scale][vals]
        # Continuous coordinate at the new scale, probabilistic floor.
        cont = np.interp(represented, self.levels[new_scale], np.arange(len(self.levels[new_scale])))
        base = np.floor(cont).astype(np.int64)
        frac = cont - base
        bump = (self._rng.random(len(cont)) < frac).astype(np.int64)
        self._values[lo:hi] = np.minimum(base + bump, self.counter_capacity)
        self._bucket_scale[b] = new_scale
        self.upgrades += 1

    def process(self, packets: FlowIdArray) -> None:
        """Per-packet updates with on-demand bucket upgrades."""
        slots = self._slots(packets)
        uniforms = self._rng.random(len(slots))
        values = self._values
        cap = self.counter_capacity
        bsize = self.bucket_size
        for i, idx in enumerate(slots.tolist()):
            b = idx // bsize
            c = values[idx]
            if c >= cap:
                if self._bucket_scale[b] + 1 < self.num_scales:
                    self._upgrade_bucket(b)
                    c = values[idx]
                if c >= cap:
                    # Still at the ceiling (coarsest scale, or the
                    # re-encode landed on the ceiling again): drop.
                    self.saturated_updates += 1
                    continue
            if uniforms[i] < self._probs[self._bucket_scale[b], c]:
                values[idx] = c + 1

    # -- reads ---------------------------------------------------------------------

    def estimate(self, flow_ids: FlowIdArray) -> npt.NDArray[np.float64]:
        """Per-flow estimates at each counter's bucket scale."""
        slots = self._slots(flow_ids)
        scales = self._bucket_scale[slots // self.bucket_size]
        return self.levels[scales, self._values[slots]]

    @property
    def bits_per_counter(self) -> int:
        return max(1, int(np.ceil(np.log2(self.counter_capacity + 1))))

    @property
    def memory_kilobytes(self) -> float:
        # Counter bits plus the per-bucket scale field, paper-style accounting.
        scale_bits = max(1, int(np.ceil(np.log2(self.num_scales))))
        return (self.num_counters * self.bits_per_counter + self.num_buckets * scale_bits) / 8192.0
