"""SAC — Small Active Counters (Stanojevic, INFOCOM 2007).

A floating-point-like counter: ``q`` mantissa bits ``A`` and ``r``
exponent bits ``mode``, representing

    rep(A, mode) = A * 2^(ell * mode)

with a global scale parameter ``ell``. A packet increments ``A`` with
probability ``2^(-ell * mode)``; when the mantissa overflows, the
exponent is bumped and the mantissa renormalized (divided by
``2^ell``, with probabilistic rounding to stay unbiased).

This is the mantissa/exponent member of the Section 2.1 compression
family — unlike curve-based schemes the stored state is a *pair*, so it
gets its own implementation rather than a :class:`CompressionCurve`.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError
from repro.hashing.family import HashFamily
from repro.types import FlowIdArray


class SacSketch:
    """An array of SAC counters, one hashed slot per flow."""

    def __init__(
        self,
        num_counters: int,
        mantissa_bits: int = 6,
        exponent_bits: int = 4,
        ell: int = 2,
        seed: int = 0x5AC,
    ) -> None:
        if num_counters < 1:
            raise ConfigError(f"num_counters must be >= 1, got {num_counters}")
        if mantissa_bits < 1 or exponent_bits < 1:
            raise ConfigError("mantissa_bits and exponent_bits must be >= 1")
        if ell < 1:
            raise ConfigError(f"ell must be >= 1, got {ell}")
        self.num_counters = int(num_counters)
        self.mantissa_bits = int(mantissa_bits)
        self.exponent_bits = int(exponent_bits)
        self.ell = int(ell)
        self.mantissa_max = (1 << mantissa_bits) - 1
        self.exponent_max = (1 << exponent_bits) - 1
        self._mantissa = np.zeros(self.num_counters, dtype=np.int64)
        self._exponent = np.zeros(self.num_counters, dtype=np.int64)
        self._rng = np.random.default_rng(seed)
        self._family = HashFamily(1, seed=seed ^ 0xF10)
        self.saturated_updates = 0

    # -- updates -----------------------------------------------------------

    def _slots(self, flow_ids: FlowIdArray) -> npt.NDArray[np.int64]:
        h = self._family.hash_array(0, np.asarray(flow_ids, np.uint64))
        return (h % np.uint64(self.num_counters)).astype(np.int64)

    def _renormalize(self, idx: int) -> None:
        """Mantissa overflow: bump exponent, shrink mantissa unbiasedly."""
        if self._exponent[idx] >= self.exponent_max:
            self.saturated_updates += 1
            self._mantissa[idx] = self.mantissa_max
            return
        shrink = self._mantissa[idx] / float(1 << self.ell)
        base = int(shrink)
        frac = shrink - base
        self._mantissa[idx] = base + (1 if self._rng.random() < frac else 0)
        self._exponent[idx] += 1

    def increment(self, idx: int) -> None:
        """One packet: advance mantissa w.p. ``2^(-ell * mode)``."""
        mode = self._exponent[idx]
        p = 2.0 ** (-self.ell * mode)
        if p >= 1.0 or self._rng.random() < p:
            m = self._mantissa[idx] + 1
            if m > self.mantissa_max:
                self._mantissa[idx] = self.mantissa_max
                self._renormalize(idx)
            else:
                self._mantissa[idx] = m

    def process(self, packets: FlowIdArray) -> None:
        """Per-packet updates for a whole stream (sequential semantics)."""
        for idx in self._slots(packets).tolist():
            self.increment(idx)

    # -- reads ---------------------------------------------------------------

    def estimate(self, flow_ids: FlowIdArray) -> npt.NDArray[np.float64]:
        """Represented sizes ``A * 2^(ell * mode)`` for queried flows."""
        slots = self._slots(flow_ids)
        return self._mantissa[slots] * 2.0 ** (self.ell * self._exponent[slots])

    @property
    def bits_per_counter(self) -> int:
        return self.mantissa_bits + self.exponent_bits

    @property
    def memory_kilobytes(self) -> float:
        return self.num_counters * self.bits_per_counter / 8192.0
