"""CEDAR — shared-estimator counters (Tsidon et al., INFOCOM 2012).

"Estimators also need shared values to grow together": all counters
store *indices into one shared estimation-level table* ``L_0 < L_1 <
... < L_max``; a packet advances a counter from level ``i`` to ``i+1``
with probability ``1 / (L_{i+1} - L_i)``, and the estimate is simply
``L_i``. CEDAR's optimal level table for a relative-error target
``delta`` uses geometrically growing gaps

    L_{i+1} = L_i + (1 + 2 delta^2 L_i)

which this implementation reproduces, calibrating ``delta`` to cover a
required maximum value within the index capacity.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError
from repro.hashing.family import HashFamily
from repro.types import FlowIdArray


def cedar_levels(delta: float, capacity: int) -> npt.NDArray[np.float64]:
    """The shared estimation-level table ``L_0..L_capacity``."""
    if delta <= 0:
        raise ConfigError(f"delta must be > 0, got {delta}")
    levels = np.empty(capacity + 1, dtype=np.float64)
    levels[0] = 0.0
    for i in range(capacity):
        levels[i + 1] = levels[i] + 1.0 + 2.0 * delta * delta * levels[i]
    return levels


def calibrate_delta(capacity: int, max_value: float) -> float:
    """Smallest delta whose level table reaches ``max_value`` (bisection)."""
    if capacity < 2:
        raise ConfigError("need capacity >= 2 to calibrate")
    lo, hi = 1e-6, 2.0
    if cedar_levels(hi, capacity)[-1] < max_value:
        raise ConfigError("max_value unreachable even with delta = 2")
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if cedar_levels(mid, capacity)[-1] >= max_value:
            hi = mid
        else:
            lo = mid
    return hi


class CedarSketch:
    """An array of CEDAR counters over one shared level table."""

    def __init__(
        self,
        num_counters: int,
        counter_capacity: int,
        max_value: float,
        seed: int = 0xCEDA,
    ) -> None:
        if num_counters < 1:
            raise ConfigError(f"num_counters must be >= 1, got {num_counters}")
        self.num_counters = int(num_counters)
        self.counter_capacity = int(counter_capacity)
        self.delta = calibrate_delta(counter_capacity, max_value)
        self.levels = cedar_levels(self.delta, counter_capacity)
        # Advance probabilities between consecutive levels.
        self._probs = np.minimum(1.0, 1.0 / np.diff(self.levels))
        self._values = np.zeros(self.num_counters, dtype=np.int64)
        self._rng = np.random.default_rng(seed)
        self._family = HashFamily(1, seed=seed ^ 0xF10)
        self.saturated_updates = 0

    def _slots(self, flow_ids: FlowIdArray) -> npt.NDArray[np.int64]:
        h = self._family.hash_array(0, np.asarray(flow_ids, np.uint64))
        return (h % np.uint64(self.num_counters)).astype(np.int64)

    def process(self, packets: FlowIdArray) -> None:
        """Per-packet probabilistic level advances."""
        slots = self._slots(packets)
        uniforms = self._rng.random(len(slots))
        values = self._values
        cap = self.counter_capacity
        probs = self._probs
        saturated = 0
        for i, idx in enumerate(slots.tolist()):
            c = values[idx]
            if c >= cap:
                saturated += 1
                continue
            if uniforms[i] < probs[c]:
                values[idx] = c + 1
        self.saturated_updates += saturated

    def estimate(self, flow_ids: FlowIdArray) -> npt.NDArray[np.float64]:
        """Shared-table lookup: the estimate of level ``i`` is ``L_i``."""
        return self.levels[self._values[self._slots(flow_ids)]]

    @property
    def bits_per_counter(self) -> int:
        return max(1, int(np.ceil(np.log2(self.counter_capacity + 1))))

    @property
    def memory_kilobytes(self) -> float:
        return self.num_counters * self.bits_per_counter / 8192.0
