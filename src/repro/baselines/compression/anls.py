"""ANLS — Adaptive Non-Linear Sampling (Hu et al., INFOCOM 2008).

Exponential compression: stored value ``c`` represents

    rep(c) = ((1 + omega)^c - 1) / omega

so increments get geometrically rarer as the counter grows. ``omega``
trades accuracy (relative error ~ sqrt(omega/2)) against range; the
constructor can calibrate it so the counter capacity covers a target
maximum value.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.baselines.compression.base import CompressedCounterArray, CompressionCurve
from repro.errors import ConfigError
from repro.hashing.family import HashFamily
from repro.types import FlowIdArray


class AnlsCurve(CompressionCurve):
    """``rep(c) = ((1+omega)^c - 1) / omega`` (exponential stretch)."""

    def __init__(self, omega: float) -> None:
        if omega <= 0:
            raise ConfigError(f"omega must be > 0, got {omega}")
        self.omega = float(omega)

    @classmethod
    def for_range(cls, capacity: int, max_value: float) -> "AnlsCurve":
        """Calibrate omega so ``rep(capacity) >= max_value`` (bisection).

        A larger omega stretches further but is noisier; this returns
        the *smallest* omega covering the range, i.e. the most accurate
        counter that still cannot overflow before ``max_value``.
        """
        if capacity < 2:
            raise ConfigError("need capacity >= 2 to calibrate")
        lo, hi = 1e-9, 10.0
        if ((1 + hi) ** capacity - 1) / hi < max_value:
            raise ConfigError(
                f"capacity {capacity} cannot stretch to {max_value:g} "
                "even at omega = 10; use a wider counter"
            )
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            r = ((1 + mid) ** capacity - 1) / mid
            if r >= max_value:
                hi = mid
            else:
                lo = mid
        return cls(hi)

    def rep(self, c: npt.NDArray[np.float64]) -> npt.NDArray[np.float64]:
        c = np.asarray(c, dtype=np.float64)
        return ((1.0 + self.omega) ** c - 1.0) / self.omega

    def inverse(self, v: npt.NDArray[np.float64]) -> npt.NDArray[np.float64]:
        v = np.asarray(v, dtype=np.float64)
        return np.log1p(self.omega * np.maximum(v, 0.0)) / np.log1p(self.omega)


class AnlsSketch:
    """Standalone ANLS: hashed slot per flow, per-packet updates."""

    def __init__(
        self,
        num_counters: int,
        counter_capacity: int,
        max_value: float,
        seed: int = 0xA9315,
    ) -> None:
        self.curve = AnlsCurve.for_range(counter_capacity, max_value)
        self.array = CompressedCounterArray(
            self.curve, num_counters, counter_capacity, seed=seed
        )
        self._family = HashFamily(1, seed=seed ^ 0xF10)
        self.num_counters = num_counters

    def _slots(self, flow_ids: FlowIdArray) -> npt.NDArray[np.int64]:
        h = self._family.hash_array(0, np.asarray(flow_ids, np.uint64))
        return (h % np.uint64(self.num_counters)).astype(np.int64)

    def process(self, packets: FlowIdArray) -> None:
        self.array.increment_batch(self._slots(packets))

    def estimate(self, flow_ids: FlowIdArray) -> npt.NDArray[np.float64]:
        return self.array.estimate(self._slots(flow_ids))
