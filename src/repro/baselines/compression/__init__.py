"""Compressed-counter substrate (related work, Section 2.1).

Single-counter-per-flow schemes store a *compressed* value ``c`` whose
represented (estimated) size is ``rep(c)``; increments advance ``c``
probabilistically so that ``rep`` stays unbiased. CASE builds on the
DISCO curve; SAC, ANLS, CEDAR, and ICE-buckets are the other
compression schemes the paper's related-work section surveys, included
here as extension baselines.
"""

from repro.baselines.compression.base import CompressedCounterArray, CompressionCurve
from repro.baselines.compression.anls import AnlsCurve, AnlsSketch
from repro.baselines.compression.cedar import CedarSketch
from repro.baselines.compression.disco import DiscoCurve, DiscoSketch
from repro.baselines.compression.icebuckets import IceBucketsSketch
from repro.baselines.compression.sac import SacSketch

__all__ = [
    "AnlsCurve",
    "AnlsSketch",
    "CedarSketch",
    "CompressedCounterArray",
    "CompressionCurve",
    "DiscoCurve",
    "DiscoSketch",
    "IceBucketsSketch",
    "SacSketch",
]
