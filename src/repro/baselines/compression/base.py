"""Compression-curve abstraction and the compressed counter array.

A :class:`CompressionCurve` maps a small stored counter value ``c`` to
the (much larger) represented flow size ``rep(c)``. Unbiasedness is
kept by probabilistic updates:

- per-packet: increment ``c`` with probability
  ``1 / (rep(c+1) - rep(c))`` (the classic SAC/ANLS/DISCO update);
- add-by-value (the CASE path): jump to the continuous coordinate
  ``inverse(rep(c) + value)`` and round probabilistically — this is
  where CASE pays its "time-consuming power operations".

:class:`CompressedCounterArray` packages an integer counter array with
a curve and both update paths, plus saturation accounting.
"""

from __future__ import annotations

import abc

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError


class CompressionCurve(abc.ABC):
    """Monotone map between stored counter values and represented sizes."""

    @abc.abstractmethod
    def rep(self, c: npt.NDArray[np.float64]) -> npt.NDArray[np.float64]:
        """Represented (estimated) size of stored value ``c`` (vectorized)."""

    @abc.abstractmethod
    def inverse(self, v: npt.NDArray[np.float64]) -> npt.NDArray[np.float64]:
        """Continuous stored-coordinate whose representation is ``v``."""

    def increment_probability(self, c: npt.NDArray[np.int64]) -> npt.NDArray[np.float64]:
        """Per-packet advance probability ``1 / (rep(c+1) - rep(c))``."""
        c = np.asarray(c, dtype=np.float64)
        gap = self.rep(c + 1.0) - self.rep(c)
        return np.minimum(1.0, 1.0 / np.maximum(gap, 1e-300))

    def validate_monotone(self, capacity: int) -> None:
        """Sanity check: ``rep`` strictly increasing over ``0..capacity``."""
        c = np.arange(capacity + 1, dtype=np.float64)
        r = self.rep(c)
        if not np.all(np.diff(r) > 0):
            raise ConfigError(f"{type(self).__name__}: rep() is not strictly increasing")


class CompressedCounterArray:
    """``num_counters`` compressed counters sharing one curve.

    ``counter_capacity`` is the maximum stored value (so the modeled
    width is ``ceil(log2(capacity + 1))`` bits — in the paper's Fig. 5
    setup this is ~1.5 bits at 183.11 KB and ~10 bits at 1.21 MB for
    one counter per flow).
    """

    def __init__(
        self,
        curve: CompressionCurve,
        num_counters: int,
        counter_capacity: int,
        seed: int = 0,
    ) -> None:
        if num_counters < 1:
            raise ConfigError(f"num_counters must be >= 1, got {num_counters}")
        if counter_capacity < 1:
            raise ConfigError(f"counter_capacity must be >= 1, got {counter_capacity}")
        curve.validate_monotone(counter_capacity)
        self.curve = curve
        self.num_counters = int(num_counters)
        self.counter_capacity = int(counter_capacity)
        self._values = np.zeros(self.num_counters, dtype=np.int64)
        self._rng = np.random.default_rng(seed)
        #: Updates that hit an already-saturated counter.
        self.saturated_updates = 0

    # -- update paths -----------------------------------------------------

    def add_value(self, index: int, value: int) -> None:
        """CASE path: fold an evicted cache value into one counter.

        Computes ``c' = inverse(rep(c) + value)`` (power operations)
        and rounds probabilistically, preserving unbiasedness of
        ``rep``.
        """
        if value < 0:
            raise ConfigError(f"value must be >= 0, got {value}")
        if value == 0:
            return
        c = float(self._values[index])
        target = self.curve.inverse(np.array([self.curve.rep(np.array([c]))[0] + value]))[0]
        base = int(np.floor(target))
        frac = target - base
        new = base + (1 if self._rng.random() < frac else 0)
        if new >= self.counter_capacity:
            if new > self.counter_capacity:
                self.saturated_updates += 1
            new = self.counter_capacity
        self._values[index] = max(new, self._values[index])

    def add_values(
        self,
        indices: npt.NDArray[np.int64],
        values: npt.NDArray[np.int64],
    ) -> None:
        """Batched :meth:`add_value` over one eviction chunk.

        Bit-identical to the sequential scalar calls under the same
        generator state: uniforms are drawn in one prefix-stable block,
        and events are applied in *occurrence rounds* — the i-th update
        of any given counter happens in round i, so within a round all
        touched counters are distinct and the fold (``rep``/``inverse``
        elementwise, probabilistic round, saturation, monotone store)
        vectorizes. Chunks rarely hit the same counter twice, so round
        one usually lands everything.
        """
        values = np.asarray(values, dtype=np.int64)
        if len(values) and values.min() < 0:
            raise ConfigError("values must be >= 0")
        keep = values > 0  # zero-valued folds consume no randomness
        if not keep.all():
            indices = indices[keep]
            values = values[keep]
        n = len(indices)
        if n == 0:
            return
        uniforms = self._rng.random(n)
        # occurrence[i] = how many earlier events in this chunk hit the
        # same counter as event i (stable grouped cumcount).
        order = np.argsort(indices, kind="stable")
        sorted_idx = indices[order]
        group_start = np.empty(n, dtype=bool)
        group_start[0] = True
        group_start[1:] = sorted_idx[1:] != sorted_idx[:-1]
        within = np.arange(n, dtype=np.int64)
        within -= np.maximum.accumulate(np.where(group_start, within, 0))
        occurrence = np.empty(n, dtype=np.int64)
        occurrence[order] = within
        cap = self.counter_capacity
        for r in range(int(occurrence.max()) + 1):
            sel = occurrence == r
            idx = indices[sel]
            c = self._values[idx].astype(np.float64)
            target = self.curve.inverse(self.curve.rep(c) + values[sel])
            base = np.floor(target)
            new = (base + (uniforms[sel] < target - base)).astype(np.int64)
            over = new > cap
            self.saturated_updates += int(np.count_nonzero(over))
            np.minimum(new, cap, out=new)
            self._values[idx] = np.maximum(new, self._values[idx])

    def increment(self, index: int) -> None:
        """Per-packet probabilistic advance (SAC/ANLS/DISCO path)."""
        c = self._values[index]
        if c >= self.counter_capacity:
            self.saturated_updates += 1
            return
        p = float(self.curve.increment_probability(np.array([c]))[0])
        if p >= 1.0 or self._rng.random() < p:
            self._values[index] = c + 1

    def increment_batch(self, indices: npt.NDArray[np.int64]) -> None:
        """Per-packet updates for a whole stream.

        Sequential by necessity (each update's probability depends on
        the counter's current value), but the loop body is tight; the
        curve's advance probabilities for all representable values are
        precomputed once.
        """
        probs = self.curve.increment_probability(
            np.arange(self.counter_capacity + 1, dtype=np.int64)
        )
        values = self._values
        cap = self.counter_capacity
        uniforms = self._rng.random(len(indices))
        saturated = 0
        for i, idx in enumerate(indices.tolist()):
            c = values[idx]
            if c >= cap:
                saturated += 1
                continue
            if uniforms[i] < probs[c]:
                values[idx] = c + 1
        self.saturated_updates += saturated

    # -- reads ---------------------------------------------------------------

    def estimate(self, indices: npt.NDArray[np.int64]) -> npt.NDArray[np.float64]:
        """Represented sizes at ``indices`` (vectorized)."""
        return self.curve.rep(self._values[indices].astype(np.float64))

    @property
    def values(self) -> npt.NDArray[np.int64]:
        """Stored compressed values (read-only view)."""
        v = self._values.view()
        v.flags.writeable = False
        return v

    @property
    def bits_per_counter(self) -> int:
        return max(1, int(np.ceil(np.log2(self.counter_capacity + 1))))

    @property
    def memory_kilobytes(self) -> float:
        """Paper accounting: ``num_counters * bits / 8192`` KB."""
        return self.num_counters * self.bits_per_counter / 8192.0
