"""Count-Min sketch and conservative update — reference sketches.

Not evaluated in the paper, but the de-facto standard shared-counter
frequency sketches; included so the accuracy harness has a familiar
yardstick (and because CAESAR's banked layout *is* a Count-Min layout
with a different update/decode rule, which makes the comparison
instructive).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError
from repro.hashing.family import BankedIndexer
from repro.sram.counterarray import BankedCounterArray
from repro.types import FlowIdArray


@dataclass(frozen=True)
class CountMinConfig:
    """``depth`` rows (banks) of ``width`` counters."""

    depth: int = 3
    width: int = 4096
    counter_capacity: int = 2**30
    conservative: bool = False
    seed: int = 0xC0DE

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ConfigError(f"depth must be >= 1, got {self.depth}")
        if self.width < 1:
            raise ConfigError(f"width must be >= 1, got {self.width}")


class CountMin:
    """Count-Min / Count-Min-CU over the banked counter substrate."""

    def __init__(self, config: CountMinConfig) -> None:
        self.config = config
        self.indexer = BankedIndexer(config.depth, config.width, seed=config.seed)
        self.counters = BankedCounterArray(
            k=config.depth,
            bank_size=config.width,
            counter_capacity=config.counter_capacity,
        )
        self._packets_seen = 0

    def process(self, packets: FlowIdArray) -> None:
        """Record a packet batch.

        Plain CM increments all ``depth`` row counters per packet
        (vectorized per distinct flow). Conservative update increments
        only rows at the current minimum — inherently sequential, so
        the CU path loops per packet.
        """
        packets = np.asarray(packets, dtype=np.uint64)
        if len(packets) == 0:
            return
        if not self.config.conservative:
            uniq, counts = np.unique(packets, return_counts=True)
            idx = self.indexer.indices(uniq)
            self.counters.add_at(idx.ravel(), np.repeat(counts, self.config.depth))
        else:
            uniq, inverse = np.unique(packets, return_inverse=True)
            idx = self.indexer.indices(uniq)
            values = self.counters._values  # hot loop: direct access
            for u in inverse.tolist():
                rows = idx[u]
                cur = values[rows]
                target = cur.min() + 1
                values[rows] = np.maximum(cur, target)
        self._packets_seen += len(packets)

    def estimate(self, flow_ids: FlowIdArray) -> npt.NDArray[np.float64]:
        """Min over rows — the classic biased-up CM point query."""
        idx = self.indexer.indices(np.asarray(flow_ids, np.uint64))
        return self.counters.gather(idx).min(axis=1).astype(np.float64)

    @property
    def num_packets(self) -> int:
        return self._packets_seen
