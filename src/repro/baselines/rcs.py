"""Randomized Counter Sharing (RCS) — Li et al., INFOCOM 2011.

The cache-free baseline of the paper's Figures 6-7. Each flow owns a
fixed *storage vector* of ``k`` shared counters (here: one per bank,
same banked layout as CAESAR so both schemes are compared at identical
SRAM budgets); **every arriving packet** increments one uniformly
random counter of its flow's vector. This is exactly CAESAR with a
degenerate cache (``y = 1``) — which is how the paper frames Figure 6
("the cache size is very small as y = 1") — but with *one off-chip SRAM
access per packet*, which is what makes the scheme lossy at line rate
(Figure 7).

Decoding:

- CSM (countsum): ``x_hat = sum_r S_f[r] - n/L`` — identical algebra to
  CAESAR's Eq. (20);
- MLM: vectorized iterative maximization of the Gaussian likelihood
  (the paper notes RCS's MLM "binary search is extremely slow"; ours is
  a fixed-iteration vectorized bisection on the score function).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.core.csm import csm_estimate
from repro.errors import ConfigError, QueryError
from repro.hashing.family import BankedIndexer
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.obs.schemes import observe_scheme
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.sram.counterarray import BankedCounterArray
from repro.sram.layout import bank_size_for_budget
from repro.types import FlowIdArray


@dataclass(frozen=True)
class RCSConfig:
    """Parameters of one RCS instance.

    ``k`` is the storage-vector size, ``bank_size`` the counters per
    bank (total SRAM counters ``k * bank_size``), ``counter_capacity``
    the per-counter ceiling.
    """

    k: int = 3
    bank_size: int = 4096
    counter_capacity: int = 2**30
    seed: int = 0x5C5

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigError(f"k must be >= 1, got {self.k}")
        if self.bank_size < 1:
            raise ConfigError(f"bank_size must be >= 1, got {self.bank_size}")
        if self.counter_capacity < 1:
            raise ConfigError(f"counter_capacity must be >= 1, got {self.counter_capacity}")

    @classmethod
    def for_budget(
        cls,
        sram_kb: float,
        *,
        k: int = 3,
        counter_capacity: int = 2**20 - 1,
        seed: int = 0x5C5,
    ) -> "RCSConfig":
        """Size the banked array to an SRAM budget (paper accounting)."""
        return cls(
            k=k,
            bank_size=bank_size_for_budget(sram_kb, k, counter_capacity),
            counter_capacity=counter_capacity,
            seed=seed,
        )


class RCS:
    """Randomized Counter Sharing with CSM and MLM decoding."""

    def __init__(
        self,
        config: RCSConfig,
        *,
        registry: MetricsRegistry | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.config = config
        self.metrics = resolve_registry(registry)
        self.indexer = BankedIndexer(config.k, config.bank_size, seed=config.seed)
        self.counters = BankedCounterArray(
            k=config.k,
            bank_size=config.bank_size,
            counter_capacity=config.counter_capacity,
        )
        self._rng = np.random.default_rng(config.seed ^ 0xACC)
        self._packets_seen = 0
        # RCS is cache-free: the injectable surface is the per-packet
        # SRAM write stream (drop/duplicate per processing chunk) plus
        # the counters themselves (bit flips, stuck-at).
        self._injector: FaultInjector | None = (
            FaultInjector(fault_plan).attach(counters=self.counters)
            if fault_plan is not None and fault_plan.enabled
            else None
        )

    # -- construction phase (per-packet, vectorized) ---------------------------

    #: Packets per processing chunk: bounds the transient ``(U, k)``
    #: index matrix and per-packet draw arrays at a few MB regardless
    #: of how large a batch the caller hands in.
    chunk_size: int = 1 << 20

    def process(self, packets: FlowIdArray) -> None:
        """Record a packet batch: each packet lands on one uniformly
        random counter of its flow's vector.

        Vectorized and chunked: per chunk, hash the distinct flows
        once, draw each packet's bank, and scatter-add the whole chunk
        in one call. Chunking changes only peak memory, not results —
        bounded-integer draws are prefix-stable, so any chunk size
        yields the same counters under the same seed.
        """
        packets = np.asarray(packets, dtype=np.uint64)
        metrics = self.metrics
        chunk_counter = metrics.counter("rcs.chunks")
        with metrics.timer("rcs.process"):
            for start in range(0, len(packets), self.chunk_size):
                chunk = packets[start : start + self.chunk_size]
                uniq, inverse = np.unique(chunk, return_inverse=True)
                idx_matrix = self.indexer.indices(uniq)  # (U, k)
                banks = self._rng.integers(0, self.config.k, size=len(chunk))
                flat = idx_matrix[inverse, banks]
                injector = self._injector
                if injector is None:
                    self.counters.add_at(flat, 1)
                elif injector.drops_chunk():
                    injector.account_dropped(len(chunk))
                else:
                    self.counters.add_at(flat, 1)
                    if injector.duplicates_chunk():
                        self.counters.add_at(flat, 1)
                        injector.account_duplicated(len(chunk))
                if injector is not None:
                    injector.maybe_flip_bit()
                self._packets_seen += len(chunk)
                chunk_counter.inc()

    def finalize(self) -> None:
        """RCS has no cache to dump — provided for scheme-protocol
        symmetry (idempotent; records the scheme-level gauges)."""
        observe_scheme(self.metrics, self, "rcs")

    @property
    def num_packets(self) -> int:
        """Packets actually recorded (after any upstream loss)."""
        return self._packets_seen

    @property
    def recorded_mass(self) -> int:
        """Counted units seen on the wire (== packets for RCS)."""
        return self._packets_seen

    @property
    def effective_mass(self) -> int:
        """Mass actually landed in the counters (fault-compensated)."""
        if self._injector is None:
            return self._packets_seen
        return max(self._packets_seen + self._injector.mass_delta, 0)

    @property
    def memory_bits(self) -> int:
        """Modeled footprint: the banked SRAM array (RCS is cache-free)."""
        return self.counters.memory_bits

    # -- query phase ---------------------------------------------------------------

    def counter_values(self, flow_ids: FlowIdArray) -> npt.NDArray[np.int64]:
        """Raw storage-vector values, shape ``(F, k)``."""
        return self.counters.gather(self.indexer.indices(np.asarray(flow_ids, np.uint64)))

    def estimate(
        self,
        flow_ids: FlowIdArray,
        method: str = "csm",
        *,
        clip_negative: bool = False,
        mlm_iterations: int = 60,
    ) -> npt.NDArray[np.float64]:
        """Estimate flow sizes with CSM (default) or MLM decoding."""
        w = self.counter_values(flow_ids)
        if method == "csm":
            return csm_estimate(
                w, self.effective_mass, self.config.bank_size, clip_negative=clip_negative
            )
        if method == "mlm":
            return self._mlm(w, iterations=mlm_iterations, clip_negative=clip_negative)
        raise ConfigError(f"unknown estimation method {method!r}; use 'csm' or 'mlm'")

    def _mlm(
        self,
        w: npt.NDArray[np.int64],
        iterations: int,
        clip_negative: bool,
    ) -> npt.NDArray[np.float64]:
        """Vectorized bisection on the Gaussian score function.

        Model: each vector counter ``W_r ~ N(x/k + lam, x(k-1)/k^2 + lam)``
        with ``lam = n/(k L)`` the per-counter noise mean (its variance is
        Poisson-like, so ``var ~= mean``). The score (d/dx of the
        log-likelihood) is strictly decreasing in ``x``, so bisection on
        ``[0, k * max(w)]`` converges geometrically; ``iterations = 60``
        resolves far below one packet.
        """
        if self.config.k < 2:
            raise QueryError("RCS MLM decoding requires k >= 2")
        w = w.astype(np.float64)
        n, k = self.effective_mass, self.config.k
        lam = n / (k * self.config.bank_size)

        def score(x: npt.NDArray[np.float64]) -> npt.NDArray[np.float64]:
            mean = x / k + lam
            var = x * (k - 1) / (k * k) + lam + 1e-12
            dmean = 1.0 / k
            dvar = (k - 1) / (k * k)
            resid = w - mean[:, None]
            return (
                (resid * dmean / var[:, None]).sum(axis=1)
                + 0.5 * dvar * (resid**2).sum(axis=1) / var**2
                - 0.5 * k * dvar / var
            )

        lo = np.zeros(len(w))
        hi = np.maximum(k * w.max(axis=1), 1.0)
        # If even x = 0 has negative score, the MLE is 0.
        neg_at_zero = score(lo) <= 0
        for _ in range(iterations):
            mid = 0.5 * (lo + hi)
            s = score(mid)
            go_up = s > 0
            lo = np.where(go_up, mid, lo)
            hi = np.where(go_up, hi, mid)
        est = 0.5 * (lo + hi)
        est[neg_at_zero] = 0.0
        if not clip_negative:
            # Bisection is non-negative by construction; mirror the CSM
            # flag anyway for interface symmetry.
            return est
        return np.maximum(est, 0.0)
