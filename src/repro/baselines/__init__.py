"""Baselines and related-work schemes.

The paper evaluates CAESAR against two state-of-the-art schemes, both
implemented here from scratch:

- :mod:`repro.baselines.rcs` — Randomized Counter Sharing (Li et al.,
  INFOCOM 2011): cache-free shared counters updated per packet;
- :mod:`repro.baselines.case` — Cache-Assisted Stretchable Estimator
  (Li et al., INFOCOM 2016): the same on-chip cache in front of
  one-counter-per-flow DISCO-compressed counters.

The related-work compressed-counter schemes of Section 2.1 (DISCO,
SAC, ANLS, CEDAR, ICE-buckets) live in
:mod:`repro.baselines.compression`, Counter Braids in
:mod:`repro.baselines.counter_braids`, and generic sketch references
(Count-Min) in :mod:`repro.baselines.countmin`.
"""

from repro.baselines.case import Case, CaseConfig
from repro.baselines.rcs import RCS, RCSConfig

__all__ = ["Case", "CaseConfig", "RCS", "RCSConfig"]
