"""Virtual HyperLogLog Counter (VHC) — Zhou et al., GLOBECOM 2017.

The register-sharing member of the related-work family (Section 2.1):
each flow owns a *virtual* HyperLogLog sketch of ``s`` registers drawn
by hashing from one shared physical pool of ``m`` 5-bit registers.
Per packet, one of the flow's registers is chosen uniformly and
updated with a geometric rank (the HLL max-of-leading-zeros rule) —
"slightly more than 1 memory access per packet" as the paper notes.

Decoding subtracts the pool-wide background from the virtual
estimate:

    n_hat_f = (n_vf - (s/m) * n_total) / (1 - s/m)

where ``n_vf`` is the HLL estimate over the flow's s registers and
``n_total`` over all m. Standard HLL bias correction and the
linear-counting small-range regime are implemented.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError
from repro.hashing.family import HashFamily
from repro.types import FlowIdArray

#: HLL registers are 5 bits: ranks 0..31.
REGISTER_MAX = 31


def hll_alpha(registers: int) -> float:
    """The standard HLL bias-correction constant for ``registers``."""
    if registers <= 16:
        return 0.673
    if registers <= 32:
        return 0.697
    if registers <= 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / registers)


def hll_raw_estimate(values: npt.NDArray[np.int64]) -> float:
    """HLL estimate over one register set, with linear counting."""
    s = len(values)
    raw = hll_alpha(s) * s * s / float(np.sum(2.0 ** (-values.astype(np.float64))))
    zeros = int(np.count_nonzero(values == 0))
    if raw <= 2.5 * s and zeros > 0:
        return s * float(np.log(s / zeros))
    return raw


@dataclass(frozen=True)
class VHCConfig:
    """``m`` shared physical registers; ``s`` virtual registers per flow."""

    num_registers: int = 65536
    virtual_registers: int = 128
    seed: int = 0x07C

    def __post_init__(self) -> None:
        if self.num_registers < 2:
            raise ConfigError(f"num_registers must be >= 2, got {self.num_registers}")
        if not 1 <= self.virtual_registers < self.num_registers:
            raise ConfigError(
                "virtual_registers must be in [1, num_registers); got "
                f"{self.virtual_registers} of {self.num_registers}"
            )

    @property
    def memory_kilobytes(self) -> float:
        """5 bits per register, paper-style accounting."""
        return self.num_registers * 5 / 8192.0


class VHC:
    """Virtual HyperLogLog counters over one shared register pool."""

    def __init__(self, config: VHCConfig) -> None:
        self.config = config
        self._registers = np.zeros(config.num_registers, dtype=np.int64)
        self._family = HashFamily(1, seed=config.seed)
        self._rng = np.random.default_rng(config.seed ^ 0xFACADE)
        self._packets_seen = 0

    # -- virtual register selection ------------------------------------------

    def _virtual_indices(self, flow_ids: FlowIdArray) -> npt.NDArray[np.int64]:
        """Each flow's s physical register indices, shape ``(F, s)``.

        Register ``j`` of flow ``f`` is ``h(f ^ mix(j)) % m`` — one
        seeded hash per (flow, slot) pair, vectorized over both axes.
        """
        flow_ids = np.asarray(flow_ids, dtype=np.uint64)
        s = self.config.virtual_registers
        slots = np.arange(s, dtype=np.uint64) * np.uint64(0x9E3779B97F4A7C15)
        with np.errstate(over="ignore"):
            mixed = self._family.hash_array(0, flow_ids)[:, None] ^ slots[None, :]
        from repro.hashing.mix import splitmix64_array

        h = splitmix64_array(mixed.ravel()).reshape(len(flow_ids), s)
        return (h % np.uint64(self.config.num_registers)).astype(np.int64)

    # -- construction phase --------------------------------------------------------

    def process(self, packets: FlowIdArray) -> None:
        """Record a packet batch (vectorized).

        Per packet: one uniform virtual slot, one geometric rank, one
        max-update on the selected physical register.
        """
        packets = np.asarray(packets, dtype=np.uint64)
        if len(packets) == 0:
            return
        uniq, inverse = np.unique(packets, return_inverse=True)
        vidx = self._virtual_indices(uniq)
        slot = self._rng.integers(0, self.config.virtual_registers, size=len(packets))
        target = vidx[inverse, slot]
        rank = self._rng.geometric(0.5, size=len(packets))
        rank = np.minimum(rank, REGISTER_MAX)
        np.maximum.at(self._registers, target, rank)
        self._packets_seen += len(packets)

    # -- query phase ------------------------------------------------------------------

    @property
    def num_packets(self) -> int:
        return self._packets_seen

    def total_estimate(self) -> float:
        """HLL estimate of the whole pool's packet count."""
        return hll_raw_estimate(self._registers)

    def estimate(self, flow_ids: FlowIdArray) -> npt.NDArray[np.float64]:
        """Per-flow size estimates (background-subtracted virtual HLL)."""
        flow_ids = np.asarray(flow_ids, dtype=np.uint64)
        vidx = self._virtual_indices(flow_ids)
        s = self.config.virtual_registers
        m = self.config.num_registers
        total = self.total_estimate()
        share = s / m
        out = np.empty(len(flow_ids), dtype=np.float64)
        for i in range(len(flow_ids)):
            n_vf = hll_raw_estimate(self._registers[vidx[i]])
            out[i] = (n_vf - share * total) / (1.0 - share)
        return np.maximum(out, 0.0)
