"""Space-Saving (Metwally et al. 2005) — deterministic top-k tracking.

Not a per-flow size estimator: the classic counter-based heavy-hitter
algorithm, included as the reference point for the heavy-hitter
application example (the paper's intro motivates per-flow measurement
with exactly that use case). ``capacity`` monitored entries; on a miss
with a full table the minimum entry is *reassigned* to the new flow
and its count inherited — guaranteeing every flow with true frequency
above ``n/capacity`` is retained, with over-estimation bounded by the
inherited error.
"""

from __future__ import annotations

import heapq

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError
from repro.types import FlowIdArray


class SpaceSaving:
    """Fixed-capacity Space-Saving summary."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ConfigError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._count: dict[int, int] = {}
        self._error: dict[int, int] = {}
        self._packets_seen = 0

    def _min_entry(self) -> tuple[int, int]:
        """(flow, count) of the current minimum (O(capacity) scan —
        acceptable at the few-thousand-entry capacities this is run at;
        a production variant would keep the stream-summary structure)."""
        fid = min(self._count, key=self._count.__getitem__)
        return fid, self._count[fid]

    def update(self, flow_id: int, weight: int = 1) -> None:
        """Observe one packet (or ``weight`` bytes) of ``flow_id``."""
        self._packets_seen += weight
        cur = self._count.get(flow_id)
        if cur is not None:
            self._count[flow_id] = cur + weight
            return
        if len(self._count) < self.capacity:
            self._count[flow_id] = weight
            self._error[flow_id] = 0
            return
        victim, vcount = self._min_entry()
        del self._count[victim]
        del self._error[victim]
        self._count[flow_id] = vcount + weight
        self._error[flow_id] = vcount

    def process(self, packets: FlowIdArray) -> None:
        """Feed a packet stream."""
        update = self.update
        for fid in np.asarray(packets, dtype=np.uint64).tolist():
            update(fid)

    # -- queries --------------------------------------------------------------

    @property
    def num_packets(self) -> int:
        return self._packets_seen

    def top(self, k: int) -> list[tuple[int, int, int]]:
        """The ``k`` largest tracked flows: ``(flow, count, error)``.

        ``count - error`` lower-bounds and ``count`` upper-bounds the
        true frequency.
        """
        items = heapq.nlargest(k, self._count.items(), key=lambda kv: kv[1])
        return [(fid, cnt, self._error[fid]) for fid, cnt in items]

    def estimate(self, flow_ids: FlowIdArray) -> npt.NDArray[np.float64]:
        """Upper-bound estimates (0 for untracked flows)."""
        return np.array(
            [float(self._count.get(int(f), 0)) for f in np.asarray(flow_ids, np.uint64)]
        )

    def guaranteed(self, flow_id: int) -> bool:
        """True if the flow's count is exact (error bound is zero)."""
        return self._error.get(int(flow_id), -1) == 0
