"""CASE — Cache-Assisted Stretchable Estimator (Li et al., INFOCOM 2016).

The cache-assisted baseline of the paper's Figure 5. CASE uses the
same on-chip cache front end as CAESAR, but off-chip it keeps **one
DISCO-compressed counter per flow** (one-to-one mapping — so the
counter count must be at least the flow count, which at a fixed SRAM
budget forces the per-counter width down to a bit or two; that is
precisely why its estimates collapse to ~0 at 183.11 KB in the paper).

Eviction path: fold the evicted cache value into the flow's compressed
counter via the DISCO curve — ``c' = inverse(rep(c) + value)`` — the
power operation the paper charges CASE's processing time with. Like
CAESAR, CASE runs any engine: ``"batched"`` (default) drains the
eviction buffer chunk-wise into one vectorized compressed fold (run
coalescing auto-selected per chunk), ``"runs"`` forces the
run-coalescing cache kernel on, ``"scalar"`` folds per eviction; all
are bit-identical under a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.baselines.compression.base import CompressedCounterArray
from repro.baselines.compression.disco import DiscoCurve
from repro.cachesim.base import EvictionReason
from repro.cachesim.buffer import EvictionBuffer
from repro.cachesim.cache import FlowCache
from repro.errors import ConfigError, QueryError
from repro.hashing.family import HashFamily
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.obs.schemes import observe_cache_stats, observe_scheme
from repro.obs.trace import EvictionTrace
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.sram.layout import cache_entries_for_budget
from repro.types import FlowIdArray


@dataclass(frozen=True)
class CaseConfig:
    """Parameters of one CASE instance."""

    cache_entries: int
    entry_capacity: int
    num_counters: int
    counter_capacity: int
    max_value: float
    gamma: float = 2.0
    replacement: str = "lru"
    seed: int = 0xCA5E
    engine: str = "batched"

    def __post_init__(self) -> None:
        if self.cache_entries < 1:
            raise ConfigError(f"cache_entries must be >= 1, got {self.cache_entries}")
        if self.entry_capacity < 1:
            raise ConfigError(f"entry_capacity must be >= 1, got {self.entry_capacity}")
        if self.num_counters < 1:
            raise ConfigError(f"num_counters must be >= 1, got {self.num_counters}")
        if self.counter_capacity < 1:
            raise ConfigError(f"counter_capacity must be >= 1, got {self.counter_capacity}")
        if self.replacement not in ("lru", "random"):
            raise ConfigError(f"replacement must be 'lru' or 'random', got {self.replacement!r}")
        if self.engine not in ("batched", "runs", "scalar"):
            raise ConfigError(
                f"engine must be 'batched', 'runs', or 'scalar', got {self.engine!r}"
            )

    @classmethod
    def for_budgets(
        cls,
        *,
        sram_kb: float,
        cache_kb: float,
        num_packets: int,
        num_flows: int,
        max_value: float,
        gamma: float = 2.0,
        replacement: str = "lru",
        seed: int = 0xCA5E,
        engine: str = "batched",
    ) -> "CaseConfig":
        """Size CASE the paper's way: one counter per flow, so the SRAM
        budget fixes the per-counter width ``floor(bits / Q)``; the
        cache uses the paper's ``y = floor(2 n / Q)`` rule."""
        budget_bits = int(sram_kb * 8192)
        bits = budget_bits // num_flows
        if bits < 1:
            raise ConfigError(
                f"{sram_kb} KB cannot give {num_flows} flows even 1-bit counters"
            )
        num_counters = budget_bits // bits
        y = max(2, int(2 * num_packets / num_flows))
        return cls(
            cache_entries=cache_entries_for_budget(cache_kb, y),
            entry_capacity=y,
            num_counters=num_counters,
            counter_capacity=(1 << bits) - 1,
            max_value=max_value,
            gamma=gamma,
            replacement=replacement,
            seed=seed,
            engine=engine,
        )


class Case:
    """One CASE instance: cache front end, DISCO counters behind."""

    def __init__(
        self,
        config: CaseConfig,
        *,
        registry: MetricsRegistry | None = None,
        eviction_trace: EvictionTrace | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        self.config = config
        self.metrics = resolve_registry(registry)
        self.cache = FlowCache(
            num_entries=config.cache_entries,
            entry_capacity=config.entry_capacity,
            policy=config.replacement,
            seed=config.seed ^ 0xCACE,
            registry=registry,
            trace=eviction_trace,
        )
        self.curve = DiscoCurve(config.gamma, config.counter_capacity, config.max_value)
        self.array = CompressedCounterArray(
            self.curve,
            config.num_counters,
            config.counter_capacity,
            seed=config.seed ^ 0x50FF,
        )
        self._family = HashFamily(1, seed=config.seed)
        self.engine = config.engine
        self._buffer = EvictionBuffer()
        self._packets_seen = 0
        self._finalized = False
        #: Power operations performed (eviction folds) — the cost the
        #: paper's Figure 8 charges CASE with.
        self.power_operations = 0
        # Transfer faults only: CASE's compressed counters have no
        # meaningful bit-flip/stuck-at surface (docs/resilience.md), so
        # the injector binds to the cache alone (drop/duplicate/wipe).
        self._injector: FaultInjector | None = (
            FaultInjector(fault_plan).attach(cache=self.cache)
            if fault_plan is not None and fault_plan.enabled
            else None
        )
        if self._injector is not None:
            self._drain_fn = self._injector.wrap_drain(self._drain)
            self._sink_fn = self._injector.wrap_sink(self._sink)
        else:
            self._drain_fn = self._drain
            self._sink_fn = self._sink

    def _slot(self, flow_id: int) -> int:
        return int(self._family.hash_one(0, flow_id) % self.config.num_counters)

    def _slots(self, flow_ids: FlowIdArray) -> npt.NDArray[np.int64]:
        h = self._family.hash_array(0, np.asarray(flow_ids, np.uint64))
        return (h % np.uint64(self.config.num_counters)).astype(np.int64)

    def _sink(self, flow_id: int, value: int, reason: EvictionReason) -> None:
        self.array.add_value(self._slot(flow_id), value)
        self.power_operations += 1

    def _drain(
        self,
        ids: npt.NDArray[np.uint64],
        values: npt.NDArray[np.int64],
        reasons: npt.NDArray[np.uint8],
    ) -> None:
        """Batched eviction drain: one vectorized fold per chunk."""
        with self.metrics.timer("case.fold"):
            self.array.add_values(self._slots(ids), values)
        self.power_operations += len(ids)

    # -- construction phase ---------------------------------------------------

    def process(self, packets: FlowIdArray) -> None:
        """Feed a packet batch through the cache + compress pipeline."""
        if self._finalized:
            raise QueryError("cannot process packets after finalize()")
        with self.metrics.timer("case.process"):
            if self.engine == "scalar":
                self.cache.process(packets, self._sink_fn)
            else:
                self.cache.process_into(
                    packets,
                    self._buffer,
                    self._drain_fn,
                    coalesce=True if self.engine == "runs" else None,
                )
        self._packets_seen += len(packets)

    def finalize(self) -> None:
        """Dump resident cache entries into the compressed counters."""
        if self._finalized:
            return
        with self.metrics.timer("case.finalize"):
            if self.engine == "scalar":
                self.cache.dump(self._sink_fn)
            else:
                self.cache.dump_into(self._buffer, self._drain_fn)
        self._finalized = True
        observe_cache_stats(self.metrics, self.cache.stats, "case.cache")
        observe_scheme(self.metrics, self, "case")
        self.metrics.gauge("case.power_operations").set(self.power_operations)

    # -- query phase --------------------------------------------------------------

    @property
    def num_packets(self) -> int:
        return self._packets_seen

    @property
    def memory_bits(self) -> int:
        """Modeled footprint, paper accounting: cache count fields plus
        the compressed counter array."""
        return self.cache.memory_bits(flow_id_bits=0) + (
            self.array.num_counters * self.array.bits_per_counter
        )

    def estimate(self, flow_ids: FlowIdArray) -> npt.NDArray[np.float64]:
        """Decompressed per-flow estimates (offline query)."""
        if not self._finalized:
            raise QueryError("call finalize() before estimating")
        return self.array.estimate(self._slots(flow_ids))

    @property
    def sram_kilobytes(self) -> float:
        return self.array.memory_kilobytes
