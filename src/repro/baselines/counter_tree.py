"""Counter Tree (Chen, Chen & Cai — IEEE/ACM ToN 2017), cited [2].

A two-layer tree of short counters: the leaf layer is large and
cheap; each group of ``degree`` leaves shares one parent counter that
absorbs their overflow carries. A flow's *virtual counter* is the
chain (leaf, parent): its value is ``leaf + parent << leaf_bits`` —
but the parent is shared, so the high bits carry noise from sibling
leaves, which the estimator removes in expectation.

Per packet: one leaf increment; on leaf wrap, one parent increment —
like :class:`~repro.baselines.counter_braids.TwoLayerCounterBraids`
but with deterministic tree addressing instead of hashed carry
graphs, trading decode complexity for a small shared-parent bias.

Estimation (CSM-style, following the paper's "CTE" baseline):

    x_hat = leaf + (parent - other-leaf carry estimate) << leaf_bits
    noise-corrected by the global average as in Eq. (20).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError
from repro.hashing.family import HashFamily
from repro.types import FlowIdArray


@dataclass(frozen=True)
class CounterTreeConfig:
    """``num_leaves`` leaf counters of ``leaf_bits``; parents of
    ``parent_bits`` shared by ``degree`` leaves each."""

    num_leaves: int = 4096
    leaf_bits: int = 6
    degree: int = 8
    parent_bits: int = 24
    seed: int = 0xC7EE

    def __post_init__(self) -> None:
        if self.num_leaves < 1:
            raise ConfigError(f"num_leaves must be >= 1, got {self.num_leaves}")
        if not 1 <= self.leaf_bits <= 32:
            raise ConfigError("leaf_bits must be in [1, 32]")
        if self.degree < 1:
            raise ConfigError(f"degree must be >= 1, got {self.degree}")
        if not 1 <= self.parent_bits <= 48:
            raise ConfigError("parent_bits must be in [1, 48]")

    @property
    def num_parents(self) -> int:
        return (self.num_leaves + self.degree - 1) // self.degree

    @property
    def memory_kilobytes(self) -> float:
        return (
            self.num_leaves * self.leaf_bits + self.num_parents * self.parent_bits
        ) / 8192.0


class CounterTree:
    """Two-layer counter tree with shared parents."""

    def __init__(self, config: CounterTreeConfig) -> None:
        self.config = config
        self._leaves = np.zeros(config.num_leaves, dtype=np.int64)
        self._parents = np.zeros(config.num_parents, dtype=np.int64)
        self._wrap = 1 << config.leaf_bits
        self._family = HashFamily(1, seed=config.seed)
        self._packets_seen = 0

    def _leaf_of(self, flow_ids: FlowIdArray) -> npt.NDArray[np.int64]:
        h = self._family.hash_array(0, np.asarray(flow_ids, np.uint64))
        return (h % np.uint64(self.config.num_leaves)).astype(np.int64)

    def process(self, packets: FlowIdArray) -> None:
        """Record a batch (vectorized per distinct flow, with carries)."""
        packets = np.asarray(packets, dtype=np.uint64)
        if len(packets) == 0:
            return
        uniq, counts = np.unique(packets, return_counts=True)
        leaves = self._leaf_of(uniq)
        np.add.at(self._leaves, leaves, counts)
        carries, self._leaves = np.divmod(self._leaves, self._wrap)
        overflowed = np.nonzero(carries)[0]
        if len(overflowed):
            np.add.at(
                self._parents, overflowed // self.config.degree, carries[overflowed]
            )
        self._packets_seen += len(packets)

    @property
    def num_packets(self) -> int:
        return self._packets_seen

    @property
    def total_mass(self) -> int:
        """Leaves plus carried mass — conservation check."""
        return int(self._leaves.sum() + self._parents.sum() * self._wrap)

    def estimate(self, flow_ids: FlowIdArray) -> npt.NDArray[np.float64]:
        """Virtual-counter read with shared-parent noise removal.

        The parent holds its ``degree`` leaves' carries; a flow's share
        is its own carries plus ~(degree-1) siblings' — we subtract the
        per-leaf average carry of the *whole* leaf layer times the
        sibling count (the CSM-style expectation correction), then add
        the leaf-layer noise correction ``n/num_leaves`` for the hash
        sharing within the leaf itself.
        """
        cfg = self.config
        leaves = self._leaf_of(np.asarray(flow_ids, np.uint64))
        parents = leaves // cfg.degree
        mean_carry_per_leaf = float(self._parents.sum()) / cfg.num_leaves
        sibling_noise = (cfg.degree - 1) * mean_carry_per_leaf
        carried = np.maximum(
            self._parents[parents].astype(np.float64) - sibling_noise, 0.0
        )
        raw = self._leaves[leaves] + carried * self._wrap
        leaf_noise = self._packets_seen / cfg.num_leaves
        return np.maximum(raw - leaf_noise, 0.0)
