"""CAESAR — Cache Assisted Randomized Sharing Counters.

A from-scratch Python reproduction of *"Cache Assisted Randomized
Sharing Counters in Network Measurement"* (Liu, Dai, Liu, Li, Wang,
Zheng — ICPP 2018): per-flow traffic measurement that fronts shared
off-chip SRAM counters with a fast on-chip cache.

Quickstart
----------
>>> import repro
>>> trace = repro.default_paper_trace(scale=0.02)
>>> cfg = repro.CaesarConfig.for_budgets(
...     sram_kb=4.0, cache_kb=2.0,
...     num_packets=trace.num_packets, num_flows=trace.num_flows)
>>> caesar = repro.Caesar(cfg)
>>> caesar.process(trace.packets)
>>> caesar.finalize()
>>> estimates = caesar.estimate(trace.flows.ids)          # CSM
>>> quality = repro.evaluate(estimates, trace.flows.sizes)
>>> print(quality.summary())

Package map
-----------
- :mod:`repro.core` — CAESAR itself (construction, CSM/MLM query, theory);
- :mod:`repro.cachesim` — the on-chip cache (LRU / random replacement);
- :mod:`repro.sram` — banked saturating shared-counter arrays;
- :mod:`repro.hashing` — hash families, flow-ID digesting;
- :mod:`repro.traffic` — heavy-tailed trace synthesis & persistence;
- :mod:`repro.baselines` — RCS, CASE, DISCO/SAC/ANLS/CEDAR/ICE-buckets,
  Counter Braids, Count-Min;
- :mod:`repro.memmodel` — the FPGA timing/loss substitute model;
- :mod:`repro.obs` — opt-in observability (metrics registry, stage
  timers, eviction-stream tracing); zero overhead when off;
- :mod:`repro.resilience` — crash-consistent checkpoint/restore,
  eviction write-ahead log, deterministic fault injection, health
  signals;
- :mod:`repro.runtime` — streaming ingest runtime: long-lived shard
  worker processes with bounded queues, backpressure, live queries,
  and checkpointed crash recovery;
- :mod:`repro.fabric` — multi-vantage measurement fabric: PATH/TREE/
  FAT-TREE topologies, per-vantage CAESAR, query-time fusion
  (min / inverse-variance / weighted MLE);
- :mod:`repro.analysis` — error metrics and report tables;
- :mod:`repro.experiments` — one module per paper figure (3-8).
"""

from repro.analysis.metrics import evaluate
from repro.api import MeasurementResult, StreamMeasurementResult, measure
from repro.fabric import Fabric, FabricResult, FusionReport, parse_topology
from repro.runtime.client import RuntimeResult, StreamingRuntime
from repro.baselines.case import Case, CaseConfig
from repro.baselines.rcs import RCS, RCSConfig
from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.core.planner import Plan, plan
from repro.core.scheme import MeasurementScheme, run_scheme
from repro.errors import (
    CapacityError,
    ConfigError,
    QueryError,
    ReproError,
    TraceFormatError,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import EvictionTrace
from repro.resilience import (
    Checkpoint,
    FaultPlan,
    HealthSnapshot,
    WriteAheadLog,
    health_of,
    recover,
)
from repro.traffic.trace import Trace, default_paper_trace

__version__ = "1.0.0"

__all__ = [
    "Caesar",
    "CaesarConfig",
    "Case",
    "CaseConfig",
    "RCS",
    "RCSConfig",
    "Trace",
    "default_paper_trace",
    "evaluate",
    "measure",
    "MeasurementResult",
    "StreamMeasurementResult",
    "StreamingRuntime",
    "RuntimeResult",
    "Fabric",
    "FabricResult",
    "FusionReport",
    "parse_topology",
    "MeasurementScheme",
    "MetricsRegistry",
    "EvictionTrace",
    "Checkpoint",
    "FaultPlan",
    "HealthSnapshot",
    "WriteAheadLog",
    "health_of",
    "recover",
    "run_scheme",
    "plan",
    "Plan",
    "ReproError",
    "ConfigError",
    "CapacityError",
    "QueryError",
    "TraceFormatError",
    "__version__",
]
