"""Degraded-mode health signals for cache-assisted schemes.

A measurement that silently lost mass is worse than one that failed: the
estimates look plausible and are wrong. This module condenses the fault
and saturation accounting scattered across a scheme — counter
saturation, injector loss/duplication, cache wipes, checkpoint lag —
into one :class:`HealthSnapshot` with a three-level status, and mirrors
it into the PR-2 :class:`~repro.obs.registry.MetricsRegistry` as
``<prefix>.health.*`` gauges so operators see degradation without
querying a single flow.

Status policy (documented in docs/resilience.md):

- ``critical`` — mass was irrecoverably clipped (counter saturation) or
  more than :data:`CRITICAL_LOSS_FRACTION` of the recorded mass is
  known lost: estimates are biased beyond the compensation's reach.
- ``degraded`` — some fault accounting is non-zero, or the saturation
  watermark is above :data:`WATERMARK_DEGRADED` (one more heavy epoch
  may clip): estimates are compensated but the run should be flagged.
- ``ok`` — nothing lost, nothing close to clipping.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING

from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.caesar import Caesar

#: Fraction of recorded mass known-lost beyond which status is critical.
CRITICAL_LOSS_FRACTION = 0.05

#: Saturation watermark (max counter / capacity) that flags degradation.
WATERMARK_DEGRADED = 0.9


@dataclass(frozen=True)
class HealthSnapshot:
    """One scheme's health at a point in time (all counts cumulative)."""

    #: ``"ok"``, ``"degraded"``, or ``"critical"``.
    status: str
    #: Largest counter value as a fraction of counter capacity.
    saturation_watermark: float
    #: Counters sitting exactly at the capacity ceiling.
    saturated_counters: int
    #: Mass clipped by saturation (irrecoverable).
    saturated_mass: int
    #: Mass that left the cache but never landed (drops + wipes + stuck).
    lost_eviction_mass: int
    #: Mass landed more than once (duplicated transfers).
    duplicated_mass: int
    #: Counter bit flips injected so far.
    bitflip_events: int
    #: Cache wipes executed so far.
    cache_wipes: int
    #: Mass recorded since the last checkpoint (exposure to a crash).
    checkpoint_lag: int
    #: Mass seen on the wire.
    recorded_mass: int
    #: Mass the estimators de-noise with after compensation.
    effective_mass: int

    @property
    def healthy(self) -> bool:
        """True when the status is ``"ok"``."""
        return self.status == "ok"

    def to_dict(self) -> dict:
        """Plain-dict form (reports, JSON)."""
        return asdict(self)


def health_of(scheme: "Caesar") -> HealthSnapshot:
    """Compute the current :class:`HealthSnapshot` of a scheme.

    Works for any scheme exposing ``counters`` (a
    :class:`~repro.sram.BankedCounterArray`), ``recorded_mass``, and
    optionally ``_injector`` / ``effective_mass`` / ``checkpoint_lag``
    — i.e. :class:`Caesar` and the fault-aware baselines.
    """
    counters = scheme.counters
    injector = getattr(scheme, "_injector", None)
    recorded = int(scheme.recorded_mass)
    effective = int(getattr(scheme, "effective_mass", recorded))
    watermark = (
        int(counters.values.max()) / counters.counter_capacity
        if counters.total_counters
        else 0.0
    )
    lost = injector.lost_mass if injector is not None else counters.stuck_lost_mass
    duplicated = injector.duplicated_mass if injector is not None else 0
    flips = injector.bitflip_events if injector is not None else 0
    wipes = injector.wiped_entries if injector is not None else 0

    if counters.saturated_mass > 0 or (recorded and lost / recorded > CRITICAL_LOSS_FRACTION):
        status = "critical"
    elif lost or duplicated or flips or wipes or watermark > WATERMARK_DEGRADED:
        status = "degraded"
    else:
        status = "ok"

    return HealthSnapshot(
        status=status,
        saturation_watermark=watermark,
        saturated_counters=counters.saturated_counters,
        saturated_mass=counters.saturated_mass,
        lost_eviction_mass=lost,
        duplicated_mass=duplicated,
        bitflip_events=flips,
        cache_wipes=int(getattr(injector, "_wipes_done", 0)) if injector else 0,
        checkpoint_lag=int(getattr(scheme, "checkpoint_lag", 0)),
        recorded_mass=recorded,
        effective_mass=effective,
    )


#: Numeric encoding of the status for the gauge registry.
_STATUS_LEVELS = {"ok": 0, "degraded": 1, "critical": 2}


def observe_health(
    registry: MetricsRegistry, scheme: "Caesar", prefix: str = "caesar"
) -> HealthSnapshot | None:
    """Publish a scheme's health as ``<prefix>.health.*`` gauges.

    Returns the snapshot, or ``None`` under the null registry (nothing
    is even computed — finalize stays zero-overhead with metrics off).
    """
    if not registry.enabled:
        return None
    snap = health_of(scheme)
    gauge = registry.gauge
    gauge(f"{prefix}.health.status_level").set(_STATUS_LEVELS[snap.status])
    gauge(f"{prefix}.health.saturation_watermark").set(snap.saturation_watermark)
    gauge(f"{prefix}.health.saturated_counters").set(snap.saturated_counters)
    gauge(f"{prefix}.health.saturated_mass").set(snap.saturated_mass)
    gauge(f"{prefix}.health.lost_eviction_mass").set(snap.lost_eviction_mass)
    gauge(f"{prefix}.health.duplicated_mass").set(snap.duplicated_mass)
    gauge(f"{prefix}.health.bitflip_events").set(snap.bitflip_events)
    gauge(f"{prefix}.health.cache_wipes").set(snap.cache_wipes)
    gauge(f"{prefix}.health.checkpoint_lag").set(snap.checkpoint_lag)
    gauge(f"{prefix}.health.effective_mass").set(snap.effective_mass)
    return snap
