"""Asynchronous + incremental checkpointing.

PRs 3–6 made checkpoints crash-consistent and cheap-ish (zlib level 1),
but the worker still paid the whole encode+compress+fsync bill inside
its ingest loop — a periodic full stop that grows with counter-bank
size. This module splits the work the way training-stack checkpointers
do:

* **Snapshot** (synchronous, fast): ``Checkpoint.capture`` already
  copies every array out of the live scheme — a memcpy-shaped cost.
  That is the *only* part the ingest loop waits for.
* **Write** (asynchronous): digest, compress, fsync, and atomic-rename
  happen on a :class:`CheckpointWriter` background thread. One write in
  flight at a time; the next capture back-pressures until the previous
  write lands, so a slow disk degrades smoothly to today's synchronous
  behavior instead of queueing unbounded copies of the SRAM.
* **Delta** (incremental): :class:`~repro.sram.counterarray.
  BankedCounterArray` tracks dirty 256-counter stripes on its update
  paths; when few stripes changed since the previous checkpoint, only
  those stripes are written (format v3: base digest + changed-stripe
  payloads). :func:`load_checkpoint` composes base + deltas back to the
  bit-identical full state, verifying every link's digest. Dense update
  patterns fall back to full checkpoints automatically, and chains are
  capped so recovery cost stays bounded.

Crash safety is inherited unchanged: writes go to ``.tmp_``-prefixed
siblings and are published with
:func:`~repro.resilience.atomic.atomic_publish`, so a SIGKILL mid-write
leaves exactly the torn-``.tmp_`` leftover today's sweeps already
collect, and a delta whose base was never published fails its digest
check and is skipped like any other unreadable checkpoint.

The digest reported for a delta checkpoint is the digest of the
*composed full state* — identical to what a full checkpoint of the same
moment would report — so digest-based contracts (supervisor messages,
``--verify-offline``) are checkpoint-mode-invariant.
"""

from __future__ import annotations

import json
import threading
import time
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import ConfigError, TraceFormatError
from repro.resilience.atomic import atomic_publish
from repro.resilience.checkpoint import _ARRAY_MEMBERS, Checkpoint, write_npz

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.caesar import Caesar

#: Incremental checkpoint format: base digest + changed-stripe payloads.
DELTA_FORMAT_VERSION = 3

#: Recovery refuses to follow longer chains (corrupt prev_name loops).
MAX_CHAIN_DEPTH = 64

#: Checkpoint modes a runtime/worker accepts.
CHECKPOINT_MODES = ("sync", "async", "delta")


# -- delta format -------------------------------------------------------------


def save_delta(
    ckpt: Checkpoint,
    path: str | Path,
    *,
    prev_name: str,
    prev_digest: str,
    stripe_ids: np.ndarray,
    stripe_size: int,
    level: int = 1,
    digest: str | None = None,
) -> Path:
    """Write ``ckpt`` as a v3 delta over the checkpoint file ``prev_name``.

    Every member except ``counter_values`` is stored whole (cache, memo,
    RNG, stats — all small); the counter banks, which dominate the
    bytes, are stored as ``(stripe_ids, concatenated stripe payloads)``.
    The stored ``digest`` is the composed-full-state digest, so loaders
    and digest-based contracts cannot tell a delta from a full
    checkpoint once recovered.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    values = ckpt.arrays["counter_values"]
    n = len(values)
    stripe_ids = np.asarray(stripe_ids, dtype=np.int64)
    starts = stripe_ids * stripe_size
    pieces = [values[a : min(a + stripe_size, n)] for a in starts.tolist()]
    payload = (
        np.concatenate(pieces) if pieces else np.empty(0, dtype=values.dtype)
    )
    members = {
        name: ckpt.arrays[name]
        for name in _ARRAY_MEMBERS
        if name != "counter_values"
    }
    members["delta_stripe_ids"] = stripe_ids
    members["delta_payload"] = payload
    members["delta_json"] = np.array(
        json.dumps(
            {
                "format_version": DELTA_FORMAT_VERSION,
                "prev_name": Path(prev_name).name,
                "prev_digest": prev_digest,
                "stripe_size": int(stripe_size),
                "num_counters": n,
            },
            sort_keys=True,
        )
    )
    members["config_json"] = np.array(ckpt.config_json)
    members["state_json"] = np.array(ckpt.state_json)
    members["digest"] = np.array(digest if digest is not None else ckpt.digest)
    write_npz(path, members, level=level)
    return path


def load_checkpoint(path: str | Path) -> Checkpoint:
    """Load a checkpoint file, full or delta, verifying the whole chain.

    A delta recursively loads its base (resolved as a sibling file),
    verifies the base's digest matches the recorded ``prev_digest``,
    overlays the changed stripes, and verifies the composed state
    against the stored full digest. Any damage anywhere in the chain —
    a missing base, a torn member, a digest mismatch — raises
    :class:`TraceFormatError`, so callers' fall-back-to-older-checkpoint
    loops treat broken chains exactly like torn full checkpoints.
    """
    return _load_chain(Path(path), 0)


def _load_chain(path: Path, depth: int) -> Checkpoint:
    if depth > MAX_CHAIN_DEPTH:
        raise TraceFormatError(
            f"checkpoint delta chain at {path} exceeds {MAX_CHAIN_DEPTH} links"
        )
    try:
        with np.load(path, allow_pickle=False) as data:
            if "delta_json" not in data.files:
                is_delta = False
            else:
                is_delta = True
                arrays = {
                    name: data[name]
                    for name in _ARRAY_MEMBERS
                    if name != "counter_values"
                }
                stripe_ids = data["delta_stripe_ids"]
                payload = data["delta_payload"]
                delta_meta = json.loads(str(data["delta_json"]))
                config_json = str(data["config_json"])
                state_json = str(data["state_json"])
                stored_digest = str(data["digest"])
    except (KeyError, OSError, ValueError, EOFError, zipfile.BadZipFile) as exc:
        raise TraceFormatError(f"cannot read checkpoint {path}: {exc}") from exc
    if not is_delta:
        return Checkpoint.load(path)
    if delta_meta.get("format_version") != DELTA_FORMAT_VERSION:
        raise TraceFormatError(
            f"delta checkpoint format {delta_meta.get('format_version')!r} "
            f"is not version {DELTA_FORMAT_VERSION}"
        )
    base = _load_chain(path.parent / Path(delta_meta["prev_name"]).name, depth + 1)
    if base.digest != delta_meta["prev_digest"]:
        raise TraceFormatError(
            f"delta checkpoint {path} does not chain to its base "
            f"{delta_meta['prev_name']} (base digest mismatch)"
        )
    values = np.array(base.arrays["counter_values"], copy=True)
    n = int(delta_meta["num_counters"])
    if len(values) != n:
        raise TraceFormatError(
            f"delta checkpoint {path} describes {n} counters, "
            f"base holds {len(values)}"
        )
    stripe_size = int(delta_meta["stripe_size"])
    ids = np.asarray(stripe_ids, dtype=np.int64)
    if len(ids) and (
        ids.min() < 0 or ids.max() * stripe_size >= n or stripe_size < 1
    ):
        raise TraceFormatError(f"delta checkpoint {path} has stripe ids out of range")
    cursor = 0
    for s in ids.tolist():
        a = s * stripe_size
        b = min(a + stripe_size, n)
        values[a:b] = payload[cursor : cursor + (b - a)]
        cursor += b - a
    if cursor != len(payload):
        raise TraceFormatError(
            f"delta checkpoint {path} payload length mismatch "
            f"({len(payload)} stored, {cursor} consumed)"
        )
    arrays = dict(arrays)
    arrays["counter_values"] = values
    ckpt = Checkpoint(arrays, config_json, state_json)
    if ckpt.digest != stored_digest:
        raise TraceFormatError(
            f"delta checkpoint {path} failed its integrity check "
            "(composed digest mismatch)"
        )
    return ckpt


# -- the background writer ----------------------------------------------------


@dataclass
class CheckpointDone:
    """Completion record of one background checkpoint write."""

    seq: int
    digest: str
    path: Path
    kind: str  # "full" | "delta"
    info: dict = field(default_factory=dict)


class CheckpointWriter:
    """One background thread that runs checkpoint write jobs.

    Single producer (the worker main thread), one job in flight at a
    time. :meth:`submit` requires the writer to be idle — callers
    back-pressure through :meth:`wait` first, which is where the ingest
    stall (if any) is actually paid and measured. A job that raises
    stores its exception, re-raised to the producer at the next
    :meth:`poll`/:meth:`wait` — a failed durability write must kill the
    worker loudly, not rot silently.
    """

    def __init__(self, name: str = "ckpt-writer") -> None:
        self._lock = threading.Lock()
        self._job: Callable[[], CheckpointDone] | None = None
        self._results: list[CheckpointDone] = []
        self._error: BaseException | None = None
        self._has_job = threading.Event()
        self._idle = threading.Event()
        self._idle.set()
        self._closed = False
        self._thread = threading.Thread(target=self._run, name=name, daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while True:
            self._has_job.wait()
            with self._lock:
                job = self._job
                self._job = None
                self._has_job.clear()
                closed = self._closed
            if job is None:
                if closed:
                    self._idle.set()
                    return
                continue
            try:
                result = job()
            except BaseException as exc:  # noqa: BLE001 - re-raised to producer
                with self._lock:
                    self._error = exc
            else:
                with self._lock:
                    self._results.append(result)
            self._idle.set()

    @property
    def idle(self) -> bool:
        return self._idle.is_set()

    def submit(self, job: Callable[[], CheckpointDone]) -> None:
        if not self._idle.is_set():
            raise RuntimeError("previous checkpoint write still in flight")
        with self._lock:
            if self._closed:
                raise RuntimeError("checkpoint writer is closed")
            self._idle.clear()
            self._job = job
            self._has_job.set()

    def poll(self) -> list[CheckpointDone]:
        """Collect finished writes without blocking; re-raise a failure."""
        with self._lock:
            results, self._results = self._results, []
            error, self._error = self._error, None
        if error is not None:
            raise error
        return results

    def wait(
        self, tick: Callable[[], None] | None = None, poll_interval: float = 0.05
    ) -> list[CheckpointDone]:
        """Block until idle (calling ``tick`` while waiting), then poll.

        ``tick`` lets the worker keep heartbeating through a long wait —
        a back-pressured write is the one legitimately silent span the
        watchdog must not mistake for a hang.
        """
        if tick is None:
            self._idle.wait()
        else:
            while not self._idle.wait(poll_interval):
                tick()
        return self.poll()

    def close(self, tick: Callable[[], None] | None = None) -> list[CheckpointDone]:
        """Finish the in-flight write (if any), stop the thread, poll."""
        results = self.wait(tick)
        with self._lock:
            if self._closed:
                return results
            self._closed = True
            self._has_job.set()
        self._thread.join(timeout=30)
        return results + self.poll()


# -- per-shard orchestration --------------------------------------------------


class ShardCheckpointer:
    """Drives async (and optionally incremental) checkpoints for one shard.

    The worker calls :meth:`wait_idle` (back-pressure + completion
    collection), then :meth:`capture` inside its compute slot — the
    synchronous cost is ``Checkpoint.capture`` plus, in delta mode, a
    dirty-bitmap read. Everything else runs on the writer thread.

    Delta policy: a capture is written incrementally only when the mode
    is ``delta``, a previous checkpoint exists *in this incarnation*
    (the first checkpoint after any boot is always full, so recovery
    never chains into a pre-crash incarnation's bookkeeping), the chain
    since the last full is shorter than ``max_chain``, and the dirty
    fraction is at most ``full_above``. Dense workloads therefore
    degrade to plain async-full checkpoints — reported honestly via
    ``delta_fraction`` — instead of writing deltas bigger than fulls.
    """

    def __init__(
        self,
        mode: str = "async",
        *,
        level: int = 1,
        slow_write: float = 0.0,
        full_above: float = 0.5,
        max_chain: int = 8,
    ) -> None:
        if mode not in ("async", "delta"):
            raise ConfigError(f"checkpoint mode must be async or delta, got {mode!r}")
        self.mode = mode
        self.level = int(level)
        self.slow_write = float(slow_write)
        self.full_above = float(full_above)
        self.max_chain = int(max_chain)
        self.writer = CheckpointWriter()
        self._prev_name: str | None = None
        self._prev_digest: str | None = None
        self._chain = 0

    def _absorb(self, done: list[CheckpointDone]) -> list[CheckpointDone]:
        for d in done:
            self._prev_name = d.path.name
            self._prev_digest = d.digest
            self._chain = self._chain + 1 if d.kind == "delta" else 0
        return done

    def poll(self) -> list[CheckpointDone]:
        """Non-blocking completion collection (worker loop top)."""
        return self._absorb(self.writer.poll())

    def wait_idle(
        self, tick: Callable[[], None] | None = None
    ) -> tuple[list[CheckpointDone], float]:
        """Block until no write is in flight.

        Returns ``(completions, stall_seconds)`` — the stall is the
        back-pressure actually charged to the ingest path, attributed to
        the write that caused it (the first completion's info).
        """
        t0 = time.perf_counter()
        done = self._absorb(self.writer.wait(tick))
        stall = time.perf_counter() - t0
        if done:
            done[0].info["stall_seconds"] = done[0].info.get("stall_seconds", 0.0) + stall
        return done, stall

    def capture(self, scheme: "Caesar", seq: int, *, full: Path, delta: Path) -> None:
        """Snapshot ``scheme`` now; write it durably in the background.

        The writer must be idle (call :meth:`wait_idle` first). ``full``
        and ``delta`` are the two candidate target paths; which one is
        written is decided here from the dirty fraction and chain state.
        """
        t0 = time.perf_counter()
        ckpt = scheme.checkpoint()
        counters = scheme.counters
        dirty_fraction = counters.dirty_fraction()
        use_delta = (
            self.mode == "delta"
            and self._prev_name is not None
            and self._chain < self.max_chain
            and dirty_fraction <= self.full_above
        )
        stripe_ids = counters.dirty_stripes() if use_delta else None
        if self.mode == "delta":
            # This capture is the new baseline for the next delta
            # decision, whether it lands as a delta or a full.
            counters.clear_dirty()
        snapshot_seconds = time.perf_counter() - t0
        target = delta if use_delta else full
        kind = "delta" if use_delta else "full"
        prev_name, prev_digest = self._prev_name, self._prev_digest
        stripe_size = counters.stripe_size
        level, slow = self.level, self.slow_write

        def job() -> CheckpointDone:
            t1 = time.perf_counter()
            digest = ckpt.digest
            tmp = target.parent / f".tmp_{target.name}"
            if use_delta:
                save_delta(
                    ckpt,
                    tmp,
                    prev_name=prev_name,
                    prev_digest=prev_digest,
                    stripe_ids=stripe_ids,
                    stripe_size=stripe_size,
                    level=level,
                    digest=digest,
                )
            else:
                ckpt.save(tmp, level=level)
            if slow > 0:
                # Injected fault (slow_ckpt_write): stretch the window
                # between the tmp write and publication, so chaos tests
                # can reliably SIGKILL mid-write and exercise the torn-
                # .tmp_ sweep path.
                time.sleep(slow)
            atomic_publish(tmp, target)
            return CheckpointDone(
                seq=seq,
                digest=digest,
                path=target,
                kind=kind,
                info={
                    "kind": kind,
                    "mode": self.mode,
                    "snapshot_seconds": snapshot_seconds,
                    "write_seconds": time.perf_counter() - t1,
                    "bytes": target.stat().st_size,
                    "delta_fraction": dirty_fraction if use_delta else 1.0,
                    "stall_seconds": 0.0,
                },
            )

        self.writer.submit(job)

    def close(self, tick: Callable[[], None] | None = None) -> list[CheckpointDone]:
        """Join the writer, finishing any in-flight write durably."""
        return self._absorb(self.writer.close(tick))
