"""Write-ahead log of eviction chunks (crash recovery between checkpoints).

A checkpoint captures a scheme at one chunk boundary; the WAL covers the
gap to the *next* boundary. Every chunk drained from the cache is
appended (with a CRC) before it is landed on the SRAM — and before the
fault injector sees it, so even a chunk the injector drops is in the
log. Recovery is checkpoint + replay: restore the last checkpoint, then
re-drain every logged chunk with a sequence number at or past the
checkpoint's ``wal_seq``. Because the checkpoint restores the split
RNG's exact state and chunks replay in log order, the recovered counters
are bit-identical to an uninterrupted run (see docs/resilience.md).

The on-disk format is deliberately boring: a magic header, then
self-delimiting records ``<type u8><seq u32><rows u32><crc u32>``
followed by the raw ``ids``/``values``/``reasons`` bytes. A torn final
record — the normal shape of a crash mid-write — is detected and
silently ignored; a CRC mismatch on a *complete* record is corruption
and raises :class:`~repro.errors.TraceFormatError`.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import IO, TYPE_CHECKING, Iterator

import numpy as np
import numpy.typing as npt

from repro.errors import TraceFormatError
from repro.resilience.atomic import fsync_dir

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.caesar import Caesar

#: File magic: identifies a repro WAL and its format version.
WAL_MAGIC = b"RPRWAL01"

#: Record types.
CHUNK_RECORD = 0
EPOCH_RECORD = 1

_HEADER = struct.Struct("<BII I")  # type, seq, rows, crc


@dataclass(frozen=True)
class WalRecord:
    """One decoded WAL record (a drained chunk or an epoch marker)."""

    kind: int
    seq: int
    ids: npt.NDArray[np.uint64]
    values: npt.NDArray[np.int64]
    reasons: npt.NDArray[np.uint8]

    @property
    def mass(self) -> int:
        """Counted units carried by this record."""
        return int(self.values.sum())


class WriteAheadLog:
    """Appendable, CRC-protected log of eviction chunks.

    One log belongs to one measurement run; sequence numbers are
    monotonically increasing across chunk and epoch records so a
    checkpoint can name the exact replay start point.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        new = not self.path.exists() or self.path.stat().st_size == 0
        self._fh: IO[bytes] = open(self.path, "ab")
        self.records_written = 0
        self.next_seq = 0
        if new:
            # The magic must be durable before any record claims to be:
            # a power cut that keeps records but loses the file creation
            # would otherwise leave an unreadable log.
            self._fh.write(WAL_MAGIC)
            self._fh.flush()
            os.fsync(self._fh.fileno())
            fsync_dir(self.path.parent)
        else:
            # Re-opening an existing log: continue its sequence.
            last = -1
            for record in self.iter_records(self.path):
                last = record.seq
            self.next_seq = last + 1

    # -- writing -----------------------------------------------------------

    def _write(
        self,
        kind: int,
        ids: npt.NDArray[np.uint64],
        values: npt.NDArray[np.int64],
        reasons: npt.NDArray[np.uint8],
    ) -> int:
        seq = self.next_seq
        payload = (
            np.ascontiguousarray(ids, dtype=np.uint64).tobytes()
            + np.ascontiguousarray(values, dtype=np.int64).tobytes()
            + np.ascontiguousarray(reasons, dtype=np.uint8).tobytes()
        )
        crc = zlib.crc32(payload)
        self._fh.write(_HEADER.pack(kind, seq, len(ids), crc))
        self._fh.write(payload)
        self.next_seq += 1
        self.records_written += 1
        return seq

    def append_chunk(
        self,
        ids: npt.NDArray[np.uint64],
        values: npt.NDArray[np.int64],
        reasons: npt.NDArray[np.uint8],
    ) -> int:
        """Log one drained chunk; returns its sequence number."""
        return self._write(CHUNK_RECORD, ids, values, reasons)

    def append_event(self, flow_id: int, value: int, code: int) -> int:
        """Log one scalar eviction as a 1-row chunk (scalar engine)."""
        return self._write(
            CHUNK_RECORD,
            np.array([flow_id], dtype=np.uint64),
            np.array([value], dtype=np.int64),
            np.array([code], dtype=np.uint8),
        )

    def begin_epoch(self, epoch: int) -> int:
        """Log an epoch boundary (``reset()``); replay stops crossing it.

        Carries a full 1-row payload (epoch number in the ids column,
        zero value/reason) so every record decodes with one rule.
        """
        return self._write(
            EPOCH_RECORD,
            np.array([epoch], dtype=np.uint64),
            np.zeros(1, dtype=np.int64),
            np.zeros(1, dtype=np.uint8),
        )

    def flush(self) -> None:
        """Push buffered records to the OS (called at checkpoint time)."""
        self._fh.flush()

    def sync(self) -> None:
        """:meth:`flush` + fsync — records survive a power cut, not just
        a process crash (quarantine evidence writers need this)."""
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        """Flush and close the underlying file."""
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- repair ------------------------------------------------------------

    @staticmethod
    def truncate_torn_tail(path: str | Path) -> int:
        """Cut a torn final record off the log; returns bytes removed.

        A crash mid-append leaves a partial record at the tail. Readers
        already ignore it, but *re-opening the log for append* would
        write the next record after the torn bytes, desynchronizing
        every later read. Long-lived writers (the streaming runtime's
        shard workers) therefore truncate before appending again. A
        complete-but-corrupt record still raises
        :class:`TraceFormatError` — that is damage, not a torn write.
        """
        path = Path(path)
        data = path.read_bytes()
        if len(data) < len(WAL_MAGIC) or data[: len(WAL_MAGIC)] != WAL_MAGIC:
            raise TraceFormatError(f"{path} is not a repro write-ahead log")
        pos = len(WAL_MAGIC)
        valid_end = pos
        while pos + _HEADER.size <= len(data):
            kind, seq, rows, crc = _HEADER.unpack_from(data, pos)
            payload_len = rows * (8 + 8 + 1)
            if pos + _HEADER.size + payload_len > len(data):
                break  # torn payload
            payload = data[pos + _HEADER.size : pos + _HEADER.size + payload_len]
            if zlib.crc32(payload) != crc:
                raise TraceFormatError(
                    f"WAL record seq={seq} failed its CRC check ({path})"
                )
            pos += _HEADER.size + payload_len
            valid_end = pos
        removed = len(data) - valid_end
        if removed:
            with open(path, "r+b") as fh:
                fh.truncate(valid_end)
        return removed

    # -- reading -----------------------------------------------------------

    @staticmethod
    def iter_records(path: str | Path, start_seq: int = 0) -> Iterator[WalRecord]:
        """Yield complete records with ``seq >= start_seq``.

        A truncated final record (torn write at crash time) ends
        iteration silently; a corrupt complete record raises
        :class:`TraceFormatError`.
        """
        data = Path(path).read_bytes()
        if len(data) < len(WAL_MAGIC) or data[: len(WAL_MAGIC)] != WAL_MAGIC:
            raise TraceFormatError(f"{path} is not a repro write-ahead log")
        pos = len(WAL_MAGIC)
        while pos < len(data):
            if pos + _HEADER.size > len(data):
                return  # torn header: crash mid-write
            kind, seq, rows, crc = _HEADER.unpack_from(data, pos)
            pos += _HEADER.size
            payload_len = rows * (8 + 8 + 1)
            if pos + payload_len > len(data):
                return  # torn payload: crash mid-write
            payload = data[pos : pos + payload_len]
            pos += payload_len
            if zlib.crc32(payload) != crc:
                raise TraceFormatError(
                    f"WAL record seq={seq} failed its CRC check ({path})"
                )
            if kind not in (CHUNK_RECORD, EPOCH_RECORD):
                raise TraceFormatError(f"WAL record seq={seq} has unknown type {kind}")
            if seq < start_seq:
                continue
            ids = np.frombuffer(payload, dtype=np.uint64, count=rows)
            values = np.frombuffer(payload, dtype=np.int64, count=rows, offset=rows * 8)
            reasons = np.frombuffer(payload, dtype=np.uint8, count=rows, offset=rows * 16)
            yield WalRecord(kind, seq, ids, values, reasons)


@dataclass(frozen=True)
class RecoveryResult:
    """Outcome of :func:`recover`."""

    caesar: "Caesar"
    chunks_replayed: int
    mass_replayed: int


def recover(
    checkpoint_source: str | Path | object,
    wal_path: str | Path,
    *,
    registry: object | None = None,
) -> RecoveryResult:
    """Checkpoint + WAL → the scheme as it stood at the crash.

    Restores the checkpoint (path or :class:`~repro.resilience.checkpoint.
    Checkpoint`), then replays every logged chunk from the checkpoint's
    ``wal_seq`` onward straight through the resumed instance's drain —
    same chunks, same order, same restored split-RNG state — so the
    recovered counters equal the pre-crash counters bit for bit.

    Cache *contents* at crash time are gone (they never left the chip),
    which is exactly the loss a real crash inflicts — so the
    checkpoint-time residents are dropped before replay. Keeping them
    would double-count every entry that drained again between the
    checkpoint and the crash (its drained value includes the resident
    part). Mass accounting follows: the recovered ``recorded_mass`` is
    the mass that durably landed in the SRAM, so
    ``recorded_mass == counters.total_mass`` holds after recovery
    (absent saturation).
    """
    from repro.resilience.checkpoint import Checkpoint

    ckpt = (
        checkpoint_source
        if isinstance(checkpoint_source, Checkpoint)
        else Checkpoint.load(checkpoint_source)
    )
    caesar = ckpt.restore(registry=registry)
    _, resident = caesar.cache.wipe()
    caesar._mass_seen -= resident
    start_seq = int(ckpt.meta["wal_seq"])
    chunks = 0
    mass = 0
    for record in WriteAheadLog.iter_records(wal_path, start_seq=start_seq):
        if record.kind == EPOCH_RECORD:
            break  # records past an epoch boundary belong to the next epoch
        caesar._drain(record.ids, record.values, record.reasons)
        caesar.cache.stats.record_batch(record.values, record.reasons, record.ids)
        chunks += 1
        mass += record.mass
    caesar._mass_seen += mass
    return RecoveryResult(caesar=caesar, chunks_replayed=chunks, mass_replayed=mass)
