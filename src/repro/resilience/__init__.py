"""Resilience subsystem: checkpoint/restore, fault injection, health.

Three cooperating layers, documented in docs/resilience.md:

- :mod:`repro.resilience.checkpoint` — crash-consistent snapshots of a
  full CAESAR instance, restorable bit-identically;
- :mod:`repro.resilience.wal` — a write-ahead log of eviction chunks
  covering the window between checkpoints, plus checkpoint+replay
  recovery;
- :mod:`repro.resilience.faults` — seeded, deterministic fault
  injection on the cache → split → SRAM hot path;
- :mod:`repro.resilience.health` — degraded-mode health signals over
  the fault/saturation accounting, exported via the metrics registry.
"""

from repro.resilience.checkpoint import CHECKPOINT_FORMAT_VERSION, Checkpoint
from repro.resilience.faults import FaultInjector, FaultPlan, parse_fault_spec
from repro.resilience.health import HealthSnapshot, health_of, observe_health
from repro.resilience.wal import RecoveryResult, WalRecord, WriteAheadLog, recover

__all__ = [
    "CHECKPOINT_FORMAT_VERSION",
    "Checkpoint",
    "FaultInjector",
    "FaultPlan",
    "HealthSnapshot",
    "RecoveryResult",
    "WalRecord",
    "WriteAheadLog",
    "health_of",
    "observe_health",
    "parse_fault_spec",
    "recover",
]
