"""Durable atomic file publication.

``os.replace`` alone gives *atomicity* (readers see the old file or the
new one, never a torn hybrid) but not *durability*: on ext4 and friends
the rename lives in the parent directory's metadata, and neither the
freshly written data blocks nor that directory entry are guaranteed on
stable storage until explicitly fsynced. A power cut after rename can
therefore resurface the old file — or worse, a zero-length new one.

Every writer in the resilience layer (checkpoints, WALs, quarantine
evidence) publishes through :func:`atomic_publish`: fsync the temp
file's data, rename it into place, fsync the parent directory. The
helpers are factored here so the discipline is written once.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = ["fsync_file", "fsync_dir", "atomic_publish"]


def fsync_file(path: str | Path) -> None:
    """fsync a file's contents to stable storage by path."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path: str | Path) -> None:
    """fsync a directory so renames/creates inside it are durable.

    Best-effort on platforms whose directories refuse O_RDONLY fsync
    (some network filesystems): the OSError is swallowed because the
    rename itself already happened and callers cannot act on it.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_publish(tmp: str | Path, target: str | Path) -> Path:
    """Durably publish ``tmp`` as ``target``.

    fsync the temp file, atomically rename it over the target, then
    fsync the parent directory so the rename survives a power cut. A
    crash at any point leaves either the old target or the complete new
    one, plus at most a ``tmp`` leftover for sweepers to collect.
    """
    tmp = Path(tmp)
    target = Path(target)
    fsync_file(tmp)
    os.replace(tmp, target)
    fsync_dir(target.parent)
    return target
