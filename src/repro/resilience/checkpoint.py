"""Crash-consistent checkpoint/restore for CAESAR instances.

The PR-0/PR-1 snapshot (:mod:`repro.sram.snapshot`) persists the SRAM
counters alone — enough to re-run the offline query phase, not enough
to *continue construction*: mid-measurement, flow state also lives in
the on-chip cache, the index memo, the split generator, the replacement
policy, and (on the batched/runs engines) a partially-filled eviction
buffer. The run-coalescing kernel holds no pending state of its own —
every ``process`` call replays its chunk's runs to completion — so the
captured members cover all three engines alike.
:class:`Checkpoint` captures every one of those, so a process killed at
any eviction-chunk boundary can :meth:`restore` and finish the stream
**bit-identically** to an uninterrupted run — same counters, same
statistics, same estimates, same generator states. The determinism
contract (and what it requires of each captured piece) is spelled out
in docs/resilience.md.

On disk a checkpoint is one compressed ``.npz``: raw arrays for bulk
state, two JSON documents for structured state, and a SHA-256 digest
over all of it. :meth:`load` recomputes the digest, so truncation,
bit-rot, or a tampered member fails loudly as
:class:`~repro.errors.TraceFormatError` instead of resuming from
corrupt state.
"""

from __future__ import annotations

import hashlib
import io
import json
import zipfile
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.core.config import CaesarConfig
from repro.errors import ConfigError, TraceFormatError
from repro.hashing.tabulation import TabulationIndexer
from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.caesar import Caesar
    from repro.resilience.wal import WriteAheadLog

#: Bumped on any incompatible change to the member layout.
#: v2: the digest normalizes the ``engine`` config field away, so
#: checkpoints of the same measurement state are digest-equal across
#: engines (the engine picks *how* state is computed, never *what*).
CHECKPOINT_FORMAT_VERSION = 2

#: Fixed member order for the digest (stability across numpy versions).
_ARRAY_MEMBERS = (
    "counter_values",
    "stuck_idx",
    "stuck_values",
    "cache_ids",
    "cache_counts",
    "memo_flows",
    "hist_values",
    "hist_counts",
    "pending_ids",
    "pending_values",
    "pending_reasons",
)

_STATS_FIELDS = (
    "accesses",
    "hits",
    "misses",
    "overflow_evictions",
    "replacement_evictions",
    "evicted_packets",
    "dumped_entries",
    "dumped_packets",
)


def write_npz(path: Path, members: dict[str, np.ndarray], level: int = 1) -> None:
    """Write ``members`` as a standard ``.npz`` at zlib ``level``.

    Written through :mod:`zipfile` directly because
    ``np.savez_compressed`` hardwires zlib level 6 — on DRAM-scale
    counter banks that costs ~50% more CPU than level 1 for a few
    percent of compressed size. ``level=0`` stores members uncompressed
    (``ZIP_STORED``), the cheapest option for the async write path
    where CPU spent compressing competes with ingest for cores.
    """
    if not 0 <= level <= 9:
        raise ConfigError(f"compression level must be in [0, 9], got {level}")
    method = zipfile.ZIP_STORED if level == 0 else zipfile.ZIP_DEFLATED
    with zipfile.ZipFile(path, "w", method, compresslevel=level or None) as zf:
        for name, arr in members.items():
            arr = np.asarray(arr)
            # NOT ascontiguousarray: it promotes the 0-d JSON/digest
            # members to 1-d (it guarantees ndim >= 1), which breaks
            # their round-trip as scalars.
            if arr.ndim and not arr.flags.c_contiguous:
                arr = np.ascontiguousarray(arr)
            buf = io.BytesIO()
            np.lib.format.write_array(buf, arr, allow_pickle=False)
            zf.writestr(f"{name}.npy", buf.getvalue())


def _digest(arrays: dict[str, np.ndarray], config_json: str, state_json: str) -> str:
    """SHA-256 over every member in fixed order (content integrity).

    Engine-invariant by construction: the three engines are
    bit-identical by contract, so two checkpoints capturing the same
    measurement state digest equal no matter which engine built them
    (tests/test_engine_equivalence.py relies on this). Presentation
    state that legitimately varies by engine is canonicalized — the
    ``engine`` config field is dropped, ``memo_flows`` is hashed
    sorted, and the eviction-value histogram is hashed key-sorted (the
    memo's first-seen order and the histogram dict's insertion order
    follow per-event order on the scalar engine but sorted-per-chunk
    order on the batched ones; neither affects any measurement
    output). The stored members themselves are untouched — a resumed
    run keeps its engine, memo order, and histogram order exactly.
    """
    config = json.loads(config_json)
    config.pop("engine", None)
    canonical = dict(arrays)
    canonical["memo_flows"] = np.sort(arrays["memo_flows"])
    hist_order = np.argsort(arrays["hist_values"], kind="stable")
    canonical["hist_values"] = arrays["hist_values"][hist_order]
    canonical["hist_counts"] = arrays["hist_counts"][hist_order]
    h = hashlib.sha256()
    for name in _ARRAY_MEMBERS:
        arr = canonical[name]
        h.update(name.encode())
        h.update(str(arr.dtype).encode())
        h.update(str(arr.shape).encode())
        h.update(np.ascontiguousarray(arr).tobytes())
    h.update(json.dumps(config, sort_keys=True).encode())
    h.update(state_json.encode())
    return h.hexdigest()


class Checkpoint:
    """A complete, self-verifying snapshot of one CAESAR instance.

    Create with :meth:`capture` (or ``caesar.checkpoint()``); persist
    with :meth:`save`; reload with :meth:`load`; rebuild the live
    instance with :meth:`restore` (or ``Caesar.resume``).
    """

    def __init__(
        self, arrays: dict[str, np.ndarray], config_json: str, state_json: str
    ) -> None:
        self.arrays = arrays
        self.config_json = config_json
        self.state_json = state_json
        self.meta = json.loads(state_json)

    # -- capture -----------------------------------------------------------

    @classmethod
    def capture(cls, caesar: "Caesar") -> "Checkpoint":
        """Snapshot a live instance (it keeps running; nothing is shared)."""
        counters = caesar.counters.export_state()
        cache = caesar.cache.export_state()
        stats = caesar.cache.stats
        hist = stats.eviction_value_counts
        n_pending = caesar._buffer.length
        empty_i64 = np.empty(0, dtype=np.int64)
        arrays = {
            "counter_values": counters["values"],
            "stuck_idx": (
                empty_i64 if counters["stuck_idx"] is None else counters["stuck_idx"]
            ),
            "stuck_values": (
                empty_i64
                if counters["stuck_values"] is None
                else counters["stuck_values"]
            ),
            "cache_ids": cache["ids"],
            "cache_counts": cache["counts"],
            "memo_flows": caesar.flows_seen(),
            "hist_values": np.array(list(hist.keys()), dtype=np.int64),
            "hist_counts": np.array(list(hist.values()), dtype=np.int64),
            "pending_ids": caesar._buffer.ids[:n_pending].copy(),
            "pending_values": caesar._buffer.values[:n_pending].copy(),
            "pending_reasons": caesar._buffer.reasons[:n_pending].copy(),
        }
        indexer = caesar.indexer
        state = {
            "format_version": CHECKPOINT_FORMAT_VERSION,
            "packets_seen": caesar._packets_seen,
            "mass_seen": caesar._mass_seen,
            "finalized": caesar._finalized,
            "last_checkpoint_mass": caesar._mass_seen,
            "epoch": caesar._epoch,
            "wal_seq": caesar._wal.next_seq if caesar._wal is not None else 0,
            "buffer_capacity": caesar._buffer.capacity,
            "saturated_mass": counters["saturated_mass"],
            "stuck_lost_mass": counters["stuck_lost_mass"],
            "policy": cache["policy"],
            "rng": caesar._rng.bit_generator.state,
            "stats": {f: getattr(stats, f) for f in _STATS_FIELDS},
            "indexer": {
                "kind": (
                    "tabulation"
                    if isinstance(indexer, TabulationIndexer)
                    else "banked"
                ),
                "seed": indexer.family.seed,
            },
            "fault": (
                caesar._injector.export_state()
                if caesar._injector is not None
                else None
            ),
        }
        config_json = json.dumps(
            {
                f: getattr(caesar.config, f)
                for f in caesar.config.__dataclass_fields__
            },
            sort_keys=True,
        )
        return cls(arrays, config_json, json.dumps(state, sort_keys=True))

    # -- restore -----------------------------------------------------------

    def restore(
        self,
        *,
        registry: MetricsRegistry | None = None,
        wal: "WriteAheadLog | None" = None,
    ) -> "Caesar":
        """Rebuild the live instance this checkpoint captured.

        The restored instance continues construction bit-identically to
        the original: every stateful piece — counters, cache contents
        and replacement order, split-RNG state, index-memo first-seen
        order, statistics, and the pending eviction chunk — is restored
        exactly. ``registry`` and ``wal`` are attachments of the new
        process, not part of the captured state.
        """
        from repro.core.caesar import Caesar
        from repro.resilience.faults import FaultPlan

        meta = self.meta
        if meta.get("format_version") != CHECKPOINT_FORMAT_VERSION:
            raise TraceFormatError(
                f"checkpoint format {meta.get('format_version')!r} is not "
                f"version {CHECKPOINT_FORMAT_VERSION}"
            )
        config = CaesarConfig(**json.loads(self.config_json))
        fault = meta["fault"]
        plan = FaultPlan.from_dict(fault["plan"]) if fault is not None else None
        caesar = Caesar(
            config,
            buffer_capacity=int(meta["buffer_capacity"]),
            registry=registry,
            fault_plan=plan,
            wal=wal,
        )
        if meta["indexer"]["kind"] == "tabulation":
            caesar.indexer = TabulationIndexer(
                config.k, config.bank_size, seed=int(meta["indexer"]["seed"])
            )
        stuck_idx = self.arrays["stuck_idx"]
        caesar.counters.restore_state(
            {
                "values": self.arrays["counter_values"],
                "saturated_mass": meta["saturated_mass"],
                "stuck_idx": None if len(stuck_idx) == 0 else stuck_idx,
                "stuck_values": self.arrays["stuck_values"],
                "stuck_lost_mass": meta["stuck_lost_mass"],
            }
        )
        if fault is not None:
            caesar._injector.restore_state(fault)
        caesar.cache.restore_state(
            {
                "ids": self.arrays["cache_ids"],
                "counts": self.arrays["cache_counts"],
                "policy": meta["policy"],
            }
        )
        caesar._rng.bit_generator.state = meta["rng"]
        flows = self.arrays["memo_flows"]
        if config.engine != "scalar":
            caesar._memo.preload(flows)
        elif len(flows):
            rows = caesar.indexer.indices(flows)
            caesar._index_memo = {
                int(f): rows[i] for i, f in enumerate(flows.tolist())
            }
        stats = caesar.cache.stats
        for f in _STATS_FIELDS:
            setattr(stats, f, int(meta["stats"][f]))
        stats.eviction_value_counts = dict(
            zip(
                self.arrays["hist_values"].tolist(),
                self.arrays["hist_counts"].tolist(),
            )
        )
        buf = caesar._buffer
        n_pending = len(self.arrays["pending_ids"])
        buf.ids[:n_pending] = self.arrays["pending_ids"]
        buf.values[:n_pending] = self.arrays["pending_values"]
        buf.reasons[:n_pending] = self.arrays["pending_reasons"]
        buf.length = n_pending
        caesar._packets_seen = int(meta["packets_seen"])
        caesar._mass_seen = int(meta["mass_seen"])
        caesar._finalized = bool(meta["finalized"])
        caesar._last_checkpoint_mass = int(meta["last_checkpoint_mass"])
        caesar._epoch = int(meta["epoch"])
        return caesar

    # -- persistence -------------------------------------------------------

    @property
    def digest(self) -> str:
        """SHA-256 content digest of this checkpoint."""
        return _digest(self.arrays, self.config_json, self.state_json)

    def save(self, path: str | Path, *, level: int = 1) -> Path:
        """Write the checkpoint (``.npz`` with digest) at zlib ``level``.

        The file is a standard ``.npz`` (``np.load``-compatible); see
        :func:`write_npz` for why it bypasses ``np.savez_compressed``
        and what ``level=0`` means. Checkpoint cadence sits on the
        runtime's critical path, so the default stays at the cheap
        level 1.
        """
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_suffix(path.suffix + ".npz")
        members = dict(self.arrays)
        members["config_json"] = np.array(self.config_json)
        members["state_json"] = np.array(self.state_json)
        members["digest"] = np.array(self.digest)
        write_npz(path, members, level=level)
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Checkpoint":
        """Read and *verify* a saved checkpoint.

        Any damage — truncation, bit-rot inside the zip members, a
        tampered array, missing members — raises
        :class:`TraceFormatError` rather than returning corrupt state.
        """
        try:
            with np.load(path, allow_pickle=False) as data:
                arrays = {name: data[name] for name in _ARRAY_MEMBERS}
                config_json = str(data["config_json"])
                state_json = str(data["state_json"])
                stored_digest = str(data["digest"])
        except (
            KeyError,
            OSError,
            ValueError,
            EOFError,
            zipfile.BadZipFile,
        ) as exc:
            raise TraceFormatError(f"cannot read checkpoint {path}: {exc}") from exc
        ckpt = cls(arrays, config_json, state_json)
        if ckpt.digest != stored_digest:
            raise TraceFormatError(
                f"checkpoint {path} failed its integrity check "
                "(digest mismatch: truncated, bit-rotted, or tampered)"
            )
        return ckpt

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Checkpoint(mass={self.meta['mass_seen']}, "
            f"epoch={self.meta['epoch']}, wal_seq={self.meta['wal_seq']})"
        )
