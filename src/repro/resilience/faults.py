"""Deterministic fault injection for the cache → split → SRAM seam.

PriMe-style SRAM+DRAM splits (PAPERS.md) make the eviction transfer the
fragile link of a cache-assisted scheme: a dropped chunk, a duplicated
DMA, a flipped counter bit, or a wiped on-chip table all bias every
colliding flow's estimate *silently*. :class:`FaultPlan` describes such
a fault workload as data — seeded, so a given plan replays the exact
same fault sequence on the exact same stream — and
:class:`FaultInjector` executes it at the chunk boundaries of the
eviction pipeline without perturbing the no-fault path (a disabled plan
builds no injector at all, and every fault draw is conditional on its
fault type being enabled, so enabling one fault never shifts another's
randomness).

The injector keeps full accounting (dropped / duplicated / wiped /
stuck-rejected mass, bit-flip deltas). Schemes use
:attr:`FaultInjector.mass_delta` to compensate their estimators — CSM
and MLM de-noise with the mass *actually landed* in the counters rather
than the mass seen on the wire — and :mod:`repro.resilience.health`
projects the same accounting into degraded-mode health signals.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.cachesim.base import EvictionReason
    from repro.cachesim.cache import FlowCache
    from repro.sram.counterarray import BankedCounterArray

#: Default seed for fault randomness — independent of measurement seeds.
DEFAULT_FAULT_SEED = 0xFA017


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, declarative fault workload.

    All probabilities are per *drained chunk* on the batched engine and
    per eviction on the scalar engine (a scalar eviction is a 1-row
    chunk). The plan is pure data: the same plan on the same stream and
    configuration reproduces the same faults bit-for-bit.

    Attributes
    ----------
    seed:
        Seed of the injector's private generator — fault randomness
        never touches the measurement generators.
    drop_chunk:
        Probability that a drained eviction chunk is lost before it
        reaches the SRAM (dropped cache → SRAM transfer).
    duplicate_chunk:
        Probability that a drained chunk is landed twice (replayed DMA).
    flip_bit:
        Probability, per chunk, that one random bit of one random SRAM
        counter flips (soft error).
    wipe_cache_at:
        Access counts at which the entire on-chip cache is wiped without
        flushing (power glitch); checked at chunk boundaries.
    stuck_counters:
        Number of SRAM counters pinned ("stuck-at") from the start.
    stuck_value:
        The pinned value; ``None`` pins at the counter capacity
        (stuck-at-max, the classic failure of a saturating cell).
    hang_at_chunk:
        Runtime-level fault: the shard worker hangs (sleeps forever)
        when it is about to apply this chunk seq — once per state dir,
        so the restarted worker sails past it. Drives the watchdog's
        nudge → SIGTERM → SIGKILL escalation deterministically.
        ``-1`` disables.
    slow_apply:
        Runtime-level fault: seconds of artificial delay before each
        chunk apply (a pathologically slow shard). ``0`` disables.
    slow_ckpt_write:
        Runtime-level fault: seconds of artificial delay inside each
        background checkpoint write, between the ``.tmp_`` file landing
        and its atomic publication (a pathologically slow disk). Widens
        the torn-write window so chaos tests can SIGKILL mid-write
        deterministically. Consumed by the async checkpointer, not the
        chunk path. ``0`` disables.
    crash_on_seq:
        Runtime-level fault: the worker raises (before making the chunk
        durable) when it is about to apply this chunk seq — the poison
        chunk. ``-1`` disables.
    crash_limit:
        How many times ``crash_on_seq`` fires before the fault clears
        (tracked in a state-dir counter file, so it survives restarts).
        ``0`` means *always* — a truly poison chunk that only
        quarantine can get past.
    """

    seed: int = DEFAULT_FAULT_SEED
    drop_chunk: float = 0.0
    duplicate_chunk: float = 0.0
    flip_bit: float = 0.0
    wipe_cache_at: tuple[int, ...] = field(default_factory=tuple)
    stuck_counters: int = 0
    stuck_value: int | None = None
    hang_at_chunk: int = -1
    slow_apply: float = 0.0
    slow_ckpt_write: float = 0.0
    crash_on_seq: int = -1
    crash_limit: int = 0

    def __post_init__(self) -> None:
        for name in ("drop_chunk", "duplicate_chunk", "flip_bit"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigError(f"{name} must be a probability in [0, 1], got {p}")
        if self.stuck_counters < 0:
            raise ConfigError(f"stuck_counters must be >= 0, got {self.stuck_counters}")
        if any(w < 0 for w in self.wipe_cache_at):
            raise ConfigError(f"wipe_cache_at points must be >= 0, got {self.wipe_cache_at}")
        if self.slow_apply < 0:
            raise ConfigError(f"slow_apply must be >= 0, got {self.slow_apply}")
        if self.slow_ckpt_write < 0:
            raise ConfigError(
                f"slow_ckpt_write must be >= 0, got {self.slow_ckpt_write}"
            )
        if self.hang_at_chunk < -1 or self.crash_on_seq < -1:
            raise ConfigError("hang_at_chunk/crash_on_seq must be a chunk seq or -1")
        if self.crash_limit < 0:
            raise ConfigError(f"crash_limit must be >= 0, got {self.crash_limit}")
        # Normalize to a sorted tuple so the wipe schedule is canonical.
        object.__setattr__(self, "wipe_cache_at", tuple(sorted(self.wipe_cache_at)))

    @property
    def enabled(self) -> bool:
        """Whether the plan injects any *eviction-path* fault (what
        gates building a :class:`FaultInjector`); runtime-level faults
        are executed by the shard worker, not the injector."""
        return bool(
            self.drop_chunk
            or self.duplicate_chunk
            or self.flip_bit
            or self.wipe_cache_at
            or self.stuck_counters
        )

    @property
    def runtime_enabled(self) -> bool:
        """Whether the plan injects any runtime-level (worker) fault."""
        return bool(
            self.hang_at_chunk >= 0 or self.slow_apply > 0 or self.crash_on_seq >= 0
        )

    def to_dict(self) -> dict:
        """JSON-ready form (checkpoint serialization)."""
        d = asdict(self)
        d["wipe_cache_at"] = list(self.wipe_cache_at)
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        d = dict(d)
        d["wipe_cache_at"] = tuple(d.get("wipe_cache_at", ()))
        return cls(**d)


def parse_fault_spec(spec: str) -> FaultPlan:
    """Parse the CLI's ``--inject`` mini-language into a :class:`FaultPlan`.

    Comma-separated ``key=value`` tokens::

        drop=0.1,dup=0.05,flip=0.01,wipe=5000+20000,stuck=3,stuck_value=7,seed=9

    plus the runtime-level (worker) faults::

        hang=6,slow=0.05,crash=5,crash_limit=2

    ``wipe`` takes one or more ``+``-separated access counts. Unknown
    keys and malformed values raise :class:`~repro.errors.ConfigError`.
    """
    kwargs: dict = {}
    aliases = {
        "drop": "drop_chunk",
        "dup": "duplicate_chunk",
        "duplicate": "duplicate_chunk",
        "flip": "flip_bit",
        "stuck": "stuck_counters",
        "hang": "hang_at_chunk",
        "slow": "slow_apply",
        "slow_ckpt": "slow_ckpt_write",
        "crash": "crash_on_seq",
    }
    for token in filter(None, (t.strip() for t in spec.split(","))):
        if "=" not in token:
            raise ConfigError(f"--inject token {token!r} is not key=value")
        key, _, raw = token.partition("=")
        key = aliases.get(key.strip(), key.strip())
        try:
            if key in (
                "drop_chunk",
                "duplicate_chunk",
                "flip_bit",
                "slow_apply",
                "slow_ckpt_write",
            ):
                kwargs[key] = float(raw)
            elif key == "wipe":
                kwargs["wipe_cache_at"] = tuple(int(w) for w in raw.split("+"))
            elif key in (
                "stuck_counters",
                "stuck_value",
                "seed",
                "hang_at_chunk",
                "crash_on_seq",
                "crash_limit",
            ):
                kwargs[key] = int(raw)
            else:
                raise ConfigError(f"unknown --inject key {key!r}")
        except ValueError as exc:
            raise ConfigError(f"bad --inject value {token!r}: {exc}") from exc
    return FaultPlan(**kwargs)


class FaultInjector:
    """Executes one :class:`FaultPlan` against one scheme instance.

    Wraps the scheme's eviction drain/sink; owns a private generator so
    the fault sequence is deterministic under the plan's seed and
    independent of the measurement randomness. All mass accounting is
    public — health signals and estimator compensation read it.
    """

    def __init__(self, plan: FaultPlan) -> None:
        if not plan.enabled:
            raise ConfigError("FaultInjector requires a plan with at least one fault")
        self.plan = plan
        self._rng = np.random.default_rng(plan.seed)
        self._cache: "FlowCache | None" = None
        self._counters: "BankedCounterArray | None" = None
        self._wipes_done = 0
        # -- accounting (all deterministic under the plan seed) -----------
        self.dropped_chunks = 0
        self.dropped_mass = 0
        self.duplicated_chunks = 0
        self.duplicated_mass = 0
        self.bitflip_events = 0
        self.bitflip_delta = 0
        self.wiped_entries = 0
        self.wiped_mass = 0

    def attach(
        self,
        *,
        cache: "FlowCache | None" = None,
        counters: "BankedCounterArray | None" = None,
    ) -> "FaultInjector":
        """Bind the injector to its targets and apply start-of-run faults.

        ``cache`` enables wipe faults; ``counters`` enables bit flips
        and stuck-at pins (applied here, before any traffic).
        """
        self._cache = cache
        self._counters = counters
        if self.plan.stuck_counters and counters is not None:
            n = min(self.plan.stuck_counters, counters.total_counters)
            idx = self._rng.choice(counters.total_counters, size=n, replace=False)
            value = (
                counters.counter_capacity
                if self.plan.stuck_value is None
                else self.plan.stuck_value
            )
            counters.stick(idx.astype(np.int64), value)
        return self

    # -- chunk-level fault decisions (each draw gated on its own knob) -----

    def drops_chunk(self) -> bool:
        """Decide whether the next chunk transfer is lost."""
        return bool(self.plan.drop_chunk) and self._rng.random() < self.plan.drop_chunk

    def duplicates_chunk(self) -> bool:
        """Decide whether the next chunk transfer is replayed."""
        return (
            bool(self.plan.duplicate_chunk)
            and self._rng.random() < self.plan.duplicate_chunk
        )

    def account_dropped(self, mass: int) -> None:
        """Record one dropped transfer of ``mass`` counted units."""
        self.dropped_chunks += 1
        self.dropped_mass += int(mass)

    def account_duplicated(self, mass: int) -> None:
        """Record one duplicated transfer of ``mass`` counted units."""
        self.duplicated_chunks += 1
        self.duplicated_mass += int(mass)

    def maybe_flip_bit(self) -> None:
        """Possibly flip one random counter bit (needs attached counters)."""
        if not self.plan.flip_bit or self._counters is None:
            return
        if self._rng.random() < self.plan.flip_bit:
            index = int(self._rng.integers(self._counters.total_counters))
            bit = int(self._rng.integers(self._counters.bits_per_counter))
            self.bitflip_delta += self._counters.flip_bit(index, bit)
            self.bitflip_events += 1

    def maybe_wipe_cache(self) -> None:
        """Wipe the cache if an access-count trigger has been crossed."""
        cache = self._cache
        if cache is None:
            return
        plan_points = self.plan.wipe_cache_at
        while (
            self._wipes_done < len(plan_points)
            and cache.stats.accesses >= plan_points[self._wipes_done]
        ):
            entries, mass = cache.wipe()
            self.wiped_entries += entries
            self.wiped_mass += mass
            self._wipes_done += 1

    # -- drain/sink wrapping -------------------------------------------------

    def wrap_drain(
        self,
        drain: Callable[
            [
                npt.NDArray[np.uint64],
                npt.NDArray[np.int64],
                npt.NDArray[np.uint8],
            ],
            None,
        ],
    ) -> Callable[
        [npt.NDArray[np.uint64], npt.NDArray[np.int64], npt.NDArray[np.uint8]], None
    ]:
        """The faulty version of a batched eviction drain."""

        def faulty_drain(
            ids: npt.NDArray[np.uint64],
            values: npt.NDArray[np.int64],
            reasons: npt.NDArray[np.uint8],
        ) -> None:
            if self.drops_chunk():
                self.account_dropped(int(values.sum()))
            else:
                drain(ids, values, reasons)
                if self.duplicates_chunk():
                    drain(ids, values, reasons)
                    self.account_duplicated(int(values.sum()))
            self.maybe_flip_bit()
            self.maybe_wipe_cache()

        return faulty_drain

    def wrap_sink(
        self, sink: Callable[[int, int, "EvictionReason"], None]
    ) -> Callable[[int, int, "EvictionReason"], None]:
        """The faulty version of a scalar eviction sink (1-row chunks)."""

        def faulty_sink(flow_id: int, value: int, reason: "EvictionReason") -> None:
            if self.drops_chunk():
                self.account_dropped(value)
            else:
                sink(flow_id, value, reason)
                if self.duplicates_chunk():
                    sink(flow_id, value, reason)
                    self.account_duplicated(value)
            self.maybe_flip_bit()
            self.maybe_wipe_cache()

        return faulty_sink

    # -- accounting roll-ups ---------------------------------------------------

    @property
    def stuck_lost_mass(self) -> int:
        """Mass rejected by stuck counters (0 when none attached)."""
        return self._counters.stuck_lost_mass if self._counters is not None else 0

    @property
    def lost_mass(self) -> int:
        """Counted units that left the cache but never reached a counter."""
        return self.dropped_mass + self.wiped_mass + self.stuck_lost_mass

    @property
    def mass_delta(self) -> int:
        """Net difference between landed and seen mass — what estimator
        compensation adds to the recorded mass before de-noising."""
        return self.duplicated_mass + self.bitflip_delta - self.lost_mass

    # -- checkpoint state --------------------------------------------------------

    def export_state(self) -> dict:
        """All mutable injector state (checkpoint capture; JSON-ready)."""
        return {
            "plan": self.plan.to_dict(),
            "rng": self._rng.bit_generator.state,
            "wipes_done": self._wipes_done,
            "dropped_chunks": self.dropped_chunks,
            "dropped_mass": self.dropped_mass,
            "duplicated_chunks": self.duplicated_chunks,
            "duplicated_mass": self.duplicated_mass,
            "bitflip_events": self.bitflip_events,
            "bitflip_delta": self.bitflip_delta,
            "wiped_entries": self.wiped_entries,
            "wiped_mass": self.wiped_mass,
        }

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`export_state` (plan identity is the caller's
        responsibility — restore into an injector built from the same plan)."""
        self._rng.bit_generator.state = state["rng"]
        self._wipes_done = int(state["wipes_done"])
        for name in (
            "dropped_chunks",
            "dropped_mass",
            "duplicated_chunks",
            "duplicated_mass",
            "bitflip_events",
            "bitflip_delta",
            "wiped_entries",
            "wiped_mass",
        ):
            setattr(self, name, int(state[name]))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultInjector(lost={self.lost_mass}, dup={self.duplicated_mass}, "
            f"flips={self.bitflip_events}, wipes={self._wipes_done})"
        )
