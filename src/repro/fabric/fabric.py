"""The measurement fabric facade: route, observe, drain, fuse.

A :class:`Fabric` deploys one :class:`~repro.fabric.vantage.
VantagePoint` per node of a :class:`~repro.fabric.topology.Topology`
and runs the full multi-vantage pipeline:

- **ingest** — each chunk is routed by hashing every packet's flow to
  its (ingress, egress) attachment pair; every vantage on the pair's
  route observes the packet (optionally thinned by per-vantage
  sampling), in node order, preserving stream order per vantage. A
  vantage's observed substream is therefore a pure function of
  ``(seed, trace)`` — independent of chunking, of other vantages, and
  of scheduling — which is the whole determinism argument.
- **drain** — finalize every vantage (any order; they share nothing)
  and collect per-vantage packet counts, checkpoint digests, restart
  and degradation accounting into a :class:`FabricResult`.
- **query** — collect each route vantage's estimate of every queried
  flow (deduplicating multi-observation flows to one output row) and
  fuse them with :mod:`repro.fabric.fusion`; per-vantage sampling is
  unbiased away (estimate scaled by ``1/rate``, variance by
  ``1/rate²`` plus the Binomial thinning term).

The degenerate case is the contract: ``Fabric(config, path_topology(1))``
ingests every packet into vantage 0 unsampled under the *unchanged*
base seed, so its estimates and per-shard checkpoint digests are
bit-identical to a plain ``ShardedCaesar`` over the same stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping, Sequence

import numpy as np
import numpy.typing as npt

from repro.core.config import CaesarConfig
from repro.errors import ConfigError, QueryError
from repro.fabric.fusion import (
    FUSION_METHODS,
    FusionReport,
    VantageObservation,
    fuse,
    fusion_report,
)
from repro.fabric.topology import Topology
from repro.fabric.vantage import VantagePoint
from repro.hashing.family import HashFamily
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.runtime.partitioner import (
    DEFAULT_CHUNK_PACKETS,
    DEFAULT_SHARD_SEED,
    chunk_stream,
)
from repro.types import FlowIdArray

#: Seed-mixing constant for the per-vantage sampling hash (distinct
#: from the attachment and shard hash domains).
_SAMPLE_SEED_XOR = 0x5A3917

#: Sampling decisions compare the top 53 bits of the hash (exact in a
#: float64) against ``rate * 2^53``.
_SAMPLE_BITS = 53


@dataclass(frozen=True)
class FabricResult:
    """What :meth:`Fabric.drain` returns: the network-wide ledger."""

    num_packets: int  #: packets offered to the fabric (pre-routing)
    observed_packets: tuple[int, ...]  #: per-vantage observed counts
    shard_digests: tuple[tuple[str, ...], ...]  #: per-vantage, per-shard
    restarts: int  #: worker restarts across all vantages
    degraded_vantages: tuple[int, ...]  #: vantages that lost input

    @property
    def degraded(self) -> bool:
        return bool(self.degraded_vantages)

    @property
    def total_observations(self) -> int:
        """Sum of per-vantage observations (a packet on an h-hop route
        counts h times)."""
        return sum(self.observed_packets)


class Fabric:
    """A multi-vantage measurement network behind one facade.

    ``sample_rate`` is the per-hop observation probability — a float
    applied at every vantage, or a ``{node: rate}`` mapping (missing
    nodes observe everything). ``vantage_workers=0`` keeps every
    vantage in-process; ``N >= 1`` runs each vantage as ``N``
    supervised shard workers under ``state_dir`` (a runtime per vantage
    for free, per the runtime's own contracts).
    """

    def __init__(
        self,
        config: CaesarConfig,
        topology: Topology,
        *,
        fusion: str = "mle",
        shards_per_vantage: int = 1,
        vantage_workers: int = 0,
        state_dir: str | Path | None = None,
        sample_rate: float | Mapping[int, float] = 1.0,
        divide_budget: bool = True,
        shard_seed: int = DEFAULT_SHARD_SEED,
        registry: MetricsRegistry | None = None,
        vantage_registries: Sequence[MetricsRegistry | None] | None = None,
        runtime_options: Mapping[str, object] | None = None,
    ) -> None:
        if fusion not in FUSION_METHODS:
            raise ConfigError(
                f"unknown fusion method {fusion!r}; use one of {FUSION_METHODS}"
            )
        if vantage_workers and state_dir is None:
            raise ConfigError("vantage_workers >= 1 needs state_dir=")
        if vantage_registries is not None and len(vantage_registries) != (
            topology.num_nodes
        ):
            raise ConfigError(
                f"vantage_registries must have one entry per node "
                f"({topology.num_nodes}), got {len(vantage_registries)}"
            )
        self.config = config
        self.topology = topology
        self.fusion = fusion
        self.metrics = resolve_registry(registry)
        self._rates = self._resolve_rates(sample_rate, topology.num_nodes)
        # The sampling hash family: member v thins vantage v's
        # observations by the top-53-bit rule. Seeded off the config so
        # two fabrics over the same topology but different measurements
        # sample independently.
        self._sample_family = (
            HashFamily(topology.num_nodes, seed=config.seed ^ _SAMPLE_SEED_XOR)
            if any(r < 1.0 for r in self._rates)
            else None
        )
        self.vantages = [
            VantagePoint(
                node,
                config,
                shards=shards_per_vantage,
                workers=vantage_workers,
                state_dir=(
                    None if state_dir is None else Path(state_dir) / f"vantage{node}"
                ),
                divide_budget=divide_budget,
                shard_seed=shard_seed,
                registry=(
                    registry
                    if vantage_registries is None
                    else vantage_registries[node]
                ),
                runtime_options=runtime_options if vantage_workers else None,
            )
            for node in range(topology.num_nodes)
        ]
        self._offset = 0  # global packet index (sampling determinism)
        self._drained: FabricResult | None = None

    @staticmethod
    def _resolve_rates(
        sample_rate: float | Mapping[int, float], num_nodes: int
    ) -> tuple[float, ...]:
        if isinstance(sample_rate, Mapping):
            rates = tuple(
                float(sample_rate.get(node, 1.0)) for node in range(num_nodes)
            )
        else:
            rates = (float(sample_rate),) * num_nodes
        for node, rate in enumerate(rates):
            if not 0.0 < rate <= 1.0:
                raise ConfigError(
                    f"sample rate for vantage {node} must be in (0, 1], got {rate}"
                )
        return rates

    @property
    def num_vantages(self) -> int:
        return len(self.vantages)

    # -- ingest --------------------------------------------------------------

    def _keep_mask(
        self, node: int, global_idx: npt.NDArray[np.uint64]
    ) -> npt.NDArray[np.bool_] | None:
        """Per-vantage sampling decisions, keyed by the packet's global
        stream index — deterministic under any chunking of the stream."""
        rate = self._rates[node]
        if rate >= 1.0 or self._sample_family is None:
            return None
        h = self._sample_family.hash_array(node, global_idx)
        threshold = np.uint64(int(rate * (1 << _SAMPLE_BITS)))
        return (h >> np.uint64(64 - _SAMPLE_BITS)) < threshold

    def ingest(
        self,
        packets: FlowIdArray,
        lengths: npt.NDArray[np.int64] | None = None,
    ) -> None:
        """Route one chunk through the topology to its observers."""
        if self._drained is not None:
            raise QueryError("cannot ingest after drain()")
        packets = np.asarray(packets, dtype=np.uint64)
        if len(packets) == 0:
            return
        with self.metrics.timer("fabric.ingest"):
            pair = self.topology.pair_of(packets)
            idx = self._offset + np.arange(len(packets), dtype=np.uint64)
            for node, vantage in enumerate(self.vantages):
                mask = self.topology.observation_matrix[pair, node]
                keep = self._keep_mask(node, idx)
                if keep is not None:
                    mask = mask & keep
                if not mask.any():
                    continue
                vantage.process(
                    packets[mask], None if lengths is None else lengths[mask]
                )
                self.metrics.counter(f"fabric.vantage{node}.observed").inc(
                    int(mask.sum())
                )
        self._offset += len(packets)

    def ingest_stream(
        self,
        stream: FlowIdArray | Iterable,
        *,
        lengths: npt.NDArray[np.int64] | None = None,
        chunk_packets: int = DEFAULT_CHUNK_PACKETS,
    ) -> None:
        """Chunked ingest of any stream shape :func:`chunk_stream` takes."""
        for pkts, lens in chunk_stream(
            stream, lengths=lengths, chunk_packets=chunk_packets
        ):
            self.ingest(pkts, lens)

    # -- lifecycle -----------------------------------------------------------

    def drain(self) -> FabricResult:
        """Finalize every vantage and return the network-wide ledger.

        Idempotent; vantages already finalized out-of-band (tests drain
        them in shuffled orders) are left as-is — the ledger is
        identical either way because vantages share no state.
        """
        if self._drained is None:
            for vantage in self.vantages:
                vantage.finalize()
            self._drained = FabricResult(
                num_packets=self._offset,
                observed_packets=tuple(v.num_packets for v in self.vantages),
                shard_digests=tuple(v.checkpoint_digests() for v in self.vantages),
                restarts=sum(v.restarts for v in self.vantages),
                degraded_vantages=tuple(
                    v.node for v in self.vantages if v.degraded
                ),
            )
        return self._drained

    def shutdown(self) -> None:
        """Tear down every vantage's workers without draining."""
        for vantage in self.vantages:
            vantage.shutdown()

    def kill_worker(self, vantage: int, shard: int) -> None:
        """Chaos hook: SIGKILL one shard worker of one vantage."""
        if not 0 <= vantage < self.num_vantages:
            raise ConfigError(f"vantage {vantage} out of range")
        self.vantages[vantage].kill_worker(shard)

    # -- query ---------------------------------------------------------------

    def observations(self, flow_ids: FlowIdArray) -> list[VantageObservation]:
        """Each vantage's view of the queried flows (NaN off-route).

        The query vector is used as given — callers wanting the
        dedup-union semantics go through :meth:`query` /
        :meth:`query_detail`, which unique-ify first. Sampling is
        unbiased away here: a rate-``p`` vantage's estimate targets
        ``p·x``, so the estimate scales by ``1/p`` and the variance by
        ``1/p²``, plus the Binomial thinning variance ``x(1-p)/p``
        folded into the slope (it is linear in ``x``).
        """
        result = self.drain()
        flow_ids = np.asarray(flow_ids, dtype=np.uint64)
        pair = self.topology.pair_of(flow_ids)
        out: list[VantageObservation] = []
        nan = np.full(len(flow_ids), np.nan)
        for node, vantage in enumerate(self.vantages):
            mask = self.topology.observation_matrix[pair, node]
            est = nan.copy()
            slope = np.zeros(len(flow_ids))
            floor = np.zeros(len(flow_ids))
            if mask.any():
                detail = vantage.estimate_detail(flow_ids[mask])
                rate = self._rates[node]
                if rate < 1.0:
                    est[mask] = detail.estimates / rate
                    slope[mask] = detail.var_slope / rate + (1.0 - rate) / rate
                    floor[mask] = detail.var_floor / (rate * rate)
                else:
                    est[mask] = detail.estimates
                    slope[mask] = detail.var_slope
                    floor[mask] = detail.var_floor
            out.append(
                VantageObservation(
                    vantage=node, estimates=est, var_slope=slope, var_floor=floor
                )
            )
        _ = result
        return out

    def query(
        self,
        flow_ids: FlowIdArray,
        *,
        fusion: str | None = None,
        clip_negative: bool = False,
    ) -> npt.NDArray[np.float64]:
        """Fused per-flow estimates, aligned with ``flow_ids``.

        Flows appearing several times in ``flow_ids`` (or observed at
        several vantages) are deduplicated: each distinct flow is fused
        exactly once and the result scattered back to input order.
        """
        flow_ids = np.asarray(flow_ids, dtype=np.uint64)
        uniq, inverse = np.unique(flow_ids, return_inverse=True)
        fused = fuse(self.observations(uniq), fusion or self.fusion)
        if clip_negative:
            fused = np.maximum(fused, 0.0)
        return fused[inverse]

    def query_detail(
        self, flow_ids: FlowIdArray, *, fusion: str | None = None
    ) -> tuple[npt.NDArray[np.float64], list[VantageObservation]]:
        """Fused estimates plus the raw per-vantage observations.

        No dedup here: rows align 1:1 with ``flow_ids``, which callers
        computing error reports want (their truth vector aligns too).
        """
        flow_ids = np.asarray(flow_ids, dtype=np.uint64)
        obs = self.observations(flow_ids)
        return fuse(obs, fusion or self.fusion), obs

    def report(
        self,
        flow_ids: FlowIdArray,
        truth: npt.NDArray[np.int64],
        *,
        fusion: str | None = None,
    ) -> FusionReport:
        """Per-vantage + network-wide accuracy against ground truth."""
        method = fusion or self.fusion
        fused, obs = self.query_detail(flow_ids, fusion=method)
        return fusion_report(truth, obs, fused, method=method)

    def flows_seen(self) -> npt.NDArray[np.uint64]:
        """Every flow any vantage observed (deduplicated union)."""
        self.drain()
        return np.unique(np.concatenate([v.flows_seen() for v in self.vantages]))

    @property
    def memory_bits(self) -> int:
        """Total modeled footprint across all vantages."""
        return sum(v.memory_bits for v in self.vantages)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Fabric({self.topology.name}, fusion={self.fusion}, "
            f"{self.num_vantages} vantages)"
        )
