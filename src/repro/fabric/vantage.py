"""One measurement vantage point: a CAESAR deployment on a topology node.

A :class:`VantagePoint` is the fabric's unit of deployment — one
measurement box on one topology node, wrapping either an in-process
:class:`~repro.core.sharded.ShardedCaesar` (``workers=0``, the
deterministic default) or a supervised
:class:`~repro.runtime.StreamingRuntime` (``workers >= 1``, one worker
process per shard) behind one ingest/finalize/estimate surface. Either
way the box speaks the :class:`~repro.core.scheme.MeasurementScheme`
protocol, and a drained runtime-backed vantage rebuilds its offline
twin via :meth:`~repro.runtime.client.RuntimeResult.load_scheme`, so
queries and checkpoint digests are identical across both modes.

Seeding: vantage ``v`` runs under ``config.seed + VANTAGE_SEED_STRIDE
* v``, so distinct vantages are hash-independent observers (their
sharing noise decorrelates — the property fusion banks on) while
**vantage 0 keeps the base seed unchanged**. That last part is the
one-vantage bit-identity contract: a degenerate fabric's single
vantage builds exactly the ``ShardedCaesar`` a single-box deployment
would, estimates and per-shard checkpoint digests included.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path
from typing import Mapping

import numpy as np
import numpy.typing as npt

from repro.core import theory
from repro.core.config import CaesarConfig
from repro.core.sharded import ShardedCaesar
from repro.errors import ConfigError, QueryError
from repro.obs.registry import MetricsRegistry
from repro.runtime.partitioner import DEFAULT_SHARD_SEED
from repro.types import FlowIdArray

#: Per-vantage seed stride. Deliberately not a small multiple of the
#: per-shard stride (0x9E37), so no (vantage, shard) pair in a
#: realistic deployment collides with another pair's derived seed.
VANTAGE_SEED_STRIDE = 0x51D7B3


def vantage_caesar_config(config: CaesarConfig, node: int) -> CaesarConfig:
    """Vantage ``node``'s config: base seed offset by the vantage stride.

    Node 0's config is returned unchanged (same object semantics as the
    shard rule: the degenerate deployment must be bit-identical to the
    single-box one).
    """
    if node < 0:
        raise ConfigError(f"vantage node must be >= 0, got {node}")
    if node == 0:
        return config
    return replace(config, seed=config.seed + VANTAGE_SEED_STRIDE * node)


@dataclass(frozen=True)
class VantageEstimate:
    """A vantage's estimates plus its linearized Eq. 22 variance model
    (``Var(x) = var_slope * x + var_floor``, per queried flow)."""

    estimates: npt.NDArray[np.float64]
    var_slope: npt.NDArray[np.float64]
    var_floor: npt.NDArray[np.float64]


class VantagePoint:
    """One CAESAR box on topology node ``node``.

    ``workers=0`` runs ``shards`` in-process CAESAR shards;
    ``workers=N`` runs ``N`` supervised shard-worker processes through
    the streaming runtime (``state_dir`` required — checkpoints and
    WALs live there). ``runtime_options`` passes through to
    :class:`~repro.runtime.StreamingRuntime` (transport, checkpoint
    cadence, fault injection, ...).
    """

    def __init__(
        self,
        node: int,
        config: CaesarConfig,
        *,
        shards: int = 1,
        workers: int = 0,
        state_dir: str | Path | None = None,
        divide_budget: bool = True,
        shard_seed: int = DEFAULT_SHARD_SEED,
        registry: MetricsRegistry | None = None,
        runtime_options: Mapping[str, object] | None = None,
    ) -> None:
        if workers < 0:
            raise ConfigError(f"workers must be >= 0, got {workers}")
        self.node = int(node)
        self.config = vantage_caesar_config(config, node)
        self.workers = int(workers)
        self._registry = registry
        self._scheme: ShardedCaesar | None = None
        self._runtime = None
        self._result = None
        self._digests: tuple[str, ...] | None = None
        self._finalized = False
        if self.workers == 0:
            if runtime_options:
                raise ConfigError("runtime_options require workers >= 1")
            self._scheme = ShardedCaesar(
                self.config,
                shards,
                divide_budget=divide_budget,
                shard_seed=shard_seed,
                registry=registry,
            )
        else:
            if state_dir is None:
                raise ConfigError("a runtime-backed vantage needs state_dir=")
            from repro.runtime.client import StreamingRuntime

            self._runtime = StreamingRuntime(
                self.config,
                self.workers,
                state_dir=state_dir,
                divide_budget=divide_budget,
                shard_seed=shard_seed,
                registry=registry,
                **dict(runtime_options or {}),
            )

    # -- ingest --------------------------------------------------------------

    def process(
        self,
        packets: FlowIdArray,
        lengths: npt.NDArray[np.int64] | None = None,
    ) -> None:
        """Feed one chunk of this vantage's observed substream."""
        if self._finalized:
            raise QueryError("cannot process packets after finalize()")
        if len(packets) == 0:
            return
        if self._runtime is not None:
            self._runtime.start()
            self._runtime.ingest(packets, lengths)
        else:
            assert self._scheme is not None
            self._scheme.process(packets, lengths)

    def finalize(self) -> None:
        """Drain/finalize the box; idempotent, in any cross-vantage order.

        A runtime-backed vantage drains its workers, records their final
        checkpoint digests, and rebuilds the offline twin all subsequent
        queries run against.
        """
        if self._finalized:
            return
        if self._runtime is not None:
            self._runtime.start()  # a zero-traffic vantage still drains
            self._result = self._runtime.drain()
            self._digests = self._result.shard_digests
            self._scheme = self._result.load_scheme(registry=self._registry)
            self._runtime.shutdown()
        else:
            assert self._scheme is not None
            self._scheme.finalize()
        self._finalized = True

    def shutdown(self) -> None:
        """Tear down worker processes without draining (abandon ship)."""
        if self._runtime is not None:
            self._runtime.shutdown()

    def kill_worker(self, shard: int) -> None:
        """Chaos hook: SIGKILL one shard worker (runtime mode only)."""
        if self._runtime is None:
            raise ConfigError("kill_worker needs a runtime-backed vantage")
        self._runtime.kill_worker(shard)

    # -- query ---------------------------------------------------------------

    @property
    def scheme(self) -> ShardedCaesar:
        """The finalized (or in-progress, if ``workers=0``) deployment."""
        if self._scheme is None:
            raise QueryError("call finalize() before querying a runtime vantage")
        return self._scheme

    def estimate(
        self, flow_ids: FlowIdArray, *args: object, **kwargs: object
    ) -> npt.NDArray[np.float64]:
        if not self._finalized:
            raise QueryError("call finalize() before estimating")
        return self.scheme.estimate(flow_ids, *args, **kwargs)

    def estimate_detail(self, flow_ids: FlowIdArray) -> VantageEstimate:
        """CSM estimates plus the per-flow Eq. 22 variance linearization.

        Slope and floor come from the *owning shard*'s geometry (its
        bank size and effective traffic mass differ per shard), which
        is what fusion's inverse-variance weights need.
        """
        if not self._finalized:
            raise QueryError("call finalize() before estimating")
        scheme = self.scheme
        flow_ids = np.asarray(flow_ids, dtype=np.uint64)
        est = scheme.estimate(flow_ids, "csm", clip_negative=False)
        owners = scheme.shard_of(flow_ids)
        slope = np.empty(len(flow_ids), dtype=np.float64)
        floor = np.empty(len(flow_ids), dtype=np.float64)
        for s in range(scheme.num_shards):
            mask = owners == s
            if not mask.any():
                continue
            shard = scheme.shards[s]
            kw = dict(
                k=shard.config.k,
                entry_capacity=shard.config.entry_capacity,
                bank_size=shard.config.bank_size,
                num_packets=shard.effective_mass,  # type: ignore[attr-defined]
            )
            v0 = float(theory.csm_variance(0.0, **kw))
            v1 = float(theory.csm_variance(1.0, **kw))
            slope[mask] = v1 - v0
            floor[mask] = v0
        return VantageEstimate(estimates=est, var_slope=slope, var_floor=floor)

    # -- accounting ----------------------------------------------------------

    @property
    def finalized(self) -> bool:
        return self._finalized

    @property
    def num_packets(self) -> int:
        """Packets this vantage observed (0 pre-drain in runtime mode)."""
        if self._scheme is not None:
            return self._scheme.num_packets
        return 0

    @property
    def memory_bits(self) -> int:
        if self._scheme is not None:
            return self._scheme.memory_bits
        return 0

    @property
    def restarts(self) -> int:
        """Worker restarts absorbed by this vantage's supervisor."""
        return 0 if self._result is None else self._result.restarts

    @property
    def degraded(self) -> bool:
        """True when the vantage finished without some of its input
        (the runtime quarantined poison chunks)."""
        return self._result is not None and self._result.degraded

    def checkpoint_digests(self) -> tuple[str, ...]:
        """Per-shard checkpoint digests — the bit-identity witnesses.

        Runtime mode reports the workers' final digests verbatim;
        in-process mode captures a checkpoint of each shard (cached:
        the digest of a finalized shard never changes).
        """
        if not self._finalized:
            raise QueryError("call finalize() before taking digests")
        if self._digests is None:
            self._digests = tuple(
                s.checkpoint().digest for s in self.scheme.shards  # type: ignore[attr-defined]
            )
        return self._digests

    def flows_seen(self) -> npt.NDArray[np.uint64]:
        """Every flow this vantage's shards ever cached."""
        return self.scheme.flows_seen()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = f"{self.workers}w runtime" if self._runtime is not None else "in-process"
        return f"VantagePoint(node={self.node}, {mode})"
