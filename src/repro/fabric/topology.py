"""Network topologies with deterministic flow routing.

A :class:`Topology` places measurement vantage points on the nodes of
a small network graph and answers one question for the fabric: *which
vantages observe which flow?* Every flow hashes to an (ingress,
egress) attachment-point pair — two members of a seeded
:class:`~repro.hashing.family.HashFamily`, so the assignment is a pure
function of ``(topology seed, flow ID)`` — and the route between that
pair is precomputed once per topology. A flow's packets are then
observed, in stream order, at every node on its route; the icarus-style
cache-network simulators use exactly this shape (per-node caches on
deterministic shortest paths).

Three builders cover the evaluation shapes:

- :func:`path_topology` — ``PATH:n``: a chain of ``n`` nodes; flows
  attach to any two nodes and traverse the contiguous segment between
  them.
- :func:`tree_topology` — ``TREE:DxB``: a complete B-ary tree of depth
  ``D``; flows attach to two leaves and route leaf → lowest common
  ancestor → leaf.
- :func:`fat_tree_topology` — ``FAT-TREE:k``: a folded-Clos with ``k``
  edge switches (two per pod), ``k`` aggregation switches, and ``k/2``
  cores; inter-pod flows take an edge → agg → core → agg → edge route
  whose agg/core picks are themselves hashed from the pair, modeling
  ECMP without making routes depend on anything but the pair.

Routes are pure data (a boolean observation matrix indexed by pair ×
node), so routing a chunk of packets is one hash batch plus one gather
— no per-packet Python.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError
from repro.hashing.family import HashFamily
from repro.types import FlowIdArray

#: Default seed for the ingress/egress attachment hashes. Distinct from
#: the shard seed: where a flow *attaches* must be independent of which
#: shard owns it inside a vantage.
DEFAULT_TOPOLOGY_SEED = 0x70B0

#: Topology kinds :func:`parse_topology` understands.
TOPOLOGY_KINDS = ("PATH", "TREE", "FAT-TREE")


class Topology:
    """A routed graph of measurement vantage points.

    ``routes`` holds one node tuple per (ingress, egress) attachment
    pair, indexed ``pair = ingress_slot * len(exit_nodes) +
    egress_slot``. The constructor precomputes the ``(num_pairs,
    num_nodes)`` boolean observation matrix the fabric's ingest path
    gathers from.
    """

    def __init__(
        self,
        name: str,
        num_nodes: int,
        entry_nodes: npt.NDArray[np.int64],
        exit_nodes: npt.NDArray[np.int64],
        routes: tuple[tuple[int, ...], ...],
        *,
        seed: int = DEFAULT_TOPOLOGY_SEED,
    ) -> None:
        if num_nodes < 1:
            raise ConfigError(f"num_nodes must be >= 1, got {num_nodes}")
        entry_nodes = np.asarray(entry_nodes, dtype=np.int64)
        exit_nodes = np.asarray(exit_nodes, dtype=np.int64)
        if len(entry_nodes) < 1 or len(exit_nodes) < 1:
            raise ConfigError("topologies need at least one entry and exit node")
        if len(routes) != len(entry_nodes) * len(exit_nodes):
            raise ConfigError(
                f"expected {len(entry_nodes) * len(exit_nodes)} routes "
                f"(one per attachment pair), got {len(routes)}"
            )
        self.name = name
        self.num_nodes = int(num_nodes)
        self.entry_nodes = entry_nodes
        self.exit_nodes = exit_nodes
        self.routes = routes
        self.seed = int(seed)
        # Member 0 hashes the ingress attachment, member 1 the egress.
        self._family = HashFamily(2, seed=self.seed)
        obs = np.zeros((len(routes), num_nodes), dtype=bool)
        for p, route in enumerate(routes):
            if not route:
                raise ConfigError(f"pair {p} has an empty route")
            for node in route:
                if not 0 <= node < num_nodes:
                    raise ConfigError(
                        f"route node {node} out of range for {num_nodes} nodes"
                    )
                obs[p, node] = True
        self.observation_matrix = obs

    # -- flow attachment and routing -----------------------------------------

    @property
    def num_pairs(self) -> int:
        return len(self.routes)

    def pair_of(self, flow_ids: FlowIdArray) -> npt.NDArray[np.int64]:
        """Each flow's (ingress, egress) attachment-pair index.

        A pure function of the topology seed and the flow ID — the
        routing analogue of the partitioner's RSS hash, and the reason
        a flow's observation set is independent of chunking and of
        every other flow.
        """
        ids = np.asarray(flow_ids, dtype=np.uint64)
        ingress = (
            self._family.hash_array(0, ids) % np.uint64(len(self.entry_nodes))
        ).astype(np.int64)
        egress = (
            self._family.hash_array(1, ids) % np.uint64(len(self.exit_nodes))
        ).astype(np.int64)
        return ingress * len(self.exit_nodes) + egress

    def observed_at(
        self, pair_idx: npt.NDArray[np.int64], node: int
    ) -> npt.NDArray[np.bool_]:
        """Which of the given pairs route through ``node``."""
        if not 0 <= node < self.num_nodes:
            raise ConfigError(f"node {node} out of range for {self.num_nodes} nodes")
        return self.observation_matrix[pair_idx, node]

    def route_of(self, flow_ids: FlowIdArray) -> list[tuple[int, ...]]:
        """The node route each flow traverses (diagnostics/tests)."""
        return [self.routes[p] for p in self.pair_of(flow_ids)]

    def vantages_per_flow(self, flow_ids: FlowIdArray) -> npt.NDArray[np.int64]:
        """How many vantages observe each flow (its route length)."""
        lengths = np.array([len(r) for r in self.routes], dtype=np.int64)
        return lengths[self.pair_of(flow_ids)]

    def describe(self) -> str:
        """Human-readable summary (CLI/log lines)."""
        hops = [len(r) for r in self.routes]
        return (
            f"{self.name}: {self.num_nodes} vantages, "
            f"{self.num_pairs} attachment pairs, "
            f"route length {min(hops)}-{max(hops)}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Topology({self.describe()})"


def path_topology(num_nodes: int, *, seed: int = DEFAULT_TOPOLOGY_SEED) -> Topology:
    """``PATH:n`` — a chain ``0 - 1 - ... - n-1``.

    Every node is an attachment point; the route between attachment
    nodes ``i`` and ``e`` is the contiguous segment between them, so a
    flow is observed at ``|i - e| + 1`` vantages.
    """
    if num_nodes < 1:
        raise ConfigError(f"PATH needs >= 1 node, got {num_nodes}")
    nodes = np.arange(num_nodes, dtype=np.int64)
    routes = tuple(
        tuple(range(min(i, e), max(i, e) + 1))
        for i in range(num_nodes)
        for e in range(num_nodes)
    )
    return Topology(
        f"PATH:{num_nodes}", num_nodes, nodes, nodes, routes, seed=seed
    )


def _tree_ancestors(node: int, branching: int) -> list[int]:
    """Heap-indexed chain ``node → root`` (inclusive)."""
    chain = [node]
    while node != 0:
        node = (node - 1) // branching
        chain.append(node)
    return chain


def tree_topology(
    depth: int, branching: int, *, seed: int = DEFAULT_TOPOLOGY_SEED
) -> Topology:
    """``TREE:DxB`` — a complete B-ary tree of depth ``D``.

    Nodes are heap-indexed (root 0, node ``v``'s children ``v*B+1 ..
    v*B+B``); flows attach to two leaves and route up to the lowest
    common ancestor and back down, the icarus cache-tree shape.
    """
    if depth < 1:
        raise ConfigError(f"TREE needs depth >= 1, got {depth}")
    if branching < 2:
        raise ConfigError(f"TREE needs branching >= 2, got {branching}")
    num_nodes = (branching ** (depth + 1) - 1) // (branching - 1)
    first_leaf = (branching**depth - 1) // (branching - 1)
    leaves = np.arange(first_leaf, num_nodes, dtype=np.int64)
    routes: list[tuple[int, ...]] = []
    for src in leaves:
        up = _tree_ancestors(int(src), branching)
        up_set = {n: d for d, n in enumerate(up)}
        for dst in leaves:
            down = _tree_ancestors(int(dst), branching)
            lca_depth = next(up_set[n] for n in down if n in up_set)
            lca = up[lca_depth]
            down_part = list(reversed(down[: down.index(lca)]))
            routes.append(tuple(up[: lca_depth + 1] + down_part))
    return Topology(
        f"TREE:{depth}x{branching}", num_nodes, leaves, leaves,
        tuple(routes), seed=seed,
    )


def fat_tree_topology(k: int, *, seed: int = DEFAULT_TOPOLOGY_SEED) -> Topology:
    """``FAT-TREE:k`` — a folded-Clos with ``k`` edge switches.

    ``k`` must be even: pods hold two edge and two aggregation switches
    each, with ``k/2`` cores on top. Node numbering: edges ``0..k-1``
    (edge ``j`` in pod ``j // 2``), aggs ``k..2k-1``, cores ``2k..``.
    The agg/core hop of a multi-pod route is picked by hashing the
    attachment pair — deterministic ECMP: the choice varies across
    pairs but is a pure function of the pair, never of load or order.
    """
    if k < 2 or k % 2:
        raise ConfigError(f"FAT-TREE needs an even k >= 2, got {k}")
    num_cores = k // 2
    num_nodes = 2 * k + num_cores
    edges = np.arange(k, dtype=np.int64)
    # ECMP picks come from a dedicated hash member so they can't
    # correlate with the attachment hashes.
    ecmp = HashFamily(1, seed=seed ^ 0x0FA7)
    routes: list[tuple[int, ...]] = []
    for src in range(k):
        for dst in range(k):
            if src == dst:
                routes.append((src,))
                continue
            pick = int(ecmp.hash_one(0, (src << 32) | dst))
            if src // 2 == dst // 2:  # same pod: one agg hop
                agg = k + (src // 2) * 2 + pick % 2
                routes.append((src, agg, dst))
            else:  # cross pod: up to a core and back down
                agg_up = k + (src // 2) * 2 + pick % 2
                core = 2 * k + (pick >> 1) % num_cores
                agg_down = k + (dst // 2) * 2 + (pick >> 8) % 2
                routes.append((src, agg_up, core, agg_down, dst))
    return Topology(
        f"FAT-TREE:{k}", num_nodes, edges, edges, tuple(routes), seed=seed
    )


def parse_topology(spec: str, *, seed: int = DEFAULT_TOPOLOGY_SEED) -> Topology:
    """Build a topology from a CLI spec string.

    ``PATH:6`` | ``TREE:2x3`` (depth x branching) | ``FAT-TREE:4``.
    Kind matching is case-insensitive; ``FATTREE`` is accepted too.
    """
    kind, sep, arg = spec.partition(":")
    kind = kind.strip().upper().replace("_", "-")
    if not sep or not arg:
        raise ConfigError(
            f"topology spec wants KIND:ARG (e.g. PATH:6, TREE:2x3), got {spec!r}"
        )
    try:
        if kind == "PATH":
            return path_topology(int(arg), seed=seed)
        if kind == "TREE":
            depth_s, sep2, branch_s = arg.lower().partition("x")
            if not sep2:
                raise ConfigError(
                    f"TREE spec wants TREE:DEPTHxBRANCHING, got {spec!r}"
                )
            return tree_topology(int(depth_s), int(branch_s), seed=seed)
        if kind in ("FAT-TREE", "FATTREE"):
            return fat_tree_topology(int(arg), seed=seed)
    except ValueError:
        raise ConfigError(f"non-numeric topology argument in {spec!r}") from None
    raise ConfigError(
        f"unknown topology kind {kind!r}; use one of {', '.join(TOPOLOGY_KINDS)}"
    )
