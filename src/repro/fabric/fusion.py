"""Query-time fusion of per-vantage CAESAR estimates.

Every vantage on a flow's route produces an independent estimate of
the same true size — independent because vantages carry distinct hash
seeds *and* observe different background traffic, so their sharing
noise is (quasi-)uncorrelated. Fusion combines those observations into
one network-wide answer per flow. Three estimators, in increasing
sophistication:

- ``min`` — the smallest observation. CSM noise is non-negative in
  expectation (every counter carries other flows' packets before the
  ``n/L`` compensation), so the minimum is a crude bias clamp — the
  classic count-min move.
- ``ivw`` — inverse-variance weighting with each vantage's variance
  evaluated at its *own* estimate (plug-in, Eq. 22 via
  :func:`repro.core.theory.csm_variance`). The minimum-variance linear
  combination when the plug-in variances are trusted.
- ``mle`` — a weighted MLE under the Gaussian approximation of Eq. 22:
  because the variance depends on the unknown size ``x``, the weights
  are re-evaluated at the current fused ``x`` and iterated to a fixed
  point (``var_i(x) = slope_i * x + floor_i`` is linear in ``x``, so a
  handful of fixed-point steps converge). The estimating equation is
  ``x = Σ_i w_i(x) x̂_i / Σ_i w_i(x)``.

Determinism contract: all three fusers first sort observations by
vantage id, so the float summation order — and therefore the fused
value, bit for bit — is independent of the order vantages were
queried or drained in. A flow observed by exactly one vantage passes
that vantage's estimate through *unchanged* (no multiply-divide
round-trip), which is what makes a one-vantage fabric bit-identical
to plain :class:`~repro.core.sharded.ShardedCaesar`. Observations a
degraded vantage returned as NaN are skipped per flow; a flow with no
finite observation at all fuses to NaN.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.analysis.metrics import relative_errors
from repro.errors import ConfigError, QueryError

#: Fusion estimators, in the CLI's vocabulary.
FUSION_METHODS = ("min", "ivw", "mle")

#: Fixed-point iterations for the weighted MLE. The variance model is
#: linear in x, so the map contracts fast; a fixed count keeps the
#: fuser deterministic (no data-dependent stopping).
MLE_ITERATIONS = 8

#: Variance floor guarding the weight division (k=1 degenerates Eq. 22
#: to zero variance; a zero-packet vantage has a zero noise floor).
_MIN_VARIANCE = 1e-12


@dataclass(frozen=True)
class VantageObservation:
    """One vantage's view of a common query vector.

    ``estimates[f]`` is NaN where this vantage does not observe flow
    ``f`` (not on its route, or the vantage is degraded for it).
    ``var_slope``/``var_floor`` linearize the vantage's Eq. 22 variance
    model, ``Var_i(x) = var_slope * x + var_floor`` — slope and floor
    are per flow because they depend on the owning shard's bank size
    and traffic mass.
    """

    vantage: int
    estimates: npt.NDArray[np.float64]
    var_slope: npt.NDArray[np.float64]
    var_floor: npt.NDArray[np.float64]

    def __post_init__(self) -> None:
        est = np.asarray(self.estimates, dtype=np.float64)
        if est.ndim != 1:
            raise ConfigError("estimates must be a 1-D vector")
        for name in ("var_slope", "var_floor"):
            arr = np.asarray(getattr(self, name), dtype=np.float64)
            if arr.shape != est.shape:
                raise ConfigError(f"{name} must align with estimates")

    @property
    def observed(self) -> npt.NDArray[np.bool_]:
        """Which queried flows this vantage actually observed."""
        return np.isfinite(np.asarray(self.estimates, dtype=np.float64))

    def variance_at(self, x: npt.NDArray[np.float64]) -> npt.NDArray[np.float64]:
        """Eq. 22 evaluated at size hypothesis ``x`` (clipped to 0)."""
        return self.var_slope * np.maximum(np.asarray(x, dtype=np.float64), 0.0) + (
            self.var_floor
        )


def _canonical(
    observations: list[VantageObservation] | tuple[VantageObservation, ...],
) -> list[VantageObservation]:
    """Sort by vantage id — the order every float reduction uses."""
    if not observations:
        raise QueryError("fusion needs at least one vantage observation")
    obs = sorted(observations, key=lambda o: o.vantage)
    ids = [o.vantage for o in obs]
    if len(set(ids)) != len(ids):
        raise ConfigError(f"duplicate vantage ids in observations: {ids}")
    length = len(obs[0].estimates)
    if any(len(o.estimates) != length for o in obs):
        raise ConfigError("all observations must cover the same query vector")
    return obs


def _stacked(
    observations: list[VantageObservation],
) -> tuple[
    npt.NDArray[np.float64],
    npt.NDArray[np.float64],
    npt.NDArray[np.float64],
    npt.NDArray[np.bool_],
]:
    est = np.stack([np.asarray(o.estimates, dtype=np.float64) for o in observations])
    slope = np.stack([np.asarray(o.var_slope, dtype=np.float64) for o in observations])
    floor = np.stack([np.asarray(o.var_floor, dtype=np.float64) for o in observations])
    return est, slope, floor, np.isfinite(est)


def _passthrough_singles(
    fused: npt.NDArray[np.float64],
    est: npt.NDArray[np.float64],
    mask: npt.NDArray[np.bool_],
) -> npt.NDArray[np.float64]:
    """Flows with exactly one finite observation pass it through
    bit-exactly: ``(w * x) / w`` is not ``x`` in floats, and the
    one-vantage fabric's bit-identity contract rides on this."""
    counts = mask.sum(axis=0)
    single = counts == 1
    if single.any():
        only = np.where(mask, est, 0.0).sum(axis=0)
        fused[single] = only[single]
    fused[counts == 0] = np.nan
    return fused


def fuse_min(
    observations: list[VantageObservation] | tuple[VantageObservation, ...],
) -> npt.NDArray[np.float64]:
    """Smallest finite observation per flow (count-min style clamp)."""
    est, _, _, mask = _stacked(_canonical(observations))
    fused = np.where(mask, est, np.inf).min(axis=0)
    fused[~mask.any(axis=0)] = np.nan
    return fused


def _weighted_mean(
    est: npt.NDArray[np.float64],
    var: npt.NDArray[np.float64],
    mask: npt.NDArray[np.bool_],
) -> npt.NDArray[np.float64]:
    w = np.where(mask, 1.0 / np.maximum(var, _MIN_VARIANCE), 0.0)
    total = w.sum(axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(mask, w * est, 0.0).sum(axis=0) / np.where(
            total > 0.0, total, np.nan
        )


def fuse_ivw(
    observations: list[VantageObservation] | tuple[VantageObservation, ...],
) -> npt.NDArray[np.float64]:
    """Inverse-variance weighting at each vantage's plug-in variance."""
    obs = _canonical(observations)
    est, slope, floor, mask = _stacked(obs)
    var = slope * np.maximum(np.where(mask, est, 0.0), 0.0) + floor
    fused = _weighted_mean(est, var, mask)
    return _passthrough_singles(fused, est, mask)


def fuse_mle(
    observations: list[VantageObservation] | tuple[VantageObservation, ...],
) -> npt.NDArray[np.float64]:
    """Weighted MLE: iterate the size-dependent weights to a fixed point."""
    obs = _canonical(observations)
    est, slope, floor, mask = _stacked(obs)
    var0 = slope * np.maximum(np.where(mask, est, 0.0), 0.0) + floor
    x = _weighted_mean(est, var0, mask)
    for _ in range(MLE_ITERATIONS):
        var = slope * np.maximum(np.where(np.isfinite(x), x, 0.0), 0.0)[None, :] + floor
        x = _weighted_mean(est, var, mask)
    return _passthrough_singles(x, est, mask)


_FUSERS = {"min": fuse_min, "ivw": fuse_ivw, "mle": fuse_mle}


def fuse(
    observations: list[VantageObservation] | tuple[VantageObservation, ...],
    method: str = "mle",
) -> npt.NDArray[np.float64]:
    """Fuse per-vantage observations into one estimate per flow.

    Deterministic in the observation *set*: any permutation of
    ``observations`` fuses to the bit-identical vector.
    """
    try:
        fuser = _FUSERS[method]
    except KeyError:
        raise ConfigError(
            f"unknown fusion method {method!r}; use one of {FUSION_METHODS}"
        ) from None
    return fuser(observations)


@dataclass(frozen=True)
class FusionReport:
    """Accuracy accounting for one fused query against ground truth.

    ``per_vantage_are`` is each vantage's mean absolute relative error
    over *the flows it observed* (a vantage is never punished for flows
    not on its routes); ``fused_are`` is the network-wide error of the
    fused vector over all flows with at least one observation.
    """

    method: str
    per_vantage_are: dict[int, float]
    per_vantage_flows: dict[int, int]
    fused_are: float
    fused_flows: int

    @property
    def best_vantage(self) -> int:
        """The single vantage with the lowest observed-flow ARE."""
        return min(self.per_vantage_are, key=lambda v: self.per_vantage_are[v])

    @property
    def best_vantage_are(self) -> float:
        return self.per_vantage_are[self.best_vantage]

    def summary(self) -> str:
        lines = [f"fusion={self.method}: ARE {self.fused_are:.4f} over "
                 f"{self.fused_flows} flows"]
        for v in sorted(self.per_vantage_are):
            lines.append(
                f"  vantage {v}: ARE {self.per_vantage_are[v]:.4f} over "
                f"{self.per_vantage_flows[v]} observed flows"
            )
        lines.append(
            f"  best single vantage: {self.best_vantage} "
            f"(ARE {self.best_vantage_are:.4f})"
        )
        return "\n".join(lines)


def fusion_report(
    truth: npt.NDArray[np.int64],
    observations: list[VantageObservation] | tuple[VantageObservation, ...],
    fused: npt.NDArray[np.float64],
    *,
    method: str = "mle",
) -> FusionReport:
    """Per-vantage and network-wide error report for a fused query."""
    obs = _canonical(observations)
    truth = np.asarray(truth, dtype=np.float64)
    fused = np.asarray(fused, dtype=np.float64)
    if truth.shape != fused.shape or truth.shape != obs[0].estimates.shape:
        raise ConfigError("truth, fused, and observations must be aligned")
    per_are: dict[int, float] = {}
    per_n: dict[int, int] = {}
    for o in obs:
        seen = o.observed
        per_n[o.vantage] = int(seen.sum())
        per_are[o.vantage] = (
            float(np.abs(relative_errors(o.estimates[seen], truth[seen])).mean())
            if seen.any()
            else float("nan")
        )
    covered = np.isfinite(fused)
    fused_are = (
        float(np.abs(relative_errors(fused[covered], truth[covered])).mean())
        if covered.any()
        else float("nan")
    )
    return FusionReport(
        method=method,
        per_vantage_are=per_are,
        per_vantage_flows=per_n,
        fused_are=fused_are,
        fused_flows=int(covered.sum()),
    )
