"""Multi-vantage measurement fabric (library extension).

The paper evaluates CAESAR on one measurement box; this package turns
it into a measurement *network*: a routed :mod:`topology
<repro.fabric.topology>` of vantage points, one CAESAR deployment per
node (:mod:`vantage <repro.fabric.vantage>`, in-process shards or a
streaming runtime per vantage), and query-time :mod:`fusion
<repro.fabric.fusion>` of the per-vantage estimates, all behind the
:class:`~repro.fabric.fabric.Fabric` facade. See docs/fabric.md.
"""

from repro.fabric.fabric import Fabric, FabricResult
from repro.fabric.fusion import (
    FUSION_METHODS,
    FusionReport,
    VantageObservation,
    fuse,
    fuse_ivw,
    fuse_min,
    fuse_mle,
    fusion_report,
)
from repro.fabric.topology import (
    DEFAULT_TOPOLOGY_SEED,
    Topology,
    fat_tree_topology,
    parse_topology,
    path_topology,
    tree_topology,
)
from repro.fabric.vantage import (
    VANTAGE_SEED_STRIDE,
    VantageEstimate,
    VantagePoint,
    vantage_caesar_config,
)

__all__ = [
    "DEFAULT_TOPOLOGY_SEED",
    "FUSION_METHODS",
    "Fabric",
    "FabricResult",
    "FusionReport",
    "Topology",
    "VANTAGE_SEED_STRIDE",
    "VantageEstimate",
    "VantageObservation",
    "VantagePoint",
    "fat_tree_topology",
    "fuse",
    "fuse_ivw",
    "fuse_min",
    "fuse_mle",
    "fusion_report",
    "parse_topology",
    "path_topology",
    "tree_topology",
    "vantage_caesar_config",
]
