"""Experiment result container."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ExperimentResult:
    """Output of one paper-figure reproduction.

    ``measured`` holds machine-readable headline numbers;
    ``paper_reference`` the corresponding values (or qualitative
    expectations) the paper reports, keyed identically where a direct
    comparison exists. ``tables`` are rendered text blocks — the
    human-readable artifact.
    """

    experiment_id: str
    title: str
    tables: list[str] = field(default_factory=list)
    measured: dict[str, float] = field(default_factory=dict)
    paper_reference: dict[str, float | str] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Full text report for this experiment."""
        lines = [f"=== {self.experiment_id}: {self.title} ===", ""]
        for table in self.tables:
            lines.append(table)
            lines.append("")
        if self.measured:
            lines.append("Measured:")
            for key, value in self.measured.items():
                ref = self.paper_reference.get(key)
                suffix = f"   (paper: {ref})" if ref is not None else ""
                lines.append(f"  {key} = {value:.4g}{suffix}")
            lines.append("")
        extra_refs = {k: v for k, v in self.paper_reference.items() if k not in self.measured}
        if extra_refs:
            lines.append("Paper reference (no direct numeric counterpart):")
            for key, value in extra_refs.items():
                lines.append(f"  {key}: {value}")
            lines.append("")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)
