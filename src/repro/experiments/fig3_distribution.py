"""Figure 3 — heavy-tailed distribution of flow sizes.

The paper plots the size-frequency distribution of its backbone
capture and observes (i) a heavy tail and (ii) that more than 92 % of
flows are below the mean size — the property that justifies the
``y = 2 n/Q`` cache-entry sizing (overflow evictions become rare,
``p_y -> 0``, Section 4.2).

We reproduce the log-binned size histogram of the synthetic stand-in
trace, verify both properties, and fit the tail exponent.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.experiments.base import ExperimentResult
from repro.experiments.trace_setup import ExperimentSetup, standard_setup


def run(setup: ExperimentSetup | None = None) -> ExperimentResult:
    setup = setup or standard_setup()
    trace = setup.trace
    sizes, counts = trace.size_histogram()

    # Log-binned view (what Fig. 3 shows on log-log axes).
    edges, bin_counts = trace.log_binned_histogram(bins_per_decade=2)
    rows = []
    total = trace.num_flows
    for i in range(len(bin_counts)):
        lo = int(edges[i])
        hi = int(edges[i + 1]) - 1 if i + 1 < len(edges) else int(sizes.max())
        if bin_counts[i] == 0:
            continue
        rows.append([f"{lo}-{hi}", int(bin_counts[i]), bin_counts[i] / total])

    # Tail exponent: least-squares slope of log(count) vs log(size)
    # over the sizes with enough mass to regress on.
    mask = counts >= 3
    slope = float(
        np.polyfit(np.log10(sizes[mask].astype(float)), np.log10(counts[mask].astype(float)), 1)[0]
    )

    below_mean = trace.fraction_below_mean()
    below_y = float(np.mean(trace.flows.sizes < setup.entry_capacity))
    result = ExperimentResult(
        experiment_id="fig3",
        title="Heavy tailed distribution of flow size",
        tables=[
            format_table(
                ["size range", "flows", "fraction"],
                rows,
                title=f"Flow-size distribution ({setup.describe()})",
            )
        ],
        measured={
            "fraction_flows_below_mean": below_mean,
            "fraction_flows_below_y": below_y,
            "tail_exponent_loglog_slope": slope,
            "mean_flow_size": trace.mean_flow_size,
            "max_flow_size": float(trace.flows.sizes.max()),
        },
        paper_reference={
            "fraction_flows_below_mean": "> 0.92 (Section 4.2)",
            "fraction_flows_below_y": "> 0.95 (Section 6.2)",
            "mean_flow_size": 27.32,
            "tail_exponent_loglog_slope": "negative slope, heavy tail (Fig. 3)",
        },
    )
    return result
