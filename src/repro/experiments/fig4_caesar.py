"""Figure 4 — CAESAR accuracy: CSM vs MLM, LRU vs random replacement.

Paper setup: SRAM 91.55 KB, cache 97.66 KB, k = 3, y = floor(2n/Q);
panels (a)/(b) are estimated-vs-actual scatters for CSM/MLM, panels
(c)/(d) the average relative error vs actual flow size. The paper's
findings this experiment must reproduce:

- CAESAR estimates flow sizes accurately at a sub-100 KB SRAM budget;
- CSM and MLM results differ little (the paper picks CSM as default);
- both replacement policies behave equivalently (Section 6.3.1 runs
  LRU and random).

Headline numbers (Section 1.5): average relative errors 25.23 % (CSM)
and 30.83 % (MLM).
"""

from __future__ import annotations

from repro.analysis.metrics import top_flow_are
from repro.experiments.base import ExperimentResult
from repro.experiments.common import accuracy_table, build_caesar
from repro.experiments.trace_setup import ExperimentSetup, standard_setup


def run(setup: ExperimentSetup | None = None) -> ExperimentResult:
    setup = setup or standard_setup()
    trace = setup.trace
    truth = trace.flows.sizes

    caesar_lru = build_caesar(setup, replacement="lru")
    caesar_rnd = build_caesar(setup, replacement="random")

    estimates = {
        "CSM(lru)": caesar_lru.estimate(trace.flows.ids, "csm"),
        "MLM(lru)": caesar_lru.estimate(trace.flows.ids, "mlm"),
        "CSM(rand)": caesar_rnd.estimate(trace.flows.ids, "csm"),
        "MLM(rand)": caesar_rnd.estimate(trace.flows.ids, "mlm"),
    }
    table, q = accuracy_table(
        f"CAESAR error vs actual flow size ({setup.describe()})", truth, estimates
    )

    stats = caesar_lru.cache.stats
    mu = trace.mean_flow_size
    result = ExperimentResult(
        experiment_id="fig4",
        title="CAESAR estimated vs actual flow size; avg relative error (CSM & MLM)",
        tables=[table],
        measured={
            "csm_are": q["CSM(lru)"].packet_weighted_are,
            "mlm_are": q["MLM(lru)"].packet_weighted_are,
            "csm_are_top": top_flow_are(
                estimates["CSM(lru)"], truth, top=max(20, trace.num_flows // 1000)
            ),
            "mlm_are_top": top_flow_are(
                estimates["MLM(lru)"], truth, top=max(20, trace.num_flows // 1000)
            ),
            "csm_are_bin": q["CSM(lru)"].binned_are,
            "mlm_are_bin": q["MLM(lru)"].binned_are,
            "csm_bias_over_mu": q["CSM(lru)"].mean_signed_error_packets / mu,
            "lru_vs_random_are_gap": abs(
                q["CSM(lru)"].packet_weighted_are - q["CSM(rand)"].packet_weighted_are
            ),
            "overflow_evictions": float(stats.overflow_evictions),
            "replacement_evictions": float(stats.replacement_evictions),
            "cache_hit_rate": stats.hit_rate,
        },
        paper_reference={
            "csm_are": "25.23 % average relative error (Section 1.5)",
            "mlm_are": "30.83 % average relative error (Section 1.5)",
            "csm_bias_over_mu": "~0 (CSM unbiased, Eq. 21)",
            "lru_vs_random_are_gap": "policies equivalent (Section 6.3.1)",
        },
        notes=[
            "Scatter panels (a)/(b) are summarized by the per-bin mean "
            "estimate columns; full pairs available via "
            "Caesar.estimate on trace.flows.ids.",
        ],
    )
    return result
