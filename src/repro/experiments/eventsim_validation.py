"""Event-driven cross-check of the Figure-8 analytic timing model.

Not a paper figure: every number in the fig8 reproduction comes from
closed-form pipeline algebra (``repro.memmodel.pipeline``). This
experiment re-derives the same quantities with the packet-by-packet
event simulator (``repro.memmodel.eventsim``) and reports the
agreement, so the analytic shortcut is auditable:

- RCS ingress time across the FIFO kink (stall mode);
- RCS loss rates at the 3x and 10x speed gaps (drop mode) — the
  Figure 7 rates;
- CAESAR's amortized eviction traffic staying under line rate.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.experiments.base import ExperimentResult
from repro.experiments.trace_setup import ExperimentSetup, standard_setup
from repro.memmodel.costmodel import rcs_counts
from repro.memmodel.eventsim import simulate
from repro.memmodel.pipeline import IngressModel
from repro.memmodel.technologies import LatencyModel

GRID = (1_000, 10_000, 50_000, 200_000)


def run(setup: ExperimentSetup | None = None) -> ExperimentResult:
    setup = setup or standard_setup()
    lat = LatencyModel()
    fifo = 10_000
    analytic = IngressModel(lat, fifo_depth=fifo)

    rows = []
    worst_rel = 0.0
    for n in GRID:
        a = analytic.process(rcs_counts(n))
        s = simulate(
            n,
            interarrival_ns=lat.packet_interarrival_ns,
            front_ns=lat.hash_ns,
            items_per_packet=1.0,
            back_ns=lat.sram_rmw_ns,
            fifo_depth=fifo,
            stall=True,
        )
        rel = abs(s.ingress_ns - a.ingress_ns) / a.ingress_ns
        worst_rel = max(worst_rel, rel)
        rows.append([n, a.ingress_ns / 1e3, s.ingress_ns / 1e3, rel])
    timing_table = format_table(
        ["packets", "analytic (us)", "event-driven (us)", "rel diff"],
        rows,
        title="RCS ingress time across the FIFO kink",
    )

    loss_rows = []
    for sram_ns, label in ((3.0, "3x gap"), (10.0, "10x gap")):
        lat_g = LatencyModel(sram_access_ns=sram_ns)
        a = IngressModel(lat_g, fifo_depth=1000).process(rcs_counts(100_000))
        s = simulate(
            100_000,
            interarrival_ns=lat_g.packet_interarrival_ns,
            front_ns=lat_g.hash_ns,
            items_per_packet=1.0,
            back_ns=lat_g.sram_rmw_ns,
            fifo_depth=1000,
            stall=False,
        )
        loss_rows.append([label, a.loss_rate, s.item_loss_rate])
    loss_table = format_table(
        ["speed gap", "analytic loss", "event-driven loss"],
        loss_rows,
        title="RCS line-rate loss (Figure 7's rates)",
    )

    # CAESAR: amortized eviction traffic from the real cache stats.
    caesar_sim = simulate(
        200_000,
        interarrival_ns=lat.packet_interarrival_ns,
        front_ns=lat.cache_access_ns,
        items_per_packet=0.04,  # ~2/y overflow-eviction rate
        back_ns=lat.hash_ns + lat.sram_rmw_ns,
        fifo_depth=fifo,
        stall=True,
    )

    return ExperimentResult(
        experiment_id="eventsim",
        title="Event-driven validation of the analytic timing model",
        tables=[timing_table, loss_table],
        measured={
            "worst_ingress_rel_diff": worst_rel,
            "loss_3x_analytic": loss_rows[0][1],
            "loss_3x_event": loss_rows[0][2],
            "loss_10x_analytic": loss_rows[1][1],
            "loss_10x_event": loss_rows[1][2],
            "caesar_ingress_per_packet": caesar_sim.ingress_ns / 200_000,
        },
        paper_reference={
            "loss_3x_event": "2/3 (Fig. 7)",
            "loss_10x_event": "9/10 (Fig. 7)",
            "caesar_ingress_per_packet": "~1 ns: cache absorbs line rate",
        },
    )
