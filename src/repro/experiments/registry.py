"""Experiment registry: name → runner."""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigError
from repro.experiments import (
    ablations,
    arrival_patterns,
    eventsim_validation,
    extensions,
    fabric,
    fig3_distribution,
    fig4_caesar,
    fig5_case,
    fig6_rcs_lossless,
    fig7_rcs_lossy,
    fig8_timing,
    headline,
    robustness,
    scaling,
    theory_validation,
    volume,
)
from repro.experiments.base import ExperimentResult
from repro.experiments.trace_setup import ExperimentSetup

_REGISTRY: dict[str, Callable[..., ExperimentResult]] = {
    "fig3": fig3_distribution.run,
    "fig4": fig4_caesar.run,
    "fig5": fig5_case.run,
    "fig6": fig6_rcs_lossless.run,
    "fig7": fig7_rcs_lossy.run,
    "fig8": fig8_timing.run,
    "headline": headline.run,
    "ablations": ablations.run,
    "extensions": extensions.run,
    "theory": theory_validation.run,
    "volume": volume.run,
    "eventsim": eventsim_validation.run,
    "arrivals": arrival_patterns.run,
    "scaling": scaling.run,
    "robustness": robustness.run,
    "faults": robustness.run_faults,
    "fabric": fabric.run,
}


def list_experiments() -> list[str]:
    """All registered experiment names, figure order first."""
    return list(_REGISTRY)


def get_experiment(name: str) -> Callable[..., ExperimentResult]:
    """The runner for one experiment name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {name!r}; available: {', '.join(_REGISTRY)}"
        ) from None


def run_experiment(name: str, setup: ExperimentSetup | None = None) -> ExperimentResult:
    """Run one experiment by name."""
    return get_experiment(name)(setup)
