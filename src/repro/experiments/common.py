"""Shared experiment plumbing: build/run schemes on a setup."""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.analysis.metrics import BinnedErrors, EstimateQuality, binned_errors, evaluate
from repro.analysis.tables import format_table
from repro.baselines.case import Case, CaseConfig
from repro.baselines.rcs import RCS, RCSConfig
from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.experiments.trace_setup import ExperimentSetup


def build_caesar(
    setup: ExperimentSetup,
    *,
    replacement: str = "lru",
    sram_kb: float | None = None,
    cache_kb: float | None = None,
    k: int | None = None,
    remainder: str = "random",
) -> Caesar:
    """A CAESAR instance sized per Section 6.2, run over the setup's trace."""
    trace = setup.trace
    cfg = CaesarConfig.for_budgets(
        sram_kb=sram_kb if sram_kb is not None else setup.sram_kb_main,
        cache_kb=cache_kb if cache_kb is not None else setup.cache_kb,
        num_packets=trace.num_packets,
        num_flows=trace.num_flows,
        k=k if k is not None else setup.k,
        replacement=replacement,
        seed=setup.seed,
        engine=setup.engine,
    )
    if remainder != "random":
        cfg = replace(cfg, remainder=remainder)
    caesar = Caesar(cfg, registry=setup.registry, fault_plan=setup.fault_plan)
    caesar.process(trace.packets)
    caesar.finalize()
    return caesar


def build_rcs(
    setup: ExperimentSetup,
    *,
    packets: np.ndarray | None = None,
    sram_kb: float | None = None,
    k: int | None = None,
) -> RCS:
    """An RCS instance at the same SRAM budget, fed ``packets``
    (defaults to the lossless full stream)."""
    cfg = RCSConfig.for_budget(
        sram_kb if sram_kb is not None else setup.sram_kb_main,
        k=k if k is not None else setup.k,
        seed=setup.seed,
    )
    rcs = RCS(cfg, registry=setup.registry, fault_plan=setup.fault_plan)
    rcs.process(packets if packets is not None else setup.trace.packets)
    return rcs


def build_case(setup: ExperimentSetup, *, sram_kb: float) -> Case:
    """A CASE instance at the given SRAM budget, run over the trace."""
    trace = setup.trace
    cfg = CaseConfig.for_budgets(
        sram_kb=sram_kb,
        cache_kb=setup.cache_kb,
        num_packets=trace.num_packets,
        num_flows=trace.num_flows,
        max_value=float(trace.flows.sizes.max()),
        seed=setup.seed,
        engine=setup.engine,
    )
    case = Case(cfg, registry=setup.registry, fault_plan=setup.fault_plan)
    case.process(trace.packets)
    case.finalize()
    return case


def accuracy_table(
    title: str,
    truth: np.ndarray,
    estimate_sets: dict[str, np.ndarray],
    bins_per_decade: int = 2,
) -> tuple[str, dict[str, EstimateQuality]]:
    """Binned ARE table for several estimators over one ground truth.

    Returns the rendered table (one row per size bin, one ARE and bias
    column pair per estimator — the (c)/(d) panels of Figs. 4-7) and a
    per-estimator :class:`EstimateQuality`.
    """
    qualities = {name: evaluate(est, truth, bins_per_decade) for name, est in estimate_sets.items()}
    bins: dict[str, BinnedErrors] = {
        name: binned_errors(est, truth, bins_per_decade) for name, est in estimate_sets.items()
    }
    any_bins = next(iter(bins.values()))
    headers = ["size bin", "flows"]
    for name in estimate_sets:
        headers += [f"{name} ARE", f"{name} bias"]
    rows = []
    for i in range(len(any_bins.count)):
        if any_bins.count[i] == 0:
            continue
        row: list[object] = [
            f"{int(any_bins.bin_lo[i])}-{int(any_bins.bin_hi[i]) - 1}",
            int(any_bins.count[i]),
        ]
        for name in estimate_sets:
            row.append(float(bins[name].mean_abs_rel_error[i]))
            row.append(float(bins[name].mean_signed_rel_error[i]))
        rows.append(row)
    summary_rows = [
        [name, q.per_flow_are, q.binned_are, q.packet_weighted_are, q.mean_signed_rel_error]
        for name, q in qualities.items()
    ]
    table = (
        format_table(headers, rows, title=title)
        + "\n\n"
        + format_table(
            ["estimator", "ARE/flow", "ARE/bin", "ARE/packet", "bias"],
            summary_rows,
            title="Aggregates",
        )
    )
    return table, qualities
