"""Shared experimental setup: the scaled paper workload and budgets.

Section 6.2 of the paper fixes: cache 97.66 KB, CAESAR/RCS SRAM
91.55 KB (Figs. 4, 6, 7), CASE SRAM 183.11 KB and 1.21 MB (Fig. 5),
``y = floor(2 n / Q)``, ``k = 3``, on a trace of n = 27,720,011
packets / Q = 1,014,601 flows. We scale the *flow count* by
``scale`` (default 5 %) while keeping ``n/Q`` — and therefore every
memory-to-traffic ratio — identical, so all accuracy comparisons
transfer; the KB budgets scale by the same factor.

Set the environment variable ``REPRO_SCALE`` to run everything at a
different scale (e.g. ``REPRO_SCALE=1.0`` for the paper-size workload,
which takes tens of minutes in pure Python).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import ConfigError
from repro.obs.registry import MetricsRegistry
from repro.resilience.faults import FaultPlan
from repro.traffic.trace import Trace, default_paper_trace

#: Paper Section 6.2 budgets, in KB, at scale 1.0.
PAPER_CACHE_KB = 97.66
PAPER_SRAM_KB_MAIN = 91.55  # Figs. 4, 6, 7 (CAESAR and RCS)
PAPER_SRAM_KB_CASE = 183.11  # Fig. 5 (a)/(c)
PAPER_SRAM_KB_CASE_BIG = 1.21 * 1024  # Fig. 5 (b)/(d): 1.21 MB
DEFAULT_SCALE = 0.05
DEFAULT_SEED = 42
DEFAULT_K = 3


@dataclass(frozen=True)
class ExperimentSetup:
    """The scaled workload plus all scaled memory budgets."""

    trace: Trace
    scale: float
    seed: int
    k: int = DEFAULT_K
    #: Construction engine for cache-assisted schemes ("batched",
    #: "runs", or "scalar"); all are bit-identical, batched/runs are
    #: faster.
    engine: str = "batched"
    #: Optional metrics registry threaded into every scheme the
    #: experiment builders construct (None = observability off).
    registry: MetricsRegistry | None = None
    #: Optional deterministic fault workload injected into every scheme
    #: the experiment builders construct (None = healthy run).
    fault_plan: FaultPlan | None = None

    @property
    def cache_kb(self) -> float:
        return PAPER_CACHE_KB * self.scale

    @property
    def sram_kb_main(self) -> float:
        return PAPER_SRAM_KB_MAIN * self.scale

    @property
    def sram_kb_case(self) -> float:
        return PAPER_SRAM_KB_CASE * self.scale

    @property
    def sram_kb_case_big(self) -> float:
        return PAPER_SRAM_KB_CASE_BIG * self.scale

    @property
    def entry_capacity(self) -> int:
        """The paper's sizing rule ``y = floor(2 n / Q)``."""
        return max(2, int(2 * self.trace.num_packets / self.trace.num_flows))

    def describe(self) -> str:
        t = self.trace
        return (
            f"scale={self.scale}: n={t.num_packets} packets, Q={t.num_flows} flows, "
            f"mu={t.mean_flow_size:.2f}, y={self.entry_capacity}, k={self.k}; "
            f"cache={self.cache_kb:.2f}KB, sram(main)={self.sram_kb_main:.2f}KB, "
            f"sram(CASE)={self.sram_kb_case:.2f}KB / {self.sram_kb_case_big:.2f}KB"
        )


def configured_scale() -> float:
    """Scale from the REPRO_SCALE environment variable (default 0.05)."""
    raw = os.environ.get("REPRO_SCALE", "")
    if not raw:
        return DEFAULT_SCALE
    try:
        scale = float(raw)
    except ValueError as exc:
        raise ConfigError(f"REPRO_SCALE must be a float, got {raw!r}") from exc
    if not 0 < scale <= 1.0:
        raise ConfigError(f"REPRO_SCALE must be in (0, 1], got {scale}")
    return scale


@lru_cache(maxsize=4)
def standard_setup(scale: float | None = None, seed: int = DEFAULT_SEED) -> ExperimentSetup:
    """The cached default workload for all experiments."""
    if scale is None:
        scale = configured_scale()
    return ExperimentSetup(
        trace=default_paper_trace(scale=scale, seed=seed),
        scale=scale,
        seed=seed,
    )
