"""Theory validation — Sections 4-5 closed forms vs the mechanism.

Not a paper figure: this experiment Monte-Carlo-simulates the exact
random mechanism the paper analyzes (uniform eviction values split
over k counters; shared-counter noise on a known flow-size
distribution) and compares every closed form:

- Eq. (10) expected evictions,
- Eq. (12)/(14) own-portion mean and variance (and the exact-mechanism
  variance — the paper's Eq. 8 carries a spurious factor k, see
  ``repro.core.theory.portion_variance``),
- Eq. (15)/(16) noise mean and variance, plus the whole-flow
  clustering term the paper omits,
- Eq. (21) CSM unbiasedness and Eq. (22) CSM variance against the
  *measured* estimator spread.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.core import theory
from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.core.split import split_value
from repro.experiments.base import ExperimentResult
from repro.experiments.trace_setup import ExperimentSetup, standard_setup
from repro.traffic.distributions import EmpiricalDist


def _simulate_own_portion(
    x: int, y: int, k: int, trials: int, rng: np.random.Generator
) -> tuple[float, float, float]:
    """(mean eviction count, mean portion, portion variance) of a
    flow of size x evicted in uniform chunks of {1..y}."""
    counts = np.empty(trials)
    portions = np.empty(trials)
    for t in range(trials):
        remaining, evictions = x, 0
        total = np.zeros(k, dtype=np.int64)
        while remaining > 0:
            chunk = min(int(rng.integers(1, y + 1)), remaining)
            total += split_value(chunk, k, rng)
            remaining -= chunk
            evictions += 1
        counts[t] = evictions
        portions[t] = total[0]
    return float(counts.mean()), float(portions.mean()), float(portions.var())


def run(setup: ExperimentSetup | None = None, trials: int = 2000) -> ExperimentResult:
    setup = setup or standard_setup()
    rng = np.random.default_rng(setup.seed + 1000)
    y, k = setup.entry_capacity, setup.k
    x = 20 * y  # a flow large enough for the asymptotic formulas

    # -- own-portion mechanism vs Eqs. 10/12/14 ----------------------------
    mean_t, mean_y, var_y = _simulate_own_portion(x, y, k, trials, rng)
    own_rows = [
        ["E(t) evictions", theory.expected_evictions(x, y), mean_t],
        ["E(Y) portion mean (Eq.12)", theory.portion_mean(x, k), mean_y],
        ["D(Y) paper (Eq.14)", theory.portion_variance(x, k, y), var_y],
        ["D(Y) exact mechanism", theory.portion_variance_exact(x, k, y), var_y],
    ]

    # -- CSM estimator on the real trace vs Eqs. 21/22 -----------------------
    caesar = Caesar(
        CaesarConfig.for_budgets(
            sram_kb=setup.sram_kb_main,
            cache_kb=setup.cache_kb,
            num_packets=setup.trace.num_packets,
            num_flows=setup.trace.num_flows,
            k=k,
            seed=setup.seed,
        )
    )
    caesar.process(setup.trace.packets)
    caesar.finalize()
    est = caesar.estimate(setup.trace.flows.ids, "csm", clip_negative=False)
    resid = est - setup.trace.flows.sizes
    n = setup.trace.num_packets
    bank = caesar.config.bank_size
    dist = EmpiricalDist(setup.trace.flows.sizes)
    second_moment_total = float(dist.second_moment * setup.trace.num_flows)
    # Mechanism CSM variance: own-split terms cancel in the sum, so the
    # spread is pure sharing noise — Poisson-like mass spread plus the
    # clustering term the paper omits.
    poisson_term = k * n / (k * bank)  # Binomial thinning of n over kL counters, summed over k
    # Whole-flow clustering: each other flow hits our bank-r counter
    # independently per bank w.p. 1/L with ~z/k mass, so the k-counter
    # sum has variance ~ sum(z^2)/(L k) = k x the per-counter term.
    clustering_term = k * theory.clustering_noise_variance(second_moment_total, k, bank)
    csm_rows = [
        ["CSM bias (Eq.21 says 0)", 0.0, float(resid.mean())],
        ["CSM variance, paper (Eq.22, at mean flow)",
         float(theory.csm_variance(setup.trace.mean_flow_size, k, y, bank, n)),
         float(resid.var())],
        ["CSM variance, noise-only model (split cancels)",
         poisson_term + clustering_term, float(resid.var())],
    ]

    measured = {
        "eviction_count_rel_err": abs(mean_t - theory.expected_evictions(x, y))
        / theory.expected_evictions(x, y),
        "portion_mean_rel_err": abs(mean_y - theory.portion_mean(x, k))
        / theory.portion_mean(x, k),
        "portion_var_vs_exact": var_y / float(theory.portion_variance_exact(x, k, y)),
        "portion_var_vs_paper": var_y / float(theory.portion_variance(x, k, y)),
        "csm_bias_abs": abs(float(resid.mean())),
        "csm_var_ratio_noise_model": float(resid.var())
        / (poisson_term + clustering_term),
    }
    return ExperimentResult(
        experiment_id="theory",
        title="Monte-Carlo validation of the Sections 4-5 closed forms",
        tables=[
            format_table(["quantity", "theory", "measured"], own_rows,
                         title=f"Own-portion mechanism (x={x}, y={y}, k={k}, {trials} trials)"),
            format_table(["quantity", "theory", "measured"], csm_rows,
                         title="CSM estimator on the full trace"),
        ],
        measured=measured,
        paper_reference={
            "portion_var_vs_paper": "~1/k: Eq. (8)'s remainder mean carries a spurious factor k",
            "csm_var_ratio_noise_model": "~1: split noise cancels in the sum; clustering dominates",
            "csm_bias_abs": "0 (Eq. 21)",
        },
        notes=[
            "The noise-only CSM variance model (Binomial thinning + "
            "whole-flow clustering) is a reproduction contribution; the "
            "paper's Eq. (22) both overstates (independent-counters "
            "assumption) and understates (no clustering term) depending "
            "on the tail.",
        ],
    )
