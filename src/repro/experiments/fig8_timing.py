"""Figure 8 — processing time vs number of packets (FPGA substitute).

The paper implements all three schemes on a Virtex-7 and measures the
time to process packet-stream prefixes. The findings to reproduce:

- below ~10^4 packets CASE is the slowest (per-packet power
  operations in its compression pipeline);
- beyond ~10^4 packets RCS "drastically increases and exceeds CASE"
  (its per-packet off-chip updates outrun the FIFO);
- CAESAR is always the most time-efficient — on average 74.8 % and up
  to 92.4 % faster than CASE, on average 75.5 % and up to 90 % faster
  than RCS.

We replay trace prefixes through the *instrumented* cache simulations
(so eviction counts are measured, not assumed) and price the operation
mixes with the paper's latency numbers via the ingress pipeline model.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.cachesim.cache import FlowCache
from repro.cachesim.base import EvictionReason
from repro.experiments.base import ExperimentResult
from repro.experiments.trace_setup import ExperimentSetup, standard_setup
from repro.memmodel.costmodel import caesar_counts, case_counts, rcs_counts
from repro.memmodel.pipeline import IngressModel
from repro.memmodel.technologies import LatencyModel
from repro.sram.layout import cache_entries_for_budget

#: Prefix lengths swept (paper sweeps to its full 27.7 M packets).
#: Log-spaced below the 10^4 FIFO kink, denser above it, always
#: including the full trace.
DEFAULT_PREFIX_GRID = (
    100,
    1_000,
    10_000,
    30_000,
    100_000,
    300_000,
    1_000_000,
    3_000_000,
    10_000_000,
    27_720_011,
)


def _cache_stats_for_prefix(setup: ExperimentSetup, n: int):
    """Run the cache front end alone on the first ``n`` packets.

    Timing only needs the cache statistics (hits/misses/evictions) —
    not counter contents — so we use a bare FlowCache with a null sink.
    """
    y = setup.entry_capacity
    cache = FlowCache(
        num_entries=cache_entries_for_budget(setup.cache_kb, y),
        entry_capacity=y,
        policy="lru",
        seed=setup.seed,
    )

    def null_sink(fid: int, value: int, reason: EvictionReason) -> None:
        pass

    cache.process(setup.trace.packets[:n], null_sink)
    return cache.stats


def run(
    setup: ExperimentSetup | None = None,
    prefix_grid: tuple[int, ...] = DEFAULT_PREFIX_GRID,
    latencies: LatencyModel | None = None,
) -> ExperimentResult:
    setup = setup or standard_setup()
    grid = [n for n in prefix_grid if n < setup.trace.num_packets]
    grid.append(setup.trace.num_packets)
    model = IngressModel(latencies or LatencyModel(), fifo_depth=10_000)

    rows = []
    speedups_case, speedups_rcs = [], []
    rcs_loss = 0.0
    for n in grid:
        stats = _cache_stats_for_prefix(setup, n)
        t_caesar = model.process(caesar_counts(stats, setup.k))
        t_case = model.process(case_counts(stats))
        t_rcs = model.process(rcs_counts(n))
        su_case = 1.0 - t_caesar.ingress_ns / t_case.ingress_ns
        su_rcs = 1.0 - t_caesar.ingress_ns / t_rcs.ingress_ns
        speedups_case.append(su_case)
        speedups_rcs.append(su_rcs)
        rcs_loss = t_rcs.loss_rate
        rows.append(
            [
                n,
                t_caesar.ingress_ns / 1e3,
                t_case.ingress_ns / 1e3,
                t_rcs.ingress_ns / 1e3,
                su_case,
                su_rcs,
            ]
        )

    table = format_table(
        [
            "packets",
            "CAESAR (us)",
            "CASE (us)",
            "RCS (us)",
            "CAESAR vs CASE",
            "CAESAR vs RCS",
        ],
        rows,
        title=f"Processing time vs number of packets ({setup.describe()})",
    )

    return ExperimentResult(
        experiment_id="fig8",
        title="Processing time vs number of packets (cost-model FPGA substitute)",
        tables=[table],
        measured={
            "mean_speedup_vs_case": float(np.mean(speedups_case)),
            "max_speedup_vs_case": float(np.max(speedups_case)),
            "mean_speedup_vs_rcs": float(np.mean(speedups_rcs)),
            "max_speedup_vs_rcs": float(np.max(speedups_rcs)),
            "fulltrace_speedup_vs_case": float(speedups_case[-1]),
            "fulltrace_speedup_vs_rcs": float(speedups_rcs[-1]),
            "rcs_line_rate_loss": rcs_loss,
        },
        paper_reference={
            "mean_speedup_vs_case": "74.8 % (Section 6.4)",
            "max_speedup_vs_case": "92.4 %",
            "mean_speedup_vs_rcs": "75.5 %",
            "max_speedup_vs_rcs": "90 %",
            "rcs_line_rate_loss": "9/10 at the 10x cache/SRAM gap (2/3 at 3x)",
        },
        notes=[
            "Absolute times are model nanoseconds, not Virtex-7 "
            "cycles; the orderings, the RCS kink past the 10^4 FIFO, "
            "and the speedup factors are the reproduced quantities.",
            "At reduced REPRO_SCALE the sweep has proportionally more "
            "pre-kink (RCS-fast) points than the paper's 27.7M-packet "
            "sweep, understating the mean speedup vs RCS; the "
            "asymptotic (large-n) speedups match the paper's maxima.",
            "The CASE gap is capped at 1 - 1/(1 + power_op_ns) by our "
            "conservative 4 ns compression-unit cost; the paper's "
            "92.4 % maximum implies a costlier power unit on its "
            "prototype.",
        ],
    )
