"""Figure 7 — RCS under the realistic loss assumption.

Without a cache, RCS needs one off-chip SRAM access per packet; at
line rate it can only record the cache/SRAM speed-ratio fraction of
the stream. The paper uses the empirical loss rates 2/3 (3x gap) and
9/10 (10x gap) and reports average relative errors of 67.68 % and
90.06 % — i.e. essentially the loss rate itself, because surviving
counters under-represent every flow by the kept fraction.

We drop packets Bernoulli(loss) ahead of RCS (the
:func:`repro.traffic.packets.apply_loss` model), decode with CSM, and
verify the error-vs-size panels approach the loss rate for flows large
enough that sharing noise is secondary. The loss rates themselves are
*derived*, not assumed: the memmodel ingress reproduces 2/3 and 9/10
from the latency numbers (see fig8).
"""

from __future__ import annotations

from repro.analysis.metrics import top_flow_are
from repro.experiments.base import ExperimentResult
from repro.experiments.common import accuracy_table, build_rcs
from repro.experiments.trace_setup import ExperimentSetup, standard_setup
from repro.traffic.packets import apply_loss

LOSS_RATES = (2.0 / 3.0, 9.0 / 10.0)


def run(setup: ExperimentSetup | None = None) -> ExperimentResult:
    setup = setup or standard_setup()
    trace = setup.trace
    truth = trace.flows.sizes

    estimates = {}
    top = max(20, trace.num_flows // 1000)
    large_bin_are = {}
    for loss in LOSS_RATES:
        kept = apply_loss(trace.packets, loss, seed=setup.seed + int(loss * 100))
        rcs = build_rcs(setup, packets=kept)
        est = rcs.estimate(trace.flows.ids, "csm")
        name = f"loss={loss:.2f}"
        estimates[name] = est
        large_bin_are[loss] = top_flow_are(est, truth, top=top)

    table, q = accuracy_table(
        f"RCS under realistic loss ({setup.describe()})", truth, estimates
    )
    q_23 = q[f"loss={LOSS_RATES[0]:.2f}"]
    q_910 = q[f"loss={LOSS_RATES[1]:.2f}"]

    return ExperimentResult(
        experiment_id="fig7",
        title="RCS with realistic packet loss (2/3 and 9/10)",
        tables=[table],
        measured={
            "are_loss_2_3_large_flows": large_bin_are[LOSS_RATES[0]],
            "are_loss_9_10_large_flows": large_bin_are[LOSS_RATES[1]],
            "are_loss_2_3_bin": q_23.binned_are,
            "are_loss_9_10_bin": q_910.binned_are,
            "bias_loss_2_3": q_23.mean_signed_rel_error,
            "bias_loss_9_10": q_910.mean_signed_rel_error,
        },
        paper_reference={
            "are_loss_2_3_large_flows": "67.68 % average relative error (Fig. 7c)",
            "are_loss_9_10_large_flows": "90.06 % average relative error (Fig. 7d)",
            "bias_loss_2_3": "~ -0.667 (flows under-counted by the loss rate)",
            "bias_loss_9_10": "~ -0.9",
        },
        notes=[
            "Errors converge to the loss rate exactly where counters "
            "dominate noise (large flows); small-flow bins add the "
            "sharing noise also present in Fig. 4/6.",
        ],
    )
