"""Paper-figure reproductions.

One module per figure of the paper's evaluation (Section 6) plus the
headline-numbers aggregation and the design-choice ablations. Each
experiment returns an :class:`~repro.experiments.base.ExperimentResult`
whose rendered text is the reproduction artifact (also printed by the
corresponding benchmark in ``benchmarks/``).

Run any of them from the command line::

    python -m repro fig4            # or: caesar-repro fig4
    python -m repro all --scale 0.05
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import get_experiment, list_experiments, run_experiment
from repro.experiments.trace_setup import ExperimentSetup, standard_setup

__all__ = [
    "ExperimentResult",
    "ExperimentSetup",
    "get_experiment",
    "list_experiments",
    "run_experiment",
    "standard_setup",
]
