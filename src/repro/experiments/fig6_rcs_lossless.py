"""Figure 6 — RCS under the lossless assumption.

Paper setup (Section 6.3.3): RCS at the same 91.55 KB SRAM as Fig. 4,
pretending the off-chip SRAM is fast enough to record every packet.
Finding: the results are "quite similar" to CAESAR's (Fig. 6(a)/(b)
vs Fig. 4(a)/(b)) — which doubles as evidence that CAESAR loses
nothing by caching, since CAESAR degenerates to RCS when y = 1. The
paper omits RCS MLM from the error panel because its binary-search
decoder "is extremely slow"; we include it (vectorized) at reduced
prominence.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.common import accuracy_table, build_caesar, build_rcs
from repro.experiments.trace_setup import ExperimentSetup, standard_setup


def run(setup: ExperimentSetup | None = None, include_mlm: bool = True) -> ExperimentResult:
    setup = setup or standard_setup()
    trace = setup.trace
    truth = trace.flows.sizes

    rcs = build_rcs(setup)  # lossless: full stream recorded
    caesar = build_caesar(setup)

    estimates = {
        "RCS-CSM": rcs.estimate(trace.flows.ids, "csm"),
        "CAESAR-CSM": caesar.estimate(trace.flows.ids, "csm"),
    }
    if include_mlm:
        estimates["RCS-MLM"] = rcs.estimate(trace.flows.ids, "mlm")
    table, q = accuracy_table(
        f"RCS (lossless) vs CAESAR, same SRAM ({setup.describe()})", truth, estimates
    )

    gap = abs(q["RCS-CSM"].binned_are - q["CAESAR-CSM"].binned_are)
    return ExperimentResult(
        experiment_id="fig6",
        title="RCS under lossless assumption (same SRAM as Fig. 4)",
        tables=[table],
        measured={
            "rcs_csm_are_bin": q["RCS-CSM"].binned_are,
            "caesar_csm_are_bin": q["CAESAR-CSM"].binned_are,
            "rcs_vs_caesar_are_gap": gap,
            **(
                {"rcs_mlm_are_bin": q["RCS-MLM"].binned_are}
                if include_mlm
                else {}
            ),
        },
        paper_reference={
            "rcs_vs_caesar_are_gap": "Fig. 6 'quite similar' to Fig. 4 — gap ~0",
        },
        notes=[
            "Lossless RCS is CAESAR with y = 1: per-packet scatter "
            "instead of per-eviction split. The agreement here "
            "validates CAESAR's cache stage as noise-free.",
        ],
    )
