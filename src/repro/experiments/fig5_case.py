"""Figure 5 — CASE accuracy collapse under the one-counter-per-flow budget.

Paper setup and findings (Section 6.3.2): at SRAM = 183.11 KB, CASE
must spread ~1.5 bits per flow, so "the estimated flow sizes of CASE
are almost 0, resulting in relative errors close to 100 %". Raising
the SRAM to 1.21 MB (~6x more bits per counter) lets "a small portion
of flows be estimated accurately while the others are still bad".

We reproduce both budgets (scaled) and additionally report the
fraction of flows whose estimate is (near) zero — the quantitative
version of "almost 0".
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.experiments.common import accuracy_table, build_case
from repro.experiments.trace_setup import ExperimentSetup, standard_setup


def run(setup: ExperimentSetup | None = None) -> ExperimentResult:
    setup = setup or standard_setup()
    trace = setup.trace
    truth = trace.flows.sizes

    case_small = build_case(setup, sram_kb=setup.sram_kb_case)
    case_big = build_case(setup, sram_kb=setup.sram_kb_case_big)

    est_small = case_small.estimate(trace.flows.ids)
    est_big = case_big.estimate(trace.flows.ids)
    table, q = accuracy_table(
        f"CASE error vs actual flow size ({setup.describe()})",
        truth,
        {
            f"{setup.sram_kb_case:.1f}KB": est_small,
            f"{setup.sram_kb_case_big:.1f}KB": est_big,
        },
    )
    q_small, q_big = list(q.values())

    # "almost 0": estimates below one packet.
    frac_zero_small = float(np.mean(est_small < 1.0))
    frac_zero_big = float(np.mean(est_big < 1.0))
    # Flows estimated within 30 % — the "small portion ... accurate".
    ok_small = float(np.mean(np.abs(est_small - truth) / truth <= 0.3))
    ok_big = float(np.mean(np.abs(est_big - truth) / truth <= 0.3))

    return ExperimentResult(
        experiment_id="fig5",
        title="CASE estimated vs actual flow size at 183.11 KB and 1.21 MB (scaled)",
        tables=[table],
        measured={
            "small_budget_bits_per_counter": float(
                case_small.array.bits_per_counter
            ),
            "big_budget_bits_per_counter": float(case_big.array.bits_per_counter),
            "small_budget_frac_estimated_zero": frac_zero_small,
            "big_budget_frac_estimated_zero": frac_zero_big,
            "small_budget_frac_within_30pct": ok_small,
            "big_budget_frac_within_30pct": ok_big,
            "small_budget_are_bin": q_small.binned_are,
            "big_budget_are_bin": q_big.binned_are,
        },
        paper_reference={
            "small_budget_frac_estimated_zero": "estimates 'almost 0' (Fig. 5a)",
            "small_budget_are_bin": "relative errors close to 100 % (Fig. 5c)",
            "big_budget_frac_within_30pct": "a small portion accurate, others still bad (Fig. 5b/d)",
            "small_budget_bits_per_counter": "~1.5 bits (L >= Q at 183.11 KB)",
            "big_budget_bits_per_counter": "~6x more (1.21 MB)",
        },
        notes=[
            "CASE's counter width is forced down by the one-to-one "
            "flow-counter mapping (L must be at least Q) — the storage "
            "inefficiency CAESAR's sharing removes.",
        ],
    )
