"""Headline comparison — the paper's Section 1.5 claims in one table.

Aggregates Figs. 4, 5, 7, 8 into the paper's four headline claims:

1. CASE "hardly works" at the shared budget (~100 % relative error);
2. RCS with realistic loss has average relative errors ~67.68 % and
   ~90.06 %;
3. CAESAR's CSM/MLM are far below both (paper: 25.23 % / 30.83 %);
4. CAESAR is up to 92.4 % faster than CASE and up to 90 % faster than
   RCS.
"""

from __future__ import annotations

from repro.analysis.tables import format_table
from repro.experiments import fig4_caesar, fig5_case, fig7_rcs_lossy, fig8_timing
from repro.experiments.base import ExperimentResult
from repro.experiments.trace_setup import ExperimentSetup, standard_setup


def run(setup: ExperimentSetup | None = None) -> ExperimentResult:
    setup = setup or standard_setup()
    r4 = fig4_caesar.run(setup)
    r5 = fig5_case.run(setup)
    r7 = fig7_rcs_lossy.run(setup)
    r8 = fig8_timing.run(setup)

    rows = [
        ["CAESAR CSM avg rel err", f"{r4.measured['csm_are']:.4f}", "0.2523"],
        ["CAESAR MLM avg rel err", f"{r4.measured['mlm_are']:.4f}", "0.3083"],
        ["CAESAR CSM rel err (large flows)", f"{r4.measured['csm_are_top']:.4f}", "<< RCS-lossy"],
        [
            "RCS loss=2/3 avg rel err (large flows)",
            f"{r7.measured['are_loss_2_3_large_flows']:.4f}",
            "0.6768",
        ],
        [
            "RCS loss=9/10 avg rel err (large flows)",
            f"{r7.measured['are_loss_9_10_large_flows']:.4f}",
            "0.9006",
        ],
        [
            "CASE frac estimated ~0 (small budget)",
            f"{r5.measured['small_budget_frac_estimated_zero']:.4f}",
            "~1 ('almost 0')",
        ],
        ["CAESAR vs CASE mean speedup", f"{r8.measured['mean_speedup_vs_case']:.4f}", "0.748"],
        ["CAESAR vs CASE max speedup", f"{r8.measured['max_speedup_vs_case']:.4f}", "0.924"],
        ["CAESAR vs RCS mean speedup", f"{r8.measured['mean_speedup_vs_rcs']:.4f}", "0.755"],
        ["CAESAR vs RCS max speedup", f"{r8.measured['max_speedup_vs_rcs']:.4f}", "0.900"],
    ]
    table = format_table(
        ["claim", "measured", "paper"],
        rows,
        title=f"Headline paper-vs-measured ({setup.describe()})",
    )
    return ExperimentResult(
        experiment_id="headline",
        title="Section 1.5 headline claims, paper vs measured",
        tables=[table],
        measured={
            "caesar_csm_are": r4.measured["csm_are"],
            "caesar_mlm_are": r4.measured["mlm_are"],
            "caesar_csm_are_top": r4.measured["csm_are_top"],
            "rcs_lossy_2_3_are": r7.measured["are_loss_2_3_large_flows"],
            "rcs_lossy_9_10_are": r7.measured["are_loss_9_10_large_flows"],
            "mean_speedup_vs_case": r8.measured["mean_speedup_vs_case"],
            "mean_speedup_vs_rcs": r8.measured["mean_speedup_vs_rcs"],
        },
        notes=[
            "Ordering to verify: CAESAR (CSM & MLM) << RCS-lossy and "
            "<< CASE; CAESAR fastest everywhere in the time model.",
        ],
    )
