"""Scale-invariance check (beyond the paper).

The whole reproduction strategy rests on one claim (DESIGN.md,
trace_setup): scaling the flow count while preserving the paper's
memory-to-traffic ratios preserves relative accuracy, so results at
5 % scale transfer to the paper's 27.7 M-packet workload. This
experiment *tests* that claim: it runs the Fig. 4 pipeline at several
scales and reports how the accuracy metrics move.

Exact invariance is not expected — the tail's second moment grows with
the support bound (which scales with the trace), adding clustering
noise — but top-flow relative error and the scheme orderings must be
stable.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import evaluate, top_flow_are
from repro.analysis.tables import format_table
from repro.experiments.base import ExperimentResult
from repro.experiments.common import build_caesar
from repro.experiments.trace_setup import ExperimentSetup, standard_setup
from repro.traffic.trace import default_paper_trace

DEFAULT_SCALES = (0.01, 0.02, 0.05)


def run(
    setup: ExperimentSetup | None = None,
    scales: tuple[float, ...] = DEFAULT_SCALES,
) -> ExperimentResult:
    base = setup or standard_setup()
    rows = []
    top_ares = []
    for scale in scales:
        sub = ExperimentSetup(
            trace=default_paper_trace(scale=scale, seed=base.seed),
            scale=scale,
            seed=base.seed,
            k=base.k,
        )
        caesar = build_caesar(sub)
        est = caesar.estimate(sub.trace.flows.ids)
        q = evaluate(est, sub.trace.flows.sizes)
        top = max(20, sub.trace.num_flows // 1000)
        top_are = top_flow_are(est, sub.trace.flows.sizes, top=top)
        top_ares.append(top_are)
        rows.append(
            [
                scale,
                sub.trace.num_packets,
                sub.trace.num_flows,
                sub.sram_kb_main,
                top_are,
                q.packet_weighted_are,
                caesar.cache.stats.hit_rate,
            ]
        )
    table = format_table(
        ["scale", "packets", "flows", "SRAM KB", "ARE (top)", "ARE (pkt-wtd)", "hit rate"],
        rows,
        title="Fig. 4 pipeline across workload scales (ratios fixed)",
    )
    spread = float(np.max(top_ares) - np.min(top_ares))
    return ExperimentResult(
        experiment_id="scaling",
        title="Scale invariance of the reproduction strategy",
        tables=[table],
        measured={
            "top_are_spread_across_scales": spread,
            "top_are_smallest_scale": float(top_ares[0]),
            "top_are_largest_scale": float(top_ares[-1]),
        },
        paper_reference={
            "top_are_spread_across_scales": "small: relative accuracy is "
            "set by the preserved memory-to-traffic ratios",
        },
        notes=[
            "Residual drift comes from the tail support growing with "
            "the trace (heavier second moment -> more clustering "
            "noise); orderings between schemes are unaffected.",
        ],
    )
