"""Arrival-pattern sensitivity (beyond the paper).

Section 4.2 assumes "all packets from all flows can be regarded as
arriving uniformly and with equal probability". Real links violate
that in both directions: heavy interleaving (many concurrent flows)
and heavy burstiness (TCP trains). This experiment replays the same
flow set under four arrival models and reports what actually depends
on arrival order:

- cache behaviour (hit rate, eviction mix) — strongly order-dependent;
- modeled line-rate loss — follows the eviction rate;
- estimation accuracy — order-*independent*, because CSM's counter
  sums see only per-flow totals (the split cancellation of
  docs/theory.md again).
"""

from __future__ import annotations

from repro.analysis.metrics import evaluate, top_flow_are
from repro.analysis.tables import format_table
from repro.experiments.base import ExperimentResult
from repro.experiments.common import build_caesar
from repro.experiments.trace_setup import ExperimentSetup, standard_setup
from repro.memmodel.costmodel import caesar_counts
from repro.memmodel.pipeline import IngressModel
from repro.traffic.packets import bursty_stream, round_robin_stream
from repro.traffic.trace import Trace


def _streams(setup: ExperimentSetup):
    flows = setup.trace.flows
    return {
        "uniform": setup.trace.packets,
        "bursty(64)": bursty_stream(flows, burst_length=64, seed=setup.seed + 2),
        "bursty(4096)": bursty_stream(flows, burst_length=4096, seed=setup.seed + 3),
        "round-robin": round_robin_stream(flows),
    }


def run(setup: ExperimentSetup | None = None) -> ExperimentResult:
    setup = setup or standard_setup()
    truth = setup.trace.flows.sizes
    ids = setup.trace.flows.ids
    top = max(20, setup.trace.num_flows // 1000)
    model = IngressModel()

    rows = []
    ares = {}
    hit_rates = {}
    losses = {}
    for name, packets in _streams(setup).items():
        shuffled_setup = ExperimentSetup(
            trace=Trace(packets=packets, flows=setup.trace.flows),
            scale=setup.scale,
            seed=setup.seed,
            k=setup.k,
        )
        caesar = build_caesar(shuffled_setup)
        stats = caesar.cache.stats
        est = caesar.estimate(ids)
        q = evaluate(est, truth)
        t = model.process(caesar_counts(stats, setup.k))
        ares[name] = top_flow_are(est, truth, top=top)
        hit_rates[name] = stats.hit_rate
        losses[name] = t.loss_rate
        rows.append(
            [
                name,
                stats.hit_rate,
                stats.total_evictions,
                stats.overflow_evictions / max(1, stats.total_evictions),
                ares[name],
                q.packet_weighted_are,
                t.loss_rate,
            ]
        )

    table = format_table(
        [
            "arrival",
            "hit rate",
            "evictions",
            "overflow frac",
            "ARE (top flows)",
            "ARE (pkt-wtd)",
            "modeled loss",
        ],
        rows,
        title=f"Arrival-pattern sensitivity ({setup.describe()})",
    )
    spread = max(ares.values()) - min(ares.values())
    return ExperimentResult(
        experiment_id="arrivals",
        title="Arrival-pattern sensitivity of cache behaviour vs accuracy",
        tables=[table],
        measured={
            "accuracy_spread_across_patterns": spread,
            "hit_rate_uniform": hit_rates["uniform"],
            "hit_rate_bursty": hit_rates["bursty(4096)"],
            "loss_uniform": losses["uniform"],
            "loss_bursty": losses["bursty(4096)"],
        },
        paper_reference={
            "accuracy_spread_across_patterns": "~0: accuracy is arrival-order "
            "independent (per-flow totals only)",
            "hit_rate_bursty": "> uniform: temporal locality is the cache's friend",
            "loss_bursty": "-> 0: bursty arrival shrinks eviction traffic below line rate",
        },
        notes=[
            "The uniform model (the paper's assumption) is the *worst* "
            "case for the cache among realistic arrivals; real traces "
            "with TCP burstiness behave like the bursty rows.",
        ],
    )
