"""Flow volume vs flow size — Section 3.1 / Section 6's byte path.

The paper: cache entries can count "either packets or bytes", and "the
flow size and flow volume have almost the same distribution, except
for the magnitude, so we only focus on the flow size". This experiment
runs the byte path end to end: the same trace with IMIX packet
lengths, a volume-sized CAESAR, and a side-by-side accuracy comparison
of size measurement vs volume measurement — verifying both that the
volume estimates track ground-truth bytes and that the two
distributions coincide up to the mean packet length.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import evaluate, top_flow_are
from repro.analysis.tables import format_table
from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.common import build_caesar
from repro.experiments.trace_setup import ExperimentSetup, standard_setup
from repro.sram.layout import bank_size_for_budget, cache_entries_for_budget
from repro.traffic.lengths import IMIX_MEAN, flow_volumes, imix_lengths


def run(setup: ExperimentSetup | None = None) -> ExperimentResult:
    setup = setup or standard_setup()
    trace = setup.trace
    top = max(20, trace.num_flows // 1000)

    # Size path (the paper's default), at the Fig. 4 budget.
    caesar_size = build_caesar(setup)
    est_size = caesar_size.estimate(trace.flows.ids)
    q_size = evaluate(est_size, trace.flows.sizes)

    # Volume path: same budgets, byte-scaled geometry (y and l grow by
    # the mean packet length; same counter *count* so the SRAM budget
    # scales by the wider counters, as a byte deployment would).
    lengths = imix_lengths(trace.num_packets, seed=setup.seed + 7)
    vol_ids, volumes = flow_volumes(trace.packets, lengths)
    y_bytes = max(2, int(2 * trace.num_packets * IMIX_MEAN / trace.num_flows))
    cfg = CaesarConfig(
        cache_entries=cache_entries_for_budget(setup.cache_kb, y_bytes),
        entry_capacity=y_bytes,
        k=setup.k,
        bank_size=bank_size_for_budget(setup.sram_kb_main, setup.k, 2**20 - 1),
        counter_capacity=2**31 - 1,
        seed=setup.seed,
    )
    caesar_vol = Caesar(cfg)
    caesar_vol.process(trace.packets, lengths)
    caesar_vol.finalize()
    est_vol = caesar_vol.estimate(vol_ids)
    q_vol = evaluate(est_vol, volumes)

    # The "same distribution except magnitude" claim: correlation of
    # per-flow volume with size x mean length.
    order = np.argsort(trace.flows.ids)
    sizes_sorted = trace.flows.sizes[order]
    ratio = volumes / np.maximum(sizes_sorted, 1)
    corr = float(np.corrcoef(volumes, sizes_sorted)[0, 1])

    rows = [
        ["size (packets)", q_size.packet_weighted_are,
         top_flow_are(est_size, trace.flows.sizes, top=top),
         q_size.mean_signed_error_packets / trace.mean_flow_size],
        ["volume (bytes)", q_vol.packet_weighted_are,
         top_flow_are(est_vol, volumes, top=top),
         q_vol.mean_signed_error_packets / (trace.mean_flow_size * IMIX_MEAN)],
    ]
    table = format_table(
        ["path", "ARE (weighted)", "ARE (top flows)", "bias / mean"],
        rows,
        title=f"Size vs volume measurement ({setup.describe()})",
    )
    return ExperimentResult(
        experiment_id="volume",
        title="Flow volume (bytes) measurement — Section 3.1's byte path",
        tables=[table],
        measured={
            "size_are_top": top_flow_are(est_size, trace.flows.sizes, top=top),
            "volume_are_top": top_flow_are(est_vol, volumes, top=top),
            "volume_size_correlation": corr,
            "mean_bytes_per_packet": float(ratio.mean()),
            "volume_mass_conserved": float(
                caesar_vol.counters.total_mass == int(lengths.sum())
            ),
        },
        paper_reference={
            "volume_size_correlation": "~1: 'almost the same distribution, "
            "except for the magnitude' (Section 3.1)",
            "mean_bytes_per_packet": f"IMIX mean {IMIX_MEAN:.1f} B",
            "volume_are_top": "comparable to the size path (same mechanism)",
        },
    )
