"""Extension experiment — related-work shootout (beyond the paper).

Places the Section-2 related-work schemes (DISCO, SAC, ANLS, CEDAR,
ICE-buckets, Counter Braids, Count-Min) on the same trace at the same
per-scheme SRAM budget as CAESAR, completing the comparison the paper
only argues qualitatively ("compression methods have high
computational complexity and low storage efficiency").

These single-counter schemes are cache-free and pay one compressed
update per packet, so they also inherit RCS's line-rate loss problem;
here we evaluate them *lossless* to isolate pure storage/estimation
quality. Run on a reduced trace by default — the per-packet Python
loops of the compressed-counter schemes are the slow path of the
entire suite.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import evaluate
from repro.analysis.tables import format_table
from repro.baselines.compression.anls import AnlsSketch
from repro.baselines.compression.cedar import CedarSketch
from repro.baselines.compression.disco import DiscoSketch
from repro.baselines.compression.icebuckets import IceBucketsSketch
from repro.baselines.compression.sac import SacSketch
from repro.baselines.counter_braids import CounterBraids, CounterBraidsConfig
from repro.baselines.counter_tree import CounterTree, CounterTreeConfig
from repro.baselines.countmin import CountMin, CountMinConfig
from repro.baselines.sampling import SampledCounter
from repro.experiments.base import ExperimentResult
from repro.experiments.common import build_caesar
from repro.experiments.trace_setup import ExperimentSetup, standard_setup
from repro.traffic.trace import Trace


def _subsample(setup: ExperimentSetup, max_packets: int) -> Trace:
    """A prefix-truncated trace for the slow per-packet schemes."""
    if setup.trace.num_packets <= max_packets:
        return setup.trace
    return Trace.from_packets(setup.trace.packets[:max_packets])


def run(setup: ExperimentSetup | None = None, max_packets: int = 400_000) -> ExperimentResult:
    setup = setup or standard_setup()
    trace = _subsample(setup, max_packets)
    truth = trace.flows.sizes
    ids = trace.flows.ids
    max_val = float(truth.max())
    q_flows = trace.num_flows

    # Budget: bits equal to CAESAR's main SRAM budget, rescaled to this
    # (possibly truncated) trace by flow count.
    budget_kb = setup.sram_kb_main * trace.num_flows / setup.trace.num_flows
    budget_bits = int(budget_kb * 8192)

    rows = []

    def add(name: str, est: np.ndarray, kb: float, per_packet: str) -> None:
        q = evaluate(est, truth)
        rows.append(
            [
                name,
                f"{kb:.2f}",
                per_packet,
                q.binned_are,
                q.packet_weighted_are,
                q.mean_signed_rel_error,
            ]
        )

    # CAESAR on the same (sub)trace at the same budget.
    sub_setup = ExperimentSetup(trace=trace, scale=setup.scale, seed=setup.seed, k=setup.k)
    caesar = build_caesar(sub_setup, sram_kb=budget_kb)
    add("CAESAR-CSM", caesar.estimate(ids, "csm"), budget_kb, "1 cache access")

    # Compressed single-counter schemes at the same total budget.
    # Compression needs a handful of stored states to stretch over
    # (CEDAR's level recurrence, ANLS's exponent), so the width is
    # floored at 4 bits and the counter count absorbs the budget —
    # fewer counters than flows simply means hash collisions, the
    # honest cost of a tiny budget.
    bits = max(4, budget_bits // q_flows)
    num_counters = max(16, budget_bits // bits)
    cap = (1 << min(bits, 40)) - 1

    disco = DiscoSketch(num_counters, cap, max_val)
    disco.process(trace.packets)
    add("DISCO", disco.estimate(ids), disco.array.memory_kilobytes, "1 compressed update")

    anls = AnlsSketch(num_counters, cap, max_val)
    anls.process(trace.packets)
    add("ANLS", anls.estimate(ids), anls.array.memory_kilobytes, "1 compressed update")

    cedar = CedarSketch(num_counters, cap, max_val)
    cedar.process(trace.packets)
    add("CEDAR", cedar.estimate(ids), cedar.memory_kilobytes, "1 compressed update")

    ice = IceBucketsSketch(num_counters, cap, max_val)
    ice.process(trace.packets)
    add("ICE-buckets", ice.estimate(ids), ice.memory_kilobytes, "1 compressed update")

    sac_counters = budget_bits // 10  # 6-bit mantissa + 4-bit exponent
    sac = SacSketch(sac_counters)
    sac.process(trace.packets)
    add("SAC", sac.estimate(ids), sac.memory_kilobytes, "1 compressed update")

    # Counter Braids and Count-Min at the same total counter bits
    # (30-bit counters like CAESAR's array).
    cb_bank = max(1, budget_bits // (3 * 30))
    braids = CounterBraids(CounterBraidsConfig(d=3, bank_size=cb_bank))
    braids.process(trace.packets)
    add("CounterBraids", braids.decode(ids), 3 * cb_bank * 30 / 8192, "3 SRAM updates")

    cm = CountMin(CountMinConfig(depth=3, width=cb_bank))
    cm.process(trace.packets)
    add("CountMin", cm.estimate(ids), 3 * cb_bank * 30 / 8192, "3 SRAM updates")

    # Counter Tree (cited [2]): tree-shared high-order bits. 6-bit
    # leaves plus a shared 24-bit parent per 8 leaves = 9 bits/leaf.
    ct_cfg = CounterTreeConfig(num_leaves=max(16, budget_bits // 9), leaf_bits=6, degree=8)
    ctree = CounterTree(ct_cfg)
    ctree.process(trace.packets)
    add("CounterTree", ctree.estimate(ids), ct_cfg.memory_kilobytes, "1-2 SRAM updates")

    # Sampled NetFlow (Section 2.2's family): rate chosen so the exact
    # per-sample state fits the same budget (96 bits per tracked flow).
    sampler = SampledCounter(sampling_rate=0.02, seed=setup.seed)
    sampler.process(trace.packets)
    add(
        "Sampled(2%)",
        sampler.estimate(ids),
        sampler.memory_kilobytes(),
        "amortized 0.02 updates",
    )

    table = format_table(
        ["scheme", "KB", "per-packet cost", "ARE/bin", "ARE/packet", "bias"],
        rows,
        title=(
            f"Related-work shootout at equal memory "
            f"(n={trace.num_packets}, Q={trace.num_flows})"
        ),
    )
    are_packet = {r[0]: r[4] for r in rows}
    return ExperimentResult(
        experiment_id="extensions",
        title="Related-work schemes vs CAESAR at equal memory (extension)",
        tables=[table],
        measured={
            "caesar_are_packet": are_packet["CAESAR-CSM"],
            "disco_are_packet": are_packet["DISCO"],
            "counter_braids_are_packet": are_packet["CounterBraids"],
        },
        paper_reference={
            "caesar_are_packet": "paper argues sharing beats per-flow compression "
            "at equal memory (Section 2.1); see notes for where that holds",
        },
        notes=[
            "Lossless comparison; per-packet cost column shows why the "
            "cache-free schemes additionally lose packets at line rate.",
            "Sampled NetFlow reports its true exact-counting state in "
            "the KB column — an order of magnitude over the sketch "
            "budget even at 2 % sampling, which is the Section 2.2 "
            "memory argument; its mice are simply never observed "
            "(see test_sampling_countertree).",
            "The compressed single-counter schemes collide flows when "
            "the budget affords fewer counters than flows, inflating "
            "their bias; they can look better than CAESAR on "
            "mice-dominated ARE at extreme scarcity while losing badly "
            "on packet-weighted error — the storage-efficiency point "
            "of Section 2.1 in quantitative form.",
        ],
    )
