"""Design-choice ablations (DESIGN.md Section 4).

Not figures from the paper — these sweep the design parameters the
paper fixes, to show *why* it fixes them:

- ``k`` (mapped counters per flow): the paper says shared-counter
  schemes "perform well when k is not too big (e.g., 3)";
- ``y`` (cache-entry capacity): the ``y = 2 n/Q`` rule should make
  overflow evictions rare (``p_y -> 0``) without wasting cache bits;
- replacement policy (LRU vs random): Section 4.2's i.i.d. eviction
  argument needs victim choice independent of stored value — both
  qualify, so accuracy should match;
- remainder scatter (random vs deterministic-even): the randomized
  unit-by-unit allocation is what makes ``EV_i2`` binomial;
- SRAM budget sweep: error vs memory, CAESAR's storage-efficiency
  curve;
- confidence-interval coverage vs reliability ``alpha`` (Eqs. 26/32).
"""

from __future__ import annotations

from repro.analysis.metrics import ci_coverage, evaluate
from repro.analysis.tables import format_table
from repro.experiments.base import ExperimentResult
from repro.experiments.common import build_caesar
from repro.experiments.trace_setup import ExperimentSetup, standard_setup


def sweep_k(setup: ExperimentSetup, ks=(1, 2, 3, 4, 6)) -> list[list[object]]:
    """ARE vs k at a fixed SRAM budget."""
    rows = []
    truth = setup.trace.flows.sizes
    for k in ks:
        caesar = build_caesar(setup, k=k)
        q = evaluate(caesar.estimate(setup.trace.flows.ids, "csm"), truth)
        rows.append([k, q.binned_are, q.per_flow_are, q.mean_signed_rel_error])
    return rows


def sweep_entry_capacity(setup: ExperimentSetup, factors=(0.5, 1.0, 2.0, 4.0)) -> list[list[object]]:
    """Overflow-eviction probability and ARE vs the y sizing rule."""
    from repro.core.config import CaesarConfig
    from repro.core.caesar import Caesar
    from repro.sram.layout import bank_size_for_budget, cache_entries_for_budget

    rows = []
    trace = setup.trace
    truth = trace.flows.sizes
    mu = trace.mean_flow_size
    for f in factors:
        y = max(2, int(f * mu))
        cfg = CaesarConfig(
            cache_entries=cache_entries_for_budget(setup.cache_kb, y),
            entry_capacity=y,
            k=setup.k,
            bank_size=bank_size_for_budget(setup.sram_kb_main, setup.k, 2**30),
            seed=setup.seed,
        )
        caesar = Caesar(cfg)
        caesar.process(trace.packets)
        caesar.finalize()
        stats = caesar.cache.stats
        total_ev = max(1, stats.total_evictions)
        q = evaluate(caesar.estimate(trace.flows.ids, "csm"), truth)
        rows.append(
            [
                f"{f:g}*mu={y}",
                stats.overflow_evictions / total_ev,
                stats.total_evictions,
                q.binned_are,
            ]
        )
    return rows


def sweep_policies(setup: ExperimentSetup) -> list[list[object]]:
    """LRU vs random replacement; random vs even remainder scatter."""
    rows = []
    truth = setup.trace.flows.sizes
    for policy in ("lru", "random"):
        for remainder in ("random", "even"):
            caesar = build_caesar(setup, replacement=policy, remainder=remainder)
            q = evaluate(caesar.estimate(setup.trace.flows.ids, "csm"), truth)
            rows.append([policy, remainder, q.binned_are, q.mean_signed_rel_error])
    return rows


def sweep_sram(setup: ExperimentSetup, factors=(0.25, 0.5, 1.0, 2.0, 4.0)) -> list[list[object]]:
    """Accuracy vs SRAM budget (CAESAR's memory-error tradeoff)."""
    rows = []
    truth = setup.trace.flows.sizes
    for f in factors:
        caesar = build_caesar(setup, sram_kb=setup.sram_kb_main * f)
        q = evaluate(caesar.estimate(setup.trace.flows.ids, "csm"), truth)
        rows.append([f"{setup.sram_kb_main * f:.2f}KB", q.binned_are, q.per_flow_are])
    return rows


def ci_coverage_rows(setup: ExperimentSetup, alphas=(0.80, 0.90, 0.95, 0.99)) -> list[list[object]]:
    """Measured CI coverage vs nominal reliability.

    Compares the paper's Eqs. 26/32 with the clustering-aware
    empirical intervals (library extension): the paper's variance
    model omits whole-flow collision noise, so on heavy-tailed
    traffic its intervals under-cover by orders of magnitude.
    """
    caesar = build_caesar(setup)
    ids = setup.trace.flows.ids
    truth = setup.trace.flows.sizes
    rows = []
    for alpha in alphas:
        lo_c, hi_c = caesar.confidence_interval(ids, "csm", alpha=alpha)
        lo_m, hi_m = caesar.confidence_interval(ids, "mlm", alpha=alpha)
        lo_e, hi_e = caesar.confidence_interval(
            ids, "csm", alpha=alpha, variance_model="empirical"
        )
        rows.append(
            [
                alpha,
                ci_coverage(lo_c, hi_c, truth),
                ci_coverage(lo_m, hi_m, truth),
                ci_coverage(lo_e, hi_e, truth),
            ]
        )
    return rows


def run(setup: ExperimentSetup | None = None) -> ExperimentResult:
    setup = setup or standard_setup()
    k_rows = sweep_k(setup)
    y_rows = sweep_entry_capacity(setup)
    p_rows = sweep_policies(setup)
    m_rows = sweep_sram(setup)
    c_rows = ci_coverage_rows(setup)

    tables = [
        format_table(["k", "ARE/bin", "ARE/flow", "bias"], k_rows, title="k sweep (fixed SRAM)"),
        format_table(
            ["y rule", "overflow frac", "evictions", "ARE/bin"],
            y_rows,
            title="cache-entry capacity sweep (y = f * mu)",
        ),
        format_table(
            ["replacement", "remainder", "ARE/bin", "bias"],
            p_rows,
            title="replacement policy x remainder scatter",
        ),
        format_table(["SRAM", "ARE/bin", "ARE/flow"], m_rows, title="SRAM budget sweep"),
        format_table(
            ["alpha", "CSM paper (Eq.26)", "MLM paper (Eq.32)", "CSM empirical (ext)"],
            c_rows,
            title="confidence-interval coverage",
        ),
    ]
    k_ares = {row[0]: row[1] for row in k_rows}
    return ExperimentResult(
        experiment_id="ablations",
        title="Design-choice ablations",
        tables=tables,
        measured={
            "best_k": float(min(k_ares, key=k_ares.get)),
            "overflow_frac_at_2mu": float(y_rows[2][1]),
            "lru_random_gap": float(abs(p_rows[0][2] - p_rows[2][2])),
        },
        paper_reference={
            "best_k": "k ~ 3 'performs well when k is not too big' (Section 4.2)",
            "overflow_frac_at_2mu": "p_y -> 0 at y = 2 n/Q (Section 4.2)",
        },
        notes=[
            "k sweep: CSM's error grows monotonically with k at fixed "
            "memory, because the own-flow split noise cancels exactly in "
            "the counter sum while each extra counter collects extra "
            "sharing noise. k > 1 buys saturation range (narrow counters) "
            "and robust/MLM decoding, not lower CSM variance — the "
            "paper's 'k not too big' in sharper form.",
            "y sweep: accuracy is y-invariant for the same cancellation "
            "reason; y only controls the overflow-eviction fraction (and "
            "hence the online SRAM traffic).",
            "CI coverage: Eqs. 26/32 omit whole-flow clustering noise and "
            "under-cover drastically on heavy tails; the empirical "
            "variant (extension) restores near-nominal coverage.",
        ],
    )
