"""Robustness sweep (beyond the paper): seeds, hash families, workloads.

Three ways the headline results could have been an artifact, each
swept and reported:

- **seed sensitivity** — different hash/eviction seeds on the same
  trace: spread of the accuracy metrics;
- **hash family** — splitmix64 mixing vs 3-independent tabulation
  hashing selecting the counters;
- **workload shape** — the calibrated Zipf vs an explicit
  mice+elephant mixture vs a light-tailed geometric control (where
  clustering noise should collapse and accuracy sharpen).

A second runner, :func:`run_faults` (registered as ``faults``),
exercises the resilience subsystem: a drop-rate sweep measuring how far
the estimator-side compensation (:attr:`Caesar.effective_mass`) recovers
accuracy lost to dropped eviction chunks, plus one row per fault class
of docs/resilience.md's taxonomy.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import evaluate, top_flow_are
from repro.analysis.tables import format_table
from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.trace_setup import ExperimentSetup, standard_setup
from repro.hashing.tabulation import TabulationIndexer
from repro.resilience.faults import FaultPlan
from repro.resilience.health import health_of
from repro.traffic.distributions import (
    BoundedZipf,
    GeometricDist,
    MixtureDist,
)
from repro.traffic.flows import FlowSet
from repro.traffic.packets import uniform_stream
from repro.traffic.trace import Trace


def _run(trace: Trace, setup: ExperimentSetup, seed: int, tabulation: bool = False):
    cfg = CaesarConfig.for_budgets(
        sram_kb=setup.sram_kb_main,
        cache_kb=setup.cache_kb,
        num_packets=trace.num_packets,
        num_flows=trace.num_flows,
        k=setup.k,
        seed=seed,
    )
    caesar = Caesar(cfg)
    if tabulation:
        caesar.indexer = TabulationIndexer(cfg.k, cfg.bank_size, seed=seed)
    caesar.process(trace.packets)
    caesar.finalize()
    est = caesar.estimate(trace.flows.ids)
    top = max(20, trace.num_flows // 1000)
    return top_flow_are(est, trace.flows.sizes, top=top), evaluate(
        est, trace.flows.sizes
    ).packet_weighted_are


def run(setup: ExperimentSetup | None = None, num_seeds: int = 5) -> ExperimentResult:
    setup = setup or standard_setup()
    trace = setup.trace

    # -- seeds ------------------------------------------------------------
    seed_rows = []
    seed_tops = []
    for s in range(num_seeds):
        top_are, pkt_are = _run(trace, setup, seed=1000 + s)
        seed_tops.append(top_are)
        seed_rows.append([1000 + s, top_are, pkt_are])
    seed_table = format_table(
        ["seed", "ARE (top)", "ARE (pkt-wtd)"], seed_rows, title="Seed sweep"
    )

    # -- hash family -------------------------------------------------------
    fam_rows = []
    fam_tops = {}
    for name, tab in (("splitmix64", False), ("tabulation", True)):
        top_are, pkt_are = _run(trace, setup, seed=setup.seed, tabulation=tab)
        fam_tops[name] = top_are
        fam_rows.append([name, top_are, pkt_are])
    fam_table = format_table(
        ["family", "ARE (top)", "ARE (pkt-wtd)"], fam_rows, title="Hash-family sweep"
    )

    # -- workload shape -----------------------------------------------------
    mu = trace.mean_flow_size
    max_size = int(trace.flows.sizes.max())
    workloads = {
        "calibrated zipf": None,  # the default trace itself
        "mice+elephants": MixtureDist(
            [GeometricDist(min(0.9, 2.0 / mu), 50), BoundedZipf(1.05, max_size)],
            [0.97, 0.03],
        ),
        "geometric (light tail)": GeometricDist(min(0.9, 1.0 / mu), max(50, int(6 * mu))),
    }
    wl_rows = []
    wl_tops = {}
    wl_pkts = {}
    for name, dist in workloads.items():
        if dist is None:
            wl_trace = trace
        else:
            flows = FlowSet.generate(trace.num_flows, dist, seed=setup.seed + 5)
            wl_trace = Trace(
                packets=uniform_stream(flows, seed=setup.seed + 6), flows=flows
            )
        top_are, pkt_are = _run(wl_trace, setup, seed=setup.seed)
        wl_tops[name] = top_are
        wl_pkts[name] = pkt_are
        wl_rows.append(
            [name, wl_trace.num_packets, float(wl_trace.flows.sizes.max()), top_are, pkt_are]
        )
    wl_table = format_table(
        ["workload", "packets", "max flow", "ARE (top)", "ARE (pkt-wtd)"],
        wl_rows,
        title="Workload-shape sweep (same memory ratios)",
    )

    return ExperimentResult(
        experiment_id="robustness",
        title="Robustness: seeds, hash families, workload shapes",
        tables=[seed_table, fam_table, wl_table],
        measured={
            "seed_top_are_spread": float(np.max(seed_tops) - np.min(seed_tops)),
            "family_top_are_gap": abs(fam_tops["splitmix64"] - fam_tops["tabulation"]),
            "light_tail_pkt_are": wl_pkts["geometric (light tail)"],
            "heavy_tail_pkt_are": wl_pkts["calibrated zipf"],
            "light_tail_top_are": wl_tops["geometric (light tail)"],
        },
        paper_reference={
            "seed_top_are_spread": "small: results not seed artifacts",
            "family_top_are_gap": "small: results not mixer artifacts",
            "light_tail_pkt_are": "<< heavy tail: clustering noise is "
            "tail-driven (docs/theory.md)",
        },
        notes=[
            "The light-tail control cuts the traffic-weighted error "
            "several-fold (no elephants -> no clustering noise) while "
            "*raising* the top-flow relative error — its largest flows "
            "are only a few times the per-counter noise. Shared-counter "
            "accuracy is relative to how far a flow stands above the "
            "noise floor, not to tail heaviness per se.",
        ],
    )


#: Small eviction chunks so per-chunk fault draws act at fine granularity
#: (the default 8192-row buffer would make "drop a chunk" a catastrophe).
_FAULT_BUFFER_ROWS = 256


def _faulty_run(
    trace, setup: ExperimentSetup, plan: FaultPlan | None
) -> tuple[Caesar, float, float]:
    """One CAESAR run under ``plan``; returns (instance, compensated
    packet-weighted ARE, uncompensated packet-weighted ARE)."""
    cfg = CaesarConfig.for_budgets(
        sram_kb=setup.sram_kb_main,
        cache_kb=setup.cache_kb,
        num_packets=trace.num_packets,
        num_flows=trace.num_flows,
        k=setup.k,
        seed=setup.seed,
        engine=setup.engine,
    )
    caesar = Caesar(cfg, buffer_capacity=_FAULT_BUFFER_ROWS, fault_plan=plan)
    caesar.process(trace.packets)
    caesar.finalize()
    truth = trace.flows.sizes
    comp = evaluate(caesar.estimate(trace.flows.ids), truth).packet_weighted_are
    raw = evaluate(
        caesar.estimate(trace.flows.ids, compensate=False), truth
    ).packet_weighted_are
    return caesar, comp, raw


def run_faults(setup: ExperimentSetup | None = None) -> ExperimentResult:
    """Fault-injection sweep: estimator compensation under degradation.

    Sweeps the eviction-chunk drop rate and, separately, one plan per
    fault class (duplication, bit flips, a mid-stream cache wipe,
    stuck-at-max counters), reporting compensated vs uncompensated
    accuracy and the health status each run ends in.
    """
    setup = setup or standard_setup()
    trace = setup.trace

    # -- drop-rate sweep ----------------------------------------------------
    drop_rows = []
    drop_measured = {}
    for rate in (0.0, 0.02, 0.05, 0.1, 0.2):
        plan = FaultPlan(drop_chunk=rate) if rate else None
        caesar, comp, raw = _faulty_run(trace, setup, plan)
        snap = health_of(caesar)
        drop_rows.append(
            [rate, snap.lost_eviction_mass, comp, raw, snap.status]
        )
        drop_measured[f"drop_{rate}"] = {"compensated": comp, "uncompensated": raw}
    drop_table = format_table(
        ["drop rate", "lost mass", "ARE (comp)", "ARE (raw)", "health"],
        drop_rows,
        title="Eviction-chunk drop sweep (pkt-weighted ARE)",
    )

    # -- fault taxonomy ------------------------------------------------------
    wipe_at = trace.num_packets // 2
    taxonomy = {
        "duplicate 5%": FaultPlan(duplicate_chunk=0.05),
        "bit flips 1%/chunk": FaultPlan(flip_bit=0.01),
        "cache wipe @mid": FaultPlan(wipe_cache_at=(wipe_at,)),
        "3 stuck-at-max": FaultPlan(stuck_counters=3),
    }
    tax_rows = []
    for name, plan in taxonomy.items():
        caesar, comp, raw = _faulty_run(trace, setup, plan)
        snap = health_of(caesar)
        tax_rows.append(
            [
                name,
                snap.lost_eviction_mass,
                snap.duplicated_mass,
                snap.saturated_mass,
                comp,
                raw,
                snap.status,
            ]
        )
    tax_table = format_table(
        ["fault", "lost", "duplicated", "saturated", "ARE (comp)", "ARE (raw)", "health"],
        tax_rows,
        title="Fault taxonomy (one class per run)",
    )

    baseline = drop_rows[0][2]
    worst_comp = drop_rows[-1][2]
    worst_raw = drop_rows[-1][3]
    return ExperimentResult(
        experiment_id="faults",
        title="Fault injection: compensated vs raw estimation under degradation",
        tables=[drop_table, tax_table],
        measured={
            "healthy_pkt_are": baseline,
            "drop20_compensated_pkt_are": worst_comp,
            "drop20_uncompensated_pkt_are": worst_raw,
            "compensation_gain_at_drop20": worst_raw - worst_comp,
        },
        paper_reference={
            "healthy_pkt_are": "matches the robustness baseline (no faults)",
            "compensation_gain_at_drop20": "> 0: subtracting known-lost mass "
            "from n recovers part of the dropped accuracy",
        },
        notes=[
            "Compensation corrects the *noise floor* (the n/L term every "
            "counter shares), not the per-flow mass a dropped chunk took "
            "with it — so it narrows, but cannot close, the gap to the "
            "healthy baseline. Lost mass is reported via health signals "
            "so operators know the residual bias is there.",
        ],
    )
