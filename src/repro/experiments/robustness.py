"""Robustness sweep (beyond the paper): seeds, hash families, workloads.

Three ways the headline results could have been an artifact, each
swept and reported:

- **seed sensitivity** — different hash/eviction seeds on the same
  trace: spread of the accuracy metrics;
- **hash family** — splitmix64 mixing vs 3-independent tabulation
  hashing selecting the counters;
- **workload shape** — the calibrated Zipf vs an explicit
  mice+elephant mixture vs a light-tailed geometric control (where
  clustering noise should collapse and accuracy sharpen).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import evaluate, top_flow_are
from repro.analysis.tables import format_table
from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.trace_setup import ExperimentSetup, standard_setup
from repro.hashing.tabulation import TabulationIndexer
from repro.traffic.distributions import (
    BoundedZipf,
    GeometricDist,
    MixtureDist,
)
from repro.traffic.flows import FlowSet
from repro.traffic.packets import uniform_stream
from repro.traffic.trace import Trace


def _run(trace: Trace, setup: ExperimentSetup, seed: int, tabulation: bool = False):
    cfg = CaesarConfig.for_budgets(
        sram_kb=setup.sram_kb_main,
        cache_kb=setup.cache_kb,
        num_packets=trace.num_packets,
        num_flows=trace.num_flows,
        k=setup.k,
        seed=seed,
    )
    caesar = Caesar(cfg)
    if tabulation:
        caesar.indexer = TabulationIndexer(cfg.k, cfg.bank_size, seed=seed)
    caesar.process(trace.packets)
    caesar.finalize()
    est = caesar.estimate(trace.flows.ids)
    top = max(20, trace.num_flows // 1000)
    return top_flow_are(est, trace.flows.sizes, top=top), evaluate(
        est, trace.flows.sizes
    ).packet_weighted_are


def run(setup: ExperimentSetup | None = None, num_seeds: int = 5) -> ExperimentResult:
    setup = setup or standard_setup()
    trace = setup.trace

    # -- seeds ------------------------------------------------------------
    seed_rows = []
    seed_tops = []
    for s in range(num_seeds):
        top_are, pkt_are = _run(trace, setup, seed=1000 + s)
        seed_tops.append(top_are)
        seed_rows.append([1000 + s, top_are, pkt_are])
    seed_table = format_table(
        ["seed", "ARE (top)", "ARE (pkt-wtd)"], seed_rows, title="Seed sweep"
    )

    # -- hash family -------------------------------------------------------
    fam_rows = []
    fam_tops = {}
    for name, tab in (("splitmix64", False), ("tabulation", True)):
        top_are, pkt_are = _run(trace, setup, seed=setup.seed, tabulation=tab)
        fam_tops[name] = top_are
        fam_rows.append([name, top_are, pkt_are])
    fam_table = format_table(
        ["family", "ARE (top)", "ARE (pkt-wtd)"], fam_rows, title="Hash-family sweep"
    )

    # -- workload shape -----------------------------------------------------
    mu = trace.mean_flow_size
    max_size = int(trace.flows.sizes.max())
    workloads = {
        "calibrated zipf": None,  # the default trace itself
        "mice+elephants": MixtureDist(
            [GeometricDist(min(0.9, 2.0 / mu), 50), BoundedZipf(1.05, max_size)],
            [0.97, 0.03],
        ),
        "geometric (light tail)": GeometricDist(min(0.9, 1.0 / mu), max(50, int(6 * mu))),
    }
    wl_rows = []
    wl_tops = {}
    wl_pkts = {}
    for name, dist in workloads.items():
        if dist is None:
            wl_trace = trace
        else:
            flows = FlowSet.generate(trace.num_flows, dist, seed=setup.seed + 5)
            wl_trace = Trace(
                packets=uniform_stream(flows, seed=setup.seed + 6), flows=flows
            )
        top_are, pkt_are = _run(wl_trace, setup, seed=setup.seed)
        wl_tops[name] = top_are
        wl_pkts[name] = pkt_are
        wl_rows.append(
            [name, wl_trace.num_packets, float(wl_trace.flows.sizes.max()), top_are, pkt_are]
        )
    wl_table = format_table(
        ["workload", "packets", "max flow", "ARE (top)", "ARE (pkt-wtd)"],
        wl_rows,
        title="Workload-shape sweep (same memory ratios)",
    )

    return ExperimentResult(
        experiment_id="robustness",
        title="Robustness: seeds, hash families, workload shapes",
        tables=[seed_table, fam_table, wl_table],
        measured={
            "seed_top_are_spread": float(np.max(seed_tops) - np.min(seed_tops)),
            "family_top_are_gap": abs(fam_tops["splitmix64"] - fam_tops["tabulation"]),
            "light_tail_pkt_are": wl_pkts["geometric (light tail)"],
            "heavy_tail_pkt_are": wl_pkts["calibrated zipf"],
            "light_tail_top_are": wl_tops["geometric (light tail)"],
        },
        paper_reference={
            "seed_top_are_spread": "small: results not seed artifacts",
            "family_top_are_gap": "small: results not mixer artifacts",
            "light_tail_pkt_are": "<< heavy tail: clustering noise is "
            "tail-driven (docs/theory.md)",
        },
        notes=[
            "The light-tail control cuts the traffic-weighted error "
            "several-fold (no elephants -> no clustering noise) while "
            "*raising* the top-flow relative error — its largest flows "
            "are only a few times the per-counter noise. Shared-counter "
            "accuracy is relative to how far a flow stands above the "
            "noise floor, not to tail heaviness per se.",
        ],
    )
