"""Single box vs fused multi-vantage fabric (library extension).

The paper measures on one box; the fabric experiment deploys the same
total workload over a 6-node PATH topology — every flow observed at
each vantage on its hashed (ingress, egress) route, each vantage a
full CAESAR at the Fig. 4 budget with an independent seed — and fuses
the per-vantage estimates at query time (min / inverse-variance /
weighted MLE, :mod:`repro.fabric.fusion`).

What it demonstrates: per-vantage observations carry quasi-independent
sharing noise (different seeds *and* different background traffic), so
fusing them averages the noise down — on the best single vantage's own
flow subset, the MLE fuser beats that vantage's mean relative error,
which is the headline number the fabric tests assert.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.metrics import evaluate
from repro.core.config import CaesarConfig
from repro.experiments.base import ExperimentResult
from repro.experiments.common import accuracy_table, build_caesar
from repro.experiments.trace_setup import ExperimentSetup, standard_setup
from repro.fabric import FUSION_METHODS, Fabric, path_topology

#: The evaluation topology: a 6-hop path (ISSUE shape, PATH:6).
PATH_NODES = 6


def run(setup: ExperimentSetup | None = None) -> ExperimentResult:
    setup = setup or standard_setup()
    trace = setup.trace

    # Single-box baseline: the Fig. 4 CAESAR over the whole stream.
    single = build_caesar(setup)
    est_single = single.estimate(trace.flows.ids)

    # The fabric: one same-budget CAESAR per PATH node. Vantage seeds
    # derive from the box config's, so the comparison is seed-for-seed.
    config = CaesarConfig.for_budgets(
        sram_kb=setup.sram_kb_main,
        cache_kb=setup.cache_kb,
        num_packets=trace.num_packets,
        num_flows=trace.num_flows,
        k=setup.k,
        seed=setup.seed,
        engine=setup.engine,
    )
    fabric = Fabric(
        config, path_topology(PATH_NODES), registry=setup.registry
    )
    fabric.ingest_stream(trace.packets)
    result = fabric.drain()

    estimates = {"single box": np.maximum(est_single, 0.0)}
    reports = {}
    for method in FUSION_METHODS:
        reports[method] = fabric.report(
            trace.flows.ids, trace.flows.sizes, fusion=method
        )
        estimates[f"fused {method}"] = np.maximum(
            fabric.query(trace.flows.ids, fusion=method), 0.0
        )
    table, qualities = accuracy_table(
        f"Single box vs {PATH_NODES}-vantage PATH fusion ({setup.describe()})",
        trace.flows.sizes,
        estimates,
    )
    mle = reports["mle"]
    coverage = format_coverage(result, mle)
    single_are = float(
        np.abs(
            (est_single - trace.flows.sizes) / trace.flows.sizes
        ).mean()
    )

    # Like-for-like headline: each vantage is scored only on the flows
    # its routes carry, so compare the fused vector on the *best
    # vantage's own* flow subset — every flow there has that vantage's
    # observation plus whatever the rest of the path adds.
    fused_mle, observations = fabric.query_detail(trace.flows.ids)
    best_obs = next(
        o for o in observations if o.vantage == mle.best_vantage
    )
    seen = best_obs.observed
    truth_seen = trace.flows.sizes[seen]
    mle_on_best = float(
        np.abs((fused_mle[seen] - truth_seen) / truth_seen).mean()
    )
    return ExperimentResult(
        experiment_id="fabric",
        title="Multi-vantage fabric: topology-routed flows + query fusion",
        tables=[table, coverage],
        measured={
            "single_box_are": single_are,
            "best_vantage_are": mle.best_vantage_are,
            "fused_min_are": reports["min"].fused_are,
            "fused_ivw_are": reports["ivw"].fused_are,
            "fused_mle_are": reports["mle"].fused_are,
            "fused_mle_are_on_best_subset": mle_on_best,
            "mle_beats_best_vantage": float(
                mle_on_best < mle.best_vantage_are
            ),
            "observations_per_packet": result.total_observations
            / max(1, result.num_packets),
        },
        paper_reference={
            "mle_beats_best_vantage": "1.0: on the best vantage's own "
            "flows, fusing quasi-independent observers averages sharing "
            "noise down (library extension)",
            "single_box_are": "the Fig. 4 single-instance accuracy",
        },
        notes=[
            "Each vantage runs at the full Fig. 4 budget with its own "
            "seed; flows route over hashed (ingress, egress) pairs, so "
            "vantages observe overlapping but distinct substreams.",
            "Per-flow quality of the fused estimators: "
            + ", ".join(
                f"{name} ARE {q.per_flow_are:.4f}"
                for name, q in qualities.items()
            ),
        ],
    )


def format_coverage(result, report) -> str:
    """Per-vantage observation/accuracy ledger for the report tables."""
    from repro.analysis.tables import format_table

    rows = [
        [
            f"vantage {v}",
            result.observed_packets[v],
            report.per_vantage_flows[v],
            report.per_vantage_are[v],
        ]
        for v in sorted(report.per_vantage_are)
    ]
    rows.append(
        ["fused (mle)", result.total_observations, report.fused_flows,
         report.fused_are]
    )
    return format_table(
        ["observer", "packets", "flows", "ARE"],
        rows,
        title="Per-vantage coverage and accuracy",
    )
