"""On-chip cache simulator.

The fast on-chip memory in front of the off-chip SRAM counters
(Figure 1 of the paper): a table of ``M`` entries, each holding a
``(flow ID, flow size)`` pair with per-entry capacity ``y``. Packets
are absorbed here at line rate; values reach the slow shared counters
only on *eviction* — either because an entry's count reached ``y``
(overflow) or because the table was full and a victim was replaced
(LRU or random, Section 3.1).

Evictions flow out either through a per-event sink callback (the
scalar reference path) or through a preallocated
:class:`EvictionBuffer` drained in array chunks (the batched engine).
Chunks with enough temporal locality take the run-coalescing kernel
(:mod:`repro.cachesim.runs`): maximal same-flow runs are detected
vectorized and replayed in O(1) each via closed-form overflow
expansion, bit-identical to the per-packet loop.
"""

from repro.cachesim.base import CachePolicy, CacheStats, Eviction, EvictionReason
from repro.cachesim.buffer import DEFAULT_BUFFER_CAPACITY, EvictionBuffer, EvictionDrain
from repro.cachesim.cache import FlowCache
from repro.cachesim.lru import LRUPolicy
from repro.cachesim.random_replace import RandomPolicy
from repro.cachesim.runs import (
    RUN_COALESCE_THRESHOLD,
    count_runs,
    find_runs,
    replay_runs_into,
    should_coalesce,
)

__all__ = [
    "CachePolicy",
    "CacheStats",
    "DEFAULT_BUFFER_CAPACITY",
    "Eviction",
    "EvictionBuffer",
    "EvictionDrain",
    "EvictionReason",
    "FlowCache",
    "LRUPolicy",
    "RUN_COALESCE_THRESHOLD",
    "RandomPolicy",
    "count_runs",
    "find_runs",
    "replay_runs_into",
    "should_coalesce",
]
