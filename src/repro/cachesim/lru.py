"""Least-recently-used replacement policy.

Backed by an :class:`collections.OrderedDict` used as a recency list:
most recent at the back, victim popped from the front. All operations
are O(1) and run in C inside the dict implementation, which keeps the
per-packet cache loop fast enough for multi-million-packet traces.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.errors import CapacityError, ConfigError


class LRUPolicy:
    """LRU victim selection (paper Section 3.1, first alternative)."""

    def __init__(self) -> None:
        self._order: OrderedDict[int, None] = OrderedDict()

    def insert(self, flow_id: int) -> None:
        """Register a newly allocated entry as most recently used."""
        self._order[flow_id] = None

    def touch(self, flow_id: int) -> None:
        """Mark an entry as most recently used."""
        self._order.move_to_end(flow_id)

    def remove(self, flow_id: int) -> None:
        """Forget a freed entry."""
        del self._order[flow_id]

    def victim(self) -> int:
        """The least recently used flow (does not remove it)."""
        if not self._order:
            raise CapacityError("victim() on an empty cache")
        return next(iter(self._order))

    def export_state(self) -> dict:
        """Recency order, least recent first (checkpoint capture)."""
        return {"kind": "lru", "order": [int(f) for f in self._order]}

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`export_state` (checkpoint restore)."""
        if state.get("kind") != "lru":
            raise ConfigError(f"cannot restore {state.get('kind')!r} state into LRUPolicy")
        self._order = OrderedDict((int(f), None) for f in state["order"])

    def __len__(self) -> int:
        return len(self._order)
