"""The on-chip flow cache (construction-phase front end).

:class:`FlowCache` implements the online behaviour of Section 3.1:

- **hit** — increment the entry; if the count reaches the per-entry
  capacity ``y``, flush the full value to the eviction sink and reset
  the entry to zero (the flow stays resident);
- **miss, table not full** — allocate an entry with count 1;
- **miss, table full** — pick a victim via the replacement policy
  (LRU or random), flush its count, and hand the entry to the new flow;
- **end of measurement** — :meth:`dump` flushes every resident entry.

Evictions leave the cache along one of two equivalent paths:

- **scalar reference** — a caller-supplied *sink* callable
  ``sink(flow_id, value, reason)`` fired per eviction (CAESAR's sink
  splits the value over k shared counters, CASE's folds it into a
  compressed counter);
- **batched** — :meth:`FlowCache.process_into` appends evictions into a
  preallocated :class:`~repro.cachesim.buffer.EvictionBuffer` and hands
  full chunks to a *drain* callable as array views, letting the scheme
  land a whole chunk with a few vectorized calls. When a chunk shows
  enough temporal locality, the batched path auto-selects the
  run-coalescing kernel (:mod:`repro.cachesim.runs`), which replays
  each maximal same-flow run in O(1) instead of per packet.

All paths produce the identical eviction sequence and statistics; the
cache itself is scheme-agnostic.
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np
import numpy.typing as npt

from repro.cachesim.base import (
    FINAL_DUMP_CODE,
    OVERFLOW_CODE,
    REPLACEMENT_CODE,
    CachePolicy,
    CacheStats,
    Eviction,
    EvictionReason,
)
from repro.cachesim.buffer import EvictionBuffer, EvictionDrain
from repro.cachesim.lru import LRUPolicy
from repro.cachesim.random_replace import RandomPolicy
from repro.cachesim.runs import replay_runs_into, should_coalesce
from repro.errors import ConfigError
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.obs.trace import EvictionTrace

#: Signature of an eviction sink.
EvictionSink = Callable[[int, int, EvictionReason], None]


def make_policy(name: str, seed: int = 0) -> CachePolicy:
    """Construct a replacement policy by name (``"lru"`` or ``"random"``)."""
    if name == "lru":
        return LRUPolicy()
    if name == "random":
        return RandomPolicy(seed=seed)
    raise ConfigError(f"unknown replacement policy {name!r}; use 'lru' or 'random'")


class FlowCache:
    """On-chip cache table with ``num_entries`` entries of capacity
    ``entry_capacity`` (the paper's ``M`` and ``y``)."""

    def __init__(
        self,
        num_entries: int,
        entry_capacity: int,
        policy: str | CachePolicy = "lru",
        seed: int = 0,
        *,
        registry: MetricsRegistry | None = None,
        trace: EvictionTrace | None = None,
    ) -> None:
        if num_entries < 1:
            raise ConfigError(f"num_entries must be >= 1, got {num_entries}")
        if entry_capacity < 1:
            raise ConfigError(f"entry_capacity must be >= 1, got {entry_capacity}")
        self.num_entries = int(num_entries)
        self.entry_capacity = int(entry_capacity)
        self._policy: CachePolicy = (
            make_policy(policy, seed) if isinstance(policy, str) else policy
        )
        self._counts: dict[int, int] = {}
        # Observability is chunk-granular and off by default (the null
        # registry); neither mode ever touches measurement state.
        self._metrics = resolve_registry(registry)
        self.stats = CacheStats(trace=trace)

    # -- core per-packet path ----------------------------------------------

    def access(self, flow_id: int, sink: EvictionSink, weight: int = 1) -> None:
        """Process one packet of ``flow_id``, forwarding evictions to ``sink``.

        ``weight`` is the amount this packet adds to the entry: 1 when
        counting packets (the paper's default), the packet's byte
        length when counting flow *volume* (Section 3.1 supports both).
        A weighted hit can land exactly on or beyond the capacity; the
        whole accumulated value is flushed either way, so no mass is
        ever lost.
        """
        counts = self._counts
        stats = self.stats
        stats.accesses += 1
        cur = counts.get(flow_id)
        if cur is not None:
            stats.hits += 1
            self._policy.touch(flow_id)
            cur += weight
            if cur >= self.entry_capacity:
                # Overflow eviction: flush the full value, keep residency.
                stats.record_eviction(cur, EvictionReason.OVERFLOW, flow_id)
                sink(flow_id, cur, EvictionReason.OVERFLOW)
                counts[flow_id] = 0
            else:
                counts[flow_id] = cur
            return
        stats.misses += 1
        if len(counts) >= self.num_entries:
            victim = self._policy.victim()
            value = counts.pop(victim)
            self._policy.remove(victim)
            if value > 0:
                stats.record_eviction(value, EvictionReason.REPLACEMENT, victim)
                sink(victim, value, EvictionReason.REPLACEMENT)
        counts[flow_id] = weight
        self._policy.insert(flow_id)
        if weight >= self.entry_capacity:
            # A single jumbo update overflows a fresh entry outright.
            stats.record_eviction(weight, EvictionReason.OVERFLOW, flow_id)
            sink(flow_id, weight, EvictionReason.OVERFLOW)
            counts[flow_id] = 0

    def process(
        self,
        packets: npt.NDArray[np.uint64],
        sink: EvictionSink,
        weights: npt.NDArray[np.int64] | None = None,
    ) -> None:
        """Feed a whole packet stream through :meth:`access`.

        ``weights`` (optional, aligned with ``packets``) switches the
        cache from packet counting to volume counting. This is the
        *scalar reference* path: one :meth:`access` call (dict ops +
        policy ops, all O(1)) and one sink callback per event, kept
        deliberately simple so the fast paths have a ground truth to be
        bit-identical against. Throughput lives elsewhere — the batched
        chunk pipeline (:meth:`process_into`) and the run-coalescing
        kernel (:mod:`repro.cachesim.runs`) it auto-selects.
        """
        access = self.access
        with self._metrics.timer("cache.process"):
            if weights is None:
                for fid in packets.tolist():
                    access(fid, sink)
                return
            if len(weights) != len(packets):
                raise ConfigError("weights must align with packets")
            for fid, w in zip(packets.tolist(), weights.tolist()):
                access(fid, sink, w)

    # -- batched (buffered) path --------------------------------------------

    def _flush(self, buffer: EvictionBuffer, drain: EvictionDrain) -> None:
        """Record stats for the pending chunk, hand it to the drain, clear."""
        if buffer.length == 0:
            return
        ids, values, reasons = buffer.chunk()
        self.stats.record_batch(values, reasons, ids)
        metrics = self._metrics
        metrics.counter("cache.drain_chunks").inc()
        metrics.histogram("cache.chunk_rows").observe(buffer.length)
        with metrics.timer("cache.drain"):
            drain(ids, values, reasons)
        buffer.clear()

    def flush_pending(self, buffer: EvictionBuffer, drain: EvictionDrain) -> None:
        """Deliver any chunk still pending in ``buffer`` (no-op when empty).

        Schemes call this (directly or via :meth:`dump_into`) on
        ``finalize()`` so downstream counters are complete even when the
        final chunk never filled — including the empty-sized case of a
        zero-packet stream, where this is simply a no-op.
        """
        self._flush(buffer, drain)

    def _append_overflow_run(
        self,
        buffer: EvictionBuffer,
        drain: EvictionDrain,
        flow_id: int,
        value: int,
        n: int,
    ) -> None:
        """Append ``n`` identical OVERFLOW evictions (a coalesced run's
        closed-form expansion), flushing whenever the buffer fills —
        event order and chunk boundaries are exactly those of ``n``
        scalar appends."""
        extend = buffer.extend_same
        while n:
            n -= extend(flow_id, value, OVERFLOW_CODE, n)
            if buffer.is_full:
                self._flush(buffer, drain)

    def process_into(
        self,
        packets: npt.NDArray[np.uint64],
        buffer: EvictionBuffer,
        drain: EvictionDrain,
        weights: npt.NDArray[np.int64] | None = None,
        *,
        coalesce: bool | None = None,
    ) -> None:
        """Batched counterpart of :meth:`process`: evictions are appended
        to ``buffer`` and delivered to ``drain`` in array chunks.

        Produces the *identical* eviction sequence (and final
        :class:`CacheStats`) as the scalar path — chunking only changes
        when work is done, not what is done. The buffer is always
        flushed before returning, so counters downstream of ``drain``
        are up to date at every API boundary. ``drain`` must not touch
        this cache (it runs mid-loop).

        ``coalesce`` picks the loop: ``True`` replays maximal same-flow
        runs in O(1) via :func:`~repro.cachesim.runs.replay_runs_into`,
        ``False`` runs the plain per-packet loop, and ``None`` (default)
        probes the chunk with
        :func:`~repro.cachesim.runs.should_coalesce` and coalesces only
        when the locality pays for it. All three are bit-identical.
        """
        with self._metrics.timer("cache.process"):
            if coalesce is None:
                coalesce = should_coalesce(packets)
            if coalesce:
                replay_runs_into(self, packets, buffer, drain, weights)
            else:
                self._process_packets_into(packets, buffer, drain, weights)

    def _process_packets_into(
        self,
        packets: npt.NDArray[np.uint64],
        buffer: EvictionBuffer,
        drain: EvictionDrain,
        weights: npt.NDArray[np.int64] | None = None,
    ) -> None:
        """Untimed per-packet :meth:`process_into` body (one loop per
        weight mode)."""
        counts = self._counts
        policy = self._policy
        touch, insert, remove, pick_victim = (
            policy.touch,
            policy.insert,
            policy.remove,
            policy.victim,
        )
        get = counts.get
        append = buffer.append
        y = self.entry_capacity
        limit = self.num_entries
        # Unit-weight inserts overflow a fresh entry only when y == 1.
        insert_overflows = y <= 1
        hits = 0
        n_packets = len(packets)
        if weights is None:
            for fid in packets.tolist():
                cur = get(fid)
                if cur is not None:
                    hits += 1
                    touch(fid)
                    cur += 1
                    if cur >= y:
                        if append(fid, cur, OVERFLOW_CODE):
                            self._flush(buffer, drain)
                        counts[fid] = 0
                    else:
                        counts[fid] = cur
                    continue
                if len(counts) >= limit:
                    victim = pick_victim()
                    value = counts.pop(victim)
                    remove(victim)
                    if value > 0:
                        if append(victim, value, REPLACEMENT_CODE):
                            self._flush(buffer, drain)
                counts[fid] = 1
                insert(fid)
                if insert_overflows:
                    if append(fid, 1, OVERFLOW_CODE):
                        self._flush(buffer, drain)
                    counts[fid] = 0
        else:
            if len(weights) != n_packets:
                raise ConfigError("weights must align with packets")
            for fid, w in zip(packets.tolist(), weights.tolist()):
                cur = get(fid)
                if cur is not None:
                    hits += 1
                    touch(fid)
                    cur += w
                    if cur >= y:
                        if append(fid, cur, OVERFLOW_CODE):
                            self._flush(buffer, drain)
                        counts[fid] = 0
                    else:
                        counts[fid] = cur
                    continue
                if len(counts) >= limit:
                    victim = pick_victim()
                    value = counts.pop(victim)
                    remove(victim)
                    if value > 0:
                        if append(victim, value, REPLACEMENT_CODE):
                            self._flush(buffer, drain)
                counts[fid] = w
                insert(fid)
                if w >= y:
                    # A single jumbo update overflows a fresh entry outright.
                    if append(fid, w, OVERFLOW_CODE):
                        self._flush(buffer, drain)
                    counts[fid] = 0
        stats = self.stats
        stats.accesses += n_packets
        stats.hits += hits
        stats.misses += n_packets - hits
        self._flush(buffer, drain)

    def dump_into(self, buffer: EvictionBuffer, drain: EvictionDrain) -> None:
        """Batched counterpart of :meth:`dump` (buffer flushed on return).

        Any chunk already pending in ``buffer`` is delivered *first*, on
        its own — so finalize always flushes cache → SRAM residue even
        when the dump itself contributes zero rows (e.g. a zero-packet
        stream, or a cache already emptied by a previous dump).
        """
        with self._metrics.timer("cache.dump"):
            self.flush_pending(buffer, drain)
            append = buffer.append
            remove = self._policy.remove
            for flow_id, value in self._counts.items():
                if value > 0:
                    if append(flow_id, value, FINAL_DUMP_CODE):
                        self._flush(buffer, drain)
                remove(flow_id)
            self._counts.clear()
            self._flush(buffer, drain)

    # -- end of measurement --------------------------------------------------

    def dump(self, sink: EvictionSink) -> None:
        """Flush every resident entry to the sink and empty the cache.

        The paper: "At the end of the measurement, we dump all the
        cache entries to the SRAM counters."
        """
        with self._metrics.timer("cache.dump"):
            for flow_id, value in self._counts.items():
                if value > 0:
                    self.stats.record_dump(flow_id, value)
                    sink(flow_id, value, EvictionReason.FINAL_DUMP)
                self._policy.remove(flow_id)
            self._counts.clear()

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        """Number of resident entries."""
        return len(self._counts)

    def __contains__(self, flow_id: int) -> bool:
        return flow_id in self._counts

    def resident_count(self, flow_id: int) -> int:
        """Current cached count of a flow (KeyError if not resident)."""
        return self._counts[flow_id]

    def get(self, flow_id: int, default: int = 0) -> int:
        """Current cached count, or ``default`` if not resident."""
        return self._counts.get(flow_id, default)

    def resident_values(
        self, flow_ids: npt.NDArray[np.uint64]
    ) -> npt.NDArray[np.int64]:
        """Vectorized :meth:`get`: cached counts for an array of flows
        (0 for non-resident), via one sorted gather over the resident
        table instead of a Python dict lookup per queried flow."""
        flow_ids = np.asarray(flow_ids, dtype=np.uint64)
        out = np.zeros(len(flow_ids), dtype=np.int64)
        counts = self._counts
        if not counts:
            return out
        ids = np.fromiter(counts.keys(), dtype=np.uint64, count=len(counts))
        vals = np.fromiter(counts.values(), dtype=np.int64, count=len(counts))
        order = np.argsort(ids)
        ids = ids[order]
        vals = vals[order]
        pos = np.minimum(np.searchsorted(ids, flow_ids), len(ids) - 1)
        match = ids[pos] == flow_ids
        out[match] = vals[pos[match]]
        return out

    def wipe(self) -> tuple[int, int]:
        """Drop every resident entry *without* flushing (fault injection:
        a power glitch or soft error wipes the on-chip table mid-stream).

        Returns ``(entries, mass)`` lost so the injector can account the
        loss; the healthy code paths never call this.
        """
        entries = len(self._counts)
        mass = sum(self._counts.values())
        for flow_id in list(self._counts):
            self._policy.remove(flow_id)
        self._counts.clear()
        return entries, mass

    # -- checkpoint state -----------------------------------------------------

    def export_state(self) -> dict:
        """All mutable cache state, insertion order preserved (checkpoint
        capture). Statistics are captured separately by the checkpoint —
        they live on :attr:`stats`, which callers may swap per epoch."""
        n = len(self._counts)
        return {
            "ids": np.fromiter(self._counts.keys(), dtype=np.uint64, count=n),
            "counts": np.fromiter(self._counts.values(), dtype=np.int64, count=n),
            "policy": self._policy.export_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`export_state` (checkpoint restore).

        Dict insertion order determines final-dump order, and the policy
        state determines future victim choices, so both are restored
        exactly — this is what makes kill-and-resume bit-identical.
        """
        ids = np.asarray(state["ids"], dtype=np.uint64)
        counts = np.asarray(state["counts"], dtype=np.int64)
        if len(ids) > self.num_entries:
            raise ConfigError(
                f"cache state holds {len(ids)} entries, table has {self.num_entries}"
            )
        self._counts = dict(zip(ids.tolist(), counts.tolist()))
        self._policy.restore_state(state["policy"])

    def reset_stats(self) -> None:
        """Start a fresh statistics epoch (contents untouched; an
        attached eviction-trace ring keeps rolling across epochs)."""
        self.stats = CacheStats(trace=self.stats.trace)

    def iter_entries(self) -> Iterator[tuple[int, int]]:
        """Iterate resident ``(flow_id, count)`` pairs (inspection only)."""
        return iter(self._counts.items())

    def memory_bits(self, flow_id_bits: int = 64) -> int:
        """On-chip memory footprint: ``M * (id bits + ceil(log2 y) bits)``.

        Matches the paper's cache-size accounting
        ``M * log2(y) / (1024 * 8)`` KB when ``flow_id_bits = 0`` —
        the paper counts only the count field; pass 64 to include the
        ID field a real implementation stores.
        """
        count_bits = max(1, int(np.ceil(np.log2(self.entry_capacity + 1))))
        return self.num_entries * (flow_id_bits + count_bits)

    def collect(self, packets: npt.NDArray[np.uint64]) -> list[Eviction]:
        """Convenience: process a stream and return the eviction list
        (including the final dump). Test/analysis helper."""
        out: list[Eviction] = []

        def sink(fid: int, value: int, reason: EvictionReason) -> None:
            out.append(Eviction(fid, value, reason))

        self.process(packets, sink)
        self.dump(sink)
        return out
