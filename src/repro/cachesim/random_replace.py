"""Random replacement policy.

Maintains a dense array of resident flow IDs plus an index map so that
victim selection, insertion, and removal are all O(1) (removal swaps
the last element into the hole). The victim draw is independent of the
stored counts — the property Section 4.2 relies on to treat eviction
values as i.i.d.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CapacityError, ConfigError


class RandomPolicy:
    """Uniform-random victim selection (paper Section 3.1, second alternative)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)
        self._slots: list[int] = []
        self._pos: dict[int, int] = {}

    def insert(self, flow_id: int) -> None:
        """Register a newly allocated entry."""
        self._pos[flow_id] = len(self._slots)
        self._slots.append(flow_id)

    def touch(self, flow_id: int) -> None:
        """Hits carry no information for random replacement."""

    def remove(self, flow_id: int) -> None:
        """Forget a freed entry (swap-with-last, O(1))."""
        idx = self._pos.pop(flow_id)
        last = self._slots.pop()
        if last != flow_id:
            self._slots[idx] = last
            self._pos[last] = idx

    def victim(self) -> int:
        """A uniformly random resident flow (does not remove it)."""
        if not self._slots:
            raise CapacityError("victim() on an empty cache")
        return self._slots[int(self._rng.integers(len(self._slots)))]

    def export_state(self) -> dict:
        """Slot array plus generator state (checkpoint capture)."""
        return {
            "kind": "random",
            "order": [int(f) for f in self._slots],
            "rng": self._rng.bit_generator.state,
        }

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`export_state` (checkpoint restore)."""
        if state.get("kind") != "random":
            raise ConfigError(
                f"cannot restore {state.get('kind')!r} state into RandomPolicy"
            )
        self._slots = [int(f) for f in state["order"]]
        self._pos = {f: i for i, f in enumerate(self._slots)}
        self._rng.bit_generator.state = state["rng"]

    def __len__(self) -> int:
        return len(self._slots)
