"""Preallocated eviction buffer (the batched cache → SRAM interface).

The scalar reference path delivers each eviction through a Python
callback (``sink(flow_id, value, reason)``); real implementations of
cache-assisted schemes instead *buffer* the cache → SRAM traffic and
land it in bursts. :class:`EvictionBuffer` is that buffer: three
preallocated NumPy columns (flow IDs, values, reason codes) plus a
length cursor. The cache appends scalars into the next free row; when
the buffer fills — or at an API boundary — the whole chunk is handed to
the scheme's *drain* as array views, where it is split and scatter-added
in a handful of vectorized calls instead of thousands of scalar ones.

Reason codes are the integer values of
:class:`~repro.cachesim.base.EvictionReason` (``OVERFLOW_CODE`` etc.),
so a drained chunk never holds Python objects.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
import numpy.typing as npt

from repro.cachesim.base import CODE_TO_REASON, Eviction
from repro.errors import ConfigError

#: Default buffer capacity: large enough to amortize the per-chunk
#: vectorized work, small enough to stay L2-resident.
DEFAULT_BUFFER_CAPACITY = 8192

#: Signature of a batched eviction drain: ``drain(ids, values, reasons)``
#: receives aligned array views (uint64, int64, uint8) of one chunk.
#: Views are only valid for the duration of the call.
EvictionDrain = Callable[
    [npt.NDArray[np.uint64], npt.NDArray[np.int64], npt.NDArray[np.uint8]], None
]


class EvictionBuffer:
    """Fixed-capacity columnar buffer of pending evictions.

    Appends are scalar (the cache loop is scalar by nature); drains are
    array views over the filled prefix. The cache owns *when* to drain
    (on overflow and at API boundaries); the scheme owns *what* a drain
    does.
    """

    __slots__ = ("capacity", "ids", "values", "reasons", "length")

    def __init__(self, capacity: int = DEFAULT_BUFFER_CAPACITY) -> None:
        if capacity < 1:
            raise ConfigError(f"buffer capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.ids = np.empty(self.capacity, dtype=np.uint64)
        self.values = np.empty(self.capacity, dtype=np.int64)
        self.reasons = np.empty(self.capacity, dtype=np.uint8)
        self.length = 0

    # -- producer side (cache loop) --------------------------------------

    def append(self, flow_id: int, value: int, reason_code: int) -> bool:
        """Append one eviction; returns True when the buffer is now full."""
        n = self.length
        self.ids[n] = flow_id
        self.values[n] = value
        self.reasons[n] = reason_code
        self.length = n + 1
        return self.length == self.capacity

    def extend_same(self, flow_id: int, value: int, reason_code: int, n: int) -> int:
        """Append up to ``n`` copies of one eviction row (a coalesced
        run's closed-form expansion); returns how many were appended.

        Fills at most the remaining space — the caller loops, flushing
        between rounds, so chunk boundaries land exactly where ``n``
        scalar :meth:`append` calls would have put them.
        """
        start = self.length
        space = self.capacity - start
        if n > space:
            n = space
        end = start + n
        self.ids[start:end] = flow_id
        self.values[start:end] = value
        self.reasons[start:end] = reason_code
        self.length = end
        return n

    @property
    def is_full(self) -> bool:
        return self.length == self.capacity

    # -- consumer side (drain) --------------------------------------------

    def chunk(
        self,
    ) -> tuple[
        npt.NDArray[np.uint64], npt.NDArray[np.int64], npt.NDArray[np.uint8]
    ]:
        """Views of the filled prefix (valid until the next append/clear)."""
        n = self.length
        return self.ids[:n], self.values[:n], self.reasons[:n]

    def clear(self) -> None:
        """Reset the cursor (storage is reused, never reallocated)."""
        self.length = 0

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return self.length

    def to_evictions(self) -> list[Eviction]:
        """Materialize the pending chunk as :class:`Eviction` objects
        (test/analysis helper — the hot path never does this)."""
        ids, values, reasons = self.chunk()
        return [
            Eviction(int(f), int(v), CODE_TO_REASON[int(r)])
            for f, v, r in zip(ids.tolist(), values.tolist(), reasons.tolist())
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EvictionBuffer({self.length}/{self.capacity})"
