"""Run-coalescing cache kernel (the per-packet hot loop, amortized).

Real traffic has strong temporal locality: a flow's packets arrive in
contiguous *runs* (TCP trains, bursts behind a NIC queue). The scalar
cache loop pays the full dict + policy + branch cost for every packet
of a run even though every packet after the first is, by construction,
a hit on the same resident entry. This module exploits that:

- :func:`find_runs` detects maximal same-flow runs in one vectorized
  NumPy pass (``ids[1:] != ids[:-1]`` boundary detection);
- :func:`replay_runs_into` replays each run in O(1) via closed-form
  overflow expansion that is **bit-identical** to the per-packet body.

Why the closed forms are exact (the equivalence argument):

- a resident entry's count ``c`` always satisfies ``0 <= c < y``
  (every access either keeps it below the capacity ``y`` or flushes it
  to 0), so a *unit-weight* run of length ``r`` on a resident entry
  emits exactly ``(c + r) // y`` OVERFLOW evictions, every one of
  value exactly ``y``, and leaves ``(c + r) % y`` behind
  (:func:`unit_run_overflows`);
- an *equal-weight* run (weight ``w``) is periodic after its first
  overflow: the first fires after ``ceil((y - c) / w)`` packets with
  value ``c + ceil((y - c) / w) * w``, then every ``ceil(y / w)``
  packets with value ``ceil(y / w) * w``
  (:func:`weighted_run_overflows`) — this covers jumbo weights
  ``w >= y`` (cycle length 1) as a special case;
- mixed-weight runs have no closed form and fall back to the exact
  per-packet body, run by run;
- repeated ``touch`` is idempotent for LRU (the entry is already most
  recent after the first) and a no-op for random replacement, so one
  touch per run leaves the recency order identical to one per packet;
- hits consume no randomness, so the random-replacement victim
  sequence — drawn only on misses, which runs never coalesce across —
  is unchanged.

The kernel therefore produces the identical eviction sequence,
statistics, policy state, and generator state as the per-packet loop;
``tests/test_engine_equivalence.py`` and ``tests/test_cachesim_runs.py``
enforce this property-wise. It keeps **no state between calls**: a run
never spans a ``process_into`` boundary (each call replays its chunk to
completion), so a checkpoint taken between calls needs nothing beyond
what the per-packet engines already capture — cache contents, policy
order, and the pending eviction buffer.

:func:`should_coalesce` is the auto-selection probe the default
batched engine uses: one cheap vectorized pass counts runs, and the
run kernel engages only when the chunk actually coalesces
(mean run length >= :data:`RUN_COALESCE_THRESHOLD`), so worst-case
uniform traffic keeps the plain per-packet loop and pays only the
detection pass.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np
import numpy.typing as npt

from repro.cachesim.base import OVERFLOW_CODE, REPLACEMENT_CODE
from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.cachesim.buffer import EvictionBuffer, EvictionDrain
    from repro.cachesim.cache import FlowCache

#: Mean run length above which run replay beats the per-packet loop.
#: Below it the per-run bookkeeping (zip over run heads, closed-form
#: arithmetic) roughly matches the per-packet body, so auto-selection
#: keeps the plain loop and the detection pass is the only overhead.
RUN_COALESCE_THRESHOLD = 1.25


# -- vectorized run detection -------------------------------------------------


def find_runs(
    ids: npt.NDArray[np.uint64],
) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
    """Maximal same-flow runs of ``ids`` as ``(starts, lengths)``.

    One vectorized boundary pass: a run starts at index 0 and wherever
    ``ids[i] != ids[i-1]``. ``lengths`` aligns with ``starts`` and sums
    to ``len(ids)``. Empty input yields two empty arrays.
    """
    n = len(ids)
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    boundaries = np.flatnonzero(ids[1:] != ids[:-1])
    starts = np.empty(len(boundaries) + 1, dtype=np.int64)
    starts[0] = 0
    starts[1:] = boundaries
    starts[1:] += 1
    lengths = np.empty_like(starts)
    lengths[:-1] = np.diff(starts)
    lengths[-1] = n - starts[-1]
    return starts, lengths


def count_runs(ids: npt.NDArray[np.uint64]) -> int:
    """Number of maximal same-flow runs (cheaper than :func:`find_runs`)."""
    n = len(ids)
    if n == 0:
        return 0
    return int(np.count_nonzero(ids[1:] != ids[:-1])) + 1


def should_coalesce(ids: npt.NDArray[np.uint64]) -> bool:
    """Auto-selection probe: does this chunk coalesce enough to win?

    True when the mean run length reaches
    :data:`RUN_COALESCE_THRESHOLD`. Costs one vectorized comparison
    over the chunk — about two orders of magnitude below the loop it
    routes around.
    """
    n = len(ids)
    if n < 2:
        return False
    return n >= RUN_COALESCE_THRESHOLD * count_runs(ids)


def uniform_weight_runs(
    weights: npt.NDArray[np.int64], starts: npt.NDArray[np.int64]
) -> npt.NDArray[np.bool_]:
    """Per-run flag: does every packet of the run carry the same weight?

    Vectorized: adjacent-equality mask, forced True at run starts (the
    first packet of a run never compares against the previous run),
    then a logical-AND reduction per run.
    """
    eq = np.empty(len(weights), dtype=bool)
    eq[0] = True
    np.equal(weights[1:], weights[:-1], out=eq[1:])
    eq[starts] = True
    return np.logical_and.reduceat(eq, starts)


# -- closed-form overflow expansion -------------------------------------------


def unit_run_overflows(count: int, run_length: int, capacity: int) -> tuple[int, int]:
    """Replay a unit-weight run of ``run_length`` hits on a resident
    entry holding ``count`` (< ``capacity``): returns
    ``(n_evictions, remainder)``. Every eviction has value exactly
    ``capacity``.
    """
    total = count + run_length
    return total // capacity, total % capacity


def weighted_run_overflows(
    count: int, run_length: int, weight: int, capacity: int
) -> tuple[int, int, int, int]:
    """Replay an equal-weight run of ``run_length`` hits (each adding
    ``weight`` >= 1) on a resident entry holding ``count``
    (< ``capacity``).

    Returns ``(first_value, n_cycles, cycle_value, remainder)``: one
    eviction of ``first_value`` (0 means the run never overflows),
    then ``n_cycles`` evictions of ``cycle_value``, leaving
    ``remainder`` in the entry. Exact for jumbo weights too: with
    ``weight >= capacity`` the cycle length is 1, so every remaining
    hit evicts ``weight`` outright.
    """
    # Overflow fires at the first j with count + j*weight >= capacity.
    to_first = -((count - capacity) // weight)  # ceil((capacity - count) / weight)
    if run_length < to_first:
        return 0, 0, 0, count + run_length * weight
    cycle_len = -(-capacity // weight)  # ceil(capacity / weight)
    n_cycles, leftover = divmod(run_length - to_first, cycle_len)
    return (
        count + to_first * weight,
        n_cycles,
        cycle_len * weight,
        leftover * weight,
    )


# -- the replay kernel --------------------------------------------------------


def replay_runs_into(
    cache: "FlowCache",
    packets: npt.NDArray[np.uint64],
    buffer: "EvictionBuffer",
    drain: "EvictionDrain",
    weights: npt.NDArray[np.int64] | None = None,
) -> None:
    """Run-coalescing counterpart of the per-packet ``process_into``
    body: detect runs, replay each in O(1), fall back per packet only
    for mixed-weight runs. Bit-identical to the per-packet loop (see
    the module docstring for the argument).
    """
    n_packets = len(packets)
    if weights is not None and len(weights) != n_packets:
        raise ConfigError("weights must align with packets")
    starts, lengths = find_runs(packets)
    n_runs = len(starts)
    metrics = cache._metrics
    if metrics.enabled and n_runs:
        metrics.counter("cache.run_chunks").inc()
        metrics.counter("cache.run_packets").inc(n_packets)
        metrics.counter("cache.runs").inc(n_runs)
        metrics.histogram("cache.runs_per_chunk").observe(n_runs)
        metrics.gauge("cache.coalescing_ratio").set(n_packets / n_runs)
    counts = cache._counts
    policy = cache._policy
    touch, insert, remove, pick_victim = (
        policy.touch,
        policy.insert,
        policy.remove,
        policy.victim,
    )
    get = counts.get
    append = buffer.append
    flush = cache._flush
    append_run = cache._append_overflow_run
    y = cache.entry_capacity
    limit = cache.num_entries
    hits = 0
    if weights is None:
        for fid, r in zip(packets[starts].tolist(), lengths.tolist()):
            cur = get(fid)
            if cur is None:
                # Miss at the head of the run: identical to the scalar body
                # (one victim draw at most — runs never coalesce misses).
                if len(counts) >= limit:
                    victim = pick_victim()
                    value = counts.pop(victim)
                    remove(victim)
                    if value > 0:
                        if append(victim, value, REPLACEMENT_CODE):
                            flush(buffer, drain)
                insert(fid)
                if y <= 1:
                    # Unit-weight inserts overflow a fresh entry only when y == 1.
                    if append(fid, 1, OVERFLOW_CODE):
                        flush(buffer, drain)
                    cur = 0
                else:
                    cur = 1
                counts[fid] = cur
                r -= 1
                if r == 0:
                    continue
            else:
                # One touch per run == one per packet (LRU move-to-end is
                # idempotent; random replacement ignores touches).
                touch(fid)
            hits += r
            total = cur + r
            n_evict = total - total % y  # == (total // y) * y
            if n_evict:
                append_run(buffer, drain, fid, y, n_evict // y)
                counts[fid] = total - n_evict
            else:
                counts[fid] = total
    else:
        uniform = uniform_weight_runs(weights, starts).tolist() if n_runs else []
        starts_list = starts.tolist()
        run_weights = weights[starts].tolist() if n_runs else []
        for i, (fid, r) in enumerate(
            zip(packets[starts].tolist(), lengths.tolist())
        ):
            w = run_weights[i]
            if not uniform[i] or w <= 0:
                # Mixed-weight (or degenerate non-positive-weight) run:
                # no closed form — replay the exact per-packet body.
                s = starts_list[i]
                for w in weights[s : s + r].tolist():
                    cur = get(fid)
                    if cur is not None:
                        hits += 1
                        touch(fid)
                        cur += w
                        if cur >= y:
                            if append(fid, cur, OVERFLOW_CODE):
                                flush(buffer, drain)
                            counts[fid] = 0
                        else:
                            counts[fid] = cur
                        continue
                    if len(counts) >= limit:
                        victim = pick_victim()
                        value = counts.pop(victim)
                        remove(victim)
                        if value > 0:
                            if append(victim, value, REPLACEMENT_CODE):
                                flush(buffer, drain)
                    counts[fid] = w
                    insert(fid)
                    if w >= y:
                        # A single jumbo update overflows a fresh entry outright.
                        if append(fid, w, OVERFLOW_CODE):
                            flush(buffer, drain)
                        counts[fid] = 0
                continue
            cur = get(fid)
            if cur is None:
                if len(counts) >= limit:
                    victim = pick_victim()
                    value = counts.pop(victim)
                    remove(victim)
                    if value > 0:
                        if append(victim, value, REPLACEMENT_CODE):
                            flush(buffer, drain)
                insert(fid)
                if w >= y:
                    # A single jumbo update overflows a fresh entry outright.
                    if append(fid, w, OVERFLOW_CODE):
                        flush(buffer, drain)
                    cur = 0
                else:
                    cur = w
                counts[fid] = cur
                r -= 1
                if r == 0:
                    continue
            else:
                touch(fid)
            hits += r
            first_value, n_cycles, cycle_value, remainder = weighted_run_overflows(
                cur, r, w, y
            )
            if first_value:
                if append(fid, first_value, OVERFLOW_CODE):
                    flush(buffer, drain)
                if n_cycles:
                    append_run(buffer, drain, fid, cycle_value, n_cycles)
            counts[fid] = remainder
    stats = cache.stats
    stats.accesses += n_packets
    stats.hits += hits
    stats.misses += n_packets - hits
    flush(buffer, drain)
