"""Cache-policy protocol, eviction events, and statistics.

Replacement policy is a strategy object tracking *which* entry to evict
on a miss-with-full-table; the cache itself owns the counts. The paper
evaluates LRU and random replacement; both fit this interface, and the
theory (Section 4.2) only requires that the victim choice be
independent of the stored count — true for both.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Protocol


class EvictionReason(enum.Enum):
    """Why a value left the cache for the SRAM counters."""

    #: Entry count reached the per-entry capacity ``y``.
    OVERFLOW = "overflow"
    #: Entry was the replacement victim on a miss with a full table.
    REPLACEMENT = "replacement"
    #: End-of-measurement dump of all resident entries.
    FINAL_DUMP = "final_dump"


@dataclass(frozen=True, slots=True)
class Eviction:
    """One value leaving the cache: ``E_i`` in the paper's analysis."""

    flow_id: int
    value: int
    reason: EvictionReason


@dataclass
class CacheStats:
    """Operational counters for a measurement run.

    ``evicted_packets`` counts packet mass flushed to SRAM during the
    run (not the final dump), so
    ``hits + misses == accesses`` and
    ``evicted_packets + dumped_packets + lost == accesses`` with no
    loss in CAESAR.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    overflow_evictions: int = 0
    replacement_evictions: int = 0
    evicted_packets: int = 0
    dumped_entries: int = 0
    dumped_packets: int = 0
    #: Histogram of evicted values (index = value), grown on demand.
    eviction_value_counts: dict[int, int] = field(default_factory=dict)

    def record_eviction(self, value: int, reason: EvictionReason) -> None:
        if reason is EvictionReason.OVERFLOW:
            self.overflow_evictions += 1
        elif reason is EvictionReason.REPLACEMENT:
            self.replacement_evictions += 1
        self.evicted_packets += value
        self.eviction_value_counts[value] = self.eviction_value_counts.get(value, 0) + 1

    @property
    def total_evictions(self) -> int:
        return self.overflow_evictions + self.replacement_evictions

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class CachePolicy(Protocol):
    """Victim-selection strategy for a full cache table.

    The cache calls ``insert`` when a flow is allocated an entry,
    ``touch`` on every hit, ``remove`` when an entry is freed, and
    ``victim`` to pick the entry to replace. Implementations must keep
    their bookkeeping consistent with exactly that call sequence.
    """

    def insert(self, flow_id: int) -> None: ...

    def touch(self, flow_id: int) -> None: ...

    def remove(self, flow_id: int) -> None: ...

    def victim(self) -> int: ...

    def __len__(self) -> int: ...
