"""Cache-policy protocol, eviction events, and statistics.

Replacement policy is a strategy object tracking *which* entry to evict
on a miss-with-full-table; the cache itself owns the counts. The paper
evaluates LRU and random replacement; both fit this interface, and the
theory (Section 4.2) only requires that the victim choice be
independent of the stored count — true for both.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol

import numpy as np
import numpy.typing as npt

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.obs.trace import EvictionTrace


class EvictionReason(enum.Enum):
    """Why a value left the cache for the SRAM counters."""

    #: Entry count reached the per-entry capacity ``y``.
    OVERFLOW = "overflow"
    #: Entry was the replacement victim on a miss with a full table.
    REPLACEMENT = "replacement"
    #: End-of-measurement dump of all resident entries.
    FINAL_DUMP = "final_dump"

    @property
    def code(self) -> int:
        """Compact integer code used inside the batched eviction buffer."""
        return _REASON_CODES[self]


#: Integer codes the batched pipeline stores instead of enum objects.
OVERFLOW_CODE = 0
REPLACEMENT_CODE = 1
FINAL_DUMP_CODE = 2

_REASON_CODES = {
    EvictionReason.OVERFLOW: OVERFLOW_CODE,
    EvictionReason.REPLACEMENT: REPLACEMENT_CODE,
    EvictionReason.FINAL_DUMP: FINAL_DUMP_CODE,
}

#: Inverse mapping, indexable by code.
CODE_TO_REASON = (
    EvictionReason.OVERFLOW,
    EvictionReason.REPLACEMENT,
    EvictionReason.FINAL_DUMP,
)


@dataclass(frozen=True, slots=True)
class Eviction:
    """One value leaving the cache: ``E_i`` in the paper's analysis."""

    flow_id: int
    value: int
    reason: EvictionReason


@dataclass
class CacheStats:
    """Operational counters for a measurement run.

    ``evicted_packets`` counts packet mass flushed to SRAM during the
    run (not the final dump), so
    ``hits + misses == accesses`` and
    ``evicted_packets + dumped_packets + lost == accesses`` with no
    loss in CAESAR.

    ``trace`` is an optional bounded eviction ring
    (:class:`repro.obs.trace.EvictionTrace`): when set, every recorded
    eviction (and final dump) is also appended to the ring with the
    access count at recording time as its packet index. The trace is an
    observer, not part of the measurement, so it is excluded from stats
    equality — two engines producing identical stats may hold
    differently-chunked traces.
    """

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    overflow_evictions: int = 0
    replacement_evictions: int = 0
    evicted_packets: int = 0
    dumped_entries: int = 0
    dumped_packets: int = 0
    #: Histogram of evicted values (index = value), grown on demand.
    eviction_value_counts: dict[int, int] = field(default_factory=dict)
    #: Optional eviction-trace ring (observability only, not compared).
    trace: "EvictionTrace | None" = field(default=None, compare=False, repr=False)

    def record_eviction(self, value: int, reason: EvictionReason, flow_id: int = 0) -> None:
        if reason is EvictionReason.OVERFLOW:
            self.overflow_evictions += 1
        elif reason is EvictionReason.REPLACEMENT:
            self.replacement_evictions += 1
        self.evicted_packets += value
        self.eviction_value_counts[value] = self.eviction_value_counts.get(value, 0) + 1
        if self.trace is not None:
            self.trace.record(flow_id, value, reason.code, self.accesses)

    def record_dump(self, flow_id: int, value: int) -> None:
        """Record one final-dump entry (scalar ``dump`` path)."""
        self.dumped_entries += 1
        self.dumped_packets += value
        if self.trace is not None:
            self.trace.record(flow_id, value, FINAL_DUMP_CODE, self.accesses)

    def record_batch(
        self,
        values: npt.NDArray[np.int64],
        reasons: npt.NDArray[np.uint8],
        ids: npt.NDArray[np.uint64] | None = None,
    ) -> None:
        """Batched :meth:`record_eviction` over one drained buffer chunk.

        ``reasons`` holds the integer codes (``OVERFLOW_CODE`` etc.).
        Final-dump rows update the dump accounting instead of the
        eviction accounting, exactly like the scalar :meth:`record_eviction`
        / ``dump`` pair, so both engines end a run with equal stats.
        When ``ids`` is given and a trace ring is attached, the chunk is
        also traced (all rows share the flush-time access count).
        """
        if len(values) == 0:
            return
        if self.trace is not None and ids is not None:
            self.trace.record_batch(ids, values, reasons, self.accesses)
        per_reason = np.bincount(reasons, minlength=3)
        self.overflow_evictions += int(per_reason[OVERFLOW_CODE])
        self.replacement_evictions += int(per_reason[REPLACEMENT_CODE])
        dumped = reasons == FINAL_DUMP_CODE
        if per_reason[FINAL_DUMP_CODE]:
            self.dumped_entries += int(per_reason[FINAL_DUMP_CODE])
            self.dumped_packets += int(values[dumped].sum())
            evicted = values[~dumped]
        else:
            evicted = values
        if len(evicted) == 0:
            return
        self.evicted_packets += int(evicted.sum())
        hist = self.eviction_value_counts
        uniq, counts = np.unique(evicted, return_counts=True)
        for v, c in zip(uniq.tolist(), counts.tolist()):
            hist[v] = hist.get(v, 0) + c

    @property
    def total_evictions(self) -> int:
        return self.overflow_evictions + self.replacement_evictions

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class CachePolicy(Protocol):
    """Victim-selection strategy for a full cache table.

    The cache calls ``insert`` when a flow is allocated an entry,
    ``touch`` on every hit, ``remove`` when an entry is freed, and
    ``victim`` to pick the entry to replace. Implementations must keep
    their bookkeeping consistent with exactly that call sequence.
    """

    def insert(self, flow_id: int) -> None: ...

    def touch(self, flow_id: int) -> None: ...

    def remove(self, flow_id: int) -> None: ...

    def victim(self) -> int: ...

    def export_state(self) -> dict: ...

    def restore_state(self, state: dict) -> None: ...

    def __len__(self) -> int: ...
