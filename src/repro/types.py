"""Shared type aliases and small value objects.

Flow identifiers are 64-bit unsigned integers throughout the library
(the paper derives them from the 5-tuple header via SHA-1/APHash; see
:mod:`repro.hashing.flowid`). Packet streams are NumPy arrays of flow
IDs, one element per packet, which keeps the hot measurement loops
vectorizable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np
import numpy.typing as npt

#: A single flow identifier (64-bit unsigned).
FlowId = int

#: Array of flow IDs, one per packet, dtype=uint64.
FlowIdArray = npt.NDArray[np.uint64]

#: Array of per-flow sizes (packet counts), dtype=int64.
SizeArray = npt.NDArray[np.int64]

#: dtype used for flow identifiers everywhere.
FLOW_ID_DTYPE = np.uint64

#: dtype used for counters and sizes everywhere.
SIZE_DTYPE = np.int64


@dataclass(frozen=True, slots=True)
class FiveTuple:
    """A classic IPv4 5-tuple packet header key.

    Used by the synthetic header generator and the flow-ID digest path;
    the measurement schemes themselves only ever see the derived
    64-bit flow ID.
    """

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int

    def __post_init__(self) -> None:
        if not (0 <= self.src_ip <= 0xFFFFFFFF and 0 <= self.dst_ip <= 0xFFFFFFFF):
            raise ValueError("IPv4 addresses must fit in 32 bits")
        if not (0 <= self.src_port <= 0xFFFF and 0 <= self.dst_port <= 0xFFFF):
            raise ValueError("ports must fit in 16 bits")
        if not 0 <= self.protocol <= 0xFF:
            raise ValueError("protocol must fit in 8 bits")

    def pack(self) -> bytes:
        """Serialize to the canonical 13-byte wire layout."""
        return (
            self.src_ip.to_bytes(4, "big")
            + self.dst_ip.to_bytes(4, "big")
            + self.src_port.to_bytes(2, "big")
            + self.dst_port.to_bytes(2, "big")
            + self.protocol.to_bytes(1, "big")
        )

    @classmethod
    def unpack(cls, data: bytes) -> "FiveTuple":
        """Inverse of :meth:`pack`."""
        if len(data) != 13:
            raise ValueError(f"expected 13 bytes, got {len(data)}")
        return cls(
            src_ip=int.from_bytes(data[0:4], "big"),
            dst_ip=int.from_bytes(data[4:8], "big"),
            src_port=int.from_bytes(data[8:10], "big"),
            dst_port=int.from_bytes(data[10:12], "big"),
            protocol=data[12],
        )


@runtime_checkable
class FlowSizeEstimator(Protocol):
    """Anything that can answer offline per-flow size queries.

    All measurement schemes in this library (CAESAR, RCS, CASE, the
    compressed-counter baselines) implement this protocol so the
    analysis and experiment harnesses treat them uniformly.
    """

    def estimate(self, flow_ids: FlowIdArray) -> npt.NDArray[np.float64]:
        """Return the estimated size of each queried flow."""
        ...


@runtime_checkable
class StreamProcessor(Protocol):
    """Anything that consumes a packet stream in the construction phase."""

    def process(self, packets: FlowIdArray) -> None:
        """Feed a batch of packets (flow IDs) through the online phase."""
        ...


def as_flow_ids(values) -> FlowIdArray:
    """Coerce a sequence of flow IDs to the canonical uint64 array."""
    arr = np.asarray(values, dtype=FLOW_ID_DTYPE)
    if arr.ndim != 1:
        raise ValueError(f"flow-ID arrays must be 1-D, got shape {arr.shape}")
    return arr
