"""64-bit integer mixing functions.

These are the primitive building blocks for the hash families used to
select shared counters. Two finalizers are provided:

- :func:`splitmix64` — the finalizer of Steele et al.'s SplitMix64
  generator; excellent avalanche, 3 multiply/xor-shift rounds.
- :func:`xxmix64` — the avalanche finalizer from xxHash64.

Each has a scalar variant (for per-packet paths and tests) and a NumPy
variant operating elementwise on ``uint64`` arrays (for the batched
query phase, where we hash every flow ID in the trace at once). The
array variants are pure ufunc pipelines — no Python-level loops — per
the vectorization guidance for numerical hot paths.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

_MASK64 = 0xFFFFFFFFFFFFFFFF

# SplitMix64 constants (Steele, Lea & Flood 2014).
_SM_GAMMA = 0x9E3779B97F4A7C15
_SM_M1 = 0xBF58476D1CE4E5B9
_SM_M2 = 0x94D049BB133111EB

# xxHash64 avalanche constants.
_XX_M1 = 0xFF51AFD7ED558CCD
_XX_M2 = 0xC4CEB9FE1A85EC53


def splitmix64(x: int) -> int:
    """Mix a 64-bit integer with the SplitMix64 finalizer.

    Deterministic, bijective on the 64-bit domain, and passes avalanche
    tests; suitable as a hash for uniformly distributing flow IDs.
    """
    x = (x + _SM_GAMMA) & _MASK64
    x = ((x ^ (x >> 30)) * _SM_M1) & _MASK64
    x = ((x ^ (x >> 27)) * _SM_M2) & _MASK64
    return x ^ (x >> 31)


def splitmix64_array(x: npt.NDArray[np.uint64]) -> npt.NDArray[np.uint64]:
    """Vectorized :func:`splitmix64` over a uint64 array."""
    x = x.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x += np.uint64(_SM_GAMMA)
        x ^= x >> np.uint64(30)
        x *= np.uint64(_SM_M1)
        x ^= x >> np.uint64(27)
        x *= np.uint64(_SM_M2)
        x ^= x >> np.uint64(31)
    return x


def xxmix64(x: int) -> int:
    """Mix a 64-bit integer with the xxHash64 avalanche finalizer."""
    x &= _MASK64
    x = ((x ^ (x >> 33)) * _XX_M1) & _MASK64
    x = ((x ^ (x >> 33)) * _XX_M2) & _MASK64
    return x ^ (x >> 33)


def xxmix64_array(x: npt.NDArray[np.uint64]) -> npt.NDArray[np.uint64]:
    """Vectorized :func:`xxmix64` over a uint64 array."""
    x = x.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        x ^= x >> np.uint64(33)
        x *= np.uint64(_XX_M1)
        x ^= x >> np.uint64(33)
        x *= np.uint64(_XX_M2)
        x ^= x >> np.uint64(33)
    return x


def combine(seed: int, x: int) -> int:
    """Combine a seed with a value into one mixed 64-bit hash.

    Used to derive independent hash functions from one mixer: each
    function of the family fixes a distinct pre-mixed ``seed``.
    """
    return splitmix64((seed ^ x) & _MASK64)


def combine_array(seed: int, x: npt.NDArray[np.uint64]) -> npt.NDArray[np.uint64]:
    """Vectorized :func:`combine`."""
    with np.errstate(over="ignore"):
        return splitmix64_array(x ^ np.uint64(seed & _MASK64))
