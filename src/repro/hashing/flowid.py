"""Flow-ID derivation from packet headers.

The paper generates "a unique flow ID from its 5-tuple packet header
... using SHA-1 and APHash functions" (Section 6.1). We reproduce that
pipeline — SHA-1 digest of the packed 5-tuple, folded with APHash —
plus a fast vectorized mixer path for synthetic traces where headers
are already integers.

Flow IDs are 64-bit unsigned integers everywhere downstream.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np
import numpy.typing as npt

from repro.types import FLOW_ID_DTYPE, FiveTuple


def aphash(data: bytes) -> int:
    """Arash Partow's AP hash over a byte string, truncated to 32 bits.

    This is the classic alternating xor/shift string hash the paper
    names; we fold it into the final 64-bit flow ID alongside SHA-1.
    """
    h = 0xAAAAAAAA
    for i, b in enumerate(data):
        if i & 1 == 0:
            h ^= (h << 7) ^ b * (h >> 3)
        else:
            h ^= ~((h << 11) + (b ^ (h >> 5))) & 0xFFFFFFFF
        h &= 0xFFFFFFFF
    return h


def flow_id_from_five_tuple(header: FiveTuple) -> int:
    """Derive the 64-bit flow ID from a 5-tuple header.

    High 32 bits come from the leading bytes of the SHA-1 digest of the
    packed header, low 32 bits from APHash of the same bytes — matching
    the paper's "SHA-1 and APHash" ID-generation step.
    """
    raw = header.pack()
    sha = int.from_bytes(hashlib.sha1(raw).digest()[:4], "big")
    ap = aphash(raw)
    return (sha << 32) | ap


def flow_ids_from_headers(headers: Iterable[FiveTuple]) -> npt.NDArray[np.uint64]:
    """Digest many headers; returns a uint64 flow-ID array."""
    return np.fromiter(
        (flow_id_from_five_tuple(h) for h in headers),
        dtype=FLOW_ID_DTYPE,
    )


def unique_flow_ids(count: int, seed: int = 0) -> npt.NDArray[np.uint64]:
    """Generate ``count`` distinct synthetic 64-bit flow IDs.

    Uses a random permutation-free scheme: draws from the full 64-bit
    space and rejects duplicates (astronomically rare for realistic
    counts), so the IDs look like real SHA-1-derived IDs — uniform over
    the ID space with no exploitable structure.
    """
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, 2**64, size=count, dtype=np.uint64)
    # Duplicate probability ~ count^2 / 2^65; handle it anyway.
    uniq = np.unique(ids)
    while len(uniq) < count:
        extra = rng.integers(0, 2**64, size=count - len(uniq), dtype=np.uint64)
        uniq = np.unique(np.concatenate([uniq, extra]))
    # Shuffle so IDs are not sorted (sortedness could mask hashing bugs).
    rng.shuffle(uniq)
    return uniq[:count]


def synthetic_five_tuples(count: int, seed: int = 0) -> Sequence[FiveTuple]:
    """Generate ``count`` random-but-plausible distinct 5-tuples.

    Ports are drawn from the ephemeral range against a small set of
    well-known service ports; protocol is TCP/UDP/ICMP with realistic
    mix (the paper's trace contains exactly those three).
    """
    rng = np.random.default_rng(seed)
    seen: set[tuple[int, int, int, int, int]] = set()
    out: list[FiveTuple] = []
    service_ports = np.array([80, 443, 53, 22, 25, 123, 8080], dtype=np.int64)
    protos = np.array([6, 17, 1], dtype=np.int64)  # TCP, UDP, ICMP
    proto_weights = np.array([0.7, 0.25, 0.05])
    while len(out) < count:
        batch = count - len(out)
        src_ip = rng.integers(0, 2**32, size=batch)
        dst_ip = rng.integers(0, 2**32, size=batch)
        src_port = rng.integers(1024, 65536, size=batch)
        dst_port = service_ports[rng.integers(0, len(service_ports), size=batch)]
        proto = protos[rng.choice(3, size=batch, p=proto_weights)]
        for i in range(batch):
            key = (
                int(src_ip[i]),
                int(dst_ip[i]),
                int(src_port[i]),
                int(dst_port[i]),
                int(proto[i]),
            )
            if key in seen:
                continue
            seen.add(key)
            out.append(FiveTuple(*key))
    return out
