"""Deterministic hashing substrate.

CAESAR maps each flow to ``k`` SRAM counters with ``k`` collision-free
hash functions of the flow ID. This package provides:

- :mod:`repro.hashing.mix` — fast 64-bit integer mixers (splitmix64 and
  an xxhash-style finalizer), scalar and NumPy-vectorized;
- :mod:`repro.hashing.family` — seeded hash families and the banked
  counter-index derivation used by all sharing schemes;
- :mod:`repro.hashing.flowid` — 5-tuple → 64-bit flow-ID digesting,
  both the paper's SHA-1/APHash pipeline and the fast mixer path.
"""

from repro.hashing.family import BankedIndexer, HashFamily
from repro.hashing.flowid import aphash, flow_id_from_five_tuple, flow_ids_from_headers
from repro.hashing.mix import splitmix64, splitmix64_array, xxmix64, xxmix64_array

__all__ = [
    "BankedIndexer",
    "HashFamily",
    "aphash",
    "flow_id_from_five_tuple",
    "flow_ids_from_headers",
    "splitmix64",
    "splitmix64_array",
    "xxmix64",
    "xxmix64_array",
]
