"""Tabulation hashing — a strongly-universal alternative family.

The splitmix-based family in :mod:`repro.hashing.family` is fast and
empirically excellent, but offers no independence guarantee. Simple
tabulation hashing (Zobrist; analyzed by Patrascu & Thorup 2012) is
3-independent and behaves like full randomness for the balls-into-bins
loads that drive counter sharing — a useful cross-check that none of
the accuracy results hinge on mixer quirks (swap it into
:class:`~repro.hashing.family.BankedIndexer` via the ``family``
argument of :class:`TabulationIndexer`).

The 64-bit key is split into 8 bytes; each byte indexes a seeded
256-entry table of random 64-bit words; the hash is the XOR of the 8
looked-up words. Vectorized via one table-gather per byte position.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError

_NUM_CHUNKS = 8


class TabulationHash:
    """One simple-tabulation 64-bit hash function."""

    def __init__(self, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        # (8, 256) random words: one table per key byte.
        self._tables = rng.integers(
            0, 2**64, size=(_NUM_CHUNKS, 256), dtype=np.uint64
        )

    def hash_array(self, keys: npt.NDArray[np.uint64]) -> npt.NDArray[np.uint64]:
        """Hash a key array (vectorized, one gather per byte)."""
        keys = np.asarray(keys, dtype=np.uint64)
        out = np.zeros(keys.shape, dtype=np.uint64)
        for chunk in range(_NUM_CHUNKS):
            byte = (keys >> np.uint64(8 * chunk)) & np.uint64(0xFF)
            out ^= self._tables[chunk][byte.astype(np.int64)]
        return out

    def hash_one(self, key: int) -> int:
        """Scalar convenience wrapper."""
        return int(self.hash_array(np.array([key], dtype=np.uint64))[0])


class TabulationFamily:
    """Drop-in replacement for :class:`repro.hashing.family.HashFamily`."""

    def __init__(self, k: int, seed: int = 0x7AB) -> None:
        if k < 1:
            raise ConfigError(f"k must be >= 1, got {k}")
        self.k = int(k)
        self.seed = int(seed)
        self._functions = [TabulationHash(seed=seed + 977 * r) for r in range(k)]

    def hash_one(self, r: int, x: int) -> int:
        return self._functions[r].hash_one(x)

    def hash_array(self, r: int, x: npt.NDArray[np.uint64]) -> npt.NDArray[np.uint64]:
        return self._functions[r].hash_array(x)

    def hash_all(self, x: npt.NDArray[np.uint64]) -> npt.NDArray[np.uint64]:
        x = np.asarray(x, dtype=np.uint64)
        return np.stack([f.hash_array(x) for f in self._functions], axis=1)


class TabulationIndexer:
    """Banked counter indexing over tabulation hashing.

    Mirrors :class:`repro.hashing.family.BankedIndexer`'s interface so
    it can be monkey-wired into a Caesar instance for the hash-family
    ablation (``caesar.indexer = TabulationIndexer(...)`` before
    processing).
    """

    def __init__(self, k: int, bank_size: int, seed: int = 0x7AB) -> None:
        if bank_size < 1:
            raise ConfigError(f"bank_size must be >= 1, got {bank_size}")
        self.family = TabulationFamily(k, seed)
        self.k = int(k)
        self.bank_size = int(bank_size)
        self.total_counters = self.k * self.bank_size
        self._offsets = np.arange(self.k, dtype=np.int64) * self.bank_size

    def indices_one(self, flow_id: int) -> npt.NDArray[np.int64]:
        out = np.empty(self.k, dtype=np.int64)
        for r in range(self.k):
            out[r] = r * self.bank_size + self.family.hash_one(r, flow_id) % self.bank_size
        return out

    def indices(self, flow_ids: npt.NDArray[np.uint64]) -> npt.NDArray[np.int64]:
        h = self.family.hash_all(np.asarray(flow_ids, dtype=np.uint64))
        local = (h % np.uint64(self.bank_size)).astype(np.int64)
        return local + self._offsets[None, :]
