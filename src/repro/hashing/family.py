"""Seeded hash families and banked counter-index derivation.

A :class:`HashFamily` holds ``k`` independent hash functions derived
from one master seed; a :class:`BankedIndexer` specializes the family to
the banked SRAM layout described in DESIGN.md: the SRAM is organized as
``k`` banks of ``bank_size`` counters, and hash ``r`` selects flow
``f``'s counter inside bank ``r``. Distinct banks make the ``k`` mapped
counters collision-free by construction, exactly realizing the paper's
"k different collision-free hash functions".

Both scalar and batched (whole flow-ID array) lookups are provided; the
batched path returns a ``(num_flows, k)`` matrix of *global* counter
indices and is what the query phase and the vectorized update paths use.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError
from repro.hashing import mix


class HashFamily:
    """``k`` independent 64-bit hash functions derived from one seed.

    Function ``r`` is ``h_r(x) = splitmix64(seed_r ^ x)`` where the
    per-function seeds are themselves produced by iterating splitmix64
    on the master seed, so families with different master seeds or
    different ``r`` are (empirically) independent.
    """

    def __init__(self, k: int, seed: int = 0x5EED) -> None:
        if k < 1:
            raise ConfigError(f"hash family needs k >= 1, got {k}")
        self.k = int(k)
        self.seed = int(seed)
        # Derive one well-mixed sub-seed per function.
        s = self.seed
        seeds = []
        for _ in range(self.k):
            s = mix.splitmix64(s)
            seeds.append(s)
        self._seeds = tuple(seeds)
        self._seed_arr = np.array(seeds, dtype=np.uint64)

    def hash_one(self, r: int, x: int) -> int:
        """Apply function ``r`` to a single value."""
        return mix.combine(self._seeds[r], x)

    def hash_array(self, r: int, x: npt.NDArray[np.uint64]) -> npt.NDArray[np.uint64]:
        """Apply function ``r`` elementwise to an array of values."""
        return mix.combine_array(self._seeds[r], x)

    def hash_all(self, x: npt.NDArray[np.uint64]) -> npt.NDArray[np.uint64]:
        """Apply all ``k`` functions to an array; returns shape ``(len(x), k)``."""
        x = np.asarray(x, dtype=np.uint64)
        with np.errstate(over="ignore"):
            # Broadcast (n, 1) ^ (k,) -> (n, k), then mix elementwise.
            return mix.splitmix64_array(x[:, None] ^ self._seed_arr[None, :])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HashFamily(k={self.k}, seed={self.seed:#x})"


class BankedIndexer:
    """Maps flow IDs to ``k`` distinct counters in a banked array.

    Bank ``r`` occupies global indices ``[r * bank_size, (r+1) * bank_size)``.
    Flow ``f``'s counter in bank ``r`` is ``r * bank_size + h_r(f) % bank_size``.
    """

    def __init__(self, k: int, bank_size: int, seed: int = 0x5EED) -> None:
        if bank_size < 1:
            raise ConfigError(f"bank_size must be >= 1, got {bank_size}")
        self.family = HashFamily(k, seed)
        self.k = int(k)
        self.bank_size = int(bank_size)
        self.total_counters = self.k * self.bank_size
        self._offsets = (np.arange(self.k, dtype=np.int64) * self.bank_size)

    def indices_one(self, flow_id: int) -> np.ndarray:
        """The ``k`` global counter indices for one flow (int64, shape (k,))."""
        out = np.empty(self.k, dtype=np.int64)
        for r in range(self.k):
            out[r] = r * self.bank_size + self.family.hash_one(r, flow_id) % self.bank_size
        return out

    def indices(self, flow_ids: npt.NDArray[np.uint64]) -> npt.NDArray[np.int64]:
        """Global counter indices for many flows; shape ``(len(flow_ids), k)``.

        Row ``i`` holds flow ``i``'s counters ordered by bank; all k are
        distinct because banks are disjoint.
        """
        h = self.family.hash_all(np.asarray(flow_ids, dtype=np.uint64))
        local = (h % np.uint64(self.bank_size)).astype(np.int64)
        return local + self._offsets[None, :]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BankedIndexer(k={self.k}, bank_size={self.bank_size}, "
            f"total={self.total_counters}, seed={self.family.seed:#x})"
        )


class BankedIndexMemo:
    """Growing array-backed memo of flow → k-counter mappings.

    The batched construction engine's replacement for the per-flow
    ``dict[int, ndarray]`` memo of the scalar reference: mapped-counter
    rows live in one contiguous ``(capacity, k)`` int64 table (doubled
    amortized), with a dict only from flow ID to row number. A drained
    eviction chunk resolves to counter indices with one deduplication,
    one vectorized hash of the still-unseen flows, and one 2-D gather —
    no per-eviction hashing.

    Flows are mapped to k *fixed* counters for the whole measurement
    (Section 3.1), so the memo doubles as the record of every flow the
    cache ever evicted or dumped (:meth:`flows`).
    """

    def __init__(self, indexer: BankedIndexer, initial_capacity: int = 1024) -> None:
        if initial_capacity < 1:
            raise ConfigError(f"initial_capacity must be >= 1, got {initial_capacity}")
        self.indexer = indexer
        self._rows: dict[int, int] = {}
        self._ids = np.empty(initial_capacity, dtype=np.uint64)
        self._table = np.empty((initial_capacity, indexer.k), dtype=np.int64)
        self._length = 0

    def __len__(self) -> int:
        """Number of distinct flows memoized."""
        return self._length

    def _grow_to(self, needed: int) -> None:
        capacity = len(self._table)
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        ids = np.empty(capacity, dtype=np.uint64)
        ids[: self._length] = self._ids[: self._length]
        self._ids = ids
        table = np.empty((capacity, self.indexer.k), dtype=np.int64)
        table[: self._length] = self._table[: self._length]
        self._table = table

    def indices_for(self, flow_ids: npt.NDArray[np.uint64]) -> npt.NDArray[np.int64]:
        """Global counter indices for a batch of (possibly repeated)
        flow IDs; shape ``(len(flow_ids), k)``, rows ordered by bank."""
        uniq, inverse = np.unique(flow_ids, return_inverse=True)
        rows = np.empty(len(uniq), dtype=np.int64)
        missing: list[int] = []
        lookup = self._rows.get
        for i, fid in enumerate(uniq.tolist()):
            row = lookup(fid, -1)
            rows[i] = row
            if row < 0:
                missing.append(i)
        if missing:
            miss = np.array(missing, dtype=np.int64)
            new_ids = uniq[miss]
            base = self._length
            self._grow_to(base + len(miss))
            self._ids[base : base + len(miss)] = new_ids
            self._table[base : base + len(miss)] = self.indexer.indices(new_ids)
            self._length = base + len(miss)
            new_rows = base + np.arange(len(miss), dtype=np.int64)
            rows[miss] = new_rows
            store = self._rows
            for fid, row in zip(new_ids.tolist(), new_rows.tolist()):
                store[fid] = row
        return self._table[rows[inverse]]

    def preload(self, flow_ids: npt.NDArray[np.uint64]) -> None:
        """Bulk-insert flows in the given order (checkpoint restore).

        ``flow_ids`` must be distinct and not yet memoized — exactly the
        shape :meth:`flows` returns — so a resumed instance reproduces
        both the mapping *and* the first-seen ordering of the original.
        """
        flow_ids = np.asarray(flow_ids, dtype=np.uint64)
        if len(flow_ids) == 0:
            return
        store = self._rows
        if len(np.unique(flow_ids)) != len(flow_ids) or any(
            fid in store for fid in flow_ids.tolist()
        ):
            raise ConfigError("preload requires distinct, unseen flow IDs")
        base = self._length
        self._grow_to(base + len(flow_ids))
        self._ids[base : base + len(flow_ids)] = flow_ids
        self._table[base : base + len(flow_ids)] = self.indexer.indices(flow_ids)
        self._length = base + len(flow_ids)
        for i, fid in enumerate(flow_ids.tolist()):
            store[fid] = base + i

    def flows(self) -> npt.NDArray[np.uint64]:
        """Every flow ID memoized so far, in first-seen order."""
        return self._ids[: self._length].copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BankedIndexMemo({self._length} flows, {self.indexer!r})"
