"""Heavy-tailed flow-size distributions.

Section 4.1 of the paper assumes flow sizes follow a known distribution
``P_i`` over ``i = 1..N`` with mean ``mu`` and variance ``sigma^2``
(Eq. 1), and Section 6.1 observes the real trace is heavy-tailed with
more than 92 % of flows smaller than the mean. These classes provide
that substrate: discrete distributions on ``{1, ..., N}`` with exact
pmf/moments (consumed by :mod:`repro.core.theory`) and fast inverse-CDF
sampling (consumed by the flow generator).

All distributions precompute their pmf as a NumPy vector once;
sampling is a single ``searchsorted`` over the cdf — no Python loops.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError
from repro.types import SIZE_DTYPE


class FlowSizeDistribution:
    """A discrete flow-size distribution on ``{1, ..., N}``.

    Subclasses provide the unnormalized weight vector; this base class
    normalizes it, exposes exact moments, and implements sampling.
    """

    def __init__(self, weights: npt.NDArray[np.float64]) -> None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 1 or len(weights) == 0:
            raise ConfigError("weights must be a non-empty 1-D array")
        if np.any(weights < 0) or not np.all(np.isfinite(weights)):
            raise ConfigError("weights must be finite and non-negative")
        total = weights.sum()
        if total <= 0:
            raise ConfigError("weights must have positive mass")
        self._pmf = weights / total
        self._cdf = np.cumsum(self._pmf)
        # Guard against floating rounding on the last cdf entry.
        self._cdf[-1] = 1.0
        self._support = np.arange(1, len(self._pmf) + 1, dtype=SIZE_DTYPE)

    # -- exact quantities (used by the theory module) -------------------

    @property
    def max_size(self) -> int:
        """Upper bound ``N`` of the support."""
        return len(self._pmf)

    @property
    def pmf(self) -> npt.NDArray[np.float64]:
        """Probability of each size ``1..N`` (read-only view)."""
        v = self._pmf.view()
        v.flags.writeable = False
        return v

    def probability(self, size: int) -> float:
        """``P_i`` — probability that a flow has exactly ``size`` packets."""
        if size < 1 or size > self.max_size:
            return 0.0
        return float(self._pmf[size - 1])

    @property
    def mean(self) -> float:
        """``mu = E(z)`` per paper Eq. (1)."""
        return float(self._support @ self._pmf)

    @property
    def variance(self) -> float:
        """``sigma^2 = D(z)`` per paper Eq. (1)."""
        mu = self.mean
        return float(((self._support - mu) ** 2) @ self._pmf)

    @property
    def second_moment(self) -> float:
        """``E(z^2)`` — drives the flow-clustering noise variance."""
        return float((self._support.astype(np.float64) ** 2) @ self._pmf)

    def fraction_below(self, threshold: float) -> float:
        """Probability mass on sizes strictly below ``threshold``.

        The paper's heavy-tail check: more than 92 % of flows are below
        the mean, and with ``y = 2 * mean`` more than 95 % are below
        the cache-entry capacity.
        """
        cut = int(np.ceil(threshold)) - 1  # sizes 1..cut are < threshold
        if cut <= 0:
            return 0.0
        cut = min(cut, self.max_size)
        return float(self._cdf[cut - 1])

    # -- sampling --------------------------------------------------------

    def sample(self, count: int, rng: np.random.Generator) -> npt.NDArray[np.int64]:
        """Draw ``count`` iid sizes via inverse-CDF lookup."""
        if count < 0:
            raise ConfigError(f"count must be >= 0, got {count}")
        u = rng.random(count)
        return (np.searchsorted(self._cdf, u, side="right") + 1).astype(SIZE_DTYPE)


class BoundedZipf(FlowSizeDistribution):
    """Zipf (power-law) sizes: ``P_i proportional to i^-alpha`` on ``1..N``.

    The workhorse heavy-tail model; ``alpha`` around 1.6-2.2 with a
    bounded support reproduces the paper's trace shape (Figure 3).
    """

    def __init__(self, alpha: float, max_size: int) -> None:
        if alpha <= 0:
            raise ConfigError(f"alpha must be > 0, got {alpha}")
        if max_size < 1:
            raise ConfigError(f"max_size must be >= 1, got {max_size}")
        self.alpha = float(alpha)
        sizes = np.arange(1, max_size + 1, dtype=np.float64)
        super().__init__(sizes**-self.alpha)


class DiscreteParetoDist(FlowSizeDistribution):
    """Discretized bounded Pareto: ``P_i ~ i^-(alpha+1)`` tail with scale.

    ``P(size = i) = F(i) - F(i-1)`` for a Pareto(alpha, x_min=1) cdf
    truncated at ``max_size``. Slightly lighter head than Zipf for the
    same tail index.
    """

    def __init__(self, alpha: float, max_size: int) -> None:
        if alpha <= 0:
            raise ConfigError(f"alpha must be > 0, got {alpha}")
        if max_size < 1:
            raise ConfigError(f"max_size must be >= 1, got {max_size}")
        self.alpha = float(alpha)
        edges = np.arange(0, max_size + 1, dtype=np.float64) + 1.0  # 1..N+1
        cdf = 1.0 - edges**-self.alpha
        super().__init__(np.diff(cdf))


class GeometricDist(FlowSizeDistribution):
    """Truncated geometric sizes — a *light*-tailed contrast model.

    Useful in ablations to show how CAESAR behaves when the heavy-tail
    assumption (which justifies ``p_y -> 0``) is violated or satisfied
    trivially.
    """

    def __init__(self, success_prob: float, max_size: int) -> None:
        if not 0 < success_prob < 1:
            raise ConfigError(f"success_prob must be in (0, 1), got {success_prob}")
        if max_size < 1:
            raise ConfigError(f"max_size must be >= 1, got {max_size}")
        self.success_prob = float(success_prob)
        i = np.arange(1, max_size + 1, dtype=np.float64)
        super().__init__((1.0 - success_prob) ** (i - 1) * success_prob)


class MixtureDist(FlowSizeDistribution):
    """A weighted mixture of flow-size distributions.

    The canonical use is an explicit mice + elephants model — e.g. a
    geometric body with a Zipf tail — which stresses the schemes with
    sharper bimodality than a single power law. Components may have
    different support bounds; the mixture's support is the largest.
    """

    def __init__(
        self,
        components: Sequence[FlowSizeDistribution],
        weights: Sequence[float],
    ) -> None:
        if len(components) < 1 or len(components) != len(weights):
            raise ConfigError("need one weight per component, at least one component")
        w = np.asarray(weights, dtype=np.float64)
        if np.any(w < 0) or w.sum() <= 0:
            raise ConfigError("weights must be non-negative with positive sum")
        w = w / w.sum()
        max_n = max(c.max_size for c in components)
        pmf = np.zeros(max_n, dtype=np.float64)
        for comp, weight in zip(components, w):
            pmf[: comp.max_size] += weight * comp.pmf
        self.components = tuple(components)
        self.weights = tuple(float(x) for x in w)
        super().__init__(pmf)


class EmpiricalDist(FlowSizeDistribution):
    """Distribution fit from an observed multiset of flow sizes.

    This is how a deployment would instantiate the theory formulas
    from a measured trace: build the empirical pmf, feed it to
    :mod:`repro.core.theory`.
    """

    def __init__(self, sizes: Sequence[int] | npt.NDArray[np.int64]) -> None:
        sizes = np.asarray(sizes, dtype=SIZE_DTYPE)
        if len(sizes) == 0:
            raise ConfigError("need at least one observed size")
        if sizes.min() < 1:
            raise ConfigError("flow sizes must be >= 1")
        counts = np.bincount(sizes, minlength=int(sizes.max()) + 1)[1:]
        super().__init__(counts.astype(np.float64))


def calibrate_zipf_to_mean(
    target_mean: float,
    max_size: int,
    *,
    alpha_lo: float = 0.5,
    alpha_hi: float = 4.0,
    tol: float = 1e-3,
    max_iter: int = 100,
) -> BoundedZipf:
    """Find the bounded Zipf whose mean matches ``target_mean``.

    The paper's trace has mean flow size ``n/Q ~= 27.3``; given a
    support bound, this bisects on ``alpha`` (the mean of a bounded
    Zipf is strictly decreasing in ``alpha``) until the mean matches.
    """
    if target_mean <= 1:
        raise ConfigError(f"target_mean must be > 1, got {target_mean}")
    if BoundedZipf(alpha_hi, max_size).mean > target_mean:
        raise ConfigError("target_mean too small for the given alpha range")
    if BoundedZipf(alpha_lo, max_size).mean < target_mean:
        raise ConfigError("target_mean too large for the given support bound")
    lo, hi = alpha_lo, alpha_hi
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        m = BoundedZipf(mid, max_size).mean
        if abs(m - target_mean) <= tol:
            return BoundedZipf(mid, max_size)
        if m > target_mean:
            lo = mid  # mean too big -> need larger alpha
        else:
            hi = mid
    return BoundedZipf(0.5 * (lo + hi), max_size)
