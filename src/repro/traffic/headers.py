"""Binary "captured headers" trace format.

The paper's pipeline starts from raw captured packets: extract the
5-tuple header, digest it with SHA-1/APHash into a flow ID, then feed
the measurement structures. This module provides a minimal on-disk
format for captured headers — a fixed 13-byte record per packet (the
packed 5-tuple) behind a small magic/count header — together with a
synthetic capture writer, so the *entire* paper pipeline (bytes on the
wire → flow IDs → measurement) can be exercised end to end even though
the original backbone capture is private.

Format (little-endian):

    offset 0   4 bytes   magic  b"CHD1"
    offset 4   8 bytes   uint64 packet count
    offset 12  13*count  packed 5-tuples (see FiveTuple.pack)
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import numpy.typing as npt

from repro.errors import TraceFormatError
from repro.hashing.flowid import flow_id_from_five_tuple, synthetic_five_tuples
from repro.traffic.flows import FlowSet
from repro.traffic.trace import Trace
from repro.types import FLOW_ID_DTYPE, FiveTuple

MAGIC = b"CHD1"
RECORD_SIZE = 13


def write_headers(path: str | Path, headers: list[FiveTuple]) -> None:
    """Write a captured-headers file."""
    with open(Path(path), "wb") as fh:
        fh.write(MAGIC)
        fh.write(len(headers).to_bytes(8, "little"))
        for h in headers:
            fh.write(h.pack())


def read_headers(path: str | Path) -> list[FiveTuple]:
    """Read a captured-headers file back into 5-tuples."""
    raw = Path(path).read_bytes()
    if raw[:4] != MAGIC:
        raise TraceFormatError(f"{path}: bad magic {raw[:4]!r}")
    count = int.from_bytes(raw[4:12], "little")
    body = raw[12:]
    if len(body) != count * RECORD_SIZE:
        raise TraceFormatError(
            f"{path}: expected {count * RECORD_SIZE} header bytes, got {len(body)}"
        )
    return [
        FiveTuple.unpack(body[i * RECORD_SIZE : (i + 1) * RECORD_SIZE]) for i in range(count)
    ]


def headers_to_packet_stream(headers: list[FiveTuple]) -> npt.NDArray[np.uint64]:
    """Digest captured headers into the flow-ID packet stream.

    This is the paper's ID-generation step (SHA-1 + APHash); identical
    5-tuples always produce identical flow IDs.
    """
    cache: dict[FiveTuple, int] = {}
    out = np.empty(len(headers), dtype=FLOW_ID_DTYPE)
    for i, h in enumerate(headers):
        fid = cache.get(h)
        if fid is None:
            fid = flow_id_from_five_tuple(h)
            cache[h] = fid
        out[i] = fid
    return out


def synthetic_capture(
    num_flows: int,
    sizes: npt.NDArray[np.int64],
    seed: int = 0,
) -> list[FiveTuple]:
    """Build a shuffled synthetic capture: one 5-tuple per flow, repeated
    ``sizes[i]`` times, then globally permuted (uniform arrival)."""
    if len(sizes) != num_flows:
        raise TraceFormatError("sizes must have one entry per flow")
    tuples = synthetic_five_tuples(num_flows, seed=seed)
    rng = np.random.default_rng(seed + 1)
    order = rng.permutation(np.repeat(np.arange(num_flows), sizes))
    return [tuples[i] for i in order]


def trace_from_headers(headers: list[FiveTuple]) -> Trace:
    """Full capture pipeline: headers → flow IDs → trace with ground truth."""
    packets = headers_to_packet_stream(headers)
    ids, counts = np.unique(packets, return_counts=True)
    return Trace(packets=packets, flows=FlowSet(ids=ids, sizes=counts.astype(np.int64)))
