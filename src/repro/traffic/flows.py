"""Flow-set synthesis: (flow ID, true size) pairs.

A :class:`FlowSet` is the ground truth of a measurement run — the
mapping from each distinct flow to its actual packet count. It is what
the accuracy metrics compare estimates against.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError
from repro.hashing.flowid import unique_flow_ids
from repro.traffic.distributions import FlowSizeDistribution


@dataclass(frozen=True)
class FlowSet:
    """Distinct flows with their true sizes.

    Attributes
    ----------
    ids:
        uint64 flow IDs, all distinct.
    sizes:
        int64 true packet counts, aligned with ``ids``, all >= 1.
    """

    ids: npt.NDArray[np.uint64]
    sizes: npt.NDArray[np.int64]

    def __post_init__(self) -> None:
        if self.ids.shape != self.sizes.shape or self.ids.ndim != 1:
            raise ConfigError("ids and sizes must be aligned 1-D arrays")
        if len(self.ids) and self.sizes.min() < 1:
            raise ConfigError("flow sizes must be >= 1")
        if len(np.unique(self.ids)) != len(self.ids):
            raise ConfigError("flow IDs must be distinct")

    @classmethod
    def generate(
        cls,
        num_flows: int,
        dist: FlowSizeDistribution,
        seed: int = 0,
    ) -> "FlowSet":
        """Draw ``num_flows`` flows with iid sizes from ``dist``."""
        if num_flows < 1:
            raise ConfigError(f"num_flows must be >= 1, got {num_flows}")
        rng = np.random.default_rng(seed)
        ids = unique_flow_ids(num_flows, seed=seed)
        sizes = dist.sample(num_flows, rng)
        return cls(ids=ids, sizes=sizes)

    @property
    def num_flows(self) -> int:
        """``Q`` — the number of distinct flows."""
        return len(self.ids)

    @property
    def num_packets(self) -> int:
        """``n`` — the total number of packets across all flows."""
        return int(self.sizes.sum())

    @property
    def mean_size(self) -> float:
        """``mu = n / Q`` — the average flow size."""
        return self.num_packets / self.num_flows

    def fraction_below_mean(self) -> float:
        """Fraction of flows strictly smaller than the mean size.

        The paper's heavy-tail sanity check (> 0.92 on its trace).
        """
        return float(np.mean(self.sizes < self.mean_size))

    def size_of(self, flow_id: int) -> int:
        """True size of one flow (O(Q) lookup; tests/examples only)."""
        idx = np.nonzero(self.ids == np.uint64(flow_id))[0]
        if len(idx) == 0:
            raise KeyError(f"unknown flow id {flow_id}")
        return int(self.sizes[idx[0]])

    def top(self, count: int) -> "FlowSet":
        """The ``count`` largest flows (elephants), descending by size."""
        order = np.argsort(self.sizes)[::-1][:count]
        return FlowSet(ids=self.ids[order].copy(), sizes=self.sizes[order].copy())
