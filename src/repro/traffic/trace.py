"""Trace container: packets + ground truth, with persistence and stats.

A :class:`Trace` bundles the packet arrival order with the flow-level
ground truth, provides the Figure-3 style distribution statistics, and
round-trips through ``.npz`` files so expensive traces can be reused
across experiment runs.

:func:`default_paper_trace` builds the synthetic stand-in for the
paper's backbone capture — same mean flow size (n/Q ≈ 27.32), same
heavy-tail property (> 92 % of flows below the mean), scaled down in
flow count by default so experiments run in seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError, TraceFormatError
from repro.traffic.distributions import calibrate_zipf_to_mean
from repro.traffic.flows import FlowSet
from repro.traffic.packets import uniform_stream

#: Statistics of the paper's real capture (Section 6.1).
PAPER_NUM_PACKETS = 27_720_011
PAPER_NUM_FLOWS = 1_014_601
PAPER_MEAN_FLOW_SIZE = PAPER_NUM_PACKETS / PAPER_NUM_FLOWS  # ~27.32


@dataclass(frozen=True)
class Trace:
    """A packet stream together with its flow-level ground truth."""

    packets: npt.NDArray[np.uint64]
    flows: FlowSet

    def __post_init__(self) -> None:
        if len(self.packets) != self.flows.num_packets:
            raise ConfigError(
                f"packet stream length {len(self.packets)} does not match "
                f"ground-truth total {self.flows.num_packets}"
            )

    # -- basic quantities -------------------------------------------------

    @property
    def num_packets(self) -> int:
        """``n`` in the paper's notation."""
        return len(self.packets)

    @property
    def num_flows(self) -> int:
        """``Q`` in the paper's notation."""
        return self.flows.num_flows

    @property
    def mean_flow_size(self) -> float:
        """``mu = n / Q``."""
        return self.flows.mean_size

    # -- Figure 3: flow-size distribution ----------------------------------

    def size_histogram(self) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
        """(sizes, counts): how many flows have each exact size.

        This is the series plotted in the paper's Figure 3 (log-log
        size vs number of flows).
        """
        sizes, counts = np.unique(self.flows.sizes, return_counts=True)
        return sizes, counts

    def log_binned_histogram(
        self, bins_per_decade: int = 4
    ) -> tuple[npt.NDArray[np.float64], npt.NDArray[np.int64]]:
        """Flow counts in logarithmic size bins (for compact reporting)."""
        max_size = int(self.flows.sizes.max())
        num_bins = max(1, int(np.ceil(np.log10(max_size) * bins_per_decade)))
        edges = np.unique(
            np.round(10 ** (np.arange(num_bins + 1) / bins_per_decade)).astype(np.int64)
        )
        edges = edges[edges <= max_size]
        counts, _ = np.histogram(self.flows.sizes, bins=np.append(edges, max_size + 1))
        return edges.astype(np.float64), counts.astype(np.int64)

    def fraction_below_mean(self) -> float:
        """Heavy-tail check: fraction of flows smaller than the mean."""
        return self.flows.fraction_below_mean()

    # -- persistence -------------------------------------------------------

    def save(self, path: str | Path) -> None:
        """Write the trace to a compressed ``.npz`` file."""
        np.savez_compressed(
            Path(path),
            packets=self.packets,
            flow_ids=self.flows.ids,
            flow_sizes=self.flows.sizes,
        )

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Read a trace previously written by :meth:`save`."""
        try:
            with np.load(Path(path)) as data:
                return cls(
                    packets=data["packets"],
                    flows=FlowSet(ids=data["flow_ids"], sizes=data["flow_sizes"]),
                )
        except (KeyError, OSError, ValueError) as exc:
            raise TraceFormatError(f"cannot load trace from {path}: {exc}") from exc

    # -- construction ------------------------------------------------------

    @classmethod
    def from_packets(cls, packets: npt.NDArray[np.uint64]) -> "Trace":
        """Recover ground truth from a raw packet stream."""
        ids, counts = np.unique(packets, return_counts=True)
        return cls(packets=packets, flows=FlowSet(ids=ids, sizes=counts.astype(np.int64)))


def default_paper_trace(
    scale: float = 0.1,
    seed: int = 42,
    max_size: int | None = None,
) -> Trace:
    """Synthetic stand-in for the paper's 10 Gbps backbone capture.

    Parameters
    ----------
    scale:
        Fraction of the paper's Q = 1,014,601 flows to generate. The
        mean flow size (and hence n/Q) is held at the paper's 27.32
        regardless of scale, so all memory-budget ratios transfer.
    seed:
        Seed for flow IDs, sizes, and arrival order.
    max_size:
        Support bound N for the size distribution; defaults to a bound
        that scales with the trace so the elephant/mouse ratio is
        preserved.

    The returned trace satisfies the paper's observed properties:
    heavy-tailed (more than 92 % of flows below the mean) and more than
    95 % of flows below ``y = 2 * mean`` (so cache-entry overflows are
    rare, Section 6.2).
    """
    if not 0 < scale <= 1.0:
        raise ConfigError(f"scale must be in (0, 1], got {scale}")
    num_flows = max(1000, int(round(PAPER_NUM_FLOWS * scale)))
    if max_size is None:
        # Largest flow in a heavy-tailed capture grows with capture
        # size; ~1.5 % of total packets makes the calibrated Zipf
        # satisfy both of the paper's observed tail properties
        # (> 92 % of flows below the mean, > 95 % below y = 2 * mean).
        max_size = max(1000, int(round(PAPER_NUM_PACKETS * scale * 0.015)))
    dist = calibrate_zipf_to_mean(PAPER_MEAN_FLOW_SIZE, max_size)
    flows = FlowSet.generate(num_flows, dist, seed=seed)
    packets = uniform_stream(flows, seed=seed + 1)
    return Trace(packets=packets, flows=flows)


def small_test_trace(num_flows: int = 2000, seed: int = 7) -> Trace:
    """A fast trace for unit tests: same shape, ~50 k packets."""
    dist = calibrate_zipf_to_mean(PAPER_MEAN_FLOW_SIZE, 5000)
    flows = FlowSet.generate(num_flows, dist, seed=seed)
    return Trace(packets=uniform_stream(flows, seed=seed + 1), flows=flows)
