"""Minimal libpcap-format reader/writer (real-capture interop).

The paper's pipeline starts from packets captured on a 10 Gbps link.
This module lets the library consume *actual* capture files — the
classic ``pcap`` format (magic ``0xa1b2c3d4``), Ethernet + IPv4 +
TCP/UDP/ICMP — and extract exactly what the measurement needs: the
5-tuple and the IP total length per packet. Pure stdlib ``struct``;
packets that are not IPv4 (ARP, IPv6, ...) are skipped and counted.

A writer is included so tests and demos can synthesize valid captures;
it emits minimal frames (Ethernet + IPv4 + L4 header, no payload).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from pathlib import Path

import numpy as np
import numpy.typing as npt

from repro.errors import TraceFormatError
from repro.types import FiveTuple

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
LINKTYPE_ETHERNET = 1

_GLOBAL_HDR = struct.Struct("<IHHiIII")
_PKT_HDR = struct.Struct("<IIII")
_ETH_IPV4 = 0x0800


@dataclass(frozen=True)
class CapturedPacket:
    """One parsed IPv4 packet: the measurement-relevant fields."""

    timestamp: float
    header: FiveTuple
    ip_length: int  #: IPv4 total length (the byte weight for volume)


@dataclass(frozen=True)
class PcapReadResult:
    packets: list[CapturedPacket]
    skipped: int  #: non-IPv4 or truncated frames


def read_pcap(path: str | Path) -> PcapReadResult:
    """Parse a classic pcap file into captured packets."""
    raw = Path(path).read_bytes()
    if len(raw) < _GLOBAL_HDR.size:
        raise TraceFormatError(f"{path}: too short for a pcap global header")
    magic = struct.unpack_from("<I", raw, 0)[0]
    if magic == PCAP_MAGIC:
        endian = "<"
    elif magic == PCAP_MAGIC_SWAPPED:
        endian = ">"
    else:
        raise TraceFormatError(f"{path}: bad pcap magic {magic:#x}")
    _, _, _, _, _, _, linktype = struct.unpack_from(endian + "IHHiIII", raw, 0)
    if linktype != LINKTYPE_ETHERNET:
        raise TraceFormatError(f"{path}: unsupported linktype {linktype}")

    packets: list[CapturedPacket] = []
    skipped = 0
    offset = _GLOBAL_HDR.size
    pkt_hdr = struct.Struct(endian + "IIII")
    while offset + pkt_hdr.size <= len(raw):
        ts_sec, ts_usec, incl_len, _orig_len = pkt_hdr.unpack_from(raw, offset)
        offset += pkt_hdr.size
        frame = raw[offset : offset + incl_len]
        offset += incl_len
        if len(frame) != incl_len:
            raise TraceFormatError(f"{path}: truncated final record")
        parsed = _parse_frame(frame)
        if parsed is None:
            skipped += 1
            continue
        header, ip_length = parsed
        packets.append(
            CapturedPacket(
                timestamp=ts_sec + ts_usec / 1e6, header=header, ip_length=ip_length
            )
        )
    return PcapReadResult(packets=packets, skipped=skipped)


def _parse_frame(frame: bytes) -> tuple[FiveTuple, int] | None:
    """Ethernet + IPv4 + L4 ports; None for anything else."""
    if len(frame) < 14 + 20:
        return None
    ethertype = int.from_bytes(frame[12:14], "big")
    if ethertype != _ETH_IPV4:
        return None
    ip = frame[14:]
    version_ihl = ip[0]
    if version_ihl >> 4 != 4:
        return None
    ihl = (version_ihl & 0x0F) * 4
    if ihl < 20 or len(ip) < ihl:
        return None
    total_length = int.from_bytes(ip[2:4], "big")
    protocol = ip[9]
    src_ip = int.from_bytes(ip[12:16], "big")
    dst_ip = int.from_bytes(ip[16:20], "big")
    src_port = dst_port = 0
    if protocol in (6, 17) and len(ip) >= ihl + 4:  # TCP/UDP ports
        src_port = int.from_bytes(ip[ihl : ihl + 2], "big")
        dst_port = int.from_bytes(ip[ihl + 2 : ihl + 4], "big")
    return (
        FiveTuple(src_ip, dst_ip, src_port, dst_port, protocol),
        total_length,
    )


# -- writer ---------------------------------------------------------------------


def _build_frame(header: FiveTuple, ip_length: int) -> bytes:
    """A minimal valid Ethernet+IPv4(+L4 ports) frame.

    The emitted frame carries only headers — ``ip_length`` is recorded
    in the IPv4 total-length field (what volume measurement reads), not
    materialized as payload bytes, keeping synthetic captures small.
    """
    eth = b"\x02" * 6 + b"\x04" * 6 + _ETH_IPV4.to_bytes(2, "big")
    ihl = 20
    ip = bytearray(20)
    ip[0] = 0x45
    ip[2:4] = max(ip_length, ihl + 4).to_bytes(2, "big")
    ip[8] = 64  # TTL
    ip[9] = header.protocol
    ip[12:16] = header.src_ip.to_bytes(4, "big")
    ip[16:20] = header.dst_ip.to_bytes(4, "big")
    l4 = header.src_port.to_bytes(2, "big") + header.dst_port.to_bytes(2, "big")
    return eth + bytes(ip) + l4


def write_pcap(
    path: str | Path,
    headers: list[FiveTuple],
    lengths: npt.NDArray[np.int64] | None = None,
    start_time: float = 0.0,
    interarrival_s: float = 1e-6,
) -> None:
    """Write a synthetic capture, one minimal frame per header."""
    out = bytearray()
    out += _GLOBAL_HDR.pack(PCAP_MAGIC, 2, 4, 0, 0, 65535, LINKTYPE_ETHERNET)
    for i, h in enumerate(headers):
        length = int(lengths[i]) if lengths is not None else 64
        frame = _build_frame(h, length)
        t = start_time + i * interarrival_s
        out += _PKT_HDR.pack(int(t), int((t % 1) * 1e6), len(frame), len(frame))
        out += frame
    Path(path).write_bytes(bytes(out))


def pcap_to_streams(
    path: str | Path,
) -> tuple[npt.NDArray[np.uint64], npt.NDArray[np.int64]]:
    """Capture file → (flow-ID stream, byte-length stream).

    The direct feed for ``Caesar.process(packets, lengths)``: flow IDs
    via the paper's SHA-1/APHash digest, lengths from the IPv4
    total-length field.
    """
    from repro.hashing.flowid import flow_id_from_five_tuple

    result = read_pcap(path)
    ids = np.empty(len(result.packets), dtype=np.uint64)
    lengths = np.empty(len(result.packets), dtype=np.int64)
    memo: dict[FiveTuple, int] = {}
    for i, pkt in enumerate(result.packets):
        fid = memo.get(pkt.header)
        if fid is None:
            fid = flow_id_from_five_tuple(pkt.header)
            memo[pkt.header] = fid
        ids[i] = fid
        lengths[i] = pkt.ip_length
    return ids, lengths
