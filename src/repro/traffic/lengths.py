"""Per-packet byte-length synthesis (flow-volume measurement support).

Section 3.1 of the paper lets cache entries count "either packets or
bytes", and Section 6 observes that "flow size and flow volume have
almost the same distribution, except for the magnitude". This module
synthesizes per-packet lengths so the volume path can be exercised:

- :func:`imix_lengths` — the classic trimodal Internet mix (40 / 576 /
  1500-byte packets at 7:4:1), the standard benchmark distribution for
  router datapaths;
- :func:`uniform_lengths` / :func:`constant_lengths` — controls;
- :func:`flow_volumes` — ground-truth byte totals per flow.

Lengths are drawn i.i.d. per packet, independent of the flow, which is
exactly what produces the paper's observation: per-flow volume is then
``size x mean_length`` plus noise, i.e. the same distribution as size
up to magnitude.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError
from repro.types import SIZE_DTYPE

#: Classic IMIX: (length, parts-of-12) = (40, 7), (576, 4), (1500, 1).
IMIX_LENGTHS = np.array([40, 576, 1500], dtype=np.int64)
IMIX_WEIGHTS = np.array([7, 4, 1], dtype=np.float64) / 12.0
IMIX_MEAN = float(IMIX_LENGTHS @ IMIX_WEIGHTS)  # ~340.3 bytes


def imix_lengths(num_packets: int, seed: int = 0) -> npt.NDArray[np.int64]:
    """IMIX-distributed byte lengths for ``num_packets`` packets."""
    if num_packets < 0:
        raise ConfigError(f"num_packets must be >= 0, got {num_packets}")
    rng = np.random.default_rng(seed)
    return IMIX_LENGTHS[rng.choice(3, size=num_packets, p=IMIX_WEIGHTS)]


def uniform_lengths(
    num_packets: int,
    low: int = 40,
    high: int = 1500,
    seed: int = 0,
) -> npt.NDArray[np.int64]:
    """Uniform byte lengths on ``[low, high]``."""
    if not 1 <= low <= high:
        raise ConfigError(f"need 1 <= low <= high, got [{low}, {high}]")
    rng = np.random.default_rng(seed)
    return rng.integers(low, high + 1, size=num_packets).astype(SIZE_DTYPE)


def constant_lengths(num_packets: int, length: int = 576) -> npt.NDArray[np.int64]:
    """Every packet the same size — volume == length x size exactly."""
    if length < 1:
        raise ConfigError(f"length must be >= 1, got {length}")
    return np.full(num_packets, length, dtype=SIZE_DTYPE)


def flow_volumes(
    packets: npt.NDArray[np.uint64],
    lengths: npt.NDArray[np.int64],
) -> tuple[npt.NDArray[np.uint64], npt.NDArray[np.int64]]:
    """Ground-truth byte volume per flow: ``(flow_ids, volumes)``.

    Flow IDs are returned sorted (the order :func:`numpy.unique` gives),
    matching what :meth:`Trace.from_packets` produces for sizes.
    """
    if len(packets) != len(lengths):
        raise ConfigError("packets and lengths must align")
    ids, inverse = np.unique(packets, return_inverse=True)
    volumes = np.zeros(len(ids), dtype=SIZE_DTYPE)
    np.add.at(volumes, inverse, lengths)
    return ids, volumes
