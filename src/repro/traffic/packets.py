"""Packet-stream synthesis: turning a flow set into an arrival order.

Section 4.2 of the paper assumes "all packets from all flows can be
regarded as arriving uniformly and with equal probability" — that is
the :func:`uniform_stream` model (a global random interleave). The
other interleavers exercise the schemes under arrival patterns that
violate that assumption:

- :func:`round_robin_stream` — maximal interleaving (worst case for a
  small cache: every flow stays "hot" simultaneously);
- :func:`bursty_stream` — packets of a flow arrive in contiguous
  bursts (best case for the cache: temporal locality concentrates a
  flow's packets, so one cache residency absorbs many packets).

All are pure NumPy constructions; no per-packet Python loops.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError
from repro.traffic.flows import FlowSet


def uniform_stream(flows: FlowSet, seed: int = 0) -> npt.NDArray[np.uint64]:
    """Globally shuffled arrival order (the paper's uniform assumption)."""
    packets = np.repeat(flows.ids, flows.sizes)
    rng = np.random.default_rng(seed)
    rng.shuffle(packets)
    return packets


def round_robin_stream(flows: FlowSet) -> npt.NDArray[np.uint64]:
    """Strict round-robin over all still-active flows.

    Pass ``r`` emits one packet from every flow whose size exceeds
    ``r``; deterministic. Equivalent to sorting packet slots by
    (per-flow sequence number, flow index).
    """
    sizes = flows.sizes
    n = int(sizes.sum())
    # For each flow, its packets occupy rounds 0..size-1; emit packets
    # ordered by (round, flow position). Build via repeat + argsort.
    flow_pos = np.repeat(np.arange(len(sizes), dtype=np.int64), sizes)
    # Per-packet round index: 0,1,...,size_f-1 within each flow block.
    block_starts = np.repeat(np.cumsum(sizes) - sizes, sizes)
    rounds = np.arange(n, dtype=np.int64) - block_starts
    order = np.lexsort((flow_pos, rounds))
    return np.repeat(flows.ids, sizes)[order]


def bursty_stream(
    flows: FlowSet,
    burst_length: int,
    seed: int = 0,
) -> npt.NDArray[np.uint64]:
    """Burst-level shuffle: each flow's packets form contiguous bursts
    of up to ``burst_length`` packets; bursts are then shuffled globally.

    ``burst_length = 1`` degenerates to :func:`uniform_stream`;
    ``burst_length >= max flow size`` yields fully clustered flows.
    """
    if burst_length < 1:
        raise ConfigError(f"burst_length must be >= 1, got {burst_length}")
    sizes = flows.sizes
    # Number of bursts per flow and each burst's length.
    full, rem = np.divmod(sizes, burst_length)
    burst_counts = full + (rem > 0)
    total_bursts = int(burst_counts.sum())
    burst_flow = np.repeat(np.arange(len(sizes), dtype=np.int64), burst_counts)
    burst_len = np.full(total_bursts, burst_length, dtype=np.int64)
    # The last burst of each flow holds the remainder (if any).
    last_idx = np.cumsum(burst_counts) - 1
    has_rem = rem > 0
    burst_len[last_idx[has_rem]] = rem[has_rem]
    # Shuffle burst order, then expand bursts to packets.
    rng = np.random.default_rng(seed)
    perm = rng.permutation(total_bursts)
    return np.repeat(flows.ids[burst_flow[perm]], burst_len[perm])


def apply_loss(
    packets: npt.NDArray[np.uint64],
    loss_rate: float,
    seed: int = 0,
) -> npt.NDArray[np.uint64]:
    """Drop each packet independently with probability ``loss_rate``.

    Models the paper's "realistic loss assumption" for cache-free RCS
    (Figure 7): when per-packet SRAM updates cannot keep line rate, a
    fraction of packets is simply never recorded. Loss rates of 2/3 and
    9/10 correspond to the empirical cache/SRAM speed gap (Section 6.3.3).
    """
    if not 0.0 <= loss_rate < 1.0:
        raise ConfigError(f"loss_rate must be in [0, 1), got {loss_rate}")
    if loss_rate == 0.0:
        return packets
    rng = np.random.default_rng(seed)
    keep = rng.random(len(packets)) >= loss_rate
    return packets[keep]
