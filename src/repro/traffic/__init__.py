"""Traffic-generation substrate.

The paper evaluates on a private 10 Gbps backbone capture
(n = 27,720,011 packets over Q = 1,014,601 flows, heavy-tailed with
more than 92 % of flows below the mean size). This package is the
substitute substrate: heavy-tailed flow-size distributions, flow-set
synthesis, packet-stream interleavers, a trace container with ground
truth, and a small binary "captured headers" format so the full
header → SHA-1/APHash → flow-ID pipeline can be exercised end to end.
"""

from repro.traffic.distributions import (
    BoundedZipf,
    DiscreteParetoDist,
    EmpiricalDist,
    FlowSizeDistribution,
    GeometricDist,
    calibrate_zipf_to_mean,
)
from repro.traffic.flows import FlowSet
from repro.traffic.packets import (
    bursty_stream,
    round_robin_stream,
    uniform_stream,
)
from repro.traffic.trace import Trace, default_paper_trace

__all__ = [
    "BoundedZipf",
    "DiscreteParetoDist",
    "EmpiricalDist",
    "FlowSizeDistribution",
    "GeometricDist",
    "calibrate_zipf_to_mean",
    "FlowSet",
    "bursty_stream",
    "round_robin_stream",
    "uniform_stream",
    "Trace",
    "default_paper_trace",
]
