"""One-call convenience API.

For users who want per-flow estimates from a packet stream without
assembling the components: :func:`measure` runs the whole CAESAR
pipeline and returns a queryable result. Passing ``stream=`` instead of
a packet array measures incrementally (chunk by chunk, never holding
the whole trace); adding ``workers=W`` runs the streaming runtime —
``W`` supervised shard worker processes (:mod:`repro.runtime`) — and
returns a :class:`StreamMeasurementResult`. The class-based API
(:class:`repro.Caesar`) remains the right tool for epochs, volume, or
bespoke sharded use.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass, replace
from typing import Iterable

import numpy as np
import numpy.typing as npt

from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.core.planner import plan
from repro.errors import ConfigError
from repro.obs.registry import MetricsRegistry
from repro.obs.schemes import observe_scheme
from repro.obs.trace import EvictionTrace
from repro.resilience.faults import FaultPlan
from repro.types import FlowIdArray


@dataclass(frozen=True)
class MeasurementResult:
    """A finished measurement: query it, inspect it."""

    caesar: Caesar
    num_packets: int
    num_flows_seen: int

    def estimate(
        self, flow_ids: FlowIdArray, method: str = "csm"
    ) -> npt.NDArray[np.float64]:
        """Per-flow size estimates (clipped at zero)."""
        return self.caesar.estimate(
            np.asarray(flow_ids, dtype=np.uint64), method, clip_negative=True
        )

    def top_flows(self, k: int = 10) -> list[tuple[int, float]]:
        """The k largest flows among those observed, by estimate.

        Uses the flow IDs the cache ever saw (memoized on eviction), so
        no external flow list is needed.
        """
        seen = self.caesar.flows_seen()
        if len(seen) == 0:
            return []
        est = self.estimate(seen)
        order = np.argsort(est)[::-1][:k]
        return [(int(seen[i]), float(est[i])) for i in order]

    def confidence_interval(
        self, flow_ids: FlowIdArray, alpha: float = 0.95
    ) -> tuple[npt.NDArray[np.float64], npt.NDArray[np.float64]]:
        """Clustering-aware (empirical) intervals — the variant that
        actually covers; see docs/theory.md."""
        return self.caesar.confidence_interval(
            np.asarray(flow_ids, dtype=np.uint64),
            "csm",
            alpha=alpha,
            variance_model="empirical",
        )


@dataclass(frozen=True)
class StreamMeasurementResult:
    """A finished *streaming* measurement (``measure(stream=, workers=)``).

    ``scheme`` is the offline twin rebuilt from the workers' final
    checkpoints — bit-identical to a single-process
    ``ShardedCaesar.process`` of the same stream (docs/runtime.md) —
    and ``runtime`` carries the run's provenance: per-shard checkpoint
    digests, worker restart count, packets ingested.
    """

    scheme: object  # ShardedCaesar (typed loosely: repro.api stays import-light)
    runtime: object  # repro.runtime.RuntimeResult
    num_packets: int
    num_flows_seen: int
    # Graceful degradation (docs/runtime.md): when the watchdog
    # quarantined poison chunks, the run finished without that mass and
    # the result says so instead of pretending the input was complete.
    degraded: bool = False
    quarantined_packets: int = 0

    def estimate(
        self, flow_ids: FlowIdArray, method: str = "csm"
    ) -> npt.NDArray[np.float64]:
        """Per-flow size estimates (clipped at zero), routed per shard."""
        return self.scheme.estimate(
            np.asarray(flow_ids, dtype=np.uint64), method, clip_negative=True
        )

    def top_flows(self, k: int = 10) -> list[tuple[int, float]]:
        """The k largest flows any shard observed, by estimate."""
        seen = np.unique(self.scheme.flows_seen())
        if len(seen) == 0:
            return []
        est = self.estimate(seen)
        order = np.argsort(est)[::-1][:k]
        return [(int(seen[i]), float(est[i])) for i in order]


def _measure_stream(
    stream: object,
    lengths: npt.NDArray[np.int64] | None,
    config: CaesarConfig,
    *,
    workers: int,
    chunk_packets: int,
    state_dir: str | None,
    transport: str | None,
    registry: MetricsRegistry | None,
    num_flows: int | None,
    checkpoint_mode: str = "async",
    checkpoint_level: int = 1,
) -> StreamMeasurementResult:
    """The ``workers=W`` arm of :func:`measure`: run the streaming
    runtime over the stream, then rebuild the offline twin."""
    from repro.runtime.client import StreamingRuntime
    from repro.runtime.transport import DEFAULT_TRANSPORT

    tmp: tempfile.TemporaryDirectory | None = None
    if state_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-runtime-")
        state_dir = tmp.name
    try:
        with StreamingRuntime(
            config,
            workers,
            state_dir=state_dir,
            transport=transport if transport is not None else DEFAULT_TRANSPORT,
            checkpoint_mode=checkpoint_mode,
            checkpoint_level=checkpoint_level,
            registry=registry,
        ) as rt:
            rt.ingest_stream(stream, lengths=lengths, chunk_packets=chunk_packets)
            result = rt.drain()
        scheme = result.load_scheme(registry=registry)
    finally:
        if tmp is not None:
            tmp.cleanup()
    seen = num_flows if num_flows is not None else len(np.unique(scheme.flows_seen()))
    return StreamMeasurementResult(
        scheme=scheme,
        runtime=result,
        num_packets=result.num_packets,
        num_flows_seen=seen,
        degraded=result.degraded,
        quarantined_packets=result.quarantined_packets,
    )


def measure(
    packets: FlowIdArray | None = None,
    *,
    stream: FlowIdArray | Iterable | None = None,
    workers: int | None = None,
    expected_packets: int | None = None,
    expected_flows: int | None = None,
    chunk_packets: int | None = None,
    state_dir: str | None = None,
    transport: str | None = None,
    sram_kb: float | None = None,
    cache_kb: float | None = None,
    target_rel_error: float | None = None,
    size_of_interest: int | None = None,
    k: int = 3,
    lengths: npt.NDArray[np.int64] | None = None,
    seed: int = 0xA91,
    engine: str = "batched",
    registry: MetricsRegistry | None = None,
    eviction_trace: EvictionTrace | None = None,
    fault_plan: FaultPlan | None = None,
    checkpoint_every: int | None = None,
    checkpoint_path: str | None = None,
    checkpoint_mode: str = "async",
    checkpoint_level: int = 1,
    resume_from: str | None = None,
) -> MeasurementResult | StreamMeasurementResult:
    """Measure a packet stream end to end.

    Either give explicit memory budgets (``sram_kb`` + ``cache_kb``,
    the paper's setup) or an accuracy goal (``target_rel_error`` +
    ``size_of_interest``, solved by :mod:`repro.core.planner`).

    ``engine`` picks the construction path: ``"batched"`` (default,
    array-native eviction pipeline with run coalescing auto-selected
    per chunk), ``"runs"`` (run-coalescing cache kernel forced on), or
    ``"scalar"`` (per-eviction reference). All are bit-identical under
    the same seed.

    ``registry`` (optional :class:`~repro.obs.MetricsRegistry`) turns on
    observability: stage timers, eviction counters/histograms, and
    uniform ``measure.*`` scheme gauges including construction
    throughput. ``eviction_trace`` attaches a bounded ring capturing the
    tail of the eviction stream. Neither changes measurement results.

    Resilience (docs/resilience.md): ``fault_plan`` injects a seeded
    fault workload into the eviction pipeline; ``checkpoint_every``
    (packets) writes a crash-consistent checkpoint to
    ``checkpoint_path`` periodically and at the end; ``resume_from``
    restores a saved checkpoint and continues with the *remainder* of
    ``packets`` (the first ``num_packets`` of the stream are skipped —
    pass the same stream the original run saw), finishing
    bit-identically to an uninterrupted run. ``checkpoint_level`` sets
    the zlib level of every checkpoint written (0 = store-only); with
    ``workers=``, ``checkpoint_mode`` picks how shard workers persist:
    ``"sync"`` (write on the ingest path), ``"async"`` (background
    writer, the default), or ``"delta"`` (background writer plus
    incremental changed-stripe checkpoints).

    Streaming (docs/runtime.md): pass ``stream=`` instead of a packet
    array — a flat array, or any iterable of packet arrays /
    ``(packets, lengths)`` pairs — and the trace is measured chunk by
    chunk (``chunk_packets`` each) without ever being materialized.
    With an iterable, give ``expected_packets`` + ``expected_flows`` so
    the sizing rules can run before the stream is consumed. Adding
    ``workers=W`` fans ingest out over ``W`` supervised shard worker
    processes (the :mod:`repro.runtime` runtime — bounded queues,
    live queries, crash recovery) and returns a
    :class:`StreamMeasurementResult` whose estimates are bit-identical
    to the single-process sharded run; ``state_dir`` keeps the workers'
    checkpoints/WALs (default: a temporary directory, removed after
    the run); ``transport`` picks how chunks reach the workers —
    ``"shm"`` (default, zero-copy shared-memory rings) or ``"queue"``
    (bounded pickled queues) — without changing results.
    """
    if (packets is None) == (stream is None):
        raise ConfigError("give exactly one of packets= or stream=")
    if stream is None and not (
        workers is None
        and chunk_packets is None
        and state_dir is None
        and transport is None
    ):
        raise ConfigError(
            "workers/chunk_packets/state_dir/transport apply only with stream="
        )
    if transport is not None and workers is None:
        raise ConfigError("transport= applies only with workers=")
    if stream is not None:
        if checkpoint_every is not None or resume_from is not None:
            raise ConfigError(
                "checkpointing flags apply to the array path; the streaming "
                "runtime checkpoints per shard on its own"
            )
        if workers is not None and (
            fault_plan is not None or eviction_trace is not None
        ):
            raise ConfigError(
                "fault_plan/eviction_trace are single-process features; "
                "not available with workers="
            )
        if isinstance(stream, np.ndarray):
            stream = np.asarray(stream, dtype=np.uint64)
            if len(stream) == 0:
                raise ConfigError("cannot measure an empty stream")
            num_flows = (
                expected_flows
                if expected_flows is not None
                else len(np.unique(stream))
            )
            num_units = (
                expected_packets
                if expected_packets is not None
                else int(lengths.sum()) if lengths is not None else len(stream)
            )
        else:
            if expected_packets is None or expected_flows is None:
                raise ConfigError(
                    "expected_packets and expected_flows are required when "
                    "stream= is an iterable (sizing runs before ingest)"
                )
            num_flows, num_units = expected_flows, expected_packets
    else:
        packets = np.asarray(packets, dtype=np.uint64)
        if len(packets) == 0:
            raise ConfigError("cannot measure an empty stream")
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ConfigError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every}"
                )
            if checkpoint_path is None:
                raise ConfigError("checkpoint_path is required with checkpoint_every")
        num_flows = len(np.unique(packets))
        num_units = int(lengths.sum()) if lengths is not None else len(packets)

    if resume_from is not None:
        # Sizing comes from the checkpoint's own config; skip planning.
        caesar = Caesar.resume(resume_from, registry=registry)
        done = caesar.num_packets
        if done > len(packets):
            raise ConfigError(
                f"checkpoint has already seen {done} packets, stream has {len(packets)}"
            )
        packets = packets[done:]
        lengths = lengths[done:] if lengths is not None else None
    elif target_rel_error is not None:
        if size_of_interest is None:
            raise ConfigError("size_of_interest is required with target_rel_error")
        config = replace(
            plan(
                num_packets=num_units,
                num_flows=num_flows,
                target_rel_error=target_rel_error,
                size_of_interest=size_of_interest,
                k=k,
                seed=seed,
            ).config,
            engine=engine,
        )
    elif sram_kb is not None and cache_kb is not None:
        config = CaesarConfig.for_budgets(
            sram_kb=sram_kb,
            cache_kb=cache_kb,
            num_packets=num_units,
            num_flows=num_flows,
            k=k,
            seed=seed,
            engine=engine,
        )
    else:
        raise ConfigError(
            "give either sram_kb+cache_kb, target_rel_error+size_of_interest, "
            "or resume_from"
        )

    if stream is not None:
        from repro.runtime.partitioner import DEFAULT_CHUNK_PACKETS, chunk_stream

        cp = chunk_packets if chunk_packets is not None else DEFAULT_CHUNK_PACKETS
        if workers is not None:
            return _measure_stream(
                stream,
                lengths,
                config,
                workers=workers,
                chunk_packets=cp,
                state_dir=state_dir,
                transport=transport,
                registry=registry,
                num_flows=num_flows,
                checkpoint_mode=checkpoint_mode,
                checkpoint_level=checkpoint_level,
            )
        caesar = Caesar(
            config,
            registry=registry,
            eviction_trace=eviction_trace,
            fault_plan=fault_plan,
        )
        t0 = time.perf_counter()
        for pkts, lens in chunk_stream(stream, lengths=lengths, chunk_packets=cp):
            caesar.process(pkts, lens)
        caesar.finalize()
        if registry is not None:
            observe_scheme(
                registry, caesar, "measure", elapsed_seconds=time.perf_counter() - t0
            )
        return MeasurementResult(
            caesar=caesar, num_packets=caesar.num_packets, num_flows_seen=num_flows
        )

    if resume_from is None:
        caesar = Caesar(
            config,
            registry=registry,
            eviction_trace=eviction_trace,
            fault_plan=fault_plan,
        )
    t0 = time.perf_counter()
    if checkpoint_every is None:
        caesar.process(packets, lengths)
    else:
        for start in range(0, len(packets), checkpoint_every):
            stop = start + checkpoint_every
            caesar.process(
                packets[start:stop],
                lengths[start:stop] if lengths is not None else None,
            )
            caesar.save_checkpoint(checkpoint_path, level=checkpoint_level)
    caesar.finalize()
    if registry is not None:
        observe_scheme(
            registry, caesar, "measure", elapsed_seconds=time.perf_counter() - t0
        )
    return MeasurementResult(
        caesar=caesar, num_packets=caesar.num_packets, num_flows_seen=num_flows
    )
