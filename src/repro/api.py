"""One-call convenience API.

For users who want per-flow estimates from a packet stream without
assembling the components: :func:`measure` runs the whole CAESAR
pipeline and returns a queryable result. The class-based API
(:class:`repro.Caesar`) remains the right tool for streaming, epochs,
volume, or sharded use.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

import numpy as np
import numpy.typing as npt

from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.core.planner import plan
from repro.errors import ConfigError
from repro.obs.registry import MetricsRegistry
from repro.obs.schemes import observe_scheme
from repro.obs.trace import EvictionTrace
from repro.resilience.faults import FaultPlan
from repro.types import FlowIdArray


@dataclass(frozen=True)
class MeasurementResult:
    """A finished measurement: query it, inspect it."""

    caesar: Caesar
    num_packets: int
    num_flows_seen: int

    def estimate(
        self, flow_ids: FlowIdArray, method: str = "csm"
    ) -> npt.NDArray[np.float64]:
        """Per-flow size estimates (clipped at zero)."""
        return self.caesar.estimate(
            np.asarray(flow_ids, dtype=np.uint64), method, clip_negative=True
        )

    def top_flows(self, k: int = 10) -> list[tuple[int, float]]:
        """The k largest flows among those observed, by estimate.

        Uses the flow IDs the cache ever saw (memoized on eviction), so
        no external flow list is needed.
        """
        seen = self.caesar.flows_seen()
        if len(seen) == 0:
            return []
        est = self.estimate(seen)
        order = np.argsort(est)[::-1][:k]
        return [(int(seen[i]), float(est[i])) for i in order]

    def confidence_interval(
        self, flow_ids: FlowIdArray, alpha: float = 0.95
    ) -> tuple[npt.NDArray[np.float64], npt.NDArray[np.float64]]:
        """Clustering-aware (empirical) intervals — the variant that
        actually covers; see docs/theory.md."""
        return self.caesar.confidence_interval(
            np.asarray(flow_ids, dtype=np.uint64),
            "csm",
            alpha=alpha,
            variance_model="empirical",
        )


def measure(
    packets: FlowIdArray,
    *,
    sram_kb: float | None = None,
    cache_kb: float | None = None,
    target_rel_error: float | None = None,
    size_of_interest: int | None = None,
    k: int = 3,
    lengths: npt.NDArray[np.int64] | None = None,
    seed: int = 0xA91,
    engine: str = "batched",
    registry: MetricsRegistry | None = None,
    eviction_trace: EvictionTrace | None = None,
    fault_plan: FaultPlan | None = None,
    checkpoint_every: int | None = None,
    checkpoint_path: str | None = None,
    resume_from: str | None = None,
) -> MeasurementResult:
    """Measure a packet stream end to end.

    Either give explicit memory budgets (``sram_kb`` + ``cache_kb``,
    the paper's setup) or an accuracy goal (``target_rel_error`` +
    ``size_of_interest``, solved by :mod:`repro.core.planner`).

    ``engine`` picks the construction path: ``"batched"`` (default,
    array-native eviction pipeline with run coalescing auto-selected
    per chunk), ``"runs"`` (run-coalescing cache kernel forced on), or
    ``"scalar"`` (per-eviction reference). All are bit-identical under
    the same seed.

    ``registry`` (optional :class:`~repro.obs.MetricsRegistry`) turns on
    observability: stage timers, eviction counters/histograms, and
    uniform ``measure.*`` scheme gauges including construction
    throughput. ``eviction_trace`` attaches a bounded ring capturing the
    tail of the eviction stream. Neither changes measurement results.

    Resilience (docs/resilience.md): ``fault_plan`` injects a seeded
    fault workload into the eviction pipeline; ``checkpoint_every``
    (packets) writes a crash-consistent checkpoint to
    ``checkpoint_path`` periodically and at the end; ``resume_from``
    restores a saved checkpoint and continues with the *remainder* of
    ``packets`` (the first ``num_packets`` of the stream are skipped —
    pass the same stream the original run saw), finishing
    bit-identically to an uninterrupted run.
    """
    packets = np.asarray(packets, dtype=np.uint64)
    if len(packets) == 0:
        raise ConfigError("cannot measure an empty stream")
    if checkpoint_every is not None:
        if checkpoint_every < 1:
            raise ConfigError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        if checkpoint_path is None:
            raise ConfigError("checkpoint_path is required with checkpoint_every")
    num_flows = len(np.unique(packets))
    num_units = int(lengths.sum()) if lengths is not None else len(packets)

    if resume_from is not None:
        # Sizing comes from the checkpoint's own config; skip planning.
        caesar = Caesar.resume(resume_from, registry=registry)
        done = caesar.num_packets
        if done > len(packets):
            raise ConfigError(
                f"checkpoint has already seen {done} packets, stream has {len(packets)}"
            )
        packets = packets[done:]
        lengths = lengths[done:] if lengths is not None else None
    elif target_rel_error is not None:
        if size_of_interest is None:
            raise ConfigError("size_of_interest is required with target_rel_error")
        config = replace(
            plan(
                num_packets=num_units,
                num_flows=num_flows,
                target_rel_error=target_rel_error,
                size_of_interest=size_of_interest,
                k=k,
                seed=seed,
            ).config,
            engine=engine,
        )
    elif sram_kb is not None and cache_kb is not None:
        config = CaesarConfig.for_budgets(
            sram_kb=sram_kb,
            cache_kb=cache_kb,
            num_packets=num_units,
            num_flows=num_flows,
            k=k,
            seed=seed,
            engine=engine,
        )
    else:
        raise ConfigError(
            "give either sram_kb+cache_kb, target_rel_error+size_of_interest, "
            "or resume_from"
        )

    if resume_from is None:
        caesar = Caesar(
            config,
            registry=registry,
            eviction_trace=eviction_trace,
            fault_plan=fault_plan,
        )
    t0 = time.perf_counter()
    if checkpoint_every is None:
        caesar.process(packets, lengths)
    else:
        for start in range(0, len(packets), checkpoint_every):
            stop = start + checkpoint_every
            caesar.process(
                packets[start:stop],
                lengths[start:stop] if lengths is not None else None,
            )
            caesar.save_checkpoint(checkpoint_path)
    caesar.finalize()
    if registry is not None:
        observe_scheme(
            registry, caesar, "measure", elapsed_seconds=time.perf_counter() - t0
        )
    return MeasurementResult(
        caesar=caesar, num_packets=caesar.num_packets, num_flows_seen=num_flows
    )
