"""Exception hierarchy for the CAESAR reproduction library.

All library errors derive from :class:`ReproError` so callers can catch
one base class; configuration problems raise :class:`ConfigError` during
construction rather than failing deep inside the measurement loop.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigError(ReproError, ValueError):
    """A scheme or experiment was configured with invalid parameters."""


class CapacityError(ReproError):
    """A data structure was asked to hold more than its configured capacity."""


class QueryError(ReproError):
    """A query was issued against a structure in an invalid state.

    The canonical case is estimating a flow size before the on-chip
    cache has been dumped to SRAM (the paper's query phase is strictly
    offline, after the dump).
    """


class TraceFormatError(ReproError):
    """A serialized trace or header file could not be parsed."""


class IngestError(ReproError):
    """The streaming ingest runtime could not make progress.

    Raised when a shard queue rejects work under the ``"error"``
    backpressure policy, when a worker exceeds its restart budget, or
    when the runtime is driven outside its lifecycle (ingesting after
    drain, querying before start)."""
