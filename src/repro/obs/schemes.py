"""Uniform scheme-level observation helpers.

Every object speaking the :class:`~repro.core.scheme.MeasurementScheme`
protocol already exposes ``num_packets`` and ``memory_bits``; these
helpers project that surface (plus the cache statistics of
cache-assisted schemes) into a registry under a common naming scheme,
so the one-call API, the epoch loop, the sharded facade, and the
experiment builders all report identically-shaped gauges:

- ``<prefix>.memory_bits`` / ``<prefix>.num_packets`` — protocol gauges;
- ``<prefix>.throughput_pps`` — optional, when the caller timed the
  construction phase (wall clock, not deterministic);
- ``<prefix>.cache.*`` — the :class:`~repro.cachesim.base.CacheStats`
  counters of a cache-assisted scheme, recorded once at finalize time
  (zero hot-path cost, deterministic).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.cachesim.base import CacheStats
    from repro.core.scheme import MeasurementScheme

#: CacheStats fields mirrored into gauges by :func:`observe_cache_stats`.
_CACHE_STAT_FIELDS = (
    "accesses",
    "hits",
    "misses",
    "overflow_evictions",
    "replacement_evictions",
    "evicted_packets",
    "dumped_entries",
    "dumped_packets",
)


def observe_scheme(
    registry: MetricsRegistry,
    scheme: "MeasurementScheme",
    prefix: str,
    *,
    elapsed_seconds: float | None = None,
) -> None:
    """Record the protocol-level gauges of one scheme instance."""
    if not registry.enabled:
        return
    registry.gauge(f"{prefix}.memory_bits").set(scheme.memory_bits)
    registry.gauge(f"{prefix}.num_packets").set(scheme.num_packets)
    if elapsed_seconds is not None and elapsed_seconds > 0:
        registry.gauge(f"{prefix}.throughput_pps").set(scheme.num_packets / elapsed_seconds)


def observe_cache_stats(registry: MetricsRegistry, stats: "CacheStats", prefix: str) -> None:
    """Mirror one :class:`CacheStats` into ``<prefix>.*`` gauges."""
    if not registry.enabled:
        return
    for field_name in _CACHE_STAT_FIELDS:
        registry.gauge(f"{prefix}.{field_name}").set(getattr(stats, field_name))
    registry.gauge(f"{prefix}.hit_rate").set(stats.hit_rate)
