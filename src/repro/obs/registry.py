"""Deterministic metrics registry: counters, gauges, histograms, timers.

The registry is the one mutable surface the observability layer adds to
the measurement pipeline. Design constraints (see docs/observability.md):

- **deterministic** — counters and histograms depend only on the packet
  stream and the configuration seed, never on wall-clock time, so two
  runs with the same seed export byte-identical counter/histogram
  sections. Histograms use *fixed* bucket edges chosen at registration,
  not data-dependent ones. Timers are the one non-deterministic family;
  their call counts are deterministic, their accumulated seconds are not,
  and :meth:`MetricsRegistry.snapshot` keeps the two in separate fields
  so consumers can compare the deterministic part exactly.
- **zero overhead when disabled** — the hot paths hold a registry
  reference unconditionally; the disabled path is the shared
  :data:`NULL_REGISTRY`, whose counters/gauges/histograms/timers are
  method-level no-ops on shared singletons (no allocation per call).
  ``benchmarks/bench_micro.py`` gauges both paths.
- **non-perturbing when enabled** — no instrument touches a random
  generator or any measurement state, so results stay bit-identical
  with metrics on or off (``tests/test_obs.py``).

Instrumentation is chunk-granular, never per-packet: stage timers wrap
whole ``process``/``drain``/``finalize`` calls, and eviction accounting
reuses the cache's existing :class:`~repro.cachesim.base.CacheStats`
rather than double-counting in the loop body.
"""

from __future__ import annotations

import json
import time
from bisect import bisect_left
from typing import Mapping, Sequence

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError

#: Default histogram edges: powers of two up to 64Ki. Evicted cache
#: values and drained chunk sizes both live comfortably in this range.
DEFAULT_EDGES: tuple[int, ...] = tuple(1 << i for i in range(17))


class Counter:
    """Monotonically increasing integer metric."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-value metric (set, not accumulated)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-edge histogram (deterministic under a fixed seed).

    Bucket ``i`` counts observations ``v`` with
    ``edges[i-1] < v <= edges[i]``; one extra overflow bucket catches
    ``v > edges[-1]``. Edges are fixed at registration so the exported
    shape never depends on the data.
    """

    __slots__ = ("name", "edges", "bucket_counts", "count", "total")

    def __init__(self, name: str, edges: Sequence[float]) -> None:
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ConfigError(f"histogram {name!r} needs strictly increasing edges")
        self.name = name
        self.edges = tuple(edges)
        self.bucket_counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self.total = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.total += int(value)

    def observe_many(self, values: npt.NDArray[np.int64]) -> None:
        """Vectorized :meth:`observe` over one array (e.g. a drained chunk)."""
        if len(values) == 0:
            return
        idx = np.searchsorted(np.asarray(self.edges), values, side="left")
        per_bucket = np.bincount(idx, minlength=len(self.bucket_counts))
        counts = self.bucket_counts
        for i, c in enumerate(per_bucket.tolist()):
            counts[i] += c
        self.count += len(values)
        self.total += int(values.sum())


class TimerStat:
    """Accumulated wall-clock time of one pipeline stage.

    ``calls`` is deterministic (it counts stage invocations); ``seconds``
    is wall time and therefore is not — snapshots keep them separate.
    """

    __slots__ = ("name", "calls", "seconds")

    def __init__(self, name: str) -> None:
        self.name = name
        self.calls = 0
        self.seconds = 0.0


class _TimerContext:
    """``with registry.timer("caesar.drain"):`` — one timed stage run."""

    __slots__ = ("_stat", "_t0")

    def __init__(self, stat: TimerStat) -> None:
        self._stat = stat
        self._t0 = 0.0

    def __enter__(self) -> "_TimerContext":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        stat = self._stat
        stat.calls += 1
        stat.seconds += time.perf_counter() - self._t0


class MetricsRegistry:
    """Named metric instruments, created on first use.

    One registry observes one logical pipeline (possibly several scheme
    instances — e.g. every shard of a :class:`~repro.core.sharded.ShardedScheme`
    shares its registry, so stage totals aggregate naturally).
    """

    #: False only on :class:`NullRegistry`; lets call sites skip building
    #: export-only structures when nobody is listening.
    enabled: bool = True

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._timers: dict[str, TimerStat] = {}

    # -- instrument accessors (get-or-create) ------------------------------

    def counter(self, name: str) -> Counter:
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(name)
        return g

    def histogram(self, name: str, edges: Sequence[float] = DEFAULT_EDGES) -> Histogram:
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(name, edges)
        elif tuple(edges) != h.edges:
            raise ConfigError(f"histogram {name!r} already registered with different edges")
        return h

    def timer(self, name: str) -> _TimerContext:
        stat = self._timers.get(name)
        if stat is None:
            stat = self._timers[name] = TimerStat(name)
        return _TimerContext(stat)

    # -- export -------------------------------------------------------------

    def snapshot(self) -> dict:
        """All recorded metrics as one JSON-serializable dict.

        The ``counters`` and ``histograms`` sections (and every timer's
        ``calls``) are deterministic under a fixed seed; timer
        ``seconds`` and throughput gauges are wall-clock measurements.
        """
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {
                n: {
                    "edges": list(h.edges),
                    "bucket_counts": list(h.bucket_counts),
                    "count": h.count,
                    "total": h.total,
                }
                for n, h in sorted(self._histograms.items())
            },
            "timers": {
                n: {"calls": t.calls, "seconds": t.seconds}
                for n, t in sorted(self._timers.items())
            },
        }

    def to_json(self, indent: int = 2) -> str:
        """The snapshot as a JSON document (sorted keys, stable layout)."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def reset(self) -> None:
        """Drop every instrument (a fresh registry without re-plumbing)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._timers.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._histograms)} histograms, "
            f"{len(self._timers)} timers)"
        )


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass

    def observe_many(self, values: npt.NDArray[np.int64]) -> None:
        pass


class _NullTimer:
    """Shared no-op context manager: entering/leaving costs two empty calls."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc: object) -> None:
        pass


_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null", (1,))
_NULL_TIMER = _NullTimer()


class NullRegistry(MetricsRegistry):
    """The disabled path: every accessor returns a shared no-op singleton.

    No instrument is ever created, no state is ever written, and
    :meth:`timer` returns one preallocated context manager — the cost of
    instrumentation with metrics off is a method call returning a
    constant, unmeasurable at chunk granularity (see
    ``bench_micro.bench_caesar_construction_metrics_enabled``).
    """

    enabled = False

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str, edges: Sequence[float] = DEFAULT_EDGES) -> Histogram:
        return _NULL_HISTOGRAM

    def timer(self, name: str) -> _NullTimer:  # type: ignore[override]
        return _NULL_TIMER

    def snapshot(self) -> dict:
        return {"counters": {}, "gauges": {}, "histograms": {}, "timers": {}}


#: The process-wide disabled registry. Components default to this, so
#: ``registry=None`` everywhere means "observability off".
NULL_REGISTRY = NullRegistry()


def resolve_registry(registry: "MetricsRegistry | None") -> MetricsRegistry:
    """Map the public ``registry=None`` convention onto :data:`NULL_REGISTRY`."""
    return NULL_REGISTRY if registry is None else registry


def snapshot_of(source: "MetricsRegistry | Mapping") -> dict:
    """A snapshot dict from either a registry or an already-taken snapshot."""
    if isinstance(source, MetricsRegistry):
        return source.snapshot()
    return dict(source)
