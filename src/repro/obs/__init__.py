"""Observability for the measurement pipeline (``repro.obs``).

A zero-overhead-when-disabled metrics layer: a deterministic
:class:`MetricsRegistry` (counters, gauges, fixed-edge histograms),
lightweight stage timers (``with registry.timer("caesar.drain")``)
wired into the cache → split → SRAM hot paths, and an optional bounded
:class:`EvictionTrace` ring exposed through
:class:`~repro.cachesim.base.CacheStats`.

Enable by passing ``registry=MetricsRegistry()`` (and optionally
``eviction_trace=EvictionTrace()``) to any scheme constructor or to
:func:`repro.measure`; export with
:func:`repro.analysis.export.export_metrics` or the CLI's
``--metrics-out`` flag. See docs/observability.md for the metric-name
catalogue and the determinism contract.
"""

from repro.obs.registry import (
    DEFAULT_EDGES,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    TimerStat,
    resolve_registry,
    snapshot_of,
)
from repro.obs.schemes import observe_cache_stats, observe_scheme
from repro.obs.trace import (
    DEFAULT_TRACE_CAPACITY,
    EvictionTrace,
    EvictionTraceEvent,
)

__all__ = [
    "Counter",
    "DEFAULT_EDGES",
    "DEFAULT_TRACE_CAPACITY",
    "EvictionTrace",
    "EvictionTraceEvent",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullRegistry",
    "TimerStat",
    "observe_cache_stats",
    "observe_scheme",
    "resolve_registry",
    "snapshot_of",
]
