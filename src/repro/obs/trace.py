"""Bounded eviction-trace ring buffer.

For debugging and evaluation (the paper's Section 5 memory-budget
analysis reasons about the *eviction mix* — how much mass leaves the
cache as overflows vs. replacement victims over the course of a trace),
it is useful to see the tail of the actual eviction stream, not just
its aggregate statistics. :class:`EvictionTrace` is a fixed-capacity
columnar ring: the cache records every eviction (flow id, value,
reason code, packet index) into preallocated NumPy columns, overwriting
the oldest rows once full, so memory stays bounded no matter how long
the run.

The trace rides on :class:`~repro.cachesim.base.CacheStats` (pass
``trace=EvictionTrace(...)`` to :class:`~repro.cachesim.FlowCache` or a
scheme constructor) and is excluded from stats equality — it observes
the eviction stream, it is not part of the measurement.

``packet_index`` is the cache's access count at recording time: exact
under the scalar engine, chunk-granular under the batched engine (a
drained chunk is recorded when it is flushed, so all its rows share the
access count at flush time).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.cachesim.base import CODE_TO_REASON, EvictionReason
from repro.errors import ConfigError

#: Default ring capacity: enough tail to see the eviction mix shift,
#: small enough (~100 KB of columns) to leave on in long runs.
DEFAULT_TRACE_CAPACITY = 4096


@dataclass(frozen=True, slots=True)
class EvictionTraceEvent:
    """One traced eviction, decoded for human consumption."""

    flow_id: int
    value: int
    reason: EvictionReason
    packet_index: int


class EvictionTrace:
    """Fixed-capacity ring of the most recent evictions."""

    __slots__ = ("capacity", "flow_ids", "values", "reasons", "packet_indices", "recorded")

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY) -> None:
        if capacity < 1:
            raise ConfigError(f"trace capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.flow_ids = np.zeros(self.capacity, dtype=np.uint64)
        self.values = np.zeros(self.capacity, dtype=np.int64)
        self.reasons = np.zeros(self.capacity, dtype=np.uint8)
        self.packet_indices = np.zeros(self.capacity, dtype=np.int64)
        #: Total events ever recorded (>= len(self) once the ring wraps).
        self.recorded = 0

    # -- producer side ------------------------------------------------------

    def record(self, flow_id: int, value: int, reason_code: int, packet_index: int) -> None:
        """Record one eviction (scalar path)."""
        i = self.recorded % self.capacity
        self.flow_ids[i] = flow_id
        self.values[i] = value
        self.reasons[i] = reason_code
        self.packet_indices[i] = packet_index
        self.recorded += 1

    def record_batch(
        self,
        ids: npt.NDArray[np.uint64],
        values: npt.NDArray[np.int64],
        reasons: npt.NDArray[np.uint8],
        packet_index: int,
    ) -> None:
        """Record one drained chunk (batched path); keeps only the tail
        if the chunk alone exceeds the ring capacity."""
        n = len(ids)
        if n == 0:
            return
        cap = self.capacity
        start = n - cap if n > cap else 0
        pos = (self.recorded + np.arange(start, n)) % cap
        self.flow_ids[pos] = ids[start:]
        self.values[pos] = values[start:]
        self.reasons[pos] = reasons[start:]
        self.packet_indices[pos] = packet_index
        self.recorded += n

    # -- consumer side ----------------------------------------------------------

    def __len__(self) -> int:
        """Events currently held (capped at ``capacity``)."""
        return min(self.recorded, self.capacity)

    def _order(self) -> npt.NDArray[np.int64]:
        n = len(self)
        if self.recorded <= self.capacity:
            return np.arange(n)
        head = self.recorded % self.capacity
        return np.concatenate([np.arange(head, self.capacity), np.arange(head)])

    def events(self) -> list[EvictionTraceEvent]:
        """Held events, oldest first."""
        order = self._order()
        return [
            EvictionTraceEvent(int(f), int(v), CODE_TO_REASON[int(r)], int(p))
            for f, v, r, p in zip(
                self.flow_ids[order].tolist(),
                self.values[order].tolist(),
                self.reasons[order].tolist(),
                self.packet_indices[order].tolist(),
            )
        ]

    def to_dicts(self) -> list[dict]:
        """Held events as JSON-ready dicts (oldest first)."""
        return [
            {
                "flow_id": e.flow_id,
                "value": e.value,
                "reason": e.reason.value,
                "packet_index": e.packet_index,
            }
            for e in self.events()
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EvictionTrace({len(self)}/{self.capacity}, {self.recorded} recorded)"
