"""CAESAR configuration with validation and budget-driven sizing."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sram.layout import (
    bank_size_for_budget,
    cache_entries_for_budget,
    cache_kilobytes,
    sram_kilobytes,
)


@dataclass(frozen=True)
class CaesarConfig:
    """All parameters of one CAESAR instance (paper's Table 1 symbols).

    Attributes
    ----------
    cache_entries:
        ``M`` — number of on-chip cache entries.
    entry_capacity:
        ``y`` — maximum count a cache entry holds before overflowing.
        The paper's sizing rule is ``y = floor(2 * n / Q)``.
    k:
        Number of mapped SRAM counters per flow (paper uses 3).
    bank_size:
        ``L`` — counters per bank; total SRAM counters are ``k * L``.
    counter_capacity:
        ``l`` — maximum value of one SRAM counter.
    replacement:
        ``"lru"`` or ``"random"`` (Section 3.1 tries both).
    remainder:
        How the non-aliquot part ``q`` of an evicted value is spread
        over the k counters: ``"random"`` (paper: unit-by-unit uniform,
        Binomial(q, 1/k) per counter) or ``"even"`` (deterministic
        round-robin; ablation 2 in DESIGN.md).
    seed:
        Master seed for the hash family and all randomized choices.
    engine:
        Construction dataflow: ``"batched"`` (default — evictions are
        buffered and landed in vectorized chunks, with run coalescing
        auto-selected per chunk), ``"runs"`` (the batched pipeline with
        run coalescing forced on), or ``"scalar"`` (the per-event
        callback reference path). All produce bit-identical results
        under the same seed; batched/runs are several times faster.
    """

    cache_entries: int
    entry_capacity: int
    k: int = 3
    bank_size: int = 4096
    counter_capacity: int = 2**30
    replacement: str = "lru"
    remainder: str = "random"
    seed: int = 0x0C_AE_5A_12
    engine: str = "batched"

    def __post_init__(self) -> None:
        if self.cache_entries < 1:
            raise ConfigError(f"cache_entries must be >= 1, got {self.cache_entries}")
        if self.entry_capacity < 1:
            raise ConfigError(f"entry_capacity must be >= 1, got {self.entry_capacity}")
        if self.k < 1:
            raise ConfigError(f"k must be >= 1, got {self.k}")
        if self.bank_size < 1:
            raise ConfigError(f"bank_size must be >= 1, got {self.bank_size}")
        if self.counter_capacity < self.entry_capacity:
            raise ConfigError(
                "counter_capacity must be at least entry_capacity "
                f"({self.counter_capacity} < {self.entry_capacity})"
            )
        if self.replacement not in ("lru", "random"):
            raise ConfigError(f"replacement must be 'lru' or 'random', got {self.replacement!r}")
        if self.remainder not in ("random", "even"):
            raise ConfigError(f"remainder must be 'random' or 'even', got {self.remainder!r}")
        if self.engine not in ("batched", "runs", "scalar"):
            raise ConfigError(
                f"engine must be 'batched', 'runs', or 'scalar', got {self.engine!r}"
            )

    # -- memory accounting ----------------------------------------------------

    @property
    def sram_kilobytes(self) -> float:
        """Off-chip budget actually used, paper accounting."""
        return sram_kilobytes(self.k, self.bank_size, self.counter_capacity)

    @property
    def cache_kilobytes(self) -> float:
        """On-chip budget actually used, paper accounting."""
        return cache_kilobytes(self.cache_entries, self.entry_capacity)

    # -- budget-driven construction --------------------------------------------

    @classmethod
    def for_budgets(
        cls,
        *,
        sram_kb: float,
        cache_kb: float,
        num_packets: int,
        num_flows: int,
        k: int = 3,
        counter_capacity: int = 2**20 - 1,
        replacement: str = "lru",
        seed: int = 0x0C_AE_5A_12,
        engine: str = "batched",
    ) -> "CaesarConfig":
        """Size a CAESAR instance exactly the way the paper's Section 6.2
        does: ``y = floor(2 n / Q)``, cache entries to fill ``cache_kb``,
        bank size to fill ``sram_kb`` given the counter width (default
        20-bit counters — the width under which the paper's 91.55 KB
        budget yields its counter count)."""
        if num_packets < 1 or num_flows < 1:
            raise ConfigError("num_packets and num_flows must be >= 1")
        y = max(2, int(2 * num_packets / num_flows))
        return cls(
            cache_entries=cache_entries_for_budget(cache_kb, y),
            entry_capacity=y,
            k=k,
            bank_size=bank_size_for_budget(sram_kb, k, counter_capacity),
            counter_capacity=counter_capacity,
            replacement=replacement,
            seed=seed,
            engine=engine,
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"CAESAR(M={self.cache_entries}, y={self.entry_capacity}, k={self.k}, "
            f"L={self.bank_size}, l={self.counter_capacity}, {self.replacement}; "
            f"cache={self.cache_kilobytes:.2f}KB, sram={self.sram_kilobytes:.2f}KB)"
        )
