"""Sharded measurement for multi-queue line cards (library extension).

Modern NICs/line cards spread packets over ``W`` hardware queues by
hashing the flow key (RSS). Measurement then runs one independent
scheme instance per queue: flows are *partitioned* (a flow's packets
always land in its own shard), so shards never share counters and the
paper's single-instance analysis applies per shard unchanged.

:class:`ShardedScheme` manages the partitioning, query routing, and an
optional process-parallel construction phase for *any*
:class:`~repro.core.scheme.MeasurementScheme`; :class:`ShardedCaesar`
specializes it to CAESAR with the paper's budget-splitting rule. Since
the sharded layer only speaks the scheme protocol, each shard runs
whatever construction engine its config selects — the batched eviction
pipeline by default.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace
from typing import Callable, Iterable, Sequence

import numpy as np
import numpy.typing as npt

from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.core.scheme import MeasurementScheme
from repro.errors import ConfigError, QueryError
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.obs.schemes import observe_scheme
from repro.runtime.partitioner import (
    DEFAULT_CHUNK_PACKETS,
    DEFAULT_SHARD_SEED,
    ShardMap,
    StreamPartitioner,
    chunk_stream,
)
from repro.types import FlowIdArray

#: Per-shard seed stride (distinct seeds keep shards hash-independent).
SHARD_SEED_STRIDE = 0x9E37


def shard_caesar_config(
    config: CaesarConfig,
    shard_index: int,
    num_shards: int,
    *,
    divide_budget: bool = True,
) -> CaesarConfig:
    """Shard ``shard_index``'s config under the paper's budget split.

    The one derivation rule shared by :class:`ShardedCaesar` and the
    streaming runtime (:mod:`repro.runtime`) — both must build
    byte-identical shard instances or the bit-identity contract between
    the one-shot and streaming paths breaks.

    For resharded deployments ``num_shards`` is the map's *base* shard
    count (``ShardMap.num_base``), never the post-split count: a split
    adds memory (scale-out), it does not silently re-budget the
    survivors — and shard ``i``'s seed must not move when some *other*
    shard splits, or every untouched shard's state would change.
    """
    if divide_budget:
        config = replace(
            config,
            cache_entries=max(1, config.cache_entries // num_shards),
            bank_size=max(1, config.bank_size // num_shards),
        )
    return replace(config, seed=config.seed + SHARD_SEED_STRIDE * shard_index)


def shard_configs_for_map(
    config: CaesarConfig,
    shard_map: ShardMap,
    *,
    divide_budget: bool = True,
) -> list[CaesarConfig]:
    """Per-shard configs for every shard of a (possibly split) map."""
    return [
        shard_caesar_config(
            config, i, shard_map.num_base, divide_budget=divide_budget
        )
        for i in range(shard_map.num_shards)
    ]


def _run_shard(
    scheme: MeasurementScheme,
    packets: npt.NDArray[np.uint64],
    lengths: npt.NDArray[np.int64] | None,
) -> MeasurementScheme:
    """Worker: run one shard's construction phase (module-level so it
    pickles under the spawn start method)."""
    if lengths is None:
        scheme.process(packets)
    else:
        scheme.process(packets, lengths)  # type: ignore[call-arg]
    return scheme


class ShardedScheme:
    """``num_shards`` independent scheme instances behind one facade.

    ``make_shard`` builds shard ``i``'s instance; give each shard a
    distinct seed so shards stay hash-independent.
    """

    def __init__(
        self,
        make_shard: Callable[[int], MeasurementScheme],
        num_shards: int | None = None,
        *,
        shard_seed: int = DEFAULT_SHARD_SEED,
        registry: MetricsRegistry | None = None,
        shard_map: ShardMap | None = None,
    ) -> None:
        # The flow → shard map is shared with the streaming runtime so
        # both ingest paths agree bit for bit (docs/runtime.md). A
        # resharded deployment hands its final versioned map in here.
        if shard_map is None:
            if num_shards is None or num_shards < 1:
                raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
            self.partitioner = StreamPartitioner(num_shards, shard_seed=shard_seed)
        else:
            self.partitioner = StreamPartitioner(shard_map=shard_map)
        self.num_shards = self.partitioner.num_shards
        # One registry observes the whole deployment: stage metrics from
        # shards sharing it aggregate naturally across shards.
        self.metrics = resolve_registry(registry)
        self.shards: Sequence[MeasurementScheme] = [
            make_shard(i) for i in range(self.num_shards)
        ]
        self._finalized = False

    @property
    def shard_map(self) -> ShardMap:
        """The (possibly versioned) flow → shard map in force."""
        return self.partitioner.shard_map

    # -- partitioning --------------------------------------------------------

    def shard_of(self, flow_ids: FlowIdArray) -> npt.NDArray[np.int64]:
        """Which shard owns each flow (RSS-style hash partition)."""
        return self.partitioner.shard_of(flow_ids)

    def _partition(
        self,
        packets: FlowIdArray,
        lengths: npt.NDArray[np.int64] | None,
    ) -> list[tuple[npt.NDArray[np.uint64], npt.NDArray[np.int64] | None]]:
        return self.partitioner.partition(packets, lengths)

    # -- construction phase ------------------------------------------------------

    def process(
        self,
        packets: FlowIdArray,
        lengths: npt.NDArray[np.int64] | None = None,
        *,
        max_workers: int | None = None,
    ) -> None:
        """Run the construction phase, optionally process-parallel.

        ``max_workers=None`` (default) runs shards sequentially in this
        process — deterministic and cheap for tests. ``max_workers=k``
        fans shards out over ``k`` worker processes; each shard's state
        round-trips through pickle, which is worthwhile for
        multi-million-packet shards.
        """
        if self._finalized:
            raise QueryError("cannot process packets after finalize()")
        packets = np.asarray(packets, dtype=np.uint64)
        with self.metrics.timer("sharded.process"):
            parts = self._partition(packets, lengths)
            if max_workers is None or max_workers <= 1 or self.num_shards == 1:
                self._feed(parts)
                return
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                self.shards = list(
                    pool.map(
                        _run_shard,
                        self.shards,
                        [p for p, _ in parts],
                        [lens for _, lens in parts],
                    )
                )

    def _feed(
        self,
        parts: list[tuple[npt.NDArray[np.uint64], npt.NDArray[np.int64] | None]],
    ) -> None:
        """Feed one partitioned chunk to the shards, in shard order."""
        for shard, (pkts, lens) in zip(self.shards, parts):
            if len(pkts):
                _run_shard(shard, pkts, lens)

    def process_stream(
        self,
        stream: FlowIdArray | Iterable,
        *,
        lengths: npt.NDArray[np.int64] | None = None,
        chunk_packets: int = DEFAULT_CHUNK_PACKETS,
    ) -> None:
        """Chunked construction: partition and feed as the stream arrives.

        Accepts the same stream shapes as
        :func:`repro.runtime.partitioner.chunk_stream` — a flat array
        (sliced into ``chunk_packets`` chunks) or an iterable of packet
        arrays / ``(packets, lengths)`` pairs — and never materializes
        the whole stream, removing :meth:`process`'s full-array-up-front
        memory requirement. Because partitioning is per-packet and
        stateless and each shard sees its substream in order, the final
        state is bit-identical to a one-shot :meth:`process` of the
        concatenated stream; the streaming runtime
        (:class:`repro.runtime.StreamingRuntime`) rides this same
        partition-and-feed path.
        """
        if self._finalized:
            raise QueryError("cannot process packets after finalize()")
        with self.metrics.timer("sharded.process"):
            for pkts, lens in chunk_stream(
                stream, lengths=lengths, chunk_packets=chunk_packets
            ):
                self._feed(self._partition(pkts, lens))

    def finalize(self) -> None:
        """Finalize every shard (idempotent); records the aggregate and
        per-shard protocol gauges."""
        for shard in self.shards:
            shard.finalize()
        self._finalized = True
        if self.metrics.enabled:
            observe_scheme(self.metrics, self, "sharded")
            for i, shard in enumerate(self.shards):
                observe_scheme(self.metrics, shard, f"sharded.shard{i}")

    # -- query phase ----------------------------------------------------------------

    def estimate(
        self,
        flow_ids: FlowIdArray,
        *args: object,
        **kwargs: object,
    ) -> npt.NDArray[np.float64]:
        """Route each query to its owning shard; results in input order.

        Extra arguments (e.g. CAESAR's ``method``/``clip_negative``)
        pass through to the shard's ``estimate``.
        """
        if not self._finalized:
            raise QueryError("call finalize() before estimating")
        flow_ids = np.asarray(flow_ids, dtype=np.uint64)
        owners = self.shard_of(flow_ids)
        out = np.empty(len(flow_ids), dtype=np.float64)
        for s in range(self.num_shards):
            mask = owners == s
            if mask.any():
                out[mask] = self.shards[s].estimate(flow_ids[mask], *args, **kwargs)
        return out

    @property
    def num_packets(self) -> int:
        return sum(s.num_packets for s in self.shards)

    @property
    def memory_bits(self) -> int:
        """Total modeled footprint across all shards."""
        return sum(s.memory_bits for s in self.shards)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardedScheme(W={self.num_shards}, {type(self.shards[0]).__name__})"


class ShardedCaesar(ShardedScheme):
    """``num_shards`` independent CAESAR instances behind one facade,
    with the paper's memory accounting: ``divide_budget=True`` splits
    one total budget evenly so a W-way deployment stays
    budget-comparable to a single big instance."""

    def __init__(
        self,
        config: CaesarConfig,
        num_shards: int | None = None,
        *,
        divide_budget: bool = True,
        shard_seed: int = DEFAULT_SHARD_SEED,
        registry: MetricsRegistry | None = None,
        shard_map: ShardMap | None = None,
    ) -> None:
        if shard_map is None:
            if num_shards is None or num_shards < 1:
                raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
            shard_map = ShardMap(num_base=int(num_shards), shard_seed=int(shard_seed))
        # Budget splits over the map's *base* count: a split scales the
        # deployment out (more total memory), it never re-budgets the
        # untouched shards (see shard_caesar_config).
        num_base = shard_map.num_base
        if divide_budget:
            shard_config = replace(
                config,
                cache_entries=max(1, config.cache_entries // num_base),
                bank_size=max(1, config.bank_size // num_base),
            )
        else:
            shard_config = config
        self.shard_config = shard_config
        # Distinct per-shard seeds so shards are hash-independent; all
        # shards report into the same registry (aggregated stage totals).
        # The derivation is shard_caesar_config's — shared with the
        # streaming runtime's workers.
        super().__init__(
            lambda i: Caesar(
                shard_caesar_config(config, i, num_base, divide_budget=divide_budget),
                registry=registry,
            ),
            shard_map=shard_map,
            registry=registry,
        )

    def flows_seen(self) -> npt.NDArray[np.uint64]:
        """Every flow any shard ever saw (union of shard memos)."""
        return np.concatenate(
            [s.flows_seen() for s in self.shards]  # type: ignore[attr-defined]
        )

    @property
    def recorded_mass(self) -> int:
        return sum(s.recorded_mass for s in self.shards)  # type: ignore[attr-defined]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ShardedCaesar(W={self.num_shards}, {self.shard_config.describe()})"
