"""Merging CAESAR measurements from multiple vantage points.

Shared-counter sketches are *linear*: if two measurement points use
identical configurations (same seed → same flow → counter mapping),
the counter-wise sum of their SRAM arrays is exactly the array a
single instance would have produced for the union of their streams
(split randomness aside, which the CSM sum cancels anyway). That makes
distributed deployments cheap: ship the counter arrays, add them, and
query the merged state — no per-flow reconciliation.

Used for: multi-linecard aggregation, and combining the per-epoch
snapshots of :class:`repro.core.epochs.EpochalCaesar` into
longer-horizon totals.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.core import csm as csm_mod
from repro.core import mlm as mlm_mod
from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.errors import ConfigError, QueryError
from repro.hashing.family import BankedIndexer
from repro.types import FlowIdArray


def _mergeable(a: CaesarConfig, b: CaesarConfig) -> bool:
    """Configs whose counter mappings coincide."""
    return (
        a.k == b.k
        and a.bank_size == b.bank_size
        and a.seed == b.seed
        and a.counter_capacity == b.counter_capacity
    )


class MergedMeasurement:
    """The counter-wise sum of several finalized CAESAR instances."""

    def __init__(self, instances: list[Caesar]) -> None:
        if not instances:
            raise ConfigError("need at least one instance to merge")
        first = instances[0]
        for other in instances[1:]:
            if not _mergeable(first.config, other.config):
                raise ConfigError(
                    "instances must share k, bank_size, counter_capacity, and seed "
                    "for their flow-to-counter mappings to coincide"
                )
        for inst in instances:
            if not inst._finalized:  # noqa: SLF001 - deliberate lifecycle check
                raise QueryError("finalize every instance before merging")
        self.config = first.config
        self.indexer: BankedIndexer = first.indexer
        self.counter_values: npt.NDArray[np.int64] = np.sum(
            [inst.counters.values for inst in instances], axis=0
        )
        self.recorded_mass = int(sum(inst.recorded_mass for inst in instances))
        self.num_packets = int(sum(inst.num_packets for inst in instances))

    def estimate(
        self,
        flow_ids: FlowIdArray,
        method: str = "csm",
        *,
        clip_negative: bool = False,
    ) -> npt.NDArray[np.float64]:
        """Per-flow estimates over the union of the merged streams."""
        idx = self.indexer.indices(np.asarray(flow_ids, np.uint64))
        w = self.counter_values[idx]
        if method == "csm":
            return csm_mod.csm_estimate(
                w, self.recorded_mass, self.config.bank_size, clip_negative=clip_negative
            )
        if method == "median":
            return csm_mod.counter_median_estimate(
                w, self.recorded_mass, self.config.bank_size, clip_negative=clip_negative
            )
        if method == "mlm":
            return mlm_mod.mlm_estimate(
                w,
                self.recorded_mass,
                self.config.bank_size,
                entry_capacity=self.config.entry_capacity,
                clip_negative=clip_negative,
            )
        raise ConfigError(f"unknown estimation method {method!r}")


def merge(instances: list[Caesar]) -> MergedMeasurement:
    """Convenience constructor; see :class:`MergedMeasurement`."""
    return MergedMeasurement(instances)
