"""Memory planning: size a CAESAR deployment from an accuracy target.

The inverse of Sections 4-5: given expected traffic (n packets over Q
flows, a size distribution) and a relative-error target at a flow size
of interest, derive the counter geometry. Uses the *mechanism-true*
CSM variance (``theory.csm_variance_mechanism`` — thinning +
clustering; see docs/theory.md), not the paper's Eq. (22), because
Eq. (22) under-provisions by orders of magnitude on heavy tails:

    Var(x_hat) ~= n/L + sum(z^2)/(L k)   =>
    L >= (n + sum(z^2)/k) / (target * size)^2

plus the paper's sizing rules for the cache side (``y = 2 n/Q``; M as
a fraction of Q, defaulting to the paper's ~13 %).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.config import CaesarConfig
from repro.errors import ConfigError
from repro.sram.layout import sram_kilobytes
from repro.traffic.distributions import FlowSizeDistribution, calibrate_zipf_to_mean


@dataclass(frozen=True)
class Plan:
    """A planned deployment and the math behind it."""

    config: CaesarConfig
    target_rel_error: float
    size_of_interest: int
    predicted_rel_error: float
    predicted_std: float
    sram_kilobytes: float
    cache_kilobytes: float

    def describe(self) -> str:
        return (
            f"target {self.target_rel_error:.0%} at size {self.size_of_interest}: "
            f"{self.config.describe()} -> predicted "
            f"{self.predicted_rel_error:.1%} (sigma {self.predicted_std:.1f})"
        )


def plan(
    *,
    num_packets: int,
    num_flows: int,
    target_rel_error: float,
    size_of_interest: int,
    distribution: FlowSizeDistribution | None = None,
    k: int = 3,
    cache_fraction: float = 0.13,
    replacement: str = "lru",
    seed: int = 0x71A2,
) -> Plan:
    """Derive a :class:`CaesarConfig` meeting the accuracy target.

    ``target_rel_error`` is interpreted as one standard deviation of
    the CSM estimate at ``size_of_interest`` (e.g. 0.1 → ±10 % at one
    sigma). ``distribution`` supplies the tail's second moment; when
    omitted, a bounded Zipf calibrated to the traffic's mean size is
    assumed (the library's default trace model).
    ``cache_fraction`` sizes the cache table as a fraction of the flow
    count (the paper's setup works out to ~0.13).
    """
    if num_packets < 1 or num_flows < 1:
        raise ConfigError("num_packets and num_flows must be >= 1")
    if not 0 < target_rel_error < 10:
        raise ConfigError(f"target_rel_error must be in (0, 10), got {target_rel_error}")
    if size_of_interest < 1:
        raise ConfigError(f"size_of_interest must be >= 1, got {size_of_interest}")
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    if not 0 < cache_fraction <= 1:
        raise ConfigError(f"cache_fraction must be in (0, 1], got {cache_fraction}")

    mean_size = num_packets / num_flows
    if mean_size <= 1:
        raise ConfigError("need mean flow size > 1 packet to plan")
    if distribution is None:
        # Bound the support the way default_paper_trace does.
        max_size = max(1000, int(num_packets * 0.015))
        distribution = calibrate_zipf_to_mean(mean_size, max_size)
    second_moment_total = distribution.second_moment * num_flows

    # Mechanism variance over the k-counter sum, solved for L.
    allowed_var = (target_rel_error * size_of_interest) ** 2
    bank_size = max(16, math.ceil((num_packets + second_moment_total / k) / allowed_var))

    # Counter width: cover a flow of the maximum size plus noise.
    expected_counter = distribution.max_size / k + num_packets / (k * bank_size)
    counter_capacity = (1 << max(4, math.ceil(math.log2(expected_counter * 4)))) - 1

    y = max(2, int(2 * mean_size))
    config = CaesarConfig(
        cache_entries=max(16, int(cache_fraction * num_flows)),
        entry_capacity=y,
        k=k,
        bank_size=bank_size,
        counter_capacity=counter_capacity,
        replacement=replacement,
        seed=seed,
    )
    predicted_var = (num_packets + second_moment_total / k) / bank_size
    predicted_std = math.sqrt(predicted_var)
    return Plan(
        config=config,
        target_rel_error=target_rel_error,
        size_of_interest=size_of_interest,
        predicted_rel_error=predicted_std / size_of_interest,
        predicted_std=predicted_std,
        sram_kilobytes=sram_kilobytes(k, bank_size, counter_capacity),
        cache_kilobytes=config.cache_kilobytes,
    )
