"""The unified measurement-scheme protocol.

Every per-flow measurement scheme in this repository — CAESAR, the
CASE and RCS baselines, and the sharded/epochal composites built on
top of them — exposes the same two-phase lifecycle:

1. **construction** — :meth:`~MeasurementScheme.process` absorbs
   packet batches (repeatable);
2. **query** — :meth:`~MeasurementScheme.finalize` closes the
   measurement (flushing any cache residue), after which
   :meth:`~MeasurementScheme.estimate` answers per-flow size queries.

:class:`MeasurementScheme` captures that contract as a structural
:class:`~typing.Protocol`, so orchestration layers (the one-call API,
sharding, epochs, experiment runners) are written once against the
protocol instead of branching per scheme — and any engine change
behind a scheme (e.g. the batched eviction pipeline) reaches every
layer for free.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np
import numpy.typing as npt

from repro.types import FlowIdArray


@runtime_checkable
class MeasurementScheme(Protocol):
    """Structural contract of a per-flow measurement scheme.

    ``isinstance(obj, MeasurementScheme)`` checks attribute presence
    (structural typing); semantics are by convention:

    - :meth:`process` may be called any number of times before
      :meth:`finalize`, never after;
    - :meth:`finalize` is idempotent;
    - :meth:`estimate` returns one float per queried flow ID, aligned
      with the input;
    - :attr:`num_packets` counts packets absorbed so far;
    - :attr:`memory_bits` is the scheme's modeled memory footprint
      (paper accounting — count fields only, no flow-ID storage).
    """

    def process(self, packets: FlowIdArray) -> None:
        """Absorb one packet batch (construction phase)."""
        ...

    def finalize(self) -> None:
        """Close the measurement; flush any cached residue (idempotent)."""
        ...

    def estimate(self, flow_ids: FlowIdArray) -> npt.NDArray[np.float64]:
        """Per-flow size estimates, aligned with ``flow_ids``."""
        ...

    @property
    def num_packets(self) -> int:
        """Packets absorbed so far."""
        ...

    @property
    def memory_bits(self) -> int:
        """Modeled memory footprint in bits (paper accounting)."""
        ...


def run_scheme(
    scheme: MeasurementScheme,
    packets: FlowIdArray,
    query_ids: FlowIdArray,
) -> npt.NDArray[np.float64]:
    """Drive any scheme through its whole lifecycle in one call:
    construction over ``packets``, finalize, then estimate
    ``query_ids``. The protocol-level analogue of the per-scheme
    build helpers in :mod:`repro.experiments.common`."""
    scheme.process(packets)
    scheme.finalize()
    return scheme.estimate(query_ids)
