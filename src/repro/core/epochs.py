"""Epoch-based continuous measurement (library extension).

The paper describes a single measurement period ended by a full cache
dump. Real deployments measure in back-to-back *epochs* (e.g. one per
minute), querying each epoch after it closes while the next one is
already filling. :class:`EpochalCaesar` manages that loop on top of
one :class:`~repro.core.caesar.Caesar` instance: at each epoch
boundary it finalizes, snapshots the SRAM state, and resets for the
next epoch — keeping the flow → counter mapping fixed across epochs
(Section 3.1's fixed hashing), so per-flow time series are comparable.

The epoch loop only drives the scheme-protocol lifecycle
(``process``/``finalize``/``reset``) plus CAESAR's snapshot surface, so
the construction engine selected by the config — batched by default —
carries through every epoch untouched.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.core import csm as csm_mod
from repro.core import mlm as mlm_mod
from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.errors import ConfigError, QueryError
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.obs.schemes import observe_scheme
from repro.types import FlowIdArray


@dataclass(frozen=True)
class EpochRecord:
    """Immutable snapshot of one closed epoch."""

    index: int
    num_packets: int
    recorded_mass: int
    counter_values: npt.NDArray[np.int64]
    hit_rate: float
    evictions: int


class EpochalCaesar:
    """Continuous CAESAR measurement in fixed epochs."""

    def __init__(
        self, config: CaesarConfig, *, registry: MetricsRegistry | None = None
    ) -> None:
        self.config = config
        self.metrics = resolve_registry(registry)
        self._caesar = Caesar(config, registry=registry)
        self._history: list[EpochRecord] = []

    # -- online loop -------------------------------------------------------

    def process(
        self,
        packets: FlowIdArray,
        lengths: npt.NDArray[np.int64] | None = None,
    ) -> None:
        """Feed packets into the current (open) epoch."""
        self._caesar.process(packets, lengths)

    def close_epoch(self) -> EpochRecord:
        """Finalize the open epoch, snapshot it, and start the next one."""
        caesar = self._caesar
        caesar.finalize()
        stats = caesar.cache.stats
        record = EpochRecord(
            index=len(self._history),
            num_packets=caesar.num_packets,
            recorded_mass=caesar.recorded_mass,
            counter_values=caesar.counters.values.copy(),
            hit_rate=stats.hit_rate,
            evictions=stats.total_evictions,
        )
        self._history.append(record)
        if self.metrics.enabled:
            # Uniform scheme gauges describe the epoch just closed; the
            # counter tracks how many epochs this instance has completed.
            self.metrics.counter("epochs.closed").inc()
            observe_scheme(self.metrics, caesar, "epoch")
            self.metrics.gauge("epoch.hit_rate").set(record.hit_rate)
            self.metrics.gauge("epoch.evictions").set(record.evictions)
        caesar.reset()
        return record

    def estimate_current(self, flow_ids: FlowIdArray) -> npt.NDArray[np.float64]:
        """Live estimates for the still-open epoch (online query)."""
        return self._caesar.estimate_online(flow_ids)

    # -- closed-epoch queries -------------------------------------------------

    @property
    def num_epochs(self) -> int:
        return len(self._history)

    @property
    def history(self) -> tuple[EpochRecord, ...]:
        return tuple(self._history)

    def epoch(self, index: int) -> EpochRecord:
        try:
            return self._history[index]
        except IndexError:
            raise QueryError(
                f"epoch {index} not closed yet ({len(self._history)} available)"
            ) from None

    def estimate(
        self,
        index: int,
        flow_ids: FlowIdArray,
        method: str = "csm",
        *,
        clip_negative: bool = False,
    ) -> npt.NDArray[np.float64]:
        """Per-flow estimates for a closed epoch."""
        record = self.epoch(index)
        idx = self._caesar.indexer.indices(np.asarray(flow_ids, np.uint64))
        w = record.counter_values[idx]
        if method == "csm":
            return csm_mod.csm_estimate(
                w, record.recorded_mass, self.config.bank_size, clip_negative=clip_negative
            )
        if method == "median":
            return csm_mod.counter_median_estimate(
                w, record.recorded_mass, self.config.bank_size, clip_negative=clip_negative
            )
        if method == "mlm":
            return mlm_mod.mlm_estimate(
                w,
                record.recorded_mass,
                self.config.bank_size,
                entry_capacity=self.config.entry_capacity,
                clip_negative=clip_negative,
            )
        raise ConfigError(f"unknown estimation method {method!r}")

    def flow_series(
        self,
        flow_id: int,
        method: str = "csm",
        *,
        clip_negative: bool = True,
    ) -> npt.NDArray[np.float64]:
        """One flow's estimated size across all closed epochs."""
        ids = np.array([flow_id], dtype=np.uint64)
        return np.array(
            [
                self.estimate(i, ids, method, clip_negative=clip_negative)[0]
                for i in range(self.num_epochs)
            ]
        )
