"""Counter Sum estimation Method (CSM) — Section 5.1.

The moment estimator: the sum of a flow's ``k`` mapped counters has
expectation ``x + Q*mu/L`` (banked layout, Eq. 18 summed over k), so

    x_hat = sum_r S_f[r] - Q*mu/L            (Eq. 20)

with ``Q*mu = n`` the total packet count. The estimator is unbiased
(Eq. 21) with variance Eq. (22), and the Gaussian confidence interval
is Eq. (26).
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt
from scipy import stats as sstats

from repro.core import theory
from repro.errors import ConfigError


def csm_estimate(
    counters: npt.NDArray[np.int64],
    num_packets: int,
    bank_size: int,
    *,
    clip_negative: bool = False,
) -> npt.NDArray[np.float64]:
    """Estimate flow sizes from mapped-counter values.

    Parameters
    ----------
    counters:
        Shape ``(num_flows, k)`` — each row is one flow's ``S_f[r]``
        values (or shape ``(k,)`` for a single flow).
    num_packets:
        ``n = Q * mu`` — total packets recorded into the SRAM.
    bank_size:
        ``L`` — counters per bank.
    clip_negative:
        Clamp estimates at zero. The raw estimator is unbiased but can
        go negative for small flows; plots in the paper effectively
        clamp, while the unbiasedness analysis requires the raw value.
    """
    counters = np.asarray(counters, dtype=np.float64)
    if bank_size < 1:
        raise ConfigError(f"bank_size must be >= 1, got {bank_size}")
    if num_packets < 0:
        raise ConfigError(f"num_packets must be >= 0, got {num_packets}")
    single = counters.ndim == 1
    if single:
        counters = counters[None, :]
    est = counters.sum(axis=1) - num_packets / bank_size
    if clip_negative:
        est = np.maximum(est, 0.0)
    return est[0] if single else est


def counter_median_estimate(
    counters: npt.NDArray[np.int64],
    num_packets: int,
    bank_size: int,
    *,
    clip_negative: bool = False,
) -> npt.NDArray[np.float64]:
    """Robust median variant of CSM (library extension, not in the paper).

    Each mapped counter alone estimates the flow as
    ``k * S_f[r] - n/L`` (scaling Eq. 18 by k); taking the *median*
    over the k counters instead of their mean tolerates up to
    ``floor((k-1)/2)`` counters polluted by a colliding elephant —
    the failure mode that dominates CSM's tail error on heavy-tailed
    traces (see DESIGN.md on clustering noise). Slightly noisier than
    CSM when no elephant collides; far better when one does.
    """
    counters = np.asarray(counters, dtype=np.float64)
    if bank_size < 1:
        raise ConfigError(f"bank_size must be >= 1, got {bank_size}")
    if num_packets < 0:
        raise ConfigError(f"num_packets must be >= 0, got {num_packets}")
    single = counters.ndim == 1
    if single:
        counters = counters[None, :]
    k = counters.shape[1]
    est = np.median(k * counters, axis=1) - num_packets / bank_size
    if clip_negative:
        est = np.maximum(est, 0.0)
    return est[0] if single else est


def empirical_confidence_interval(
    estimates: npt.NDArray[np.float64],
    counter_values: npt.NDArray[np.int64],
    *,
    k: int,
    alpha: float = 0.95,
) -> tuple[npt.NDArray[np.float64], npt.NDArray[np.float64]]:
    """Clustering-aware CI (library extension, not in the paper).

    The paper's Eq. (22) models only the eviction-split randomness. On
    heavy-tailed traffic the dominant noise is *whole-flow clustering*
    — entire elephants landing on a shared counter — which Eq. (22)
    omits, so Eq. (26)'s intervals can cover at the single-percent
    level (see EXPERIMENTS.md). This variant instead estimates the
    per-counter noise standard deviation *from the deployed array
    itself* (every counter is noise from the queried flow's point of
    view, up to its own small contribution) and widens the interval to
    ``x_hat ± Z_alpha * sqrt(k) * std(counters)``.
    """
    if not 0 < alpha < 1:
        raise ConfigError(f"alpha must be in (0, 1), got {alpha}")
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    estimates = np.asarray(estimates, dtype=np.float64)
    noise_std = float(np.std(np.asarray(counter_values, dtype=np.float64)))
    z = sstats.norm.ppf(0.5 + alpha / 2.0)
    half = z * np.sqrt(k) * noise_std
    return estimates - half, estimates + half


def csm_confidence_interval(
    estimates: npt.NDArray[np.float64],
    *,
    k: int,
    entry_capacity: int,
    bank_size: int,
    num_packets: int,
    alpha: float = 0.95,
) -> tuple[npt.NDArray[np.float64], npt.NDArray[np.float64]]:
    """Paper Eq. (26): ``x_hat ± Z_alpha * sqrt(D(x_hat))``.

    The variance (Eq. 22) depends on the unknown true size ``x``; as is
    standard, the estimate is plugged in (floored at 0 so the variance
    stays non-negative).

    Two fidelity caveats, both quantified in EXPERIMENTS.md: Eq. (22)
    (i) treats the k counters' own-flow portions as independent even
    though they sum to exactly ``x`` (the split noise *cancels* in the
    counter sum, so the x-term overstates), and (ii) omits whole-flow
    clustering noise (which understates, and dominates on heavy
    tails). For intervals that actually cover, see
    :func:`empirical_confidence_interval`.
    """
    if not 0 < alpha < 1:
        raise ConfigError(f"alpha must be in (0, 1), got {alpha}")
    estimates = np.asarray(estimates, dtype=np.float64)
    x_plug = np.maximum(estimates, 0.0)
    var = theory.csm_variance(
        x=x_plug,
        k=k,
        entry_capacity=entry_capacity,
        bank_size=bank_size,
        num_packets=num_packets,
    )
    z = sstats.norm.ppf(0.5 + alpha / 2.0)
    half = z * np.sqrt(var)
    return estimates - half, estimates + half
