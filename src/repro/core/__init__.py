"""CAESAR — the paper's primary contribution.

Construction phase (:class:`~repro.core.caesar.Caesar`): on-chip cache
absorbs packets; evicted values are split across ``k`` shared SRAM
counters chosen by collision-free hashes (aliquot part to every
counter, remainder scattered unit-by-unit).

Query phase: :mod:`~repro.core.csm` (moment / Counter Sum estimation)
and :mod:`~repro.core.mlm` (maximum likelihood), each with the paper's
confidence intervals; :mod:`~repro.core.theory` holds every closed form
from Sections 4-5 for validation.
"""

from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.core.csm import csm_confidence_interval, csm_estimate
from repro.core.mlm import mlm_confidence_interval, mlm_estimate
from repro.core.scheme import MeasurementScheme, run_scheme
from repro.core.split import split_batch, split_evenly, split_value

__all__ = [
    "Caesar",
    "CaesarConfig",
    "MeasurementScheme",
    "csm_confidence_interval",
    "csm_estimate",
    "mlm_confidence_interval",
    "mlm_estimate",
    "run_scheme",
    "split_batch",
    "split_evenly",
    "split_value",
]
