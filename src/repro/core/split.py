"""Eviction-value splitting (Section 3.1, Figure 2).

An evicted value ``C_f = p*k + q`` is divided over the flow's ``k``
mapped counters: the aliquot part ``p`` goes to every counter, then the
remainder's ``q`` packets are allocated "to these k counters one by
one" — each unit independently lands on a uniformly random mapped
counter, so counter ``r``'s remainder share is Binomial(q, 1/k),
exactly the ``EV_i2 ~ B(ev_i2, 1/k)`` of Section 4.2.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError


def split_value(value: int, k: int, rng: np.random.Generator) -> npt.NDArray[np.int64]:
    """Increments for the ``k`` mapped counters of one evicted value.

    Returns an int64 array of length ``k`` summing exactly to ``value``:
    ``p = value // k`` everywhere plus a multinomial scatter of the
    remainder ``q = value % k`` (marginally Binomial(q, 1/k) per
    counter, matching the paper's analysis).
    """
    if value < 0:
        raise ConfigError(f"evicted value must be >= 0, got {value}")
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    p, q = divmod(value, k)
    out = np.full(k, p, dtype=np.int64)
    if q:
        # Equivalent to one Multinomial(q, uniform) draw, but cheaper
        # for the tiny q < k of the hot eviction path.
        for slot in rng.integers(0, k, size=q):
            out[slot] += 1
    return out


def split_evenly(value: int, k: int) -> npt.NDArray[np.int64]:
    """Deterministic variant: remainder goes to the first ``q`` counters.

    Used by the ablation comparing the paper's randomized remainder
    against a deterministic round-robin remainder (which biases the
    low-numbered banks but has zero allocation variance).
    """
    if value < 0:
        raise ConfigError(f"evicted value must be >= 0, got {value}")
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    p, q = divmod(value, k)
    out = np.full(k, p, dtype=np.int64)
    out[:q] += 1
    return out


def split_batch(
    values: npt.NDArray[np.int64],
    k: int,
    rng: np.random.Generator,
) -> npt.NDArray[np.int64]:
    """Vectorized :func:`split_value` over a whole eviction batch,
    consuming the generator *identically* to the scalar loop.

    Returns shape ``(len(values), k)``; row ``i`` sums to ``values[i]``.
    The scalar path draws ``q_i = values[i] % k`` uniform slots per
    eviction in order; bounded-integer generation is prefix-stable, so
    one draw of ``sum(q_i)`` slots yields the same stream — making the
    batched engine bit-identical to the scalar reference (same counter
    array, same generator state) under a fixed seed.
    """
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    values = np.asarray(values, dtype=np.int64)
    if values.ndim != 1:
        raise ConfigError("values must be 1-D")
    if len(values) and values.min() < 0:
        raise ConfigError("evicted values must be >= 0")
    p, q = np.divmod(values, k)
    out = np.repeat(p, k).reshape(len(values), k)
    total = int(q.sum())
    if total:
        slots = rng.integers(0, k, size=total)
        rows = np.repeat(np.arange(len(values), dtype=np.int64), q)
        np.add.at(out, (rows, slots), 1)
    return out


def split_evenly_batch(
    values: npt.NDArray[np.int64],
    k: int,
) -> npt.NDArray[np.int64]:
    """Vectorized :func:`split_evenly`: remainder to the first ``q_i``
    counters of each row, deterministically."""
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    values = np.asarray(values, dtype=np.int64)
    if values.ndim != 1:
        raise ConfigError("values must be 1-D")
    if len(values) and values.min() < 0:
        raise ConfigError("evicted values must be >= 0")
    p, q = np.divmod(values, k)
    out = np.repeat(p, k).reshape(len(values), k)
    out += np.arange(k, dtype=np.int64)[None, :] < q[:, None]
    return out


def split_values_batch(
    values: npt.NDArray[np.int64],
    k: int,
    rng: np.random.Generator,
) -> npt.NDArray[np.int64]:
    """Distributionally-equivalent batch split (binomial-chain draw).

    Returns shape ``(len(values), k)``; each row sums to its value.
    The remainder scatter draws one multinomial row per eviction via a
    single vectorized binomial-chain decomposition (no Python loop):
    Multinomial(q, uniform) is realized as sequential binomials over
    the remaining mass. Same *distribution* as :func:`split_value` but
    a different generator stream — the construction engine uses
    :func:`split_batch`, which is stream-identical to the scalar loop.
    """
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    values = np.asarray(values, dtype=np.int64)
    if values.ndim != 1:
        raise ConfigError("values must be 1-D")
    if len(values) and values.min() < 0:
        raise ConfigError("evicted values must be >= 0")
    p, q = np.divmod(values, k)
    out = np.tile(p[:, None], (1, k))
    remaining = q.copy()
    # Sequential-binomial decomposition of a multinomial: slot r gets
    # Binomial(remaining, 1/(k-r)) of what's left.
    for r in range(k - 1):
        share = rng.binomial(remaining, 1.0 / (k - r))
        out[:, r] += share
        remaining -= share
    out[:, k - 1] += remaining
    return out
