"""The CAESAR measurement scheme (construction + query orchestration).

Wires together the on-chip :class:`~repro.cachesim.FlowCache`, the
banked :class:`~repro.sram.BankedCounterArray`, the collision-free
:class:`~repro.hashing.BankedIndexer`, and the eviction-value splitter
into the two-phase architecture of Figure 1:

- :meth:`Caesar.process` — online construction: packets hit the cache;
  every eviction is split over the flow's ``k`` fixed counters;
- :meth:`Caesar.finalize` — dump resident cache entries to SRAM
  (required before querying; the query phase is strictly offline);
- :meth:`Caesar.estimate` — offline query via CSM or MLM.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.cachesim.base import EvictionReason
from repro.cachesim.cache import FlowCache
from repro.core import csm as csm_mod
from repro.core import mlm as mlm_mod
from repro.core.config import CaesarConfig
from repro.core.split import split_evenly, split_value
from repro.errors import ConfigError, QueryError
from repro.hashing.family import BankedIndexer
from repro.sram.counterarray import BankedCounterArray
from repro.types import FlowIdArray


class Caesar:
    """One CAESAR instance: build from a :class:`CaesarConfig`, feed the
    packet stream, finalize, query.

    Example
    -------
    >>> cfg = CaesarConfig(cache_entries=1024, entry_capacity=54, bank_size=512)
    >>> caesar = Caesar(cfg)
    >>> caesar.process(trace.packets)
    >>> caesar.finalize()
    >>> est = caesar.estimate(trace.flows.ids)          # CSM (default)
    >>> est = caesar.estimate(trace.flows.ids, "mlm")   # MLM
    """

    def __init__(self, config: CaesarConfig) -> None:
        self.config = config
        self.cache = FlowCache(
            num_entries=config.cache_entries,
            entry_capacity=config.entry_capacity,
            policy=config.replacement,
            seed=config.seed ^ 0xCACE,
        )
        self.indexer = BankedIndexer(config.k, config.bank_size, seed=config.seed)
        self.counters = BankedCounterArray(
            k=config.k,
            bank_size=config.bank_size,
            counter_capacity=config.counter_capacity,
        )
        self._rng = np.random.default_rng(config.seed ^ 0x5011D)
        # Flow -> mapped-counter indices; flows are mapped to k *fixed*
        # counters across all their evictions (Section 3.1), so memoize.
        self._index_memo: dict[int, np.ndarray] = {}
        self._packets_seen = 0
        self._mass_seen = 0  # == packets when counting packets; bytes when counting volume
        self._finalized = False

    # -- construction phase ----------------------------------------------------

    def _sink(self, flow_id: int, value: int, reason: EvictionReason) -> None:
        """Eviction sink: split the value over the flow's k counters."""
        idx = self._index_memo.get(flow_id)
        if idx is None:
            idx = self.indexer.indices_one(flow_id)
            self._index_memo[flow_id] = idx
        if self.config.remainder == "random":
            parts = split_value(value, self.config.k, self._rng)
        else:
            parts = split_evenly(value, self.config.k)
        # k is tiny (typically 3): scalar adds beat a vectorized
        # scatter-add here by an order of magnitude in call overhead.
        add_one = self.counters.add_one
        for r in range(self.config.k):
            add_one(int(idx[r]), int(parts[r]))

    def process(
        self,
        packets: FlowIdArray,
        lengths: npt.NDArray[np.int64] | None = None,
    ) -> None:
        """Feed a batch of packets (flow IDs) through the online phase.

        With ``lengths`` (per-packet byte counts, aligned with
        ``packets``) the instance measures flow *volume* instead of
        flow size — Section 3.1's "counted in either packets or
        bytes". Size the config accordingly: ``entry_capacity`` and
        ``counter_capacity`` must then hold byte totals.
        """
        if self._finalized:
            raise QueryError("cannot process packets after finalize()")
        self.cache.process(packets, self._sink, weights=lengths)
        self._packets_seen += len(packets)
        self._mass_seen += int(lengths.sum()) if lengths is not None else len(packets)

    def finalize(self) -> None:
        """Dump all resident cache entries to SRAM (end of measurement).

        Idempotent; must be called before :meth:`estimate`.
        """
        if self._finalized:
            return
        self.cache.dump(self._sink)
        self._finalized = True

    # -- query phase -------------------------------------------------------------

    @property
    def num_packets(self) -> int:
        """Packets processed so far."""
        return self._packets_seen

    @property
    def recorded_mass(self) -> int:
        """Total counted units — packets, or bytes when measuring volume.

        This is the ``n = Q * mu`` the estimators de-noise with.
        """
        return self._mass_seen

    def counter_values(self, flow_ids: FlowIdArray) -> npt.NDArray[np.int64]:
        """The raw mapped-counter values ``S_f[r]``, shape ``(F, k)``."""
        return self.counters.gather(self.indexer.indices(np.asarray(flow_ids, np.uint64)))

    def estimate(
        self,
        flow_ids: FlowIdArray,
        method: str = "csm",
        *,
        clip_negative: bool = False,
    ) -> npt.NDArray[np.float64]:
        """Estimate the size of each queried flow (offline query phase).

        ``method`` is ``"csm"`` (default, as the paper chooses),
        ``"mlm"``, or ``"median"`` (robust counter-median, a library
        extension — see :func:`repro.core.csm.counter_median_estimate`).
        Raises :class:`QueryError` if :meth:`finalize` has not been
        called — querying with values still in the cache would silently
        under-count.
        """
        if not self._finalized:
            raise QueryError("call finalize() before estimating (offline query phase)")
        w = self.counter_values(flow_ids)
        if method == "csm":
            return csm_mod.csm_estimate(
                w, self._mass_seen, self.config.bank_size, clip_negative=clip_negative
            )
        if method == "median":
            return csm_mod.counter_median_estimate(
                w, self._mass_seen, self.config.bank_size, clip_negative=clip_negative
            )
        if method == "mlm":
            return mlm_mod.mlm_estimate(
                w,
                self._mass_seen,
                self.config.bank_size,
                entry_capacity=self.config.entry_capacity,
                clip_negative=clip_negative,
            )
        raise ConfigError(
            f"unknown estimation method {method!r}; use 'csm', 'mlm', or 'median'"
        )

    def estimate_online(
        self,
        flow_ids: FlowIdArray,
        *,
        clip_negative: bool = True,
    ) -> npt.NDArray[np.float64]:
        """Approximate point query *during* the construction phase
        (library extension — the paper's query phase is strictly offline).

        Combines what has already been flushed to SRAM (CSM-decoded
        against the flushed mass only) with the flow's still-cached
        residue, so a monitoring loop can watch flows grow without
        stopping the measurement.
        """
        flow_ids = np.asarray(flow_ids, dtype=np.uint64)
        w = self.counter_values(flow_ids)
        flushed_mass = self.counters.total_mass
        est = csm_mod.csm_estimate(
            w, flushed_mass, self.config.bank_size, clip_negative=False
        )
        resident = np.fromiter(
            (self.cache.get(int(f)) for f in flow_ids), dtype=np.float64, count=len(flow_ids)
        )
        est = est + resident
        return np.maximum(est, 0.0) if clip_negative else est

    def reset(self) -> None:
        """Clear all measurement state for a fresh epoch.

        The hash mapping (and therefore each flow's k counters) is
        preserved — Section 3.1's fixed mapping — but counters, cache,
        statistics, and the recorded-mass accounting start over.
        """
        self.cache.dump(lambda fid, value, reason: None)
        self.cache.reset_stats()
        self.counters.reset()
        self._packets_seen = 0
        self._mass_seen = 0
        self._finalized = False

    def confidence_interval(
        self,
        flow_ids: FlowIdArray,
        method: str = "csm",
        alpha: float = 0.95,
        variance_model: str = "paper",
    ) -> tuple[npt.NDArray[np.float64], npt.NDArray[np.float64]]:
        """Confidence interval for each queried flow.

        ``variance_model="paper"`` uses the published Eqs. 26/32;
        ``variance_model="empirical"`` (CSM only, library extension)
        estimates the per-counter noise from the deployed array — the
        variant whose coverage actually approaches ``alpha`` on
        heavy-tailed traffic (see EXPERIMENTS.md).
        """
        est = self.estimate(flow_ids, method, clip_negative=False)
        if variance_model == "empirical":
            if method != "csm":
                raise ConfigError("empirical intervals are defined for CSM only")
            return csm_mod.empirical_confidence_interval(
                est, self.counters.values, k=self.config.k, alpha=alpha
            )
        if variance_model != "paper":
            raise ConfigError(
                f"unknown variance_model {variance_model!r}; use 'paper' or 'empirical'"
            )
        kwargs = dict(
            k=self.config.k,
            entry_capacity=self.config.entry_capacity,
            bank_size=self.config.bank_size,
            num_packets=self._mass_seen,
            alpha=alpha,
        )
        if method == "csm":
            return csm_mod.csm_confidence_interval(est, **kwargs)
        if method == "mlm":
            return mlm_mod.mlm_confidence_interval(est, **kwargs)
        raise ConfigError(f"unknown estimation method {method!r}; use 'csm' or 'mlm'")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finalized" if self._finalized else f"{self._packets_seen} packets"
        return f"Caesar({self.config.describe()}, {state})"
