"""The CAESAR measurement scheme (construction + query orchestration).

Wires together the on-chip :class:`~repro.cachesim.FlowCache`, the
banked :class:`~repro.sram.BankedCounterArray`, the collision-free
:class:`~repro.hashing.BankedIndexer`, and the eviction-value splitter
into the two-phase architecture of Figure 1:

- :meth:`Caesar.process` — online construction: packets hit the cache;
  every eviction is split over the flow's ``k`` fixed counters;
- :meth:`Caesar.finalize` — dump resident cache entries to SRAM
  (required before querying; the query phase is strictly offline);
- :meth:`Caesar.estimate` — offline query via CSM or MLM.

Three construction engines implement the same dataflow:

- ``engine="batched"`` (default) — evictions stream through a
  preallocated :class:`~repro.cachesim.EvictionBuffer`; each drained
  chunk is resolved to counter indices by the array-backed
  :class:`~repro.hashing.family.BankedIndexMemo`, split in one
  vectorized :func:`~repro.core.split.split_batch` call, and landed
  with a single scatter-add. Chunks with enough temporal locality are
  auto-routed through the run-coalescing kernel;
- ``engine="runs"`` — the batched pipeline with run coalescing forced
  on: maximal same-flow runs are detected vectorized and replayed in
  O(1) each via closed-form overflow expansion
  (:mod:`repro.cachesim.runs`);
- ``engine="scalar"`` — the per-eviction callback reference path.

All are *bit-identical* under a fixed seed: the batched splitter
consumes the generator exactly like the scalar loop and the run kernel
replays exactly the per-packet semantics, so evictions, counters,
statistics, and generator state all match (enforced by
``tests/test_engine_equivalence.py``).
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.cachesim.base import EvictionReason
from repro.cachesim.buffer import DEFAULT_BUFFER_CAPACITY, EvictionBuffer
from repro.cachesim.cache import FlowCache
from repro.core import csm as csm_mod
from repro.core import mlm as mlm_mod
from repro.core.config import CaesarConfig
from repro.core.split import split_batch, split_evenly, split_evenly_batch, split_value
from repro.errors import ConfigError, QueryError
from repro.hashing.family import BankedIndexer, BankedIndexMemo
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.obs.schemes import observe_cache_stats, observe_scheme
from repro.obs.trace import EvictionTrace
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.health import observe_health
from repro.resilience.wal import WriteAheadLog
from repro.sram.counterarray import BankedCounterArray
from repro.types import FlowIdArray


def _discard_drain(
    ids: npt.NDArray[np.uint64],
    values: npt.NDArray[np.int64],
    reasons: npt.NDArray[np.uint8],
) -> None:
    """Drain that drops the chunk (epoch reset discards cache residue)."""


class Caesar:
    """One CAESAR instance: build from a :class:`CaesarConfig`, feed the
    packet stream, finalize, query.

    Example
    -------
    >>> cfg = CaesarConfig(cache_entries=1024, entry_capacity=54, bank_size=512)
    >>> caesar = Caesar(cfg)
    >>> caesar.process(trace.packets)
    >>> caesar.finalize()
    >>> est = caesar.estimate(trace.flows.ids)          # CSM (default)
    >>> est = caesar.estimate(trace.flows.ids, "mlm")   # MLM
    """

    def __init__(
        self,
        config: CaesarConfig,
        *,
        buffer_capacity: int = DEFAULT_BUFFER_CAPACITY,
        registry: MetricsRegistry | None = None,
        eviction_trace: EvictionTrace | None = None,
        fault_plan: FaultPlan | None = None,
        wal: WriteAheadLog | None = None,
    ) -> None:
        self.config = config
        # Observability (off by default): stage timers + counters go to
        # ``registry``; ``eviction_trace`` rides on the cache stats.
        # Neither perturbs measurement results (tests/test_obs.py).
        self.metrics = resolve_registry(registry)
        self.cache = FlowCache(
            num_entries=config.cache_entries,
            entry_capacity=config.entry_capacity,
            policy=config.replacement,
            seed=config.seed ^ 0xCACE,
            registry=registry,
            trace=eviction_trace,
        )
        self.indexer = BankedIndexer(config.k, config.bank_size, seed=config.seed)
        self.counters = BankedCounterArray(
            k=config.k,
            bank_size=config.bank_size,
            counter_capacity=config.counter_capacity,
        )
        self._rng = np.random.default_rng(config.seed ^ 0x5011D)
        self.engine = config.engine
        self._buffer = EvictionBuffer(buffer_capacity)
        self._packets_seen = 0
        self._mass_seen = 0  # == packets when counting packets; bytes when counting volume
        self._finalized = False
        # Resilience attachments (both off by default; the healthy path
        # with neither is byte-for-byte the pre-resilience hot path).
        self._injector: FaultInjector | None = (
            FaultInjector(fault_plan).attach(cache=self.cache, counters=self.counters)
            if fault_plan is not None and fault_plan.enabled
            else None
        )
        self._wal = wal
        self._last_checkpoint_mass = 0
        self._epoch = 0
        self._rebuild_io_chain()

    def _rebuild_io_chain(self) -> None:
        """Compose the eviction drain/sink with the resilience wrappers.

        Layering (innermost first): the scheme's own ``_drain``/``_sink``,
        then fault injection, then the write-ahead log *outermost* — the
        WAL records what the cache emitted, so even a chunk the injector
        drops is recoverable by checkpoint + replay.
        """
        drain = self._drain
        sink = self._sink
        if self._injector is not None:
            drain = self._injector.wrap_drain(drain)
            sink = self._injector.wrap_sink(sink)
        if self._wal is not None:
            wal = self._wal
            inner_drain = drain
            inner_sink = sink

            def logged_drain(
                ids: npt.NDArray[np.uint64],
                values: npt.NDArray[np.int64],
                reasons: npt.NDArray[np.uint8],
            ) -> None:
                wal.append_chunk(ids, values, reasons)
                inner_drain(ids, values, reasons)

            def logged_sink(flow_id: int, value: int, reason: EvictionReason) -> None:
                wal.append_event(flow_id, value, reason.code)
                inner_sink(flow_id, value, reason)

            drain = logged_drain
            sink = logged_sink
        self._drain_fn = drain
        self._sink_fn = sink

    @property
    def indexer(self) -> BankedIndexer:
        """The flow → k-counter index mapper.

        Assignable before processing starts (the hash-family ablation
        swaps in a tabulation indexer); assignment rebuilds the index
        memos of both engines so construction and query stay consistent.
        """
        return self._indexer

    @indexer.setter
    def indexer(self, indexer: BankedIndexer) -> None:
        self._indexer = indexer
        # Flows are mapped to k *fixed* counters across all their
        # evictions (Section 3.1), so both engines memoize the mapping:
        # the scalar reference in a per-flow dict of index rows, the
        # batched engine in one growing array-backed table.
        self._index_memo: dict[int, np.ndarray] = {}
        self._memo = BankedIndexMemo(indexer)

    # -- construction phase ----------------------------------------------------

    def _sink(self, flow_id: int, value: int, reason: EvictionReason) -> None:
        """Scalar eviction sink: split the value over the flow's k counters."""
        idx = self._index_memo.get(flow_id)
        if idx is None:
            idx = self.indexer.indices_one(flow_id)
            self._index_memo[flow_id] = idx
        if self.config.remainder == "random":
            parts = split_value(value, self.config.k, self._rng)
        else:
            parts = split_evenly(value, self.config.k)
        # k is tiny (typically 3): scalar adds beat a vectorized
        # scatter-add here by an order of magnitude in call overhead.
        add_one = self.counters.add_one
        for r in range(self.config.k):
            add_one(int(idx[r]), int(parts[r]))

    def _drain(
        self,
        ids: npt.NDArray[np.uint64],
        values: npt.NDArray[np.int64],
        reasons: npt.NDArray[np.uint8],
    ) -> None:
        """Batched eviction drain: land one buffer chunk on the SRAM.

        One memoized index resolution, one vectorized split, one
        scatter-add — regardless of chunk size. Each stage runs under
        its own timer (``caesar.index`` / ``caesar.split`` /
        ``caesar.scatter_add``) so the Fig. 8-style timing breakdown is
        observable per run; the enclosing ``cache.drain`` timer (started
        by the cache's flush) covers the whole chunk hand-off.
        """
        metrics = self.metrics
        with metrics.timer("caesar.index"):
            idx = self._memo.indices_for(ids)  # (n, k)
        with metrics.timer("caesar.split"):
            if self.config.remainder == "random":
                parts = split_batch(values, self.config.k, self._rng)
            else:
                parts = split_evenly_batch(values, self.config.k)
        with metrics.timer("caesar.scatter_add"):
            self.counters.add_at(idx.ravel(), parts.ravel())

    def process(
        self,
        packets: FlowIdArray,
        lengths: npt.NDArray[np.int64] | None = None,
    ) -> None:
        """Feed a batch of packets (flow IDs) through the online phase.

        With ``lengths`` (per-packet byte counts, aligned with
        ``packets``) the instance measures flow *volume* instead of
        flow size — Section 3.1's "counted in either packets or
        bytes". Size the config accordingly: ``entry_capacity`` and
        ``counter_capacity`` must then hold byte totals.
        """
        if self._finalized:
            raise QueryError("cannot process packets after finalize()")
        with self.metrics.timer("caesar.process"):
            if self.engine == "scalar":
                self.cache.process(packets, self._sink_fn, weights=lengths)
            else:
                # "batched" auto-selects run coalescing per chunk;
                # "runs" forces the run kernel on.
                self.cache.process_into(
                    packets,
                    self._buffer,
                    self._drain_fn,
                    weights=lengths,
                    coalesce=True if self.engine == "runs" else None,
                )
        self._packets_seen += len(packets)
        self._mass_seen += int(lengths.sum()) if lengths is not None else len(packets)

    def finalize(self) -> None:
        """Dump all resident cache entries to SRAM (end of measurement).

        Idempotent; must be called before :meth:`estimate`.
        """
        if self._finalized:
            return
        with self.metrics.timer("caesar.finalize"):
            if self.engine == "scalar":
                self.cache.dump(self._sink_fn)
            else:
                self.cache.dump_into(self._buffer, self._drain_fn)
        self._finalized = True
        if self._wal is not None:
            self._wal.flush()
        observe_cache_stats(self.metrics, self.cache.stats, "caesar.cache")
        observe_scheme(self.metrics, self, "caesar")
        observe_health(self.metrics, self, "caesar")

    # -- query phase -------------------------------------------------------------

    @property
    def num_packets(self) -> int:
        """Packets processed so far."""
        return self._packets_seen

    @property
    def recorded_mass(self) -> int:
        """Total counted units — packets, or bytes when measuring volume.

        This is the ``n = Q * mu`` the estimators de-noise with.
        """
        return self._mass_seen

    @property
    def effective_mass(self) -> int:
        """Mass actually landed in the counters.

        Equals :attr:`recorded_mass` on the healthy path; under fault
        injection the injector's net delta (duplicated − lost ± flips)
        is applied, so estimator de-noising subtracts the noise that is
        really there rather than the noise that should have been — the
        degraded-mode compensation of docs/resilience.md.
        """
        if self._injector is None:
            return self._mass_seen
        return max(self._mass_seen + self._injector.mass_delta, 0)

    @property
    def checkpoint_lag(self) -> int:
        """Mass recorded since the last checkpoint (crash exposure)."""
        return self._mass_seen - self._last_checkpoint_mass

    @property
    def memory_bits(self) -> int:
        """Modeled footprint, paper accounting: on-chip cache count
        fields plus the off-chip SRAM counter array."""
        return self.cache.memory_bits(flow_id_bits=0) + self.counters.memory_bits

    def flows_seen(self) -> npt.NDArray[np.uint64]:
        """Every flow the cache ever evicted or dumped (after
        :meth:`finalize`: every flow that appeared in the stream)."""
        if self.engine != "scalar":
            return self._memo.flows()
        return np.fromiter(
            self._index_memo, dtype=np.uint64, count=len(self._index_memo)
        )

    def counter_values(self, flow_ids: FlowIdArray) -> npt.NDArray[np.int64]:
        """The raw mapped-counter values ``S_f[r]``, shape ``(F, k)``."""
        return self.counters.gather(self.indexer.indices(np.asarray(flow_ids, np.uint64)))

    def estimate(
        self,
        flow_ids: FlowIdArray,
        method: str = "csm",
        *,
        clip_negative: bool = False,
        compensate: bool = True,
    ) -> npt.NDArray[np.float64]:
        """Estimate the size of each queried flow (offline query phase).

        ``method`` is ``"csm"`` (default, as the paper chooses),
        ``"mlm"``, or ``"median"`` (robust counter-median, a library
        extension — see :func:`repro.core.csm.counter_median_estimate`).
        Raises :class:`QueryError` if :meth:`finalize` has not been
        called — querying with values still in the cache would silently
        under-count.

        Under fault injection the de-noising mass defaults to
        :attr:`effective_mass` (known-lost mass subtracted, duplicated
        mass added); ``compensate=False`` de-noises with the raw
        recorded mass instead — the uncompensated estimator the fault
        sweep compares against. Without an injector the two are equal.
        """
        if not self._finalized:
            raise QueryError("call finalize() before estimating (offline query phase)")
        mass = self.effective_mass if compensate else self._mass_seen
        w = self.counter_values(flow_ids)
        if method == "csm":
            return csm_mod.csm_estimate(
                w, mass, self.config.bank_size, clip_negative=clip_negative
            )
        if method == "median":
            return csm_mod.counter_median_estimate(
                w, mass, self.config.bank_size, clip_negative=clip_negative
            )
        if method == "mlm":
            return mlm_mod.mlm_estimate(
                w,
                mass,
                self.config.bank_size,
                entry_capacity=self.config.entry_capacity,
                clip_negative=clip_negative,
            )
        raise ConfigError(
            f"unknown estimation method {method!r}; use 'csm', 'mlm', or 'median'"
        )

    def estimate_online(
        self,
        flow_ids: FlowIdArray,
        *,
        clip_negative: bool = True,
    ) -> npt.NDArray[np.float64]:
        """Approximate point query *during* the construction phase
        (library extension — the paper's query phase is strictly offline).

        Combines what has already been flushed to SRAM (CSM-decoded
        against the flushed mass only) with the flow's still-cached
        residue — one vectorized gather against the cache's resident
        table — so a monitoring loop can watch flows grow without
        stopping the measurement.
        """
        flow_ids = np.asarray(flow_ids, dtype=np.uint64)
        w = self.counter_values(flow_ids)
        flushed_mass = self.counters.total_mass
        est = csm_mod.csm_estimate(
            w, flushed_mass, self.config.bank_size, clip_negative=False
        )
        est = est + self.cache.resident_values(flow_ids)
        return np.maximum(est, 0.0) if clip_negative else est

    def reset(self) -> None:
        """Clear all measurement state for a fresh epoch.

        The hash mapping (and therefore each flow's k counters) is
        preserved — Section 3.1's fixed mapping — but counters, cache,
        statistics, and the recorded-mass accounting start over.
        """
        if self.engine == "scalar":
            self.cache.dump(lambda fid, value, reason: None)
        else:
            self.cache.dump_into(self._buffer, _discard_drain)
        self.cache.reset_stats()
        self.counters.reset()
        self._packets_seen = 0
        self._mass_seen = 0
        self._finalized = False
        self._last_checkpoint_mass = 0
        self._epoch += 1
        if self._wal is not None:
            self._wal.begin_epoch(self._epoch)

    # -- crash consistency ---------------------------------------------------

    def checkpoint(self):
        """Capture a crash-consistent snapshot of this instance.

        Returns a :class:`repro.resilience.checkpoint.Checkpoint`
        covering *everything* construction depends on — counters, cache
        contents and policy order, generator states, index memo,
        statistics, the pending eviction chunk, and fault-injector
        state — so a :meth:`resume` continues bit-identically. An
        attached WAL is flushed first so the checkpoint's replay cursor
        (``wal_seq``) points at durable records.
        """
        from repro.resilience.checkpoint import Checkpoint

        if self._wal is not None:
            self._wal.flush()
        ckpt = Checkpoint.capture(self)
        self._last_checkpoint_mass = self._mass_seen
        return ckpt

    def save_checkpoint(self, path, *, level: int = 1):
        """:meth:`checkpoint` + :meth:`~repro.resilience.checkpoint.Checkpoint.save`.

        Returns the path actually written (``.npz`` appended if absent).
        """
        return self.checkpoint().save(path, level=level)

    @classmethod
    def resume(
        cls,
        source,
        *,
        registry: MetricsRegistry | None = None,
        wal: WriteAheadLog | None = None,
    ) -> "Caesar":
        """Rebuild an instance from a checkpoint (path or object).

        The resumed instance is bit-identical to the captured one:
        feeding it the remainder of the stream produces the same
        counters, statistics, and estimates as a run that was never
        interrupted (tests/test_resilience.py property-tests this at
        every chunk boundary, on both engines).
        """
        from repro.resilience.checkpoint import Checkpoint

        ckpt = source if isinstance(source, Checkpoint) else Checkpoint.load(source)
        return ckpt.restore(registry=registry, wal=wal)

    def confidence_interval(
        self,
        flow_ids: FlowIdArray,
        method: str = "csm",
        alpha: float = 0.95,
        variance_model: str = "paper",
    ) -> tuple[npt.NDArray[np.float64], npt.NDArray[np.float64]]:
        """Confidence interval for each queried flow.

        ``variance_model="paper"`` uses the published Eqs. 26/32;
        ``variance_model="empirical"`` (CSM only, library extension)
        estimates the per-counter noise from the deployed array — the
        variant whose coverage actually approaches ``alpha`` on
        heavy-tailed traffic (see EXPERIMENTS.md).
        """
        est = self.estimate(flow_ids, method, clip_negative=False)
        if variance_model == "empirical":
            if method != "csm":
                raise ConfigError("empirical intervals are defined for CSM only")
            return csm_mod.empirical_confidence_interval(
                est, self.counters.values, k=self.config.k, alpha=alpha
            )
        if variance_model != "paper":
            raise ConfigError(
                f"unknown variance_model {variance_model!r}; use 'paper' or 'empirical'"
            )
        kwargs = dict(
            k=self.config.k,
            entry_capacity=self.config.entry_capacity,
            bank_size=self.config.bank_size,
            num_packets=self.effective_mass,
            alpha=alpha,
        )
        if method == "csm":
            return csm_mod.csm_confidence_interval(est, **kwargs)
        if method == "mlm":
            return mlm_mod.mlm_confidence_interval(est, **kwargs)
        raise ConfigError(f"unknown estimation method {method!r}; use 'csm' or 'mlm'")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "finalized" if self._finalized else f"{self._packets_seen} packets"
        return f"Caesar({self.config.describe()}, {self.engine}, {state})"
