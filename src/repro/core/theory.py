"""Closed-form results of the paper's Sections 4-5.

Every formula is implemented with the equation number it reproduces so
tests can validate the simulator against the theory and the theory
against Monte-Carlo. All functions accept scalars or NumPy arrays for
``x`` and broadcast.

Notation (paper Table 1, banked layout per DESIGN.md):

- ``x``   — true flow size;
- ``k``   — mapped counters per flow;
- ``y``   — cache entry capacity (``entry_capacity``);
- ``L``   — counters per bank (``bank_size``); total counters ``k*L``;
- ``n = Q*mu`` — total packets (``num_packets``).
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError

ArrayLike = float | npt.NDArray[np.float64]


def _check(k: int, entry_capacity: int, bank_size: int) -> None:
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    if entry_capacity < 1:
        raise ConfigError(f"entry_capacity must be >= 1, got {entry_capacity}")
    if bank_size < 1:
        raise ConfigError(f"bank_size must be >= 1, got {bank_size}")


# -- Section 4.2: flow f's own contribution ---------------------------------


def expected_evictions(x: ArrayLike, entry_capacity: int) -> ArrayLike:
    """Eq. (10): ``E(t) = 2x / y`` — how many times a flow of size x
    is evicted, under the uniform-eviction-value approximation."""
    return 2.0 * np.asarray(x, dtype=np.float64) / entry_capacity


def expected_remainder_per_eviction(k: int) -> float:
    """Eq. (8): ``ev_i2 ~= k(k-1)/2`` — the expected remainder mass of
    one eviction (the part allocated unit-by-unit)."""
    return k * (k - 1) / 2.0


def portion_mean(x: ArrayLike, k: int) -> ArrayLike:
    """Eq. (12): ``E(Y) = x / k`` — flow f's own mean addition to each
    of its mapped counters."""
    return np.asarray(x, dtype=np.float64) / k


def portion_variance(x: ArrayLike, k: int, entry_capacity: int) -> ArrayLike:
    """Eq. (14): ``D(Y) ~= x (k-1)^2 / (y k)`` — the paper's value.

    Note: the paper's Eq. (8) estimates the per-eviction remainder as
    ``ev_i2 ~= k(k-1)/2``, but the remainder of ``e_i = ev_i1*k + ev_i2``
    is at most ``k-1``, with mean ``(k-1)/2`` under the uniform
    eviction-value model — the derivation folds in an extra factor
    ``k``. The paper's variance is therefore ``k`` times the exact
    mechanism variance (see :func:`portion_variance_exact`), making its
    confidence intervals conservative. We keep both: ``theory.*``
    reproduces the published formulas; ``*_exact`` what the mechanism
    actually does.
    """
    return np.asarray(x, dtype=np.float64) * (k - 1) ** 2 / (entry_capacity * k)


def portion_variance_exact(x: ArrayLike, k: int, entry_capacity: int) -> ArrayLike:
    """Exact-mechanism variant of Eq. (14): ``x (k-1)^2 / (y k^2)``.

    Derivation under the paper's own assumptions (eviction values
    uniform on ``{1..y}``, remainder scattered Binomial(q, 1/k)):
    per-eviction variance ``E[q] (1/k)(1-1/k) = (k-1)^2 / (2k^2)``,
    times ``E(t) = 2x/y`` evictions.
    """
    return np.asarray(x, dtype=np.float64) * (k - 1) ** 2 / (entry_capacity * k * k)


# -- Section 4.3: other flows' noise ------------------------------------------


def noise_mean(num_packets: int, k: int, bank_size: int) -> float:
    """Eq. (15): ``E(Z_total) = Q*mu / (L*k)`` — mean noise added to one
    mapped counter by all other flows (banked layout)."""
    return num_packets / (bank_size * k)


def noise_variance(
    num_packets: int, k: int, entry_capacity: int, bank_size: int
) -> float:
    """Eq. (16): ``D(Z_total) ~= Q*mu*(k-1)^2 / (y*k*L)``.

    Note this models only the eviction-split randomness; flow-level
    clustering (whole flows colliding on a counter) adds variance the
    paper neglects — quantified by :func:`clustering_noise_variance`.
    """
    return num_packets * (k - 1) ** 2 / (entry_capacity * k * bank_size)


def clustering_noise_variance(
    second_moment_total: float, k: int, bank_size: int
) -> float:
    """Variance of per-counter noise from whole-flow collisions.

    Each other flow lands on a given counter w.p. ``1/L`` contributing
    ``~z/k``; the Bernoulli selection contributes
    ``sum_flows (1/L)(1-1/L)(z/k)^2 ~= (sum z^2) / (L k^2)``. This term
    is *not* in the paper's Eq. (16); it dominates for heavy-tailed
    traces and explains the gap between Eq. (22) and measured error.
    ``second_moment_total`` is ``sum over flows of z^2``.
    """
    return second_moment_total / (bank_size * k * k)


# -- Section 4.4: a mapped counter's value -------------------------------------


def counter_mean(
    x: ArrayLike, k: int, bank_size: int, num_packets: int
) -> ArrayLike:
    """Eq. (18), mean: ``E(X) = x/k + Q*mu/(L*k)``."""
    return portion_mean(x, k) + noise_mean(num_packets, k, bank_size)


def counter_variance(
    x: ArrayLike, k: int, entry_capacity: int, bank_size: int, num_packets: int
) -> ArrayLike:
    """Eq. (18), variance:
    ``D(X) ~= x(k-1)^2/(yk) + Q*mu*(k-1)^2/(ykL)``."""
    return portion_variance(x, k, entry_capacity) + noise_variance(
        num_packets, k, entry_capacity, bank_size
    )


# -- Section 5.1: CSM ---------------------------------------------------------


def csm_variance(
    x: ArrayLike, k: int, entry_capacity: int, bank_size: int, num_packets: int
) -> ArrayLike:
    """Eq. (22): ``D(x_hat) ~= xk(k-1)^2/y + Q*mu*k(k-1)^2/(yL)``."""
    _check(k, entry_capacity, bank_size)
    x = np.asarray(x, dtype=np.float64)
    c = k * (k - 1) ** 2 / entry_capacity
    return c * x + c * num_packets / bank_size


def csm_variance_mechanism(
    k: int, bank_size: int, num_packets: int, second_moment_total: float
) -> float:
    """Mechanism-true CSM variance (reproduction contribution).

    Two corrections to Eq. (22), both validated by the ``theory``
    experiment: (i) the own-flow split noise cancels exactly in the
    k-counter sum (the k portions always total x), so there is no
    x-dependent term at all; (ii) the remaining spread is sharing
    noise — Binomial thinning of the other n packets over the k*L
    counters (``n/L`` for the k-counter sum) plus the whole-flow
    clustering term Eq. (16) omits (``sum(z^2) / (L*k)``).

    ``second_moment_total`` is ``sum over flows of z^2`` (e.g.
    ``Q * EmpiricalDist(sizes).second_moment``).
    """
    _check(k, 1, bank_size)
    if second_moment_total < 0:
        raise ConfigError("second_moment_total must be >= 0")
    return num_packets / bank_size + second_moment_total / (bank_size * k)


# -- Section 5.2: MLM ---------------------------------------------------------


def mlm_variance(
    x: ArrayLike, k: int, entry_capacity: int, bank_size: int, num_packets: int
) -> ArrayLike:
    """Eq. (31): ``D(x_hat) = 2 k^2 Delta_X^2 / (2 Delta_X + (k-1)^4/y^2)``.

    ``Delta_X`` is the per-counter variance of Eq. (18). Requires
    ``k >= 2`` (with k = 1 the modeled Delta_X is zero and the Fisher
    information degenerates).
    """
    _check(k, entry_capacity, bank_size)
    if k < 2:
        raise ConfigError("mlm_variance requires k >= 2")
    delta = counter_variance(x, k, entry_capacity, bank_size, num_packets)
    return 2.0 * k * k * delta**2 / (2.0 * delta + (k - 1) ** 4 / entry_capacity**2)


def mlm_beats_csm(
    x: ArrayLike, k: int, entry_capacity: int, bank_size: int, num_packets: int
) -> ArrayLike:
    """True where the MLM variance (Eq. 31) is below CSM's (Eq. 22) —
    the paper's Section 5.2 claim that MLM is the more accurate method."""
    return np.asarray(
        mlm_variance(x, k, entry_capacity, bank_size, num_packets)
        <= csm_variance(x, k, entry_capacity, bank_size, num_packets)
    )


# -- RCS reference accuracy (Li et al. 2011), for the Fig. 6 comparison ---------


def rcs_csm_variance(
    x: ArrayLike, k: int, total_counters: int, num_packets: int
) -> ArrayLike:
    """CSM variance of cache-free RCS with a size-k storage vector.

    RCS scatters *individual packets* (y = 1), so its eviction-split
    variance per counter is Binomial-like: each of the flow's x packets
    picks one of k counters. Summing k counters and subtracting noise:
    ``D ~= x(k-1) + k * n / m`` with m total counters (uniform-noise
    model of the RCS paper). Provided for analytical comparison plots.
    """
    if total_counters < 1:
        raise ConfigError(f"total_counters must be >= 1, got {total_counters}")
    x = np.asarray(x, dtype=np.float64)
    return x * (k - 1) + k * num_packets / total_counters
