"""Maximum Likelihood estimation Method (MLM) — Section 5.2.

Modeling each mapped counter as Gaussian
``X ~ N(x/k + Q*mu/(L*k), x(k-1)^2/(yk) + Q*mu*(k-1)^2/(ykL))``
(Eq. 24), maximizing the log-likelihood of the observed counter values
``w_1..w_k`` in ``x`` yields the closed form

    x_hat = 1/2 * ( sqrt((k-1)^4 / y^2 + 4k * sum w_i^2)
                    - 2*Q*mu/L - (k-1)^2 / y )

and the asymptotic variance ``1 / I(x_hat)`` of Eq. (31), giving the
confidence interval Eq. (32).
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt
from scipy import stats as sstats

from repro.core import theory
from repro.errors import ConfigError


def mlm_estimate(
    counters: npt.NDArray[np.int64],
    num_packets: int,
    bank_size: int,
    *,
    entry_capacity: int,
    clip_negative: bool = False,
) -> npt.NDArray[np.float64]:
    """MLM flow-size estimates from mapped-counter values.

    Parameters mirror :func:`repro.core.csm.csm_estimate`, plus
    ``entry_capacity`` (the paper's ``y``), which enters through the
    variance model of the per-counter Gaussian.
    """
    counters = np.asarray(counters, dtype=np.float64)
    if bank_size < 1:
        raise ConfigError(f"bank_size must be >= 1, got {bank_size}")
    if entry_capacity < 1:
        raise ConfigError(f"entry_capacity must be >= 1, got {entry_capacity}")
    single = counters.ndim == 1
    if single:
        counters = counters[None, :]
    k = counters.shape[1]
    y = float(entry_capacity)
    noise = num_packets / bank_size  # Q*mu/L
    c = (k - 1) ** 2 / y
    sum_sq = (counters**2).sum(axis=1)
    est = 0.5 * (np.sqrt(c * c + 4.0 * k * sum_sq) - 2.0 * noise - c)
    if clip_negative:
        est = np.maximum(est, 0.0)
    return est[0] if single else est


def mlm_confidence_interval(
    estimates: npt.NDArray[np.float64],
    *,
    k: int,
    entry_capacity: int,
    bank_size: int,
    num_packets: int,
    alpha: float = 0.95,
) -> tuple[npt.NDArray[np.float64], npt.NDArray[np.float64]]:
    """Paper Eq. (32): ``x_hat ± Z_alpha / sqrt(I(x_hat))``.

    As with CSM, the unknown true size in ``Delta_X`` is replaced by
    the estimate (floored at 0). Requires ``k >= 2`` — with ``k = 1``
    the modeled per-counter variance is zero and the Fisher information
    degenerates.
    """
    if not 0 < alpha < 1:
        raise ConfigError(f"alpha must be in (0, 1), got {alpha}")
    if k < 2:
        raise ConfigError("MLM confidence intervals require k >= 2")
    estimates = np.asarray(estimates, dtype=np.float64)
    x_plug = np.maximum(estimates, 0.0)
    var = theory.mlm_variance(
        x=x_plug,
        k=k,
        entry_capacity=entry_capacity,
        bank_size=bank_size,
        num_packets=num_packets,
    )
    z = sstats.norm.ppf(0.5 + alpha / 2.0)
    half = z * np.sqrt(var)
    return estimates - half, estimates + half
