"""Bit-packed counter storage — the physical layout behind the KB math.

Everywhere else the library stores counters as int64 and *accounts*
for their modeled width. This module implements the width for real: an
array of ``width``-bit fields packed into a contiguous uint64 buffer
(fields may straddle word boundaries), with vectorized gather/scatter.
It exists to validate the memory accounting physically — a
:class:`BitPackedArray` of the Fig. 4 geometry really is 91.55 KB — and
doubles as a space-efficient export format for counter snapshots.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.errors import CapacityError, ConfigError

_WORD = 64


class BitPackedArray:
    """``size`` unsigned fields of ``width`` bits each, densely packed."""

    def __init__(self, size: int, width: int) -> None:
        if size < 1:
            raise ConfigError(f"size must be >= 1, got {size}")
        if not 1 <= width <= 63:
            raise ConfigError(f"width must be in [1, 63], got {width}")
        self.size = int(size)
        self.width = int(width)
        self.max_value = (1 << width) - 1
        total_bits = self.size * self.width
        self._words = np.zeros((total_bits + _WORD - 1) // _WORD, dtype=np.uint64)

    # -- element access --------------------------------------------------------

    def _field_coords(
        self, idx: npt.NDArray[np.int64]
    ) -> tuple[npt.NDArray[np.int64], npt.NDArray[np.int64]]:
        bit = idx.astype(np.int64) * self.width
        return bit // _WORD, bit % _WORD

    def get(self, idx: npt.NDArray[np.int64] | int) -> npt.NDArray[np.int64]:
        """Read fields (vectorized; scalar in, scalar-shaped out)."""
        idx = np.atleast_1d(np.asarray(idx, dtype=np.int64))
        if len(idx) and (idx.min() < 0 or idx.max() >= self.size):
            raise ConfigError("index out of range")
        word, offset = self._field_coords(idx)
        mask = np.uint64(self.max_value)
        lo = self._words[word] >> offset.astype(np.uint64)
        # Fields straddling into the next word need its low bits too.
        spill = (offset + self.width) > _WORD
        out = lo
        if spill.any():
            nxt = np.zeros_like(lo)
            nxt[spill] = self._words[word[spill] + 1] << (
                np.uint64(_WORD) - offset[spill].astype(np.uint64)
            )
            out = lo | nxt
        return (out & mask).astype(np.int64)

    def set(self, idx: npt.NDArray[np.int64] | int, values: npt.NDArray[np.int64] | int) -> None:
        """Write fields. Values beyond the width raise CapacityError.

        Writes are sequential per element (fields straddle words, so a
        fully vectorized read-modify-write would race on shared words);
        intended for snapshots, not per-packet hot paths.
        """
        idx = np.atleast_1d(np.asarray(idx, dtype=np.int64))
        values = np.broadcast_to(np.asarray(values, dtype=np.int64), idx.shape)
        if len(idx) and (idx.min() < 0 or idx.max() >= self.size):
            raise ConfigError("index out of range")
        if len(values) and (values.min() < 0 or values.max() > self.max_value):
            raise CapacityError(
                f"value out of range for a {self.width}-bit field"
            )
        words = self._words
        mask = self.max_value
        for i, v in zip(idx.tolist(), values.tolist()):
            bit = i * self.width
            word, offset = divmod(bit, _WORD)
            cur = int(words[word])
            cur &= ~(mask << offset) & 0xFFFFFFFFFFFFFFFF
            cur |= (v << offset) & 0xFFFFFFFFFFFFFFFF
            words[word] = cur
            if offset + self.width > _WORD:
                high_bits = self.width - (_WORD - offset)
                high_mask = (1 << high_bits) - 1
                nxt = int(words[word + 1])
                nxt &= ~high_mask & 0xFFFFFFFFFFFFFFFF
                nxt |= v >> (_WORD - offset)
                words[word + 1] = nxt

    # -- bulk conversion -----------------------------------------------------------

    @classmethod
    def pack(cls, values: npt.NDArray[np.int64], width: int) -> "BitPackedArray":
        """Pack an int64 vector (e.g. a counter snapshot)."""
        arr = cls(len(values), width)
        arr.set(np.arange(len(values)), np.asarray(values, dtype=np.int64))
        return arr

    def unpack(self) -> npt.NDArray[np.int64]:
        """The full field vector as int64."""
        return self.get(np.arange(self.size))

    # -- accounting -------------------------------------------------------------------

    @property
    def memory_bits(self) -> int:
        """Exact payload bits (``size * width``)."""
        return self.size * self.width

    @property
    def memory_kilobytes(self) -> float:
        return self.memory_bits / 8192.0

    @property
    def buffer_bytes(self) -> int:
        """Actual allocated buffer (rounded up to whole words)."""
        return self._words.nbytes
