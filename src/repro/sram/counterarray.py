"""Banked saturating counter array.

The off-chip SRAM of Figure 1, organized as ``k`` banks of ``bank_size``
counters (the banked layout under which every formula in the paper's
Sections 4-5 is exact; see DESIGN.md). Counters saturate at
``counter_capacity`` — the paper's ``l`` — and the array tracks how
much mass was lost to saturation so experiments can verify the chosen
width never clips.

Updates go through :meth:`add_at`, a vectorized scatter-add
(``np.add.at``) over global counter indices, so bulk phases (RCS's
per-packet updates, CAESAR's final dump) cost one NumPy call.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError

#: Counters are stored as int64 regardless of the modeled bit width;
#: ``counter_capacity`` enforces the modeled width by saturation.
_COUNTER_DTYPE = np.int64

#: Dirty tracking granularity: counters per stripe (2**_STRIPE_SHIFT).
#: 256 int64 counters = 2 KiB per stripe — coarse enough that marking
#: costs one vectorized shift + fancy store per scatter-add, fine
#: enough that incremental checkpoints skip untouched regions.
_STRIPE_SHIFT = 8


class BankedCounterArray:
    """``k`` banks of ``bank_size`` counters, each holding at most
    ``counter_capacity``."""

    def __init__(self, k: int, bank_size: int, counter_capacity: int) -> None:
        if k < 1:
            raise ConfigError(f"k must be >= 1, got {k}")
        if bank_size < 1:
            raise ConfigError(f"bank_size must be >= 1, got {bank_size}")
        if counter_capacity < 1:
            raise ConfigError(f"counter_capacity must be >= 1, got {counter_capacity}")
        self.k = int(k)
        self.bank_size = int(bank_size)
        self.counter_capacity = int(counter_capacity)
        self.total_counters = self.k * self.bank_size
        self._values = np.zeros(self.total_counters, dtype=_COUNTER_DTYPE)
        #: Packet mass dropped because a counter was saturated.
        self.saturated_mass = 0
        # Stuck-at fault state (None on the healthy path — one attribute
        # check per update is the entire cost of supporting it).
        self._stuck_idx: npt.NDArray[np.int64] | None = None
        self._stuck_values: npt.NDArray[np.int64] | None = None
        #: Packet mass rejected by stuck counters (fault accounting).
        self.stuck_lost_mass = 0
        # Dirty-stripe tracking for incremental checkpoints. Starts
        # all-dirty: a fresh array has never been captured, so the
        # first delta decision must see everything as changed.
        self.stripe_size = 1 << _STRIPE_SHIFT
        self.num_stripes = -(-self.total_counters // self.stripe_size)
        self._dirty = np.ones(self.num_stripes, dtype=bool)

    # -- dirty tracking --------------------------------------------------

    def _mark_dirty(self, indices: npt.NDArray[np.int64]) -> None:
        self._dirty[np.asarray(indices, dtype=np.int64) >> _STRIPE_SHIFT] = True

    def dirty_stripes(self) -> npt.NDArray[np.int64]:
        """Indices of stripes touched since the last :meth:`clear_dirty`."""
        return np.flatnonzero(self._dirty).astype(np.int64)

    def dirty_fraction(self) -> float:
        """Fraction of stripes currently dirty (delta-vs-full decision)."""
        return float(np.count_nonzero(self._dirty)) / self.num_stripes

    def clear_dirty(self) -> None:
        """Mark all stripes clean (call right after a checkpoint capture)."""
        self._dirty[:] = False

    def mark_all_dirty(self) -> None:
        """Invalidate the dirty tracking (bulk state change of unknown extent)."""
        self._dirty[:] = True

    # -- memory ----------------------------------------------------------

    def prefault(self) -> None:
        """Touch every counter page so later updates never take a
        first-touch page fault.

        ``np.zeros`` maps the banks lazily; on the default path physical
        pages materialize one fault at a time inside the first
        scatter-adds — measurement jitter right on the hot path. Long-
        lived deployments (the shard workers) call this once at boot,
        where the cost is absorbed by startup. Adding zero is a bitwise
        no-op on every counter, so measurement state is untouched.
        """
        self._values += 0

    # -- updates ---------------------------------------------------------

    def add_at(
        self,
        indices: npt.NDArray[np.int64],
        amounts: npt.NDArray[np.int64] | int = 1,
    ) -> None:
        """Scatter-add ``amounts`` into global ``indices`` with saturation.

        Duplicate indices accumulate (``np.add.at`` semantics). Mass
        that would push a counter beyond capacity is discarded and
        accounted in :attr:`saturated_mass`.
        """
        np.add.at(self._values, indices, amounts)
        # Saturation check only on the touched counters (deduplicated so
        # each over-capacity counter's excess is counted once).
        touched = np.unique(indices)
        self._dirty[touched >> _STRIPE_SHIFT] = True
        vals = self._values[touched]
        over = vals > self.counter_capacity
        if over.any():
            self.saturated_mass += int((vals[over] - self.counter_capacity).sum())
            self._values[touched[over]] = self.counter_capacity
        if self._stuck_idx is not None:
            self._repin()

    def add_one(self, index: int, amount: int = 1) -> None:
        """Single-counter add with saturation (per-eviction hot path)."""
        v = self._values[index] + amount
        if v > self.counter_capacity:
            self.saturated_mass += int(v - self.counter_capacity)
            v = self.counter_capacity
        self._values[index] = v
        self._dirty[index >> _STRIPE_SHIFT] = True
        if self._stuck_idx is not None:
            self._repin()

    # -- fault-injection hooks ------------------------------------------------

    def stick(self, indices: npt.NDArray[np.int64], value: int) -> None:
        """Pin counters at ``value`` — the stuck-at fault of a failing
        SRAM cell. Pinned counters reject all future updates; rejected
        mass accumulates in :attr:`stuck_lost_mass`."""
        idx = np.unique(np.asarray(indices, dtype=np.int64))
        if len(idx) and (idx.min() < 0 or idx.max() >= self.total_counters):
            raise ConfigError("stuck counter index out of range")
        self._stuck_idx = idx
        self._stuck_values = np.full(len(idx), int(value), dtype=_COUNTER_DTYPE)
        self._values[idx] = self._stuck_values
        self._mark_dirty(idx)

    def _repin(self) -> None:
        """Re-pin stuck counters after an update, accounting the rejected mass."""
        vals = self._values[self._stuck_idx]
        delta = vals - self._stuck_values
        if delta.any():
            self.stuck_lost_mass += int(np.maximum(delta, 0).sum())
            self._values[self._stuck_idx] = self._stuck_values

    def flip_bit(self, index: int, bit: int) -> int:
        """Flip one bit of one counter (transient corruption fault).

        Returns the signed mass delta the flip introduced. Stuck
        counters win over flips (the pin is reapplied immediately).
        """
        if not 0 <= index < self.total_counters:
            raise ConfigError(f"counter index {index} out of range")
        if not 0 <= bit < self.bits_per_counter:
            raise ConfigError(f"bit {bit} outside the {self.bits_per_counter}-bit width")
        old = int(self._values[index])
        new = old ^ (1 << bit)
        self._values[index] = new
        self._dirty[index >> _STRIPE_SHIFT] = True
        if self._stuck_idx is not None:
            self._repin()
            new = int(self._values[index])
        return new - old

    # -- checkpoint state ------------------------------------------------------

    def export_state(self) -> dict:
        """Snapshot of all mutable state (checkpoint capture)."""
        return {
            "values": self._values.copy(),
            "saturated_mass": self.saturated_mass,
            "stuck_idx": None if self._stuck_idx is None else self._stuck_idx.copy(),
            "stuck_values": (
                None if self._stuck_values is None else self._stuck_values.copy()
            ),
            "stuck_lost_mass": self.stuck_lost_mass,
        }

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`export_state` (checkpoint restore)."""
        values = np.asarray(state["values"], dtype=_COUNTER_DTYPE)
        if values.shape != self._values.shape:
            raise ConfigError(
                f"counter state holds {values.shape[0]} counters, "
                f"array has {self.total_counters}"
            )
        self._values[:] = values
        self.saturated_mass = int(state["saturated_mass"])
        stuck_idx = state.get("stuck_idx")
        if stuck_idx is None or len(stuck_idx) == 0:
            self._stuck_idx = None
            self._stuck_values = None
        else:
            self._stuck_idx = np.asarray(stuck_idx, dtype=np.int64)
            self._stuck_values = np.asarray(state["stuck_values"], dtype=_COUNTER_DTYPE)
        self.stuck_lost_mass = int(state.get("stuck_lost_mass", 0))
        # Dirty bits are transient per-process bookkeeping, not part of
        # the captured state; a restored array has no capture baseline.
        self.mark_all_dirty()

    # -- reads -----------------------------------------------------------

    def gather(self, indices: npt.NDArray[np.int64]) -> npt.NDArray[np.int64]:
        """Read counters at (possibly 2-D) global indices."""
        return self._values[indices]

    @property
    def values(self) -> npt.NDArray[np.int64]:
        """All counters, bank-major (read-only view)."""
        v = self._values.view()
        v.flags.writeable = False
        return v

    def bank(self, r: int) -> npt.NDArray[np.int64]:
        """Counters of bank ``r`` (read-only view)."""
        if not 0 <= r < self.k:
            raise ConfigError(f"bank index {r} out of range [0, {self.k})")
        v = self._values[r * self.bank_size : (r + 1) * self.bank_size].view()
        v.flags.writeable = False
        return v

    @property
    def total_mass(self) -> int:
        """Sum of all counters (== packets recorded, absent saturation)."""
        return int(self._values.sum())

    @property
    def saturated_counters(self) -> int:
        """How many counters sit at the capacity ceiling."""
        return int(np.count_nonzero(self._values == self.counter_capacity))

    # -- memory accounting --------------------------------------------------

    @property
    def bits_per_counter(self) -> int:
        """Modeled counter width: ``ceil(log2(l + 1))`` bits."""
        return max(1, int(np.ceil(np.log2(self.counter_capacity + 1))))

    @property
    def memory_bits(self) -> int:
        """Total modeled SRAM footprint in bits."""
        return self.total_counters * self.bits_per_counter

    @property
    def memory_kilobytes(self) -> float:
        """Total modeled SRAM footprint in KB (paper's unit)."""
        return self.memory_bits / 8192.0

    def reset(self) -> None:
        """Zero all counters and the saturation account.

        Stuck-at faults model broken hardware, so pinned counters stay
        pinned across epochs (their rejected-mass account restarts).
        """
        self._values[:] = 0
        self.saturated_mass = 0
        self.stuck_lost_mass = 0
        if self._stuck_idx is not None:
            self._values[self._stuck_idx] = self._stuck_values
        self.mark_all_dirty()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BankedCounterArray(k={self.k}, bank_size={self.bank_size}, "
            f"capacity={self.counter_capacity}, {self.memory_kilobytes:.2f} KB)"
        )
