"""Banked saturating counter array.

The off-chip SRAM of Figure 1, organized as ``k`` banks of ``bank_size``
counters (the banked layout under which every formula in the paper's
Sections 4-5 is exact; see DESIGN.md). Counters saturate at
``counter_capacity`` — the paper's ``l`` — and the array tracks how
much mass was lost to saturation so experiments can verify the chosen
width never clips.

Updates go through :meth:`add_at`, a vectorized scatter-add
(``np.add.at``) over global counter indices, so bulk phases (RCS's
per-packet updates, CAESAR's final dump) cost one NumPy call.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError

#: Counters are stored as int64 regardless of the modeled bit width;
#: ``counter_capacity`` enforces the modeled width by saturation.
_COUNTER_DTYPE = np.int64


class BankedCounterArray:
    """``k`` banks of ``bank_size`` counters, each holding at most
    ``counter_capacity``."""

    def __init__(self, k: int, bank_size: int, counter_capacity: int) -> None:
        if k < 1:
            raise ConfigError(f"k must be >= 1, got {k}")
        if bank_size < 1:
            raise ConfigError(f"bank_size must be >= 1, got {bank_size}")
        if counter_capacity < 1:
            raise ConfigError(f"counter_capacity must be >= 1, got {counter_capacity}")
        self.k = int(k)
        self.bank_size = int(bank_size)
        self.counter_capacity = int(counter_capacity)
        self.total_counters = self.k * self.bank_size
        self._values = np.zeros(self.total_counters, dtype=_COUNTER_DTYPE)
        #: Packet mass dropped because a counter was saturated.
        self.saturated_mass = 0

    # -- updates ---------------------------------------------------------

    def add_at(
        self,
        indices: npt.NDArray[np.int64],
        amounts: npt.NDArray[np.int64] | int = 1,
    ) -> None:
        """Scatter-add ``amounts`` into global ``indices`` with saturation.

        Duplicate indices accumulate (``np.add.at`` semantics). Mass
        that would push a counter beyond capacity is discarded and
        accounted in :attr:`saturated_mass`.
        """
        np.add.at(self._values, indices, amounts)
        # Saturation check only on the touched counters (deduplicated so
        # each over-capacity counter's excess is counted once).
        touched = np.unique(indices)
        vals = self._values[touched]
        over = vals > self.counter_capacity
        if over.any():
            self.saturated_mass += int((vals[over] - self.counter_capacity).sum())
            self._values[touched[over]] = self.counter_capacity

    def add_one(self, index: int, amount: int = 1) -> None:
        """Single-counter add with saturation (per-eviction hot path)."""
        v = self._values[index] + amount
        if v > self.counter_capacity:
            self.saturated_mass += int(v - self.counter_capacity)
            v = self.counter_capacity
        self._values[index] = v

    # -- reads -----------------------------------------------------------

    def gather(self, indices: npt.NDArray[np.int64]) -> npt.NDArray[np.int64]:
        """Read counters at (possibly 2-D) global indices."""
        return self._values[indices]

    @property
    def values(self) -> npt.NDArray[np.int64]:
        """All counters, bank-major (read-only view)."""
        v = self._values.view()
        v.flags.writeable = False
        return v

    def bank(self, r: int) -> npt.NDArray[np.int64]:
        """Counters of bank ``r`` (read-only view)."""
        if not 0 <= r < self.k:
            raise ConfigError(f"bank index {r} out of range [0, {self.k})")
        v = self._values[r * self.bank_size : (r + 1) * self.bank_size].view()
        v.flags.writeable = False
        return v

    @property
    def total_mass(self) -> int:
        """Sum of all counters (== packets recorded, absent saturation)."""
        return int(self._values.sum())

    @property
    def saturated_counters(self) -> int:
        """How many counters sit at the capacity ceiling."""
        return int(np.count_nonzero(self._values == self.counter_capacity))

    # -- memory accounting --------------------------------------------------

    @property
    def bits_per_counter(self) -> int:
        """Modeled counter width: ``ceil(log2(l + 1))`` bits."""
        return max(1, int(np.ceil(np.log2(self.counter_capacity + 1))))

    @property
    def memory_bits(self) -> int:
        """Total modeled SRAM footprint in bits."""
        return self.total_counters * self.bits_per_counter

    @property
    def memory_kilobytes(self) -> float:
        """Total modeled SRAM footprint in KB (paper's unit)."""
        return self.memory_bits / 8192.0

    def reset(self) -> None:
        """Zero all counters and the saturation account."""
        self._values[:] = 0
        self.saturated_mass = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BankedCounterArray(k={self.k}, bank_size={self.bank_size}, "
            f"capacity={self.counter_capacity}, {self.memory_kilobytes:.2f} KB)"
        )
