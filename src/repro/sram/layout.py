"""Memory-size accounting: KB budgets ↔ structure parameters.

The paper sizes everything in kilobytes:

- SRAM: ``L * log2(l) / (1024 * 8)`` KB — with the banked layout the
  total counter count is ``k * L``, so total SRAM bits are
  ``k * L * log2(l)``;
- cache: ``M * log2(y) / (1024 * 8)`` KB (only the count field is
  charged; Section 6.2).

These helpers convert between a KB budget and the integer structure
parameters, always rounding *down* so a configuration never exceeds
its stated budget.
"""

from __future__ import annotations

import math

from repro.errors import ConfigError


def counter_bits(counter_capacity: int) -> int:
    """Bits to store values ``0..counter_capacity``."""
    if counter_capacity < 1:
        raise ConfigError(f"counter_capacity must be >= 1, got {counter_capacity}")
    return max(1, math.ceil(math.log2(counter_capacity + 1)))


def sram_kilobytes(k: int, bank_size: int, counter_capacity: int) -> float:
    """Modeled SRAM footprint of a banked array, in KB."""
    return k * bank_size * counter_bits(counter_capacity) / 8192.0


def bank_size_for_budget(budget_kb: float, k: int, counter_capacity: int) -> int:
    """Largest bank size L whose banked array fits in ``budget_kb``.

    This answers the paper's setup question "the off-chip SRAM table
    contains L counters with uniform capacity of l" for a given KB
    budget: ``L = floor(budget_bits / (k * bits(l)))``.
    """
    if budget_kb <= 0:
        raise ConfigError(f"budget_kb must be > 0, got {budget_kb}")
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    bits = counter_bits(counter_capacity)
    bank = int(budget_kb * 8192 // (k * bits))
    if bank < 1:
        raise ConfigError(
            f"budget of {budget_kb} KB cannot hold even one {bits}-bit "
            f"counter per bank with k={k}"
        )
    return bank


def cache_kilobytes(num_entries: int, entry_capacity: int) -> float:
    """Modeled cache footprint ``M * log2(y) / 8192`` KB (paper's accounting)."""
    if num_entries < 1:
        raise ConfigError(f"num_entries must be >= 1, got {num_entries}")
    bits = max(1, math.ceil(math.log2(max(2, entry_capacity))))
    return num_entries * bits / 8192.0


def cache_entries_for_budget(budget_kb: float, entry_capacity: int) -> int:
    """Largest entry count M whose cache fits in ``budget_kb``."""
    if budget_kb <= 0:
        raise ConfigError(f"budget_kb must be > 0, got {budget_kb}")
    bits = max(1, math.ceil(math.log2(max(2, entry_capacity))))
    entries = int(budget_kb * 8192 // bits)
    if entries < 1:
        raise ConfigError(f"budget of {budget_kb} KB holds no cache entries")
    return entries
