"""Off-chip shared SRAM counter substrate.

A banked, saturating counter array (k banks of L counters, DESIGN.md
Section 1) plus the memory-size accounting used throughout the paper's
evaluation (SRAM KB ↔ (k, L, counter bits)).
"""

from repro.sram.counterarray import BankedCounterArray
from repro.sram.layout import (
    bank_size_for_budget,
    cache_entries_for_budget,
    cache_kilobytes,
    counter_bits,
    sram_kilobytes,
)

__all__ = [
    "BankedCounterArray",
    "bank_size_for_budget",
    "cache_entries_for_budget",
    "cache_kilobytes",
    "counter_bits",
    "sram_kilobytes",
]
