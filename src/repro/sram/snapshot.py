"""Counter-array snapshots: bit-packed persistence.

Epoch records and distributed merging move counter arrays around; at
the modeled widths (20-bit counters) an int64 dump wastes 3x the
space. These helpers round-trip a counter snapshot through the
bit-packed layout into ``.npz`` — the on-disk footprint matches the
modeled SRAM budget plus a small header.

Snapshots written since the resilience PR carry a SHA-256 content
checksum; :func:`load_counters` verifies it when present (older files
without one still load), so silent bit-rot fails loudly as
:class:`~repro.errors.TraceFormatError` instead of returning corrupt
counters. All damage modes — truncation, zip corruption, missing
members, checksum mismatch — surface as that one exception type.
"""

from __future__ import annotations

import hashlib
import zipfile
from pathlib import Path

import numpy as np
import numpy.typing as npt

from repro.errors import TraceFormatError
from repro.sram.bitpacked import BitPackedArray
from repro.sram.layout import counter_bits


def _checksum(words: npt.NDArray[np.uint64], size: int, width: int) -> str:
    """SHA-256 over the packed payload and its layout parameters."""
    h = hashlib.sha256()
    h.update(f"{size}:{width}:".encode())
    h.update(np.ascontiguousarray(words).tobytes())
    return h.hexdigest()


def save_counters(
    path: str | Path,
    values: npt.NDArray[np.int64],
    counter_capacity: int,
    metadata: dict[str, int] | None = None,
) -> Path:
    """Write a counter snapshot at its modeled width (checksummed)."""
    width = counter_bits(counter_capacity)
    packed = BitPackedArray.pack(np.asarray(values, dtype=np.int64), width)
    meta = {f"meta_{k}": v for k, v in (metadata or {}).items()}
    path = Path(path)
    np.savez_compressed(
        path,
        words=packed._words,  # noqa: SLF001 - serialization of own layout
        size=np.int64(packed.size),
        width=np.int64(width),
        checksum=np.array(_checksum(packed._words, packed.size, width)),  # noqa: SLF001
        **meta,
    )
    return path


def load_counters(
    path: str | Path,
) -> tuple[npt.NDArray[np.int64], dict[str, int]]:
    """Read a snapshot back: ``(values, metadata)``.

    Verifies the content checksum when the file carries one; any parse
    failure or integrity violation raises :class:`TraceFormatError`.
    """
    try:
        with np.load(Path(path)) as data:
            size = int(data["size"])
            width = int(data["width"])
            arr = BitPackedArray(size, width)
            words = data["words"]
            if words.shape != arr._words.shape:  # noqa: SLF001
                raise TraceFormatError(f"{path}: word buffer shape mismatch")
            if "checksum" in data.files and (
                str(data["checksum"]) != _checksum(words, size, width)
            ):
                raise TraceFormatError(
                    f"{path}: checksum mismatch (snapshot is corrupt or tampered)"
                )
            arr._words[:] = words  # noqa: SLF001
            meta = {
                key[5:]: int(data[key])
                for key in data.files
                if key.startswith("meta_")
            }
            return arr.unpack(), meta
    except (KeyError, OSError, ValueError, EOFError, zipfile.BadZipFile) as exc:
        raise TraceFormatError(f"cannot load counter snapshot from {path}: {exc}") from exc
