"""Command-line entry point.

Subcommands::

    caesar-repro run fig4                  # one paper experiment
    caesar-repro run all --export-dir out  # everything + CSV artifacts
    caesar-repro list                      # available experiments
    caesar-repro trace --out t.npz         # generate/save a workload
    caesar-repro measure --trace t.npz --sram-kb 4 --cache-kb 4 --top 10
    caesar-repro serve --trace t.npz --workers 4 --sram-kb 4 --cache-kb 4
    caesar-repro fabric --topology PATH:6 --fusion mle
    caesar-repro stats m.json              # pretty-print a metrics snapshot

(``repro`` is an alias of ``caesar-repro`` — same entry point.)

``serve`` streams a saved trace through the supervised shard-worker
runtime (:mod:`repro.runtime`): bounded queues with a backpressure
policy, optional live queries mid-ingest (``--query-every``),
deterministic fault injection by SIGKILLing a worker mid-stream
(``--chaos-kill SHARD:CHUNK``), live elastic shard splits — scripted
(``--reshard SHARD:AT_CHUNK``) or hot-shard-triggered
(``--reshard-above FILL``) — and ``--verify-offline`` proving the
result bit-identical to a single-process sharded run under the final
shard map — the CI runtime-smoke and reshard-smoke jobs run exactly
this (see docs/runtime.md).

``fabric`` deploys one CAESAR per node of a routed topology
(:mod:`repro.fabric`): flows hash to (ingress, egress) attachment
pairs, every vantage on the route observes them (optionally sampled),
and queries fuse the per-vantage estimates (``--fusion min|ivw|mle``).
``--vantage-workers N`` runs each vantage through the streaming
runtime; ``--chaos-kill VANTAGE:SHARD:CHUNK`` plus ``--verify-offline``
is the fabric-smoke CI job's recovery proof (see docs/fabric.md).

``run``, ``report``, and ``measure`` accept ``--metrics-out PATH``:
observability is switched on (a :class:`~repro.obs.MetricsRegistry`
threaded through every scheme built) and the final snapshot is written
as JSON — deterministic counters/histograms under a fixed seed, wall
clock only inside timer ``seconds`` (see docs/observability.md).

They also accept ``--inject SPEC`` (deterministic fault injection, e.g.
``--inject drop=0.1,stuck=3``), and ``measure`` additionally speaks the
checkpoint protocol: ``--checkpoint-every N --checkpoint-out ck.npz``
writes crash-consistent checkpoints while measuring, and
``--resume-from ck.npz`` continues a killed run bit-identically (see
docs/resilience.md).

Library errors (:class:`~repro.errors.ReproError`) exit with status 2
and a one-line message; unexpected exceptions keep their traceback.

For backwards compatibility a bare experiment name still works::

    python -m repro fig4 --scale 0.02
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.errors import ConfigError, ReproError
from repro.experiments.registry import list_experiments, run_experiment
from repro.experiments.trace_setup import DEFAULT_SEED, ExperimentSetup, configured_scale
from repro.obs.registry import MetricsRegistry
from repro.resilience.faults import parse_fault_spec
from repro.traffic.trace import Trace, default_paper_trace


def _add_workload_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="fraction of the paper's 1.01M flows to simulate "
        "(default: REPRO_SCALE env var or 0.05)",
    )
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED, help="workload seed")


def _add_engine_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        choices=["scalar", "batched", "runs"],
        default="batched",
        help="construction engine: 'batched' (array-native eviction pipeline, "
        "default; auto-selects run coalescing per chunk), 'runs' (run-coalescing "
        "cache kernel forced on), or 'scalar' (per-eviction reference); "
        "results are bit-identical",
    )


def _add_metrics_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="enable observability and write the metrics snapshot as JSON here "
        "(counters/histograms are deterministic under a fixed seed)",
    )


def _add_inject_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--inject",
        default=None,
        metavar="SPEC",
        help="deterministic fault injection, e.g. "
        "'drop=0.1,dup=0.05,flip=0.01,wipe=5000+9000,stuck=3,seed=7' "
        "(see docs/resilience.md for the fault taxonomy)",
    )


def _registry_from(args: argparse.Namespace) -> MetricsRegistry | None:
    return MetricsRegistry() if getattr(args, "metrics_out", None) else None


def _plan_from(args: argparse.Namespace):
    spec = getattr(args, "inject", None)
    return parse_fault_spec(spec) if spec else None


def _maybe_write_metrics(
    args: argparse.Namespace, registry: MetricsRegistry | None
) -> None:
    if registry is None:
        return
    from repro.analysis.export import export_metrics

    print(f"[wrote {export_metrics(args.metrics_out, registry)}]")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="caesar-repro",
        description="Reproduce the CAESAR (ICPP 2018) evaluation.",
    )
    sub = parser.add_subparsers(dest="command")

    run_p = sub.add_parser("run", help="run one experiment (or 'all')")
    run_p.add_argument("experiment", choices=[*list_experiments(), "all"])
    _add_workload_args(run_p)
    _add_engine_arg(run_p)
    run_p.add_argument(
        "--export-dir",
        default=None,
        help="also write <id>_measured.csv and <id>_report.txt here",
    )
    _add_metrics_arg(run_p)
    _add_inject_arg(run_p)

    sub.add_parser("list", help="list available experiments")

    trace_p = sub.add_parser("trace", help="generate and save a synthetic workload")
    _add_workload_args(trace_p)
    trace_p.add_argument("--out", required=True, help="output .npz path")

    report_p = sub.add_parser(
        "report", help="run every experiment and write one markdown report"
    )
    _add_workload_args(report_p)
    _add_engine_arg(report_p)
    report_p.add_argument("--out", default="REPORT.md", help="output markdown path")
    _add_metrics_arg(report_p)
    _add_inject_arg(report_p)

    measure_p = sub.add_parser("measure", help="run CAESAR over a saved trace")
    measure_p.add_argument("--trace", required=True, help="input .npz trace")
    measure_p.add_argument(
        "--sram-kb", type=float, default=None, help="SRAM budget (omit when resuming)"
    )
    measure_p.add_argument(
        "--cache-kb", type=float, default=None, help="cache budget (omit when resuming)"
    )
    measure_p.add_argument("--k", type=int, default=3)
    measure_p.add_argument("--replacement", choices=["lru", "random"], default="lru")
    measure_p.add_argument("--method", choices=["csm", "mlm", "median"], default="csm")
    measure_p.add_argument("--top", type=int, default=10, help="print the top-N flows")
    _add_engine_arg(measure_p)
    _add_metrics_arg(measure_p)
    _add_inject_arg(measure_p)
    measure_p.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="write a crash-consistent checkpoint every N packets "
        "(requires --checkpoint-out)",
    )
    measure_p.add_argument(
        "--checkpoint-out",
        default=None,
        metavar="PATH",
        help="checkpoint .npz path (written by --checkpoint-every)",
    )
    measure_p.add_argument(
        "--checkpoint-level",
        type=int,
        default=1,
        metavar="L",
        help="zlib level for saved checkpoints, 0-9 (0 = store-only)",
    )
    measure_p.add_argument(
        "--resume-from",
        default=None,
        metavar="PATH",
        help="restore a saved checkpoint and measure the remainder of the "
        "trace (bit-identical to an uninterrupted run)",
    )

    serve_p = sub.add_parser(
        "serve", help="stream a saved trace through the shard-worker runtime"
    )
    serve_p.add_argument("--trace", required=True, help="input .npz trace")
    serve_p.add_argument(
        "--workers", type=int, default=2, help="number of shard worker processes"
    )
    serve_p.add_argument("--sram-kb", type=float, required=True, help="SRAM budget")
    serve_p.add_argument("--cache-kb", type=float, required=True, help="cache budget")
    serve_p.add_argument("--k", type=int, default=3)
    _add_engine_arg(serve_p)
    serve_p.add_argument(
        "--chunk-packets",
        type=int,
        default=8192,
        help="packets per ingest chunk (the unit of queuing and recovery)",
    )
    serve_p.add_argument(
        "--transport",
        choices=["queue", "shm"],
        default="shm",
        help="data plane: zero-copy shared-memory rings (shm, default) or "
        "bounded pickled queues (queue); results are identical either way",
    )
    serve_p.add_argument(
        "--queue-depth", type=int, default=8, help="bound of each shard's inbox (chunks)"
    )
    serve_p.add_argument(
        "--ring-kb",
        type=int,
        default=None,
        metavar="KB",
        help="per-shard shared-memory ring size in KiB (shm transport only; "
        "default 4096)",
    )
    serve_p.add_argument(
        "--backpressure",
        choices=["block", "shed", "error"],
        default="block",
        help="full-queue policy: block the producer, shed the chunk, or error",
    )
    serve_p.add_argument(
        "--checkpoint-every",
        type=int,
        default=4,
        metavar="N",
        help="per-shard checkpoint cadence in chunks (0 disables)",
    )
    serve_p.add_argument(
        "--checkpoint-mode",
        choices=["sync", "async", "delta"],
        default="async",
        help="how workers persist checkpoints: on the ingest path (sync), "
        "on a background writer thread (async, default), or background "
        "plus incremental changed-stripe deltas (delta)",
    )
    serve_p.add_argument(
        "--checkpoint-level",
        type=int,
        default=1,
        metavar="L",
        help="zlib level for worker checkpoints, 0-9 (0 = store-only)",
    )
    serve_p.add_argument(
        "--query-every",
        type=int,
        default=0,
        metavar="N",
        help="issue a live query to every shard every N chunks (0 = never)",
    )
    serve_p.add_argument(
        "--chaos-kill",
        default=None,
        metavar="SHARD:CHUNK",
        help="SIGKILL shard worker SHARD just before ingesting chunk CHUNK "
        "(crash-recovery demo; the run must still finish bit-identically)",
    )
    serve_p.add_argument(
        "--reshard",
        default=None,
        metavar="SHARD:AT_CHUNK",
        help="split shard SHARD live just before ingesting chunk AT_CHUNK "
        "(elastic scale-out demo; other shards keep ingesting, and with "
        "--verify-offline the result must equal an offline run under the "
        "final shard map)",
    )
    serve_p.add_argument(
        "--reshard-above",
        type=float,
        default=None,
        metavar="FILL",
        help="hot-shard detection: split any shard whose data-plane fill "
        "fraction stays at or above FILL (0..1) for a few consecutive "
        "ingests",
    )
    serve_p.add_argument(
        "--max-shards",
        type=int,
        default=None,
        metavar="N",
        help="upper bound on shards after splits (default: unlimited)",
    )
    serve_p.add_argument(
        "--inject-worker",
        action="append",
        default=None,
        metavar="SHARD:SPEC",
        help="inject a runtime fault into one shard worker, e.g. "
        "'1:hang=6' (hang applying chunk 6), '0:slow=0.05' (sleep per "
        "chunk), '0:crash=5,crash_limit=2' (crash on chunk 5, twice); "
        "repeatable, one per shard (see docs/resilience.md)",
    )
    serve_p.add_argument(
        "--hang-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="watchdog: seconds without a heartbeat before a worker is "
        "declared hung and escalated nudge -> SIGTERM -> SIGKILL "
        "(0 disables the watchdog)",
    )
    serve_p.add_argument(
        "--quarantine-after",
        type=int,
        default=3,
        metavar="N",
        help="quarantine a chunk after N worker crashes attributed to it "
        "(0 disables poison-chunk quarantine)",
    )
    serve_p.add_argument(
        "--restart-refill",
        type=float,
        default=0.0,
        metavar="PER_S",
        help="restart-budget token refill rate per shard (tokens/second); "
        "0 keeps the hard max-restarts cap",
    )
    serve_p.add_argument(
        "--verify-offline",
        action="store_true",
        help="after the drain, rerun single-process ShardedCaesar and assert "
        "estimates and per-shard checkpoint digests are bit-identical "
        "(quarantined chunks are excluded from the offline twin)",
    )
    serve_p.add_argument(
        "--state-dir",
        default=None,
        help="directory for worker checkpoints/WALs (default: a temp dir)",
    )
    serve_p.add_argument("--top", type=int, default=5, help="print the top-N flows")
    _add_metrics_arg(serve_p)

    fabric_p = sub.add_parser(
        "fabric",
        help="run a multi-vantage measurement fabric over a routed topology",
    )
    fabric_p.add_argument(
        "--topology",
        default="PATH:6",
        metavar="SPEC",
        help="topology spec: PATH:n, TREE:DEPTHxBRANCHING, or FAT-TREE:k "
        "(default PATH:6; see docs/fabric.md)",
    )
    fabric_p.add_argument(
        "--fusion",
        choices=["min", "ivw", "mle"],
        default="mle",
        help="query-time fusion estimator (default mle; see docs/fabric.md)",
    )
    fabric_p.add_argument(
        "--vantage-workers",
        type=int,
        default=0,
        metavar="N",
        help="shard worker processes per vantage (0 = in-process, default); "
        "N >= 1 runs each vantage through the supervised streaming runtime",
    )
    fabric_p.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="W",
        help="in-process shards per vantage (ignored with --vantage-workers)",
    )
    fabric_p.add_argument(
        "--sample-rate",
        type=float,
        default=1.0,
        metavar="P",
        help="per-hop observation probability in (0, 1] — each vantage "
        "independently observes each routed packet with probability P "
        "(deterministic thinning; estimates are unbiased back by 1/P)",
    )
    fabric_p.add_argument(
        "--trace",
        default=None,
        help="input .npz trace (requires --sram-kb/--cache-kb); "
        "default: generate the scaled paper workload",
    )
    _add_workload_args(fabric_p)
    fabric_p.add_argument(
        "--sram-kb",
        type=float,
        default=None,
        help="per-vantage SRAM budget (default: the scaled Fig. 4 budget)",
    )
    fabric_p.add_argument(
        "--cache-kb",
        type=float,
        default=None,
        help="per-vantage cache budget (default: the scaled Fig. 4 budget)",
    )
    fabric_p.add_argument("--k", type=int, default=3)
    _add_engine_arg(fabric_p)
    fabric_p.add_argument(
        "--chunk-packets",
        type=int,
        default=8192,
        help="packets per ingest chunk (the unit of routing and recovery)",
    )
    fabric_p.add_argument(
        "--chaos-kill",
        default=None,
        metavar="VANTAGE:SHARD:CHUNK",
        help="SIGKILL vantage VANTAGE's shard worker SHARD just before "
        "ingesting chunk CHUNK (needs --vantage-workers >= 1; the run "
        "must still finish bit-identically)",
    )
    fabric_p.add_argument(
        "--verify-offline",
        action="store_true",
        help="after the drain, rerun an in-process fabric twin and assert "
        "fused estimates and every vantage's per-shard checkpoint "
        "digests are bit-identical",
    )
    fabric_p.add_argument(
        "--state-dir",
        default=None,
        help="directory for worker checkpoints/WALs (default: a temp dir)",
    )
    fabric_p.add_argument("--top", type=int, default=5, help="print the top-N flows")
    _add_metrics_arg(fabric_p)

    stats_p = sub.add_parser(
        "stats", help="pretty-print a metrics snapshot written by --metrics-out"
    )
    stats_p.add_argument("snapshot", help="metrics JSON file")
    return parser


def _setup_from(args: argparse.Namespace) -> ExperimentSetup:
    scale = args.scale if args.scale is not None else configured_scale()
    return ExperimentSetup(
        trace=default_paper_trace(scale=scale, seed=args.seed),
        scale=scale,
        seed=args.seed,
        engine=getattr(args, "engine", "batched"),
        registry=_registry_from(args),
        fault_plan=_plan_from(args),
    )


def _cmd_run(args: argparse.Namespace) -> int:
    setup = _setup_from(args)
    names = list_experiments() if args.experiment == "all" else [args.experiment]
    for name in names:
        t0 = time.perf_counter()
        result = run_experiment(name, setup)
        elapsed = time.perf_counter() - t0
        print(result.render())
        print(f"[{name} completed in {elapsed:.1f}s]")
        print()
        if args.export_dir:
            from repro.analysis.export import export_result

            for path in export_result(result, args.export_dir):
                print(f"[wrote {path}]")
    _maybe_write_metrics(args, setup.registry)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    setup = _setup_from(args)
    setup.trace.save(args.out)
    print(
        f"wrote {args.out}: {setup.trace.num_packets} packets, "
        f"{setup.trace.num_flows} flows, mean size {setup.trace.mean_flow_size:.2f}"
    )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    setup = _setup_from(args)
    lines = [
        "# CAESAR reproduction report",
        "",
        f"Workload: `{setup.describe()}`",
        "",
        "Generated by `caesar-repro report`. Paper-vs-measured analysis in",
        "EXPERIMENTS.md; experiment definitions in `repro/experiments/`.",
        "",
    ]
    for name in list_experiments():
        t0 = time.perf_counter()
        result = run_experiment(name, setup)
        elapsed = time.perf_counter() - t0
        print(f"[{name} completed in {elapsed:.1f}s]")
        lines.append(f"## {name}: {result.title}")
        lines.append("")
        lines.append("```")
        lines.append(result.render())
        lines.append("```")
        lines.append("")
    Path(args.out).write_text("\n".join(lines))
    print(f"wrote {args.out}")
    _maybe_write_metrics(args, setup.registry)
    return 0


def _cmd_measure(args: argparse.Namespace) -> int:
    from repro.analysis.metrics import evaluate
    from repro.core.caesar import Caesar
    from repro.core.config import CaesarConfig

    trace = Trace.load(args.trace)
    registry = _registry_from(args)
    if args.checkpoint_every is not None and args.checkpoint_out is None:
        raise ConfigError("--checkpoint-every requires --checkpoint-out")
    if args.resume_from is not None:
        caesar = Caesar.resume(args.resume_from, registry=registry)
        packets = trace.packets[caesar.num_packets :]
        print(
            f"resumed {caesar.config.describe()} from {args.resume_from} "
            f"at packet {caesar.num_packets}"
        )
    else:
        if args.sram_kb is None or args.cache_kb is None:
            raise ConfigError("--sram-kb and --cache-kb are required unless resuming")
        config = CaesarConfig.for_budgets(
            sram_kb=args.sram_kb,
            cache_kb=args.cache_kb,
            num_packets=trace.num_packets,
            num_flows=trace.num_flows,
            k=args.k,
            replacement=args.replacement,
            engine=args.engine,
        )
        print(f"measuring with {config.describe()}")
        caesar = Caesar(config, registry=registry, fault_plan=_plan_from(args))
        packets = trace.packets
    if args.checkpoint_every is None:
        caesar.process(packets)
    else:
        for start in range(0, len(packets), args.checkpoint_every):
            caesar.process(packets[start : start + args.checkpoint_every])
            caesar.save_checkpoint(args.checkpoint_out, level=args.checkpoint_level)
        print(f"[checkpointed to {args.checkpoint_out} every {args.checkpoint_every}]")
    caesar.finalize()
    estimates = caesar.estimate(trace.flows.ids, args.method, clip_negative=True)
    quality = evaluate(estimates, trace.flows.sizes)
    print(quality.summary())
    order = np.argsort(estimates)[::-1][: args.top]
    print(f"\ntop {args.top} flows by estimate (estimate / actual):")
    for i in order:
        print(
            f"  {int(trace.flows.ids[i]):>20d}  "
            f"{estimates[i]:>12.1f}  {int(trace.flows.sizes[i]):>10d}"
        )
    _maybe_write_metrics(args, registry)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import os
    import signal as signal_mod
    import tempfile

    from repro.analysis.metrics import evaluate
    from repro.core.config import CaesarConfig
    from repro.core.sharded import ShardedCaesar
    from repro.runtime.client import StreamingRuntime
    from repro.runtime.partitioner import chunk_stream
    from repro.runtime.watchdog import offline_twin_excluding

    trace = Trace.load(args.trace)
    registry = _registry_from(args)
    config = CaesarConfig.for_budgets(
        sram_kb=args.sram_kb,
        cache_kb=args.cache_kb,
        num_packets=trace.num_packets,
        num_flows=trace.num_flows,
        k=args.k,
        engine=args.engine,
    )
    chaos: tuple[int, int] | None = None
    if args.chaos_kill:
        try:
            shard_s, chunk_s = args.chaos_kill.split(":")
            chaos = (int(shard_s), int(chunk_s))
        except ValueError:
            raise ConfigError(
                f"--chaos-kill wants SHARD:CHUNK, got {args.chaos_kill!r}"
            ) from None
        if not 0 <= chaos[0] < args.workers:
            raise ConfigError(f"--chaos-kill shard {chaos[0]} out of range")
    reshard: tuple[int, int] | None = None
    if args.reshard:
        try:
            shard_s, chunk_s = args.reshard.split(":")
            reshard = (int(shard_s), int(chunk_s))
        except ValueError:
            raise ConfigError(
                f"--reshard wants SHARD:AT_CHUNK, got {args.reshard!r}"
            ) from None
        if not 0 <= reshard[0] < args.workers:
            raise ConfigError(f"--reshard shard {reshard[0]} out of range")
    if args.ring_kb is not None and args.transport != "shm":
        raise ConfigError("--ring-kb applies only with --transport shm")
    worker_faults = {}
    for spec_s in args.inject_worker or ():
        try:
            shard_s, fault_s = spec_s.split(":", 1)
            shard = int(shard_s)
        except ValueError:
            raise ConfigError(
                f"--inject-worker wants SHARD:SPEC, got {spec_s!r}"
            ) from None
        if not 0 <= shard < args.workers:
            raise ConfigError(f"--inject-worker shard {shard} out of range")
        worker_faults[shard] = parse_fault_spec(fault_s)
    print(
        f"serving {args.trace} over {args.workers} shard workers "
        f"({config.describe()}, transport={args.transport}, "
        f"chunk={args.chunk_packets}, backpressure={args.backpressure})"
    )
    tmp = None
    state_dir = args.state_dir
    if state_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-serve-")
        state_dir = tmp.name
    watch = trace.flows.ids[: min(8, len(trace.flows.ids))]
    # Graceful shutdown: the first SIGTERM/SIGINT finishes the current
    # chunk, drains, and reports as usual (exit 0); a second signal
    # while that drain runs force-exits with status 2. The force-exit
    # must take the worker processes down too: ``os._exit`` alone would
    # orphan them holding inherited fds (our stdout pipe) and any live
    # shared-memory segments.
    interrupted = False
    runtime_box: list = []

    def _on_signal(signum: int, frame: object) -> None:
        nonlocal interrupted
        if interrupted:
            for run in runtime_box:
                op = run.supervisor._reshard
                successors = [] if op is None else op.successors
                for h in (*run.supervisor.handles, *successors):
                    try:
                        if h.process.pid is not None:
                            os.kill(h.process.pid, signal_mod.SIGKILL)
                    except (OSError, ValueError):
                        pass
            os._exit(2)
        interrupted = True
        name = signal_mod.Signals(signum).name
        print(
            f"[{name}: draining and reporting — signal again to force-exit]",
            flush=True,
        )

    prev_handlers = {
        sig: signal_mod.signal(sig, _on_signal)
        for sig in (signal_mod.SIGTERM, signal_mod.SIGINT)
    }
    try:
        with StreamingRuntime(
            config,
            args.workers,
            state_dir=state_dir,
            transport=args.transport,
            queue_depth=args.queue_depth,
            ring_bytes=args.ring_kb * 1024 if args.ring_kb is not None else None,
            backpressure=args.backpressure,
            checkpoint_every=args.checkpoint_every,
            checkpoint_mode=args.checkpoint_mode,
            checkpoint_level=args.checkpoint_level,
            registry=registry,
            reshard_above=args.reshard_above,
            max_shards=args.max_shards,
            hang_timeout=args.hang_timeout if args.hang_timeout > 0 else None,
            quarantine_after=args.quarantine_after,
            restart_refill_per_s=args.restart_refill,
            worker_faults=worker_faults or None,
        ) as rt:
            runtime_box.append(rt)
            for i, (pkts, lens) in enumerate(
                chunk_stream(trace.packets, chunk_packets=args.chunk_packets)
            ):
                if interrupted:
                    break
                if chaos is not None and i == chaos[1]:
                    print(f"[chaos: SIGKILL shard {chaos[0]} worker at chunk {i}]")
                    rt.kill_worker(chaos[0])
                if reshard is not None and i == reshard[1]:
                    print(f"[reshard: splitting shard {reshard[0]} at chunk {i}]")
                    rt.begin_reshard(reshard[0])
                rt.ingest(pkts, lens)
                if args.query_every and i % args.query_every == 0:
                    est = rt.query(watch, detail=True)
                    print(
                        f"[chunk {i}: live estimates "
                        f"{np.round(np.asarray(est), 1).tolist()} "
                        f"degraded={est.degraded}]"
                    )
            result = rt.drain()
            if interrupted:
                print("[drained after signal]")
            print(
                f"ingested {result.num_packets} packets; "
                f"worker restarts: {result.restarts}"
            )
            ages = rt.checkpoint_ages()
            if ages:
                print(
                    "durability lag at drain: "
                    + ", ".join(
                        f"shard {s}: {age:.1f}s" for s, age in sorted(ages.items())
                    )
                )
            if result.reshards:
                print(
                    f"resharded {result.reshards}x — final map "
                    f"{result.shard_map.describe()}"
                )
            if result.quarantined:
                print(
                    f"quarantined {result.quarantined_chunks} poison chunk(s) "
                    f"({result.quarantined_packets} packets): "
                    + ", ".join(
                        f"shard {s} seq {q}" for s, q, _ in result.quarantined
                    )
                )
            for s, digest in enumerate(result.shard_digests):
                print(f"  shard {s}: final digest {digest[:16]}…")
            estimates = rt.query(trace.flows.ids)
    finally:
        for sig, handler in prev_handlers.items():
            signal_mod.signal(sig, handler)
        if tmp is not None:
            tmp.cleanup()
    quality = evaluate(estimates, trace.flows.sizes)
    print(quality.summary())
    order = np.argsort(estimates)[::-1][: args.top]
    print(f"\ntop {args.top} flows by estimate (estimate / actual):")
    for i in order:
        print(
            f"  {int(trace.flows.ids[i]):>20d}  "
            f"{estimates[i]:>12.1f}  {int(trace.flows.sizes[i]):>10d}"
        )
    if args.verify_offline:
        if interrupted:
            print(
                "offline verification skipped: the run was interrupted "
                "mid-stream, so the offline twin would see more input"
            )
        else:
            if result.quarantined:
                if result.reshards:
                    print(
                        "offline verification with quarantined chunks is not "
                        "supported on a resharded run (per-shard sequence "
                        "numbers change under a split map)",
                        file=sys.stderr,
                    )
                    return 1
                # The twin replays the stream skipping exactly the
                # quarantined (shard, seq) chunks the runtime never
                # applied — the degraded run must still be bit-identical
                # to an offline run over the same surviving input.
                offline = offline_twin_excluding(
                    config,
                    result.shard_map,
                    trace.packets,
                    chunk_packets=args.chunk_packets,
                    quarantined={(s, q) for s, q, _ in result.quarantined},
                )
            else:
                # Build the offline twin under the runtime's *final*
                # shard map, so resharded runs verify against the
                # post-split deployment.
                offline = ShardedCaesar(config, shard_map=result.shard_map)
                offline.process(trace.packets)
                offline.finalize()
            base = offline.estimate(trace.flows.ids, "csm", clip_negative=True)
            digests = tuple(s.checkpoint().digest for s in offline.shards)
            if not np.array_equal(estimates, base) or digests != result.shard_digests:
                print(
                    "offline verification FAILED: runtime result diverges from "
                    "the single-process sharded run",
                    file=sys.stderr,
                )
                return 1
            print(
                "offline verification: bit-identical to single-process "
                "ShardedCaesar (estimates and per-shard digests)"
            )
    _maybe_write_metrics(args, registry)
    return 0


def _cmd_fabric(args: argparse.Namespace) -> int:
    import tempfile

    from repro.analysis.metrics import evaluate
    from repro.core.config import CaesarConfig
    from repro.experiments.trace_setup import PAPER_CACHE_KB, PAPER_SRAM_KB_MAIN
    from repro.fabric import Fabric, parse_topology
    from repro.runtime.partitioner import chunk_stream

    if args.trace:
        if args.sram_kb is None or args.cache_kb is None:
            raise ConfigError("--trace needs explicit --sram-kb and --cache-kb")
        trace = Trace.load(args.trace)
        sram_kb, cache_kb = args.sram_kb, args.cache_kb
    else:
        scale = args.scale if args.scale is not None else configured_scale()
        trace = default_paper_trace(scale=scale, seed=args.seed)
        sram_kb = args.sram_kb if args.sram_kb is not None else PAPER_SRAM_KB_MAIN * scale
        cache_kb = args.cache_kb if args.cache_kb is not None else PAPER_CACHE_KB * scale
    topology = parse_topology(args.topology)
    config = CaesarConfig.for_budgets(
        sram_kb=sram_kb,
        cache_kb=cache_kb,
        num_packets=trace.num_packets,
        num_flows=trace.num_flows,
        k=args.k,
        seed=args.seed,
        engine=args.engine,
    )
    chaos: tuple[int, int, int] | None = None
    if args.chaos_kill:
        try:
            vantage_s, shard_s, chunk_s = args.chaos_kill.split(":")
            chaos = (int(vantage_s), int(shard_s), int(chunk_s))
        except ValueError:
            raise ConfigError(
                f"--chaos-kill wants VANTAGE:SHARD:CHUNK, got {args.chaos_kill!r}"
            ) from None
        if args.vantage_workers < 1:
            raise ConfigError("--chaos-kill needs --vantage-workers >= 1")
        if not 0 <= chaos[0] < topology.num_nodes:
            raise ConfigError(f"--chaos-kill vantage {chaos[0]} out of range")
        if not 0 <= chaos[1] < args.vantage_workers:
            raise ConfigError(f"--chaos-kill shard {chaos[1]} out of range")
    # One registry per vantage plus one for the facade: the merged
    # export namespaces them (vantage<i>. prefixes) so per-vantage
    # cache/pipeline counters don't collide in one artifact.
    fabric_registry = _registry_from(args)
    vantage_registries = (
        [MetricsRegistry() for _ in range(topology.num_nodes)]
        if fabric_registry is not None
        else None
    )
    print(
        f"fabric over {topology.describe()} "
        f"(per-vantage {config.describe()}, fusion={args.fusion}, "
        f"{'in-process' if not args.vantage_workers else f'{args.vantage_workers}w runtime'}"
        f", sample_rate={args.sample_rate})"
    )
    tmp = None
    state_dir = args.state_dir
    if state_dir is None and args.vantage_workers:
        tmp = tempfile.TemporaryDirectory(prefix="repro-fabric-")
        state_dir = tmp.name
    fabric = Fabric(
        config,
        topology,
        fusion=args.fusion,
        shards_per_vantage=args.shards,
        vantage_workers=args.vantage_workers,
        state_dir=state_dir,
        sample_rate=args.sample_rate,
        registry=fabric_registry,
        vantage_registries=vantage_registries,
    )
    try:
        for i, (pkts, lens) in enumerate(
            chunk_stream(trace.packets, chunk_packets=args.chunk_packets)
        ):
            if chaos is not None and i == chaos[2]:
                print(
                    f"[chaos: SIGKILL vantage {chaos[0]} shard {chaos[1]} "
                    f"worker at chunk {i}]"
                )
                fabric.kill_worker(chaos[0], chaos[1])
            fabric.ingest(pkts, lens)
        result = fabric.drain()
    finally:
        fabric.shutdown()
        if tmp is not None:
            tmp.cleanup()
    print(
        f"routed {result.num_packets} packets into "
        f"{result.total_observations} observations; "
        f"worker restarts: {result.restarts}"
    )
    for v, (count, digests) in enumerate(
        zip(result.observed_packets, result.shard_digests)
    ):
        print(
            f"  vantage {v}: {count} packets, digests "
            + " ".join(f"{d[:12]}…" for d in digests)
        )
    if result.degraded:
        print(f"degraded vantages (lost input): {result.degraded_vantages}")
    report = fabric.report(trace.flows.ids, trace.flows.sizes)
    print(report.summary())
    estimates = fabric.query(trace.flows.ids, clip_negative=True)
    print(evaluate(estimates, trace.flows.sizes).summary())
    order = np.argsort(estimates)[::-1][: args.top]
    print(f"\ntop {args.top} flows by fused estimate (estimate / actual):")
    for i in order:
        print(
            f"  {int(trace.flows.ids[i]):>20d}  "
            f"{estimates[i]:>12.1f}  {int(trace.flows.sizes[i]):>10d}"
        )
    if args.verify_offline:
        twin = Fabric(
            config,
            topology,
            fusion=args.fusion,
            shards_per_vantage=(
                args.vantage_workers if args.vantage_workers else args.shards
            ),
            sample_rate=args.sample_rate,
        )
        twin.ingest_stream(trace.packets, chunk_packets=args.chunk_packets)
        twin_result = twin.drain()
        twin_estimates = twin.query(trace.flows.ids, clip_negative=True)
        if (
            not np.array_equal(estimates, twin_estimates)
            or twin_result.shard_digests != result.shard_digests
        ):
            print(
                "offline verification FAILED: fabric result diverges from "
                "the in-process twin",
                file=sys.stderr,
            )
            return 1
        print(
            "offline verification: bit-identical to the in-process fabric "
            "(fused estimates and every vantage's per-shard digests)"
        )
    if fabric_registry is not None:
        from repro.analysis.export import export_metrics, merge_snapshots

        merged = merge_snapshots(
            {
                "fabric": fabric_registry,
                **{
                    f"vantage{v}": reg
                    for v, reg in enumerate(vantage_registries or [])
                },
            }
        )
        print(f"[wrote {export_metrics(args.metrics_out, merged)}]")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.analysis.export import format_metrics

    snapshot = json.loads(Path(args.snapshot).read_text())
    print(format_metrics(snapshot))
    return 0


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "list":
        for name in list_experiments():
            print(name)
        return 0
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "measure":
        return _cmd_measure(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "fabric":
        return _cmd_fabric(args)
    if args.command == "stats":
        return _cmd_stats(args)
    build_parser().print_help()
    return 2


_SUBCOMMANDS = ("run", "list", "trace", "report", "measure", "serve", "fabric", "stats")


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # Backwards compatibility: a bare experiment name means `run` —
    # unless it names a subcommand too (the `fabric` experiment shares
    # its name with the `fabric` subcommand; run it via `run fabric`).
    if (
        argv
        and argv[0] not in _SUBCOMMANDS
        and argv[0] in (*list_experiments(), "all")
    ):
        argv = ["run", *argv]
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except ReproError as exc:
        # Library errors are user-facing: one line, exit 2, no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
