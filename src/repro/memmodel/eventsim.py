"""Event-driven validation of the analytic ingress model.

:mod:`repro.memmodel.pipeline` computes ingress/drain times and loss
rates in closed form. This module simulates the same two-stage system
packet by packet — deterministic arrivals every ``interarrival_ns``, a
front end with per-packet service time, a bounded FIFO, and a back end
serving one off-chip update per item — so the closed forms can be
checked against an executable model (see
``tests/test_memmodel_eventsim.py``).

Two overload behaviours:

- ``stall=True`` — the ingress blocks when the FIFO is full (the
  timing experiment's semantics: no loss, time stretches — RCS's
  Figure-8 kink);
- ``stall=False`` — items that find the FIFO full are dropped (the
  loss experiment's semantics: time stays at line rate, packets are
  lost — Figure 7's loss rates).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class EventSimResult:
    """Outcome of one event-driven run."""

    packets: int
    ingress_ns: float  #: when the last packet was accepted by the front end
    drain_ns: float  #: when the back end finished its last item
    generated_items: int  #: back-end work items produced
    dropped_items: int  #: items discarded because the FIFO was full
    max_queue_depth: int

    @property
    def item_loss_rate(self) -> float:
        return self.dropped_items / self.generated_items if self.generated_items else 0.0


def simulate(
    num_packets: int,
    *,
    interarrival_ns: float,
    front_ns: float,
    items_per_packet: float,
    back_ns: float,
    fifo_depth: int,
    stall: bool = True,
) -> EventSimResult:
    """Run the two-stage pipeline packet by packet.

    ``items_per_packet`` is the back-end work generation rate: 1.0 for
    RCS (every packet updates off-chip), or the measured
    evictions-per-packet for the cached schemes. Items are generated at
    deterministic spacing (packet ``i`` produces an item whenever the
    accumulated rate crosses an integer), matching the analytic model's
    mean-rate treatment.
    """
    if num_packets < 0:
        raise ConfigError("num_packets must be >= 0")
    if interarrival_ns <= 0 or front_ns < 0 or back_ns < 0:
        raise ConfigError("interarrival must be > 0; service times >= 0")
    if items_per_packet < 0:
        raise ConfigError("items_per_packet must be >= 0")
    if fifo_depth < 0:
        raise ConfigError("fifo_depth must be >= 0")

    front_free = 0.0  # when the front end can take the next packet
    back_free = 0.0  # when the back end finishes its current item
    accumulated = 0.0  # fractional back-item credit
    departures: list[float] = []  # sorted back-end completion times
    generated = 0
    dropped = 0
    max_depth = 0
    ingress = 0.0

    for i in range(num_packets):
        start = max(i * interarrival_ns, front_free)
        accumulated += items_per_packet
        makes_item = accumulated >= 1.0
        if makes_item:
            accumulated -= 1.0
            generated += 1
            if stall and len(departures) >= fifo_depth > 0:
                # Accepting this item needs a queue slot: the ingress
                # stalls until the (len - depth)-th item has departed.
                start = max(start, departures[len(departures) - fifo_depth])
        done = start + front_ns
        front_free = done
        ingress = done
        if makes_item:
            in_flight = len(departures) - bisect.bisect_right(departures, done)
            if not stall and in_flight >= fifo_depth:
                dropped += 1
                continue
            back_free = max(done, back_free) + back_ns
            departures.append(back_free)
            max_depth = max(max_depth, in_flight + 1)

    drain = max(ingress, departures[-1] if departures else 0.0)
    return EventSimResult(
        packets=num_packets,
        ingress_ns=ingress,
        drain_ns=drain,
        generated_items=generated,
        dropped_items=dropped,
        max_queue_depth=max_depth,
    )
