"""Memory/time cost model — the FPGA-experiment substitute.

The paper's Figure 8 measures packet-processing time of CAESAR, CASE,
and RCS on a Xilinx Virtex-7 prototype. We cannot synthesize VHDL
here, so this package reproduces the *mechanism* that figure measures:
per-packet operation mixes (cache hits, hash computations, off-chip
SRAM read-modify-writes, CASE's power operations) priced with the
paper's own latency numbers (on-chip ~1 ns, off-chip SRAM 3-10 ns,
DRAM ~40 ns), plus a line-rate ingress model with a bounded FIFO that
produces RCS's "drastic increase" beyond the buffer capacity and its
packet-loss rates.
"""

from repro.memmodel.technologies import LatencyModel, MemoryTechnology, TECHNOLOGIES
from repro.memmodel.costmodel import OperationCounts, caesar_counts, case_counts, rcs_counts
from repro.memmodel.pipeline import IngressModel, PipelineResult

__all__ = [
    "IngressModel",
    "LatencyModel",
    "MemoryTechnology",
    "OperationCounts",
    "PipelineResult",
    "TECHNOLOGIES",
    "caesar_counts",
    "case_counts",
    "rcs_counts",
]
