"""Per-scheme operation accounting.

Each scheme's construction phase is summarized as an
:class:`OperationCounts` — how many cache accesses, hash evaluations,
off-chip SRAM read-modify-writes, and power operations a packet stream
induced, split between the **front end** (the per-packet critical path
that must keep line rate) and the **back end** (work that drains
through the FIFO to the off-chip SRAM, off the critical path — the
paper's prototype uses dual-port RAM precisely so eviction handling
overlaps packet capture).

The counts come either from an *instrumented run* (the cache
statistics of an actual simulation) or from the closed-form eviction
rate ``E(t) = 2x/y`` summed over flows. Splitting counting (what
happened) from pricing (what it costs, via
:class:`~repro.memmodel.technologies.LatencyModel`) keeps the Figure-8
reproduction auditable: the benchmark prints both.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cachesim.base import CacheStats
from repro.errors import ConfigError
from repro.memmodel.technologies import LatencyModel


@dataclass(frozen=True)
class OperationCounts:
    """Operation totals for one scheme processing one stream."""

    packets: int
    # Front end: on the per-packet critical path.
    front_cache_accesses: int = 0
    front_hashes: int = 0
    front_power_ops: int = 0
    # Back end: drains through the FIFO to off-chip SRAM.
    back_hashes: int = 0
    back_power_ops: int = 0
    back_sram_rmws: int = 0

    def __post_init__(self) -> None:
        if self.packets < 0:
            raise ConfigError("packets must be >= 0")
        for name in (
            "front_cache_accesses",
            "front_hashes",
            "front_power_ops",
            "back_hashes",
            "back_power_ops",
            "back_sram_rmws",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")

    # -- pricing -----------------------------------------------------------

    def front_ns(self, lat: LatencyModel) -> float:
        """Critical-path time: what bounds ingress consumption."""
        return (
            self.front_cache_accesses * lat.cache_access_ns
            + self.front_hashes * lat.hash_ns
            + self.front_power_ops * lat.power_op_ns
        )

    def back_ns(self, lat: LatencyModel) -> float:
        """Off-critical-path time: what drains through the FIFO."""
        return (
            self.back_hashes * lat.hash_ns
            + self.back_power_ops * lat.power_op_ns
            + self.back_sram_rmws * lat.sram_rmw_ns
        )

    @property
    def back_items(self) -> int:
        """FIFO work items (one per off-chip counter update)."""
        return self.back_sram_rmws

    def service_time_ns(self, lat: LatencyModel) -> float:
        """Total engine busy time (front + back)."""
        return self.front_ns(lat) + self.back_ns(lat)

    def per_packet_ns(self, lat: LatencyModel) -> float:
        """Average busy time per packet."""
        return self.service_time_ns(lat) / self.packets if self.packets else 0.0


def caesar_counts(stats: CacheStats, k: int) -> OperationCounts:
    """CAESAR: the critical path is one cache access per packet; each
    eviction sends one FIFO item whose ``k`` counter updates issue *in
    parallel* — the banked layout exists precisely so each of the k
    hash functions owns a physically separate SRAM bank, making an
    eviction one SRAM cycle, not k. (The final dump is offline and not
    charged, matching the paper.) ``k`` is accepted to document the
    parallel width even though it does not scale the serialized cost."""
    del k  # updates issue bank-parallel; latency is one SRAM cycle
    evictions = stats.total_evictions
    return OperationCounts(
        packets=stats.accesses,
        front_cache_accesses=stats.accesses,
        back_hashes=evictions,
        back_sram_rmws=evictions,
    )


def case_counts(stats: CacheStats) -> OperationCounts:
    """CASE: every packet traverses the compression pipeline (one
    power-unit stage per packet — the compression datapath bounds
    CASE's clock, which is why the paper finds CASE slow even on short
    streams), and each eviction additionally costs a hash, a power
    operation, and a counter update on the back end."""
    evictions = stats.total_evictions
    return OperationCounts(
        packets=stats.accesses,
        front_cache_accesses=stats.accesses,
        front_power_ops=stats.accesses,
        back_hashes=evictions,
        back_power_ops=evictions,
        back_sram_rmws=evictions,
    )


def rcs_counts(packets: int) -> OperationCounts:
    """RCS (cache-free): the front end hashes and enqueues each packet;
    *every* packet is one off-chip counter update on the back end —
    the structural reason RCS cannot keep line rate."""
    if packets < 0:
        raise ConfigError("packets must be >= 0")
    return OperationCounts(
        packets=packets,
        front_hashes=packets,
        back_sram_rmws=packets,
    )
