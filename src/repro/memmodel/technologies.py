"""Memory technologies and operation latencies.

Numbers follow the paper's Section 1.1: on-chip memory ~1 ns per
access, QDRII+ SRAM 3-10 ns, DRAM ~40 ns. The power-operation latency
models CASE's compression unit (exponentiation/root on the FPGA's DSP
path), which the paper identifies as CASE's per-packet bottleneck; the
hash latency models one pipelined hash evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError


@dataclass(frozen=True)
class MemoryTechnology:
    """One memory technology with its per-access latency."""

    name: str
    access_ns: float

    def __post_init__(self) -> None:
        if self.access_ns <= 0:
            raise ConfigError(f"access_ns must be > 0, got {self.access_ns}")


#: The technologies the paper's architecture discussion prices.
TECHNOLOGIES: dict[str, MemoryTechnology] = {
    "onchip": MemoryTechnology("on-chip cache RAM", 1.0),
    "sram": MemoryTechnology("QDRII+ off-chip SRAM", 10.0),
    "sram_fast": MemoryTechnology("QDRII+ off-chip SRAM (best case)", 3.0),
    "dram": MemoryTechnology("DRAM", 40.0),
}


@dataclass(frozen=True)
class LatencyModel:
    """Per-operation latencies (ns) used to price a scheme's run.

    Defaults reproduce the paper's relative costs: line-rate packet
    arrival of one packet per ns (the normalized ingress clock), cache
    accesses at on-chip speed, SRAM read-modify-write at 2x the SRAM
    access time, hashes at one pipeline cycle, and CASE's power
    operation at 4 cycles (dominating its per-packet path, per the
    paper's Section 6.4 discussion).
    """

    packet_interarrival_ns: float = 1.0
    cache_access_ns: float = TECHNOLOGIES["onchip"].access_ns
    sram_access_ns: float = TECHNOLOGIES["sram"].access_ns
    hash_ns: float = 1.0
    power_op_ns: float = 4.0
    add_ns: float = 0.0  # adders are free on the FPGA datapath

    def __post_init__(self) -> None:
        for field_name in (
            "packet_interarrival_ns",
            "cache_access_ns",
            "sram_access_ns",
            "hash_ns",
            "power_op_ns",
        ):
            if getattr(self, field_name) <= 0:
                raise ConfigError(f"{field_name} must be > 0")
        if self.add_ns < 0:
            raise ConfigError("add_ns must be >= 0")

    @property
    def sram_rmw_ns(self) -> float:
        """Off-chip read-modify-write.

        QDRII+ SRAM has independent read and write ports (the paper
        notes the prototype's dual-port RAM "supports duplex reading
        and writing"), so a pipelined read-modify-write costs one
        access time, not two.
        """
        return self.sram_access_ns

    def loss_rate_at_line_rate(self, service_ns: float) -> float:
        """Fraction of packets a ``service_ns``-per-packet engine drops
        when packets arrive every ``packet_interarrival_ns``.

        With the paper's cache/SRAM speed ratios of 3x and 10x this
        yields exactly the empirical loss rates 2/3 and 9/10 used in
        Figure 7.
        """
        if service_ns <= self.packet_interarrival_ns:
            return 0.0
        return 1.0 - self.packet_interarrival_ns / service_ns
