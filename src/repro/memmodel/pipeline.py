"""Line-rate ingress model with a bounded FIFO.

Reproduces the two timing phenomena of the paper's evaluation:

1. **Figure 8's RCS kink** — RCS's front end merely hashes and
   enqueues, so for short streams the ingress runs at line rate; once
   the FIFO between the front end and the slow off-chip SRAM fills
   (around 10^4 packets on the prototype), the ingress stalls to SRAM
   speed and measured processing time "drastically increases".

2. **Figure 7's loss rates** — when the engine *drops* instead of
   stalling, the sustainable fraction is the speed ratio of the line
   to the per-packet service: the paper's empirical 2/3 and 9/10 loss
   rates are exactly the 3x and 10x cache/SRAM gaps.

The model is analytic (no event simulation needed): with back-to-back
arrivals every ``t_in`` and a FIFO of ``B`` work items served at
``t_back`` each, the time for the ingress to accept ``n`` packets is

    T(n) = max( n * t_in,  front_total,  back_total - B * t_back )

— the back end may lag by at most ``B`` items when the last packet is
accepted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.memmodel.costmodel import OperationCounts
from repro.memmodel.technologies import LatencyModel


@dataclass(frozen=True)
class PipelineResult:
    """Outcome of pushing one stream through the ingress model."""

    packets: int
    ingress_ns: float  #: time until the last packet is accepted (stall mode)
    drain_ns: float  #: time until all back-end work completes
    loss_rate: float  #: drop fraction in no-stall (lossy) mode
    front_ns_per_packet: float
    back_ns_per_packet: float

    @property
    def throughput_mpps(self) -> float:
        """Sustained ingress rate in million packets per second."""
        return self.packets / self.ingress_ns * 1e3 if self.ingress_ns else 0.0


class IngressModel:
    """Prices an :class:`OperationCounts` under line-rate arrivals."""

    def __init__(self, latencies: LatencyModel | None = None, fifo_depth: int = 10_000) -> None:
        if fifo_depth < 0:
            raise ConfigError(f"fifo_depth must be >= 0, got {fifo_depth}")
        self.latencies = latencies or LatencyModel()
        self.fifo_depth = int(fifo_depth)

    def process(self, counts: OperationCounts) -> PipelineResult:
        """Analytic pipeline outcome for one stream."""
        lat = self.latencies
        n = counts.packets
        front = counts.front_ns(lat)
        back = counts.back_ns(lat)
        back_items = counts.back_items
        arrival = n * lat.packet_interarrival_ns
        t_back = back / back_items if back_items else 0.0
        lag_allowance = min(self.fifo_depth, back_items) * t_back
        ingress = max(arrival, front, back - lag_allowance)
        drain = max(arrival, front, back)
        # Loss is a memory-path phenomenon: hashing pipelines in
        # parallel with the access, so the drop rate is set by the
        # per-packet *memory* time alone. For RCS this gives exactly
        # the paper's 2/3 (3 ns SRAM) and 9/10 (10 ns SRAM) rates.
        memory_per_packet = back / n if n else 0.0
        return PipelineResult(
            packets=n,
            ingress_ns=ingress,
            drain_ns=drain,
            loss_rate=lat.loss_rate_at_line_rate(memory_per_packet),
            front_ns_per_packet=front / n if n else 0.0,
            back_ns_per_packet=back / n if n else 0.0,
        )
