"""The long-lived shard worker process.

One worker owns one :class:`~repro.core.caesar.Caesar` instance and
lives for the whole deployment: it consumes packet chunks from its
bounded inbox, answers live queries from a control channel mid-ingest,
and keeps enough durable state on disk — an *ingest* write-ahead log
plus periodic checkpoints — that the supervisor can SIGKILL it at any
instant and restart it bit-identically.

Durability protocol (per chunk, in order):

1. append the chunk (packets + optional lengths, tagged with its shard
   chunk sequence number) to the ingest WAL and flush;
2. feed it to the scheme;
3. ack the sequence number to the supervisor (the supervisor may now
   drop its retained copy — the chunk is durable here);
4. every ``checkpoint_every`` chunks, atomically write a
   :class:`~repro.resilience.checkpoint.Checkpoint` named by the
   sequence number and prune the ingest WAL's role back to "since the
   last checkpoint".

Recovery on boot inverts the protocol: restore the newest readable
checkpoint, replay ingest-WAL chunks past its sequence number (the
checkpoint restores the split RNG exactly, so replay is bit-identical),
then report the last recovered sequence number — the supervisor re-feeds
anything newer from its retention buffer. A chunk therefore reaches the
scheme exactly once, in order, across any number of crashes.

The ingest WAL reuses :class:`~repro.resilience.wal.WriteAheadLog`
unchanged: each record's first row is a header (chunk seq in the ids
column, weighted flag in values, reason code 255) and the remaining
rows carry the packets (and byte lengths when measuring volume).
"""

from __future__ import annotations

import os
import re
import traceback
from dataclasses import dataclass
from pathlib import Path
from queue import Empty
from typing import TYPE_CHECKING

import numpy as np
import numpy.typing as npt

from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.errors import TraceFormatError
from repro.resilience.wal import WalRecord, WriteAheadLog

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.queues import Queue

#: Reason code marking an ingest-WAL header row (never a real eviction).
CHUNK_HEADER_REASON = 255

#: How long a blocked inbox read waits before re-polling the control channel.
POLL_SECONDS = 0.05

_CKPT_RE = re.compile(r"ck_(\d{10})(_final)?\.npz$")


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a shard worker needs to boot (picklable, spawn-safe)."""

    shard_id: int
    config: CaesarConfig
    state_dir: str
    checkpoint_every: int = 4  # chunks between checkpoints; 0 disables

    @property
    def wal_path(self) -> Path:
        return Path(self.state_dir) / "ingest.wal"

    def checkpoint_path(self, seq: int, *, final: bool = False) -> Path:
        suffix = "_final" if final else ""
        return Path(self.state_dir) / f"ck_{seq:010d}{suffix}.npz"


# -- ingest-WAL chunk framing -------------------------------------------------


def append_ingest_chunk(
    wal: WriteAheadLog,
    seq: int,
    packets: npt.NDArray[np.uint64],
    lengths: npt.NDArray[np.int64] | None,
) -> None:
    """Append one input chunk, framed with a header row carrying ``seq``."""
    n = len(packets)
    ids = np.empty(n + 1, dtype=np.uint64)
    values = np.zeros(n + 1, dtype=np.int64)
    reasons = np.zeros(n + 1, dtype=np.uint8)
    ids[0] = seq
    reasons[0] = CHUNK_HEADER_REASON
    ids[1:] = packets
    if lengths is not None:
        values[0] = 1
        values[1:] = lengths
    wal.append_chunk(ids, values, reasons)
    wal.flush()


def decode_ingest_record(
    record: WalRecord,
) -> tuple[int, npt.NDArray[np.uint64], npt.NDArray[np.int64] | None]:
    """Invert :func:`append_ingest_chunk` → ``(seq, packets, lengths)``."""
    if len(record.ids) < 1 or record.reasons[0] != CHUNK_HEADER_REASON:
        raise TraceFormatError(
            f"ingest WAL record seq={record.seq} lacks a chunk header row"
        )
    seq = int(record.ids[0])
    packets = record.ids[1:]
    lengths = record.values[1:] if int(record.values[0]) == 1 else None
    return seq, packets, lengths


# -- boot / recovery ----------------------------------------------------------


def _saved_checkpoints(state_dir: Path) -> list[tuple[int, bool, Path]]:
    """All checkpoint files, newest last: ``(seq, is_final, path)``."""
    found = []
    for path in state_dir.glob("ck_*.npz"):
        m = _CKPT_RE.search(path.name)
        if m:
            found.append((int(m.group(1)), m.group(2) is not None, path))
    return sorted(found)


def boot_shard(spec: WorkerSpec) -> tuple[Caesar, int, int]:
    """Build or recover this shard's scheme.

    Returns ``(scheme, last_seq, replayed)``: the live instance, the
    last chunk sequence number durably applied (``-1`` for a fresh
    boot), and how many WAL chunks were replayed. Unreadable (torn)
    checkpoints fall back to the previous one — the WAL bridges the
    extra gap automatically.
    """
    state_dir = Path(spec.state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    scheme: Caesar | None = None
    last_seq = -1
    for seq, _final, path in reversed(_saved_checkpoints(state_dir)):
        try:
            scheme = Caesar.resume(path)
            last_seq = seq
            break
        except TraceFormatError:
            continue
    if scheme is None:
        scheme = Caesar(spec.config)
    replayed = 0
    wal_path = spec.wal_path
    if wal_path.exists() and wal_path.stat().st_size > 0:
        WriteAheadLog.truncate_torn_tail(wal_path)
        for record in WriteAheadLog.iter_records(wal_path):
            seq, packets, lengths = decode_ingest_record(record)
            if seq <= last_seq:
                continue
            scheme.process(packets, lengths)
            last_seq = seq
            replayed += 1
    return scheme, last_seq, replayed


def _save_checkpoint_atomic(scheme: Caesar, target: Path) -> str:
    """Checkpoint → tmp file → atomic rename; returns the digest.

    The rename guarantees a reader (the recovering successor process)
    only ever sees complete checkpoint files; a crash mid-write leaves
    the previous checkpoint intact.
    """
    ckpt = scheme.checkpoint()
    tmp = target.parent / f".tmp_{target.name}"
    written = ckpt.save(tmp)
    os.replace(written, target)
    return ckpt.digest


def _prune_checkpoints(state_dir: Path, keep: int = 2) -> None:
    """Drop all but the newest ``keep`` checkpoints (bounded disk)."""
    saved = _saved_checkpoints(state_dir)
    for _seq, _final, path in saved[:-keep] if len(saved) > keep else []:
        path.unlink(missing_ok=True)


# -- the worker loop ----------------------------------------------------------


def _answer_query(
    scheme: Caesar, flow_ids: npt.NDArray[np.uint64], method: str
) -> npt.NDArray[np.float64]:
    """Live query mid-ingest, offline query after finalize."""
    if scheme._finalized:
        return scheme.estimate(flow_ids, method, clip_negative=True)
    return scheme.estimate_online(flow_ids)


def worker_main(
    spec: WorkerSpec,
    inbox: "Queue",
    control: "Queue",
    outbox: "Queue",
) -> None:
    """Entry point of one shard worker process (module-level: picklable
    under any multiprocessing start method)."""
    shard = spec.shard_id
    try:
        scheme, last_seq, replayed = boot_shard(spec)
        wal = WriteAheadLog(spec.wal_path)
        outbox.put(("ready", shard, last_seq, replayed))
        while True:
            # Control first: queries stay responsive however deep the
            # data queue is, and stop wins over queued work.
            try:
                while True:
                    msg = control.get_nowait()
                    if msg[0] == "stop":
                        wal.close()
                        return
                    if msg[0] == "query":
                        _kind, qid, flow_ids, method = msg
                        try:
                            est = _answer_query(scheme, flow_ids, method)
                            outbox.put(("reply", shard, qid, est, None))
                        except Exception as exc:  # noqa: BLE001 - reported to caller
                            outbox.put(("reply", shard, qid, None, repr(exc)))
            except Empty:
                pass
            try:
                item = inbox.get(timeout=POLL_SECONDS)
            except Empty:
                continue
            if item[0] == "chunk":
                _kind, seq, packets, lengths = item
                if seq <= last_seq:
                    # Duplicate re-feed of an already-durable chunk: ack
                    # (again) so the supervisor drops its retained copy.
                    outbox.put(("ack", shard, seq))
                    continue
                append_ingest_chunk(wal, seq, packets, lengths)
                scheme.process(packets, lengths)
                last_seq = seq
                outbox.put(("ack", shard, seq))
                if spec.checkpoint_every and (seq + 1) % spec.checkpoint_every == 0:
                    digest = _save_checkpoint_atomic(
                        scheme, spec.checkpoint_path(seq)
                    )
                    _prune_checkpoints(Path(spec.state_dir))
                    outbox.put(("checkpoint", shard, seq, digest))
            elif item[0] == "drain":
                scheme.finalize()  # idempotent across drain re-sends
                digest = _save_checkpoint_atomic(
                    scheme, spec.checkpoint_path(max(last_seq, 0), final=True)
                )
                outbox.put(
                    (
                        "finalized",
                        shard,
                        digest,
                        str(spec.checkpoint_path(max(last_seq, 0), final=True)),
                        scheme.num_packets,
                    )
                )
    except Exception:  # noqa: BLE001 - crash surface: report, then die
        outbox.put(("error", shard, traceback.format_exc()))
        raise
