"""The long-lived shard worker process.

One worker owns one :class:`~repro.core.caesar.Caesar` instance and
lives for the whole deployment: it consumes packet chunks from its
bounded inbox, answers live queries from a control channel mid-ingest,
and keeps enough durable state on disk — an *ingest* write-ahead log
plus periodic checkpoints — that the supervisor can SIGKILL it at any
instant and restart it bit-identically.

Durability protocol (per chunk, in order):

1. append the chunk (packets + optional lengths, tagged with its shard
   chunk sequence number) to the ingest WAL and flush;
2. feed it to the scheme;
3. every ``ack_every`` chunks (and on checkpoint, drain, stop, or a
   duplicate re-feed) send a *cumulative* ack — everything up to the
   acked sequence number is durable here, so the supervisor may drop
   those retained copies. Batching trades a little extra retention
   (at most ``ack_every`` chunks ride the supervisor's buffer) for
   ``ack_every``-fold fewer control messages; the recovery split is
   unchanged because un-acked-but-durable chunks are deduplicated on
   re-feed anyway;
4. every ``checkpoint_every`` chunks, atomically write a
   :class:`~repro.resilience.checkpoint.Checkpoint` named by the
   sequence number and prune the ingest WAL's role back to "since the
   last checkpoint".

Recovery on boot inverts the protocol: restore the newest readable
checkpoint, replay ingest-WAL chunks past its sequence number (the
checkpoint restores the split RNG exactly, so replay is bit-identical),
then report the last recovered sequence number — the supervisor re-feeds
anything newer from its retention buffer. A chunk therefore reaches the
scheme exactly once, in order, across any number of crashes.

The ingest WAL reuses :class:`~repro.resilience.wal.WriteAheadLog`
unchanged: each record's first row is a header (chunk seq in the ids
column, weighted flag in values, reason code 255) and the remaining
rows carry the packets (and byte lengths when measuring volume).
"""

from __future__ import annotations

import os
import re
import signal
import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np
import numpy.typing as npt

from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.errors import IngestError, TraceFormatError
from repro.resilience.async_ckpt import (
    CheckpointDone,
    ShardCheckpointer,
    load_checkpoint,
)
from repro.resilience.atomic import atomic_publish
from repro.resilience.faults import FaultPlan
from repro.resilience.wal import WalRecord, WriteAheadLog
from repro.runtime.partitioner import ShardMap
from repro.runtime.transport import DEFAULT_ACK_EVERY
from repro.runtime.watchdog import DEFAULT_HEARTBEAT_EVERY

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.synchronize import Semaphore
    from typing import Callable

    from repro.runtime.transport import WorkerTransport

#: Reason code marking an ingest-WAL header row (never a real eviction).
CHUNK_HEADER_REASON = 255

#: How long a blocked data read waits before re-polling the control channel.
POLL_SECONDS = 0.05

#: Longest a worker waits for a compute slot before proceeding anyway.
#: The slot is an optimization (see :func:`_compute_slot`), never a
#: correctness device — a SIGKILLed holder must not wedge the others.
GATE_TIMEOUT = 1.0


@contextmanager
def _compute_slot(gate: "Semaphore | None", tick: "Callable[[], None] | None" = None):
    """Hold one oversubscription-guard slot for a heavy compute section.

    When shard workers outnumber cores, letting them all chew
    concurrently just interleaves them through the scheduler — total
    throughput cannot rise, but every context switch refills caches and
    TLBs, so total *work* does (measured ~30-40% CPU inflation with 4
    workers on 1 core). The supervisor hands every worker one counting
    semaphore sized to the core budget; holding it through chunk
    processing and finalize/checkpoint keeps at most ``cores`` workers
    computing while the rest sleep in a futex, preserving the per-shard
    cache locality that sharding buys. With ``workers <= cores`` no
    gate is created and this is a no-op — true parallelism passes
    through untouched.

    The acquire is bounded by :data:`GATE_TIMEOUT` and the section runs
    regardless: a slot lost to a SIGKILLed holder degrades back to
    concurrent compute instead of deadlocking (crash tests kill workers
    at arbitrary instants, including mid-hold).

    ``tick`` is called between acquire slices so the worker can keep
    heartbeating while it waits: a futex wait is the one legitimately
    long silent span in the loop, and without the ticks a contended
    gate (workers > cores, neighbors replaying after a crash) reads as
    a hang to the watchdog — whose SIGTERM then starts the wait over
    in a fresh incarnation, sustaining a kill loop.
    """
    if gate is None:
        yield
        return
    deadline = time.monotonic() + GATE_TIMEOUT
    got = gate.acquire(block=False)
    while not got and time.monotonic() < deadline:
        if tick is not None:
            tick()
        got = gate.acquire(timeout=0.05)
    try:
        yield
    finally:
        if got:
            gate.release()

_CKPT_RE = re.compile(r"ck_(\d{10})(_final|_delta)?\.npz$")


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a shard worker needs to boot (picklable, spawn-safe).

    A split successor additionally carries its ancestry: the ordered
    chain of ancestor ingest WALs (``history_wals``), the sealed
    sequence number through which that history runs
    (``history_through``), and the versioned flow map it was born under
    (``shard_map``). On a fresh boot the successor rebuilds its
    substream by replaying the chain filtered to the flows the map
    assigns to ``shard_id`` — bit-identical to an offline shard built
    under the same map, because ancestor WALs are complete, immutable
    records of their substreams and partitioning is per-packet and
    stateless.
    """

    shard_id: int
    config: CaesarConfig
    state_dir: str
    checkpoint_every: int = 4  # chunks between checkpoints; 0 disables
    checkpoint_mode: str = "async"  # "sync" | "async" | "delta"
    checkpoint_level: int = 1  # zlib level; 0 = store-only
    ack_every: int = DEFAULT_ACK_EVERY  # chunks between cumulative acks
    history_wals: tuple[str, ...] = ()  # ancestor ingest WALs, oldest first
    history_through: int = -1  # last seq covered by the history chain
    shard_map: ShardMap | None = None  # the map this worker was born under
    heartbeat_every: float = DEFAULT_HEARTBEAT_EVERY  # seconds; 0 disables
    fault_plan: FaultPlan | None = None  # runtime-level injected faults

    @property
    def wal_path(self) -> Path:
        return Path(self.state_dir) / "ingest.wal"

    def checkpoint_path(
        self, seq: int, *, final: bool = False, delta: bool = False
    ) -> Path:
        suffix = "_final" if final else "_delta" if delta else ""
        return Path(self.state_dir) / f"ck_{seq:010d}{suffix}.npz"


# -- ingest-WAL chunk framing -------------------------------------------------


def append_ingest_chunk(
    wal: WriteAheadLog,
    seq: int,
    packets: npt.NDArray[np.uint64],
    lengths: npt.NDArray[np.int64] | None,
) -> None:
    """Append one input chunk, framed with a header row carrying ``seq``."""
    n = len(packets)
    ids = np.empty(n + 1, dtype=np.uint64)
    values = np.zeros(n + 1, dtype=np.int64)
    reasons = np.zeros(n + 1, dtype=np.uint8)
    ids[0] = seq
    reasons[0] = CHUNK_HEADER_REASON
    ids[1:] = packets
    if lengths is not None:
        values[0] = 1
        values[1:] = lengths
    wal.append_chunk(ids, values, reasons)
    wal.flush()


def decode_ingest_record(
    record: WalRecord,
) -> tuple[int, npt.NDArray[np.uint64], npt.NDArray[np.int64] | None]:
    """Invert :func:`append_ingest_chunk` → ``(seq, packets, lengths)``."""
    if len(record.ids) < 1 or record.reasons[0] != CHUNK_HEADER_REASON:
        raise TraceFormatError(
            f"ingest WAL record seq={record.seq} lacks a chunk header row"
        )
    seq = int(record.ids[0])
    packets = record.ids[1:]
    lengths = record.values[1:] if int(record.values[0]) == 1 else None
    return seq, packets, lengths


# -- injected runtime faults --------------------------------------------------


def _apply_runtime_faults(plan: FaultPlan, spec: WorkerSpec, seq: int) -> None:
    """Execute the plan's runtime-level faults for one chunk.

    Runs *before* the chunk is appended to the ingest WAL, so an
    injected hang or crash never makes the poison chunk durable: it
    stays in the supervisor's retention buffer, is re-fed to each
    restarted incarnation, and can therefore be attributed and
    quarantined. Hang fires once per state dir (sentinel file) so the
    post-kill incarnation sails past; crash counts its firings in a
    state-dir file so ``crash_limit`` survives restarts
    (``crash_limit=0`` means always — a truly poison chunk).
    """
    if plan.slow_apply > 0:
        time.sleep(plan.slow_apply)
    if plan.hang_at_chunk == seq:
        sentinel = Path(spec.state_dir) / ".fault_hang_done"
        if not sentinel.exists():
            sentinel.touch()
            while True:  # hang until the watchdog escalates to SIGKILL
                time.sleep(3600)
    if plan.crash_on_seq == seq:
        counter = Path(spec.state_dir) / ".fault_crash_count"
        crashes = int(counter.read_text()) if counter.exists() else 0
        if plan.crash_limit <= 0 or crashes < plan.crash_limit:
            counter.write_text(str(crashes + 1))
            raise IngestError(
                f"injected crash applying chunk seq {seq} "
                f"(firing {crashes + 1}, limit {plan.crash_limit or 'none'})"
            )


# -- boot / recovery ----------------------------------------------------------


def _saved_checkpoints(state_dir: Path) -> list[tuple[int, bool, Path]]:
    """All checkpoint files, newest last: ``(seq, is_final, path)``."""
    found = []
    for path in state_dir.glob("ck_*.npz"):
        m = _CKPT_RE.search(path.name)
        if m:
            found.append((int(m.group(1)), m.group(2) == "_final", path))
    return sorted(found)


def _replay_history(scheme: Caesar, spec: WorkerSpec) -> int:
    """Rebuild a split successor's substream from its ancestor WALs.

    Replays every chunk of the (sealed, immutable) ancestor chain,
    filtered to the flows ``spec.shard_map`` assigns to this shard.
    Read-only: the donor may still be alive serving queries — never
    truncate or touch its files. Idempotent: a crash mid-replay leaves
    no checkpoint, so the next boot simply replays again.
    """
    if spec.shard_map is None:
        raise TraceFormatError(
            f"shard {spec.shard_id} has history WALs but no shard map"
        )
    replayed = 0
    for wal_path in spec.history_wals:
        path = Path(wal_path)
        if not path.exists() or path.stat().st_size == 0:
            continue
        for record in WriteAheadLog.iter_records(path):
            seq, packets, lengths = decode_ingest_record(record)
            if seq > spec.history_through:
                continue  # beyond the sealed cut (defensive; never post-seal)
            mask = spec.shard_map.owner_of(packets) == spec.shard_id
            if not mask.any():
                continue
            scheme.process(
                packets[mask], lengths[mask] if lengths is not None else None
            )
            replayed += 1
    return replayed


def boot_shard(spec: WorkerSpec) -> tuple[Caesar, int, int]:
    """Build or recover this shard's scheme.

    Returns ``(scheme, last_seq, replayed)``: the live instance, the
    last chunk sequence number durably applied (``-1`` for a fresh
    boot), and how many WAL chunks were replayed. Unreadable (torn)
    checkpoints fall back to the previous one — the WAL bridges the
    extra gap automatically.

    A split successor with no readable checkpoint first replays its
    ancestor WAL chain (filtered by flow ownership), checkpoints that
    rebuilt state at ``history_through``, and only then replays its own
    WAL — so once any own-WAL chunk exists, a checkpoint covering the
    history does too, and recovery never replays history twice.
    """
    state_dir = Path(spec.state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    scheme: Caesar | None = None
    last_seq = -1
    for seq, _final, path in reversed(_saved_checkpoints(state_dir)):
        try:
            # load_checkpoint composes delta chains back to full state;
            # a broken chain raises TraceFormatError like any torn file,
            # so the fallback walk handles both alike.
            scheme = Caesar.resume(load_checkpoint(path))
            last_seq = seq
            break
        except TraceFormatError:
            continue
    replayed = 0
    if scheme is None:
        scheme = Caesar(spec.config)
        if spec.history_wals:
            replayed += _replay_history(scheme, spec)
            last_seq = spec.history_through
            if last_seq >= 0:
                # Durable cut over the rebuilt history: named by the
                # sealed seq so own-WAL replay resumes past it. Skipped
                # at seq -1 (an empty donor) — a "state after chunk 0"
                # checkpoint name must never describe pre-chunk-0 state.
                _save_checkpoint_atomic(
                    scheme,
                    spec.checkpoint_path(last_seq),
                    level=spec.checkpoint_level,
                )
    wal_path = spec.wal_path
    if wal_path.exists() and wal_path.stat().st_size > 0:
        WriteAheadLog.truncate_torn_tail(wal_path)
        for record in WriteAheadLog.iter_records(wal_path):
            seq, packets, lengths = decode_ingest_record(record)
            if seq <= last_seq:
                continue
            scheme.process(packets, lengths)
            last_seq = seq
            replayed += 1
    # Long-lived process: absorb the banks' first-touch page faults
    # here, not inside the first chunks' scatter-adds.
    scheme.counters.prefault()
    _warm_code_paths(state_dir)
    return scheme, last_seq, replayed


def _warm_code_paths(state_dir: Path) -> None:
    """Run the whole chunk pipeline once on a throwaway toy scheme.

    A forked worker inherits the parent's heap copy-on-write; the first
    traversal of each code path then takes a spray of CoW faults (every
    refcount bump writes a page) right inside the first real chunk.
    Exercising process → finalize → checkpoint on a tiny scheme at boot
    moves those one-time faults off the measurement path. Costs a few
    milliseconds once per process lifetime.
    """
    from repro.resilience.checkpoint import Checkpoint

    toy = Caesar(
        CaesarConfig(cache_entries=8, entry_capacity=8, k=2, bank_size=64)
    )
    toy.process(np.arange(64, dtype=np.uint64))
    toy.finalize()
    ckpt = Checkpoint.capture(toy)
    _ = ckpt.digest
    warm_path = state_dir / ".warmup.npz"
    try:
        ckpt.save(warm_path)
    finally:
        warm_path.unlink(missing_ok=True)


def _save_checkpoint_atomic(scheme: Caesar, target: Path, *, level: int = 1) -> str:
    """Checkpoint → tmp file → durable atomic publish; returns the digest.

    The publish (fsync + rename + parent-dir fsync, see
    :func:`~repro.resilience.atomic.atomic_publish`) guarantees a reader
    (the recovering successor process) only ever sees complete
    checkpoint files, even across a power cut; a crash mid-write leaves
    the previous checkpoint intact plus a ``.tmp_`` leftover for the
    sweeps.
    """
    ckpt = scheme.checkpoint()
    tmp = target.parent / f".tmp_{target.name}"
    written = ckpt.save(tmp, level=level)
    atomic_publish(written, target)
    return ckpt.digest


def _prune_checkpoints(state_dir: Path, keep: int = 2) -> None:
    """Drop old checkpoints (bounded disk) without orphaning a delta.

    Keeps everything from the ``keep``-th-newest *full* checkpoint
    onward. Safe for chains by construction: a delta's base is the
    checkpoint file written immediately before it, so any surviving
    delta's chain bottoms out at the greatest full checkpoint at or
    below its own seq — which this policy always retains.
    """
    saved = _saved_checkpoints(state_dir)
    fulls = [seq for seq, _final, path in saved if "_delta" not in path.name]
    if len(fulls) <= keep:
        return
    cutoff = fulls[-keep]
    for seq, _final, path in saved:
        if seq < cutoff:
            path.unlink(missing_ok=True)


# -- the worker loop ----------------------------------------------------------


def _answer_query(
    scheme: Caesar, flow_ids: npt.NDArray[np.uint64], method: str
) -> npt.NDArray[np.float64]:
    """Live query mid-ingest, offline query after finalize."""
    if scheme._finalized:
        return scheme.estimate(flow_ids, method, clip_negative=True)
    return scheme.estimate_online(flow_ids)


def worker_main(
    spec: WorkerSpec,
    transport: "WorkerTransport",
    compute_gate: "Semaphore | None" = None,
) -> None:
    """Entry point of one shard worker process (module-level: picklable
    under any multiprocessing start method). ``transport`` is the
    worker-side endpoint the supervisor's channel built for this
    incarnation — the loop is transport-agnostic. ``compute_gate`` is
    the supervisor's oversubscription guard (see :func:`_compute_slot`),
    or ``None`` when the core budget covers every worker."""
    # Shed any signal handlers inherited from the supervisor process
    # (fork start method): SIGTERM must actually terminate — it is the
    # watchdog's middle escalation stage — and SIGINT is ignored so a
    # terminal Ctrl-C (delivered to the whole foreground process group)
    # interrupts only the supervisor, which then drains gracefully.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    shard = spec.shard_id
    try:
        transport.open()
        scheme, last_seq, replayed = boot_shard(spec)
        wal = WriteAheadLog(spec.wal_path)
        unacked = 0
        # Background checkpointer for the async/delta modes. Created
        # per incarnation, so its first checkpoint is always full and
        # delta chains never cross a crash boundary.
        ckptr: ShardCheckpointer | None = None
        if spec.checkpoint_every and spec.checkpoint_mode != "sync":
            slow = (
                spec.fault_plan.slow_ckpt_write
                if spec.fault_plan is not None
                else 0.0
            )
            ckptr = ShardCheckpointer(
                spec.checkpoint_mode,
                level=spec.checkpoint_level,
                slow_write=slow,
            )

        def flush_ack() -> None:
            nonlocal unacked
            if unacked:
                transport.send(("ack", shard, last_seq))
                unacked = 0

        def report_checkpoints(done: "list[CheckpointDone]") -> None:
            # Completed background writes: prune (the new file is now
            # durable, older ones may drop) and tell the supervisor.
            # All transport.send calls stay on this thread — the writer
            # thread never touches the transport.
            if not done:
                return
            _prune_checkpoints(Path(spec.state_dir))
            for d in done:
                transport.send(("checkpoint", shard, d.seq, d.digest, d.info))

        transport.send(("ready", shard, last_seq, replayed))
        last_heartbeat = time.monotonic()

        def beat() -> None:
            # Heartbeat on the message plane — never the data plane, so
            # the no-fault bit-identity contract is untouched. Called at
            # the loop top (at least every POLL_SECONDS when idle, once
            # per chunk when busy) and between compute-gate acquire
            # slices, which bounds heartbeat jitter even when the gate
            # is contended.
            nonlocal last_heartbeat
            if spec.heartbeat_every <= 0:
                return
            now = time.monotonic()
            if now - last_heartbeat >= spec.heartbeat_every:
                transport.send(("heartbeat", shard, last_seq, now))
                last_heartbeat = now

        while True:
            beat()
            if ckptr is not None:
                report_checkpoints(ckptr.poll())
            # Control first: queries stay responsive however deep the
            # data plane is, and stop wins over queued work.
            while (msg := transport.recv_control()) is not None:
                if msg[0] == "stop":
                    flush_ack()
                    if ckptr is not None:
                        # Finish any in-flight write durably; no point
                        # reporting it — the supervisor is tearing down
                        # and boot discovers the file on disk anyway.
                        ckptr.close(tick=beat)
                    wal.close()
                    transport.close()  # flushes outbound queues first
                    # Everything is durable and flushed; skip interpreter
                    # teardown (GC over the forked heap costs ~10ms per
                    # worker, serialized on small machines).
                    os._exit(0)
                if msg[0] == "query":
                    _kind, qid, flow_ids, method = msg
                    try:
                        est = _answer_query(scheme, flow_ids, method)
                        transport.send(("reply", shard, qid, est, None))
                    except Exception as exc:  # noqa: BLE001 - reported to caller
                        transport.send(("reply", shard, qid, None, repr(exc)))
            item = transport.recv_data(POLL_SECONDS)
            if item is None:
                continue
            if item[0] == "chunk":
                _kind, seq, packets, lengths = item
                if seq <= last_seq:
                    # Duplicate re-feed of an already-durable chunk: ack
                    # cumulatively (again) so the supervisor's retained
                    # copies — this one included — all drop.
                    unacked = 1
                    flush_ack()
                    continue
                if spec.fault_plan is not None and spec.fault_plan.runtime_enabled:
                    # Before the WAL append: an injected hang/crash must
                    # not make the poison chunk durable (see
                    # _apply_runtime_faults).
                    _apply_runtime_faults(spec.fault_plan, spec, seq)
                with _compute_slot(compute_gate, tick=beat):
                    append_ingest_chunk(wal, seq, packets, lengths)
                    scheme.process(packets, lengths)
                last_seq = seq
                unacked += 1
                if unacked >= max(spec.ack_every, 1):
                    flush_ack()
                if spec.checkpoint_every and (seq + 1) % spec.checkpoint_every == 0:
                    if ckptr is not None:
                        # Back-pressure: at most one write in flight.
                        # The wait is the only stall the async path ever
                        # charges to ingest, and it is zero whenever the
                        # previous write finished between checkpoints.
                        done, _stall = ckptr.wait_idle(tick=beat)
                        report_checkpoints(done)
                        with _compute_slot(compute_gate, tick=beat):
                            ckptr.capture(
                                scheme,
                                seq,
                                full=spec.checkpoint_path(seq),
                                delta=spec.checkpoint_path(seq, delta=True),
                            )
                    else:
                        t0 = time.perf_counter()
                        with _compute_slot(compute_gate, tick=beat):
                            digest = _save_checkpoint_atomic(
                                scheme,
                                spec.checkpoint_path(seq),
                                level=spec.checkpoint_level,
                            )
                        stall = time.perf_counter() - t0
                        _prune_checkpoints(Path(spec.state_dir))
                        transport.send(
                            (
                                "checkpoint",
                                shard,
                                seq,
                                digest,
                                {
                                    "kind": "full",
                                    "mode": "sync",
                                    "snapshot_seconds": 0.0,
                                    "write_seconds": stall,
                                    "bytes": spec.checkpoint_path(seq)
                                    .stat()
                                    .st_size,
                                    "delta_fraction": 1.0,
                                    "stall_seconds": stall,
                                },
                            )
                        )
                    flush_ack()  # checkpointed ⊇ durable: retention can drop
            elif item[0] == "seal":
                # Reshard seal: ordered after every chunk sent before it,
                # so the ingest WAL is now a complete record of this
                # shard's substream. Flush acks, cut a durable
                # checkpoint, and report the sealed seq + digest; stay
                # alive answering queries until the supervisor retires
                # this worker at cutover. Idempotent across re-sends
                # (a restart mid-reshard re-seals the same state).
                unacked = 1
                flush_ack()
                if ckptr is not None:
                    # The seal checkpoint must be the newest durable
                    # state, so land the in-flight write first.
                    done, _stall = ckptr.wait_idle(tick=beat)
                    report_checkpoints(done)
                with _compute_slot(compute_gate, tick=beat):
                    digest = _save_checkpoint_atomic(
                        scheme,
                        spec.checkpoint_path(max(last_seq, 0)),
                        level=spec.checkpoint_level,
                    )
                _prune_checkpoints(Path(spec.state_dir))
                transport.send(("sealed", shard, last_seq, digest))
            elif item[0] == "drain":
                flush_ack()
                if ckptr is not None:
                    # Join the writer before the final checkpoint: the
                    # drain contract is "everything durable on return".
                    done, _stall = ckptr.wait_idle(tick=beat)
                    report_checkpoints(done)
                with _compute_slot(compute_gate, tick=beat):
                    scheme.finalize()  # idempotent across drain re-sends
                    digest = _save_checkpoint_atomic(
                        scheme,
                        spec.checkpoint_path(max(last_seq, 0), final=True),
                        level=spec.checkpoint_level,
                    )
                transport.send(
                    (
                        "finalized",
                        shard,
                        digest,
                        str(spec.checkpoint_path(max(last_seq, 0), final=True)),
                        scheme.num_packets,
                    )
                )
    except Exception:  # noqa: BLE001 - crash surface: report, then die
        transport.send(("error", shard, traceback.format_exc()))
        raise
