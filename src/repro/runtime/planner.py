"""Hot-shard detection: when to split, and which shard.

Elastic resharding only pays off when it fires on *sustained* skew —
one deep queue observation is usually a scheduling hiccup, and a split
triggered on it would churn workers for nothing. The
:class:`ReshardPlanner` therefore watches the transport-neutral
data-plane fill fraction (:meth:`~repro.runtime.supervisor.
ShardSupervisor.shard_fills`) and flags a shard only after its fill
stays at or above the threshold for ``sustain`` *consecutive*
observations; a cooldown after each decision keeps back-to-back splits
from cascading before the first one's successors even warm up.

Pure decision logic — no I/O, no clock ownership (the caller feeds it
observations at whatever cadence it likes), so it is trivially unit
testable and the runtime stays in charge of *acting* on decisions.
"""

from __future__ import annotations

from repro.errors import ConfigError

__all__ = ["DEFAULT_SUSTAIN", "ReshardPlanner"]

#: Consecutive at-threshold observations before a shard is flagged hot.
DEFAULT_SUSTAIN = 3


class ReshardPlanner:
    """Flags the hottest sustained-over-threshold shard for splitting.

    ``observe(fills)`` consumes one snapshot of per-shard fill
    fractions and returns the shard id to split, or ``None``. At most
    one shard is flagged per call (splits are serialized by the
    supervisor anyway); ties break toward the fullest shard, then the
    lowest id (deterministic).
    """

    def __init__(
        self,
        *,
        threshold: float,
        sustain: int = DEFAULT_SUSTAIN,
        cooldown: int = 0,
        max_shards: int | None = None,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ConfigError(
                f"threshold must be in (0, 1], got {threshold}"
            )
        if sustain < 1:
            raise ConfigError(f"sustain must be >= 1, got {sustain}")
        if cooldown < 0:
            raise ConfigError(f"cooldown must be >= 0, got {cooldown}")
        if max_shards is not None and max_shards < 1:
            raise ConfigError(f"max_shards must be >= 1, got {max_shards}")
        self.threshold = threshold
        self.sustain = sustain
        self.cooldown = cooldown
        self.max_shards = max_shards
        self._streaks: dict[int, int] = {}
        self._cooldown_left = 0

    def observe(self, fills: dict[int, float]) -> int | None:
        """Consume one fill snapshot; return the shard to split, or
        ``None``. ``fills`` maps shard id → fill fraction; shards absent
        from a snapshot (transport can't tell) have their streaks reset
        — a hot streak must be *observed* end to end."""
        num_shards = len(fills)
        for shard in list(self._streaks):
            if fills.get(shard, 0.0) < self.threshold:
                del self._streaks[shard]
        for shard, fill in fills.items():
            if fill >= self.threshold:
                self._streaks[shard] = self._streaks.get(shard, 0) + 1
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return None
        if self.max_shards is not None and num_shards >= self.max_shards:
            return None
        hot = [s for s, n in self._streaks.items() if n >= self.sustain]
        if not hot:
            return None
        donor = max(hot, key=lambda s: (fills[s], -s))
        self._streaks.clear()  # decided: everyone re-earns a streak
        self._cooldown_left = self.cooldown
        return donor
