"""The pluggable transport layer between supervisor and shard workers.

The runtime's data plane used to be hard-coded to bounded
``multiprocessing`` queues; every chunk was pickled, piped, and
unpickled, which made transport cost swamp shard parallelism
(BENCH_micro.json's backwards worker scaling). This module extracts
what the supervisor and worker actually need from the plumbing into a
small protocol, so the queue machinery becomes one implementation
(:class:`~repro.runtime.queues.QueueTransport`) and a zero-copy
shared-memory ring (:class:`~repro.runtime.shm.SharedMemoryRingTransport`)
becomes another — with supervision, retention, crash recovery, and
backpressure written once, against the protocol.

Three roles:

- :class:`Transport` — the picklable *factory* carrying transport
  configuration (queue depth, ring bytes). One per runtime; makes one
  :class:`ShardChannel` per shard.
- :class:`ShardChannel` — the supervisor-side endpoint of one shard's
  link. Lives for the whole runtime; each worker (re)spawn calls
  :meth:`~ShardChannel.open` to build fresh underlying resources and
  hand back the worker's :class:`WorkerTransport`. A blocked send that
  straddles a restart retries against the fresh resources automatically
  (it re-reads the channel's state every stall slice).
- :class:`WorkerTransport` — the worker-process side: receive data
  (chunks + the in-band drain marker), poll the control plane (queries,
  stop), send acks/checkpoints/replies back.

The planes are deliberately split:

- **data plane** (``send_chunk`` → ``recv_data``): ordered, bounded,
  policy-governed; carries chunk payloads and the in-band ``drain``
  and reshard ``seal`` markers (in-band so they are ordered after
  every chunk);
- **control plane** (``send_control`` → ``recv_control``): small,
  unordered relative to data; carries queries and ``stop`` so they
  never wait behind queued chunks;
- **message plane** (worker ``send`` → supervisor ``poll``): acks
  (cumulative, batched), checkpoint digests, query replies, errors.

Backpressure (``block`` / ``shed`` / ``error``) is implemented here,
once, in :meth:`ShardChannel.send_chunk`; concrete transports only
supply :meth:`ShardChannel._offer_chunk` ("take this chunk now or
within one stall slice").
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError, IngestError
from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    import multiprocessing.context

#: Accepted values for the runtime's ``backpressure=`` option.
BACKPRESSURE_POLICIES = ("block", "shed", "error")

#: Accepted values for the runtime's ``transport=`` option.
TRANSPORTS = ("queue", "shm")

#: The runtime's default transport (the zero-copy data plane).
DEFAULT_TRANSPORT = "shm"

#: Seconds per blocked-send slice; between slices the stall hook runs
#: (the supervisor uses it to keep detecting dead workers while blocked).
STALL_SLICE_SECONDS = 0.05

#: How many processed chunks a worker may accumulate before it must
#: flush a cumulative ack (it also flushes on checkpoint, drain, stop,
#: and duplicate re-feeds).
DEFAULT_ACK_EVERY = 8


class WorkerTransport(ABC):
    """Worker-process side of one shard's link (picklable, spawn-safe).

    Built by :meth:`ShardChannel.open` in the supervisor process and
    shipped to the worker as a ``Process`` argument; the worker calls
    :meth:`open` once before use to attach process-local resources.
    """

    @abstractmethod
    def open(self) -> None:
        """Attach in the worker process (e.g. map the shared ring)."""

    @abstractmethod
    def recv_data(
        self, timeout: float
    ) -> tuple | None:
        """Next data-plane message — ``("chunk", seq, packets, lengths)``
        or ``("drain",)`` — or ``None`` after ``timeout`` seconds."""

    @abstractmethod
    def recv_control(self) -> tuple | None:
        """Next control-plane message (``("query", ...)`` / ``("stop",)``)
        without blocking, or ``None``."""

    @abstractmethod
    def send(self, message: tuple) -> None:
        """Ship one message (ack/checkpoint/reply/...) to the supervisor."""

    @abstractmethod
    def close(self) -> None:
        """Detach process-local resources (never destroys shared state —
        lifecycle ownership stays with the supervisor's channel)."""


class ShardChannel(ABC):
    """Supervisor-side endpoint of one shard's link.

    One instance per shard per runtime. The *underlying* resources
    (queues, shared-memory segments) are per-worker-incarnation:
    :meth:`open` builds fresh ones for each (re)spawn, :meth:`abandon`
    discards the current set (a process killed mid-transfer can leave
    them unusable), :meth:`close` is the final cleanup. Sends in
    progress across a restart re-read the channel's state every stall
    slice, so they transparently retry against the replacement.
    """

    def __init__(
        self,
        shard_id: int,
        *,
        policy: str = "block",
        registry: MetricsRegistry,
        stall_hook: Callable[[], None] | None = None,
    ) -> None:
        if policy not in BACKPRESSURE_POLICIES:
            raise ConfigError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, got {policy!r}"
            )
        self.shard_id = shard_id
        self.policy = policy
        self.metrics = registry
        self._stall_hook = stall_hook
        self.incarnation = 0

    # -- lifecycle (per worker incarnation) ---------------------------------

    @abstractmethod
    def open(self) -> WorkerTransport:
        """Build fresh underlying resources; return the worker's end."""

    @abstractmethod
    def abandon(self) -> None:
        """Discard the current resources (crash path; no reuse)."""

    @abstractmethod
    def close(self) -> None:
        """Final teardown — release every OS resource this channel owns
        (for shared memory: unlink the segment; nothing may leak)."""

    def sweep_orphans(self) -> int:
        """Remove leaked per-incarnation OS resources this channel's
        past incarnations may have left behind (e.g. shm segments
        orphaned by a crash racing ``abandon``). Never touches the live
        incarnation or another channel's resources. Returns how many
        were swept; the default (resource-less transports) is none."""
        return 0

    # -- data plane ---------------------------------------------------------

    @abstractmethod
    def _offer_chunk(
        self,
        seq: int,
        packets: npt.NDArray[np.uint64],
        lengths: npt.NDArray[np.int64] | None,
        wait: float,
    ) -> bool:
        """Try to hand one chunk to the transport, waiting at most
        ``wait`` seconds for capacity; ``False`` means "full"."""

    @abstractmethod
    def send_drain(self, timeout: float = 60.0) -> None:
        """Append the drain marker *in-band* after all sent chunks;
        blocks for capacity regardless of policy (never shed)."""

    @abstractmethod
    def send_seal(self, timeout: float = 60.0) -> None:
        """Append the reshard *seal* marker in-band after all sent
        chunks (never shed). The worker answers it by flushing acks,
        checkpointing, and reporting ``("sealed", shard, last_seq,
        digest)`` — the point at which its ingest WAL is a complete,
        immutable record of the shard's substream, ready for split
        successors to replay."""

    def send_chunk(
        self,
        seq: int,
        packets: npt.NDArray[np.uint64],
        lengths: npt.NDArray[np.int64] | None,
    ) -> bool:
        """Send one chunk under the configured backpressure policy.

        Returns ``True`` if accepted, ``False`` if the shed policy
        dropped it; raises :class:`IngestError` under ``"error"``.
        """
        if self.policy == "block":
            while not self._offer_chunk(seq, packets, lengths, STALL_SLICE_SECONDS):
                self._record_stall(STALL_SLICE_SECONDS)
            self._observe_depth()
            return True
        if self._offer_chunk(seq, packets, lengths, 0.0):
            self._observe_depth()
            return True
        if self.policy == "error":
            raise IngestError(
                f"shard {self.shard_id} ingest channel is full "
                "(backpressure policy 'error')"
            )
        self.metrics.counter("runtime.backpressure.shed_chunks").inc()
        self.metrics.counter("runtime.backpressure.shed_packets").inc(len(packets))
        return False

    def send_chunk_required(
        self,
        seq: int,
        packets: npt.NDArray[np.uint64],
        lengths: npt.NDArray[np.int64] | None,
        timeout: float = 60.0,
        abort: "Callable[[], bool] | None" = None,
    ) -> bool:
        """Send one chunk, blocking regardless of the data policy —
        the restart re-feed path, where a shed would lose a chunk the
        contract promised to deliver. ``abort`` (when given) is polled
        while stalled; returning True gives up and returns ``False``
        instead of blocking out the timeout — the re-feed target died
        again (e.g. a poison chunk re-crashed it) and the caller keeps
        the chunk retained for the next incarnation."""
        deadline = time.monotonic() + timeout
        while not self._offer_chunk(seq, packets, lengths, STALL_SLICE_SECONDS):
            self._record_stall(STALL_SLICE_SECONDS, count=False)
            if abort is not None and abort():
                return False
            if time.monotonic() > deadline:
                raise IngestError(
                    f"shard {self.shard_id} channel stayed full for {timeout:.0f}s"
                )
        return True

    # -- control plane ------------------------------------------------------

    @abstractmethod
    def send_control(self, message: tuple) -> None:
        """Ship one control message (query / stop); must not block on
        data backpressure."""

    def nudge(self) -> None:
        """Re-wake a possibly-sleeping worker (best effort, idempotent).

        Control messages may travel asynchronously (``mp.Queue`` hands
        them to a feeder thread), so a wake-up signal sent alongside one
        can land before the message does and the worker goes back to
        sleep for a full poll interval. Callers waiting on a worker's
        reaction (e.g. join-after-stop) call this periodically; the
        default is a no-op for transports whose control plane needs no
        separate wake-up."""
        return None

    # -- message plane (worker -> supervisor) -------------------------------

    @abstractmethod
    def poll(self) -> list[tuple]:
        """Drain all pending worker messages without blocking."""

    @abstractmethod
    def recv(self, timeout: float) -> tuple | None:
        """One worker message, waiting at most ``timeout`` seconds."""

    # -- observability ------------------------------------------------------

    def data_depth(self) -> int | None:
        """How much data is in flight (transport-specific unit), or
        ``None`` when the transport cannot tell."""
        return None

    def data_fill(self) -> float | None:
        """Data-plane occupancy as a fraction of capacity in ``[0, 1]``
        — the transport-neutral hot-shard signal the
        :class:`~repro.runtime.planner.ReshardPlanner` watches — or
        ``None`` when the transport cannot tell."""
        return None

    def _observe_depth(self) -> None:
        depth = self.data_depth()
        if depth is not None:
            self.metrics.gauge(f"runtime.shard{self.shard_id}.queue_depth").set(depth)

    def _record_stall(self, slice_seconds: float, *, count: bool = True) -> None:
        if count:
            self.metrics.counter("runtime.backpressure.stalls").inc()
            stalled = self.metrics.gauge("runtime.backpressure.stall_seconds")
            stalled.set(stalled.value + slice_seconds)
        if self._stall_hook is not None:
            self._stall_hook()


class Transport(ABC):
    """Factory + configuration for one transport flavor.

    Carries only picklable configuration; the supervisor calls
    :meth:`channel` once per shard at startup.
    """

    #: Short name, one of :data:`TRANSPORTS`.
    name: str

    @abstractmethod
    def channel(
        self,
        shard_id: int,
        *,
        ctx: "multiprocessing.context.BaseContext",
        policy: str,
        registry: MetricsRegistry,
        stall_hook: Callable[[], None] | None = None,
    ) -> ShardChannel:
        """Build the supervisor-side channel for one shard."""


def resolve_transport(
    transport: "str | Transport",
    *,
    queue_depth: int | None = None,
    ring_bytes: int | None = None,
) -> Transport:
    """Normalize the user-facing ``transport=`` option to an instance.

    Strings pick a built-in flavor (configured from ``queue_depth`` /
    ``ring_bytes``); a ready-made :class:`Transport` instance passes
    through (its own configuration wins, the kwargs are ignored).
    """
    if isinstance(transport, Transport):
        return transport
    if transport == "queue":
        from repro.runtime.queues import DEFAULT_QUEUE_DEPTH, QueueTransport

        return QueueTransport(
            queue_depth=DEFAULT_QUEUE_DEPTH if queue_depth is None else queue_depth
        )
    if transport == "shm":
        from repro.runtime.shm import DEFAULT_RING_BYTES, SharedMemoryRingTransport

        return SharedMemoryRingTransport(
            ring_bytes=DEFAULT_RING_BYTES if ring_bytes is None else ring_bytes
        )
    raise ConfigError(
        f"transport must be one of {TRANSPORTS} or a Transport instance, "
        f"got {transport!r}"
    )
