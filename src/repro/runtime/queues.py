"""The bounded-queue transport: pickled chunks over ``mp.Queue``.

This is the runtime's original data plane, refactored to conform to
the :mod:`~repro.runtime.transport` protocol. Each shard gets three
``multiprocessing`` queues — a bounded data inbox (*bounded* is the
point: an unbounded queue turns a slow shard into unbounded
producer-side memory growth), an unbounded control channel, and an
unbounded outbox for worker messages. Every payload is pickled through
a pipe, which is what makes this transport portable and debuggable —
and what the shared-memory ring (:mod:`~repro.runtime.shm`) exists to
avoid on the hot path.

Restart semantics: a process killed mid-``put`` can leave a queue's
pipe unusable, so :meth:`QueueShardChannel.open` builds three fresh
queues per worker incarnation and :meth:`~QueueShardChannel.abandon`
discards the old ones; a blocked send straddling the swap retries
against the replacements on its next stall slice.
"""

from __future__ import annotations

import queue as queue_mod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np
import numpy.typing as npt

from repro.obs.registry import MetricsRegistry
from repro.runtime.transport import (
    BACKPRESSURE_POLICIES,
    STALL_SLICE_SECONDS,
    ShardChannel,
    Transport,
    WorkerTransport,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    import multiprocessing.context
    from multiprocessing.queues import Queue

__all__ = [
    "BACKPRESSURE_POLICIES",
    "DEFAULT_QUEUE_DEPTH",
    "QueueShardChannel",
    "QueueTransport",
    "QueueWorkerTransport",
    "STALL_SLICE_SECONDS",
]

#: Default bound of each shard's inbox (chunks).
DEFAULT_QUEUE_DEPTH = 8


@dataclass
class QueueWorkerTransport(WorkerTransport):
    """Worker end: three plain queues (picklable as ``Process`` args)."""

    inbox: "Queue"
    control: "Queue"
    outbox: "Queue"

    def open(self) -> None:  # queues need no process-local attach
        return None

    def recv_data(self, timeout: float) -> tuple | None:
        try:
            return self.inbox.get(timeout=timeout)
        except queue_mod.Empty:
            return None

    def recv_control(self) -> tuple | None:
        try:
            return self.control.get_nowait()
        except queue_mod.Empty:
            return None

    def send(self, message: tuple) -> None:
        self.outbox.put(message)

    def close(self) -> None:  # teardown is the supervisor's job
        return None


class QueueShardChannel(ShardChannel):
    """Supervisor end of one shard's queue-based link."""

    def __init__(
        self,
        shard_id: int,
        *,
        queue_depth: int,
        ctx: "multiprocessing.context.BaseContext",
        policy: str = "block",
        registry: MetricsRegistry,
        stall_hook: Callable[[], None] | None = None,
    ) -> None:
        super().__init__(
            shard_id, policy=policy, registry=registry, stall_hook=stall_hook
        )
        self.queue_depth = queue_depth
        self._ctx = ctx
        self._inbox: "Queue | None" = None
        self._control: "Queue | None" = None
        self._outbox: "Queue | None" = None

    # -- lifecycle ----------------------------------------------------------

    def open(self) -> QueueWorkerTransport:
        self.incarnation += 1
        self._inbox = self._ctx.Queue(maxsize=self.queue_depth)
        self._control = self._ctx.Queue()
        self._outbox = self._ctx.Queue()
        return QueueWorkerTransport(self._inbox, self._control, self._outbox)

    def abandon(self) -> None:
        for q in (self._inbox, self._control, self._outbox):
            if q is not None:
                q.close()
                q.cancel_join_thread()
        self._inbox = self._control = self._outbox = None

    def close(self) -> None:
        self.abandon()

    # -- data plane ---------------------------------------------------------

    def _offer_chunk(
        self,
        seq: int,
        packets: npt.NDArray[np.uint64],
        lengths: npt.NDArray[np.int64] | None,
        wait: float,
    ) -> bool:
        try:
            if wait > 0:
                self._inbox.put(("chunk", seq, packets, lengths), timeout=wait)
            else:
                self._inbox.put_nowait(("chunk", seq, packets, lengths))
            return True
        except queue_mod.Full:
            return False

    def _send_marker(self, marker: tuple, timeout: float) -> None:
        # In-band on the inbox so it is ordered after every sent chunk.
        import time

        deadline = time.monotonic() + timeout
        while True:
            try:
                self._inbox.put(marker, timeout=STALL_SLICE_SECONDS)
                return
            except queue_mod.Full:
                self._record_stall(STALL_SLICE_SECONDS, count=False)
                if time.monotonic() > deadline:
                    from repro.errors import IngestError

                    raise IngestError(
                        f"shard {self.shard_id} queue stayed full for {timeout:.0f}s"
                    ) from None

    def send_drain(self, timeout: float = 60.0) -> None:
        self._send_marker(("drain",), timeout)

    def send_seal(self, timeout: float = 60.0) -> None:
        self._send_marker(("seal",), timeout)

    # -- control plane ------------------------------------------------------

    def send_control(self, message: tuple) -> None:
        self._control.put(message)

    # -- message plane ------------------------------------------------------

    def poll(self) -> list[tuple]:
        out: list[tuple] = []
        if self._outbox is None:
            return out
        while True:
            try:
                out.append(self._outbox.get_nowait())
            except (queue_mod.Empty, OSError, ValueError):
                return out

    def recv(self, timeout: float) -> tuple | None:
        try:
            return self._outbox.get(timeout=timeout)
        except queue_mod.Empty:
            return None

    # -- observability ------------------------------------------------------

    def data_depth(self) -> int | None:
        if self._inbox is None:
            return None
        try:
            return self._inbox.qsize()
        except NotImplementedError:  # pragma: no cover - macOS qsize
            return None

    def data_fill(self) -> float | None:
        depth = self.data_depth()
        return None if depth is None else min(depth / self.queue_depth, 1.0)


@dataclass(frozen=True)
class QueueTransport(Transport):
    """The portable default-depth bounded-queue transport."""

    queue_depth: int = DEFAULT_QUEUE_DEPTH
    name: str = field(default="queue", init=False)

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            from repro.errors import IngestError

            raise IngestError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )

    def channel(
        self,
        shard_id: int,
        *,
        ctx: "multiprocessing.context.BaseContext",
        policy: str,
        registry: MetricsRegistry,
        stall_hook: Callable[[], None] | None = None,
    ) -> QueueShardChannel:
        return QueueShardChannel(
            shard_id,
            queue_depth=self.queue_depth,
            ctx=ctx,
            policy=policy,
            registry=registry,
            stall_hook=stall_hook,
        )
