"""Bounded shard queues and backpressure policies.

Each shard worker is fed through one bounded multiprocessing queue;
*bounded* is the point — an unbounded queue turns a slow shard into
unbounded producer-side memory growth, which is exactly the failure a
streaming runtime exists to prevent. When a queue is full the producer
applies a :data:`BACKPRESSURE_POLICIES` policy:

- ``"block"`` (default) — wait for space in short slices, invoking a
  caller-supplied stall hook between slices (the supervisor uses the
  hook to keep detecting/restarting dead workers while blocked, so a
  crashed consumer can never wedge the producer). Lossless: the only
  policy under which the bit-identity contract holds.
- ``"shed"`` — drop the chunk and count it (load-shedding edge
  deployments prefer bounded staleness over backpressure).
- ``"error"`` — raise :class:`~repro.errors.IngestError` immediately
  (callers that own their own retry/shed logic).

Stall counts, stall seconds, shed chunks/packets, and a per-shard
queue-depth gauge are recorded in the runtime's
:class:`~repro.obs.registry.MetricsRegistry`.
"""

from __future__ import annotations

import queue as queue_mod
import time
from typing import Callable

from repro.errors import ConfigError, IngestError
from repro.obs.registry import MetricsRegistry

#: Accepted values for the runtime's ``backpressure=`` option.
BACKPRESSURE_POLICIES = ("block", "shed", "error")

#: Seconds per blocked-put slice; between slices the stall hook runs.
STALL_SLICE_SECONDS = 0.05


class ShardQueueSender:
    """Producer-side wrapper applying one backpressure policy.

    The underlying queue is *replaceable*: after a worker restart the
    supervisor swaps in the fresh process's queue via
    :meth:`rebind`, and an in-progress blocked put retries against the
    replacement on its next slice.
    """

    def __init__(
        self,
        shard_id: int,
        q: "queue_mod.Queue",
        *,
        policy: str = "block",
        registry: MetricsRegistry,
        stall_hook: Callable[[], None] | None = None,
    ) -> None:
        if policy not in BACKPRESSURE_POLICIES:
            raise ConfigError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, got {policy!r}"
            )
        self.shard_id = shard_id
        self.queue = q
        self.policy = policy
        self.metrics = registry
        self._stall_hook = stall_hook

    def rebind(self, q: "queue_mod.Queue") -> None:
        """Point this sender at a fresh queue (worker restart)."""
        self.queue = q

    def _observe_depth(self) -> None:
        try:
            depth = self.queue.qsize()
        except NotImplementedError:  # pragma: no cover - macOS qsize
            return
        self.metrics.gauge(f"runtime.shard{self.shard_id}.queue_depth").set(depth)

    def send(self, message: tuple, *, num_packets: int = 0) -> bool:
        """Enqueue one message under the configured policy.

        Returns ``True`` if the message was enqueued, ``False`` if the
        shed policy dropped it. ``num_packets`` sizes the shed
        accounting for chunk messages.
        """
        if self.policy == "block":
            while True:
                try:
                    self.queue.put(message, timeout=STALL_SLICE_SECONDS)
                    self._observe_depth()
                    return True
                except queue_mod.Full:
                    self.metrics.counter("runtime.backpressure.stalls").inc()
                    stalled = self.metrics.gauge("runtime.backpressure.stall_seconds")
                    stalled.set(stalled.value + STALL_SLICE_SECONDS)
                    if self._stall_hook is not None:
                        self._stall_hook()
        try:
            self.queue.put_nowait(message)
            self._observe_depth()
            return True
        except queue_mod.Full:
            if self.policy == "error":
                raise IngestError(
                    f"shard {self.shard_id} ingest queue is full "
                    "(backpressure policy 'error')"
                ) from None
            self.metrics.counter("runtime.backpressure.shed_chunks").inc()
            self.metrics.counter("runtime.backpressure.shed_packets").inc(num_packets)
            return False

    def send_blocking(self, message: tuple, timeout: float = 60.0) -> None:
        """Enqueue a control-flow message (drain sentinel) regardless of
        the data backpressure policy — these must never be shed."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                self.queue.put(message, timeout=STALL_SLICE_SECONDS)
                return
            except queue_mod.Full:
                if self._stall_hook is not None:
                    self._stall_hook()
                if time.monotonic() > deadline:
                    raise IngestError(
                        f"shard {self.shard_id} queue stayed full for {timeout:.0f}s"
                    ) from None
