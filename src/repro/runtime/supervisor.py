"""Shard-worker supervision: spawn, feed, monitor, restart, re-feed.

The supervisor owns the runtime's process tree. Per shard it keeps a
:class:`WorkerHandle` — the live process, its bounded inbox, its control
and outbox channels, and a *retention buffer* of every chunk sent but
not yet acknowledged. The durability split is exact:

- chunks the worker **acked** are in the worker's ingest WAL on disk —
  the supervisor drops its copy, and crash recovery replays them from
  the WAL (after restoring the newest checkpoint);
- chunks **not yet acked** (queued, in flight, or lost with a dying
  process) stay retained here and are re-fed, in sequence order, to the
  restarted worker — which skips any it already made durable.

Either way each chunk reaches the shard's scheme exactly once, in
order, so the recovered shard is bit-identical to one that never
crashed (tests/test_runtime.py kills workers with SIGKILL to prove it).

Worker death is detected by liveness polls woven into every wait loop —
including blocked backpressure puts, so a crashed consumer can never
wedge the producer. Each worker gets fresh queues on restart (a process
killed mid-``put`` can leave a queue's pipe unusable; abandoning the
old queues sidesteps that entirely).
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import time
from dataclasses import dataclass, field

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError, IngestError
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.runtime.queues import BACKPRESSURE_POLICIES, ShardQueueSender
from repro.runtime.worker import WorkerSpec, worker_main

#: Default bound of each shard's inbox (chunks).
DEFAULT_QUEUE_DEPTH = 8

#: Seconds a worker gets to boot/recover before the supervisor gives up.
READY_TIMEOUT = 60.0


@dataclass
class WorkerHandle:
    """Supervisor-side state of one shard worker."""

    spec: WorkerSpec
    process: "mp.process.BaseProcess | None" = None
    inbox: "mp.queues.Queue | None" = None
    control: "mp.queues.Queue | None" = None
    outbox: "mp.queues.Queue | None" = None
    sender: ShardQueueSender | None = None
    next_seq: int = 0  # next chunk sequence number to assign
    retained: dict[int, tuple] = field(default_factory=dict)  # seq -> (pkts, lens)
    restarts: int = 0
    last_checkpoint_seq: int = -1
    last_checkpoint_digest: str | None = None
    finalized: tuple | None = None  # (digest, ck_path, num_packets)
    last_error: str | None = None
    pending_queries: dict[int, tuple] = field(default_factory=dict)
    replies: dict[int, tuple] = field(default_factory=dict)
    drain_sent: bool = False


class ShardSupervisor:
    """Spawns and babysits one worker process per shard."""

    def __init__(
        self,
        specs: list[WorkerSpec],
        *,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        backpressure: str = "block",
        registry: MetricsRegistry | None = None,
        max_restarts: int = 3,
        start_method: str | None = None,
    ) -> None:
        if queue_depth < 1:
            raise IngestError(f"queue_depth must be >= 1, got {queue_depth}")
        if backpressure not in BACKPRESSURE_POLICIES:
            raise ConfigError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
                f"got {backpressure!r}"
            )
        self.metrics = resolve_registry(registry)
        self.backpressure = backpressure
        self.queue_depth = queue_depth
        self.max_restarts = max_restarts
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(start_method)
        self.handles = [WorkerHandle(spec=spec) for spec in specs]
        self._pumping = False
        self._stopped = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        for handle in self.handles:
            self._spawn(handle)
            self._wait_ready(handle)

    def _spawn(self, handle: WorkerHandle) -> None:
        handle.inbox = self._ctx.Queue(maxsize=self.queue_depth)
        handle.control = self._ctx.Queue()
        handle.outbox = self._ctx.Queue()
        if handle.sender is None:
            handle.sender = ShardQueueSender(
                handle.spec.shard_id,
                handle.inbox,
                policy=self.backpressure,
                registry=self.metrics,
                stall_hook=self.pump,
            )
        else:
            handle.sender.rebind(handle.inbox)
        handle.process = self._ctx.Process(
            target=worker_main,
            args=(handle.spec, handle.inbox, handle.control, handle.outbox),
            daemon=True,
            name=f"repro-shard-{handle.spec.shard_id}",
        )
        handle.process.start()

    def _wait_ready(self, handle: WorkerHandle) -> int:
        """Block until the (re)started worker reports its recovery point."""
        deadline = time.monotonic() + READY_TIMEOUT
        while True:
            try:
                msg = handle.outbox.get(timeout=0.05)
            except queue_mod.Empty:
                if not handle.process.is_alive():
                    raise IngestError(
                        f"shard {handle.spec.shard_id} died during boot"
                        + (f":\n{handle.last_error}" if handle.last_error else "")
                    )
                if time.monotonic() > deadline:
                    raise IngestError(
                        f"shard {handle.spec.shard_id} did not become ready "
                        f"within {READY_TIMEOUT:.0f}s"
                    )
                continue
            if msg[0] == "ready":
                return int(msg[2])  # last durable chunk seq
            if msg[0] == "error":
                handle.last_error = msg[2]
            # anything else (stale ack/reply) is absorbed by _handle_msg
            else:
                self._handle_msg(handle, msg)

    def stop(self) -> None:
        """Graceful shutdown: stop every worker, join, hard-kill stragglers."""
        self._stopped = True
        for handle in self.handles:
            if handle.process is None:
                continue
            if handle.process.is_alive() and handle.control is not None:
                try:
                    handle.control.put_nowait(("stop",))
                except (queue_mod.Full, ValueError):  # pragma: no cover
                    pass
        for handle in self.handles:
            if handle.process is None:
                continue
            handle.process.join(timeout=5.0)
            if handle.process.is_alive():  # pragma: no cover - hard fallback
                handle.process.kill()
                handle.process.join(timeout=5.0)
            for q in (handle.inbox, handle.control, handle.outbox):
                if q is not None:
                    q.close()
                    q.cancel_join_thread()

    # -- message pump and crash recovery ------------------------------------

    def _handle_msg(self, handle: WorkerHandle, msg: tuple) -> None:
        kind = msg[0]
        if kind == "ack":
            handle.retained.pop(int(msg[2]), None)
        elif kind == "checkpoint":
            handle.last_checkpoint_seq = int(msg[2])
            handle.last_checkpoint_digest = msg[3]
        elif kind == "finalized":
            handle.finalized = (msg[2], msg[3], int(msg[4]))
        elif kind == "reply":
            _kind, _shard, qid, est, err = msg
            if qid in handle.pending_queries:
                handle.pending_queries.pop(qid)
                handle.replies[qid] = (est, err)
        elif kind == "error":
            handle.last_error = msg[2]

    def pump(self) -> None:
        """Drain worker outboxes; detect and recover dead workers.

        Called from every wait loop (including blocked backpressure
        puts). Re-entrant calls — a restart's re-feed blocking on a
        *different* shard's full queue — collapse to a no-op.
        """
        if self._pumping or self._stopped:
            return
        self._pumping = True
        try:
            for handle in self.handles:
                if handle.outbox is not None:
                    while True:
                        try:
                            msg = handle.outbox.get_nowait()
                        except (queue_mod.Empty, OSError, ValueError):
                            break
                        self._handle_msg(handle, msg)
                if handle.process is not None and not handle.process.is_alive():
                    self._restart(handle)
        finally:
            self._pumping = False

    def _restart(self, handle: WorkerHandle) -> None:
        """Restart a dead worker and re-feed everything it lost."""
        shard = handle.spec.shard_id
        if handle.restarts >= self.max_restarts:
            raise IngestError(
                f"shard {shard} exceeded max_restarts={self.max_restarts}"
                + (f"; last error:\n{handle.last_error}" if handle.last_error else "")
            )
        handle.process.join(timeout=1.0)
        for q in (handle.inbox, handle.control, handle.outbox):
            # A process killed mid-put can leave a queue unusable —
            # abandon all three and start fresh.
            if q is not None:
                q.close()
                q.cancel_join_thread()
        handle.restarts += 1
        self.metrics.counter("runtime.restarts").inc()
        self.metrics.counter(f"runtime.shard{shard}.restarts").inc()
        self._spawn(handle)
        recovered_through = self._wait_ready(handle)
        refed = 0
        for seq in sorted(handle.retained):
            if seq <= recovered_through:
                # Durable in the worker's WAL before the crash: the boot
                # replay already applied it.
                handle.retained.pop(seq)
                continue
            pkts, lens = handle.retained[seq]
            handle.sender.send_blocking(("chunk", seq, pkts, lens))
            refed += 1
        self.metrics.counter("runtime.refed_chunks").inc(refed)
        for query_msg in list(handle.pending_queries.values()):
            handle.control.put(query_msg)
        if handle.drain_sent:
            handle.sender.send_blocking(("drain",))

    # -- feeding ------------------------------------------------------------

    def send_chunk(
        self,
        shard: int,
        packets: npt.NDArray[np.uint64],
        lengths: npt.NDArray[np.int64] | None,
    ) -> bool:
        """Enqueue one subchunk on its shard (backpressure applies).

        Returns ``False`` when the shed policy dropped it.
        """
        handle = self.handles[shard]
        seq = handle.next_seq
        message = ("chunk", seq, packets, lengths)
        # Retain *before* sending: a blocked put pumps the message loop,
        # which may deliver this very chunk's ack mid-send — the ack must
        # find the retention entry to drop it.
        handle.retained[seq] = (packets, lengths)
        accepted = handle.sender.send(message, num_packets=len(packets))
        if accepted:
            handle.next_seq = seq + 1
            self.metrics.counter("runtime.chunks_sent").inc()
            self.metrics.counter("runtime.packets_sent").inc(len(packets))
        else:
            handle.retained.pop(seq, None)
        self.pump()
        return accepted

    def send_drain(self) -> None:
        for handle in self.handles:
            handle.drain_sent = True
            handle.sender.send_blocking(("drain",))

    def wait_finalized(self, timeout: float = 300.0) -> None:
        deadline = time.monotonic() + timeout
        while any(h.finalized is None for h in self.handles):
            self.pump()
            if time.monotonic() > deadline:
                missing = [
                    h.spec.shard_id for h in self.handles if h.finalized is None
                ]
                raise IngestError(f"shards {missing} did not finalize in {timeout:.0f}s")
            time.sleep(0.01)

    # -- queries ------------------------------------------------------------

    def ask(
        self,
        shard: int,
        qid: int,
        flow_ids: npt.NDArray[np.uint64],
        method: str,
    ) -> None:
        handle = self.handles[shard]
        message = ("query", qid, flow_ids, method)
        handle.pending_queries[qid] = message
        handle.control.put(message)
        self.metrics.counter("runtime.queries").inc()

    def collect_reply(
        self, shard: int, qid: int, timeout: float = 60.0
    ) -> npt.NDArray[np.float64]:
        handle = self.handles[shard]
        deadline = time.monotonic() + timeout
        while qid not in handle.replies:
            self.pump()
            if time.monotonic() > deadline:
                raise IngestError(
                    f"shard {shard} did not answer query {qid} in {timeout:.0f}s"
                )
            time.sleep(0.005)
        est, err = handle.replies.pop(qid)
        if err is not None:
            raise IngestError(f"shard {shard} query failed: {err}")
        return est
