"""Shard-worker supervision: spawn, feed, monitor, restart, re-feed.

The supervisor owns the runtime's process tree. Per shard it keeps a
:class:`WorkerHandle` — the live process, its transport channel
(:class:`~repro.runtime.transport.ShardChannel`), and a *retention
buffer* of every chunk sent but not yet acknowledged. The durability
split is exact:

- chunks the worker **acked** are in the worker's ingest WAL on disk —
  the supervisor drops its copy, and crash recovery replays them from
  the WAL (after restoring the newest checkpoint);
- chunks **not yet acked** (queued, in flight, or lost with a dying
  process) stay retained here and are re-fed, in sequence order, to the
  restarted worker — which skips any it already made durable.

Acks are *cumulative* (``ack seq`` covers every chunk up to ``seq``,
valid because each shard's chunks are applied strictly in sequence
order), which is what lets workers batch them without weakening the
split: a batched ack arriving late just means a few more chunks ride
the retention buffer until it lands.

Either way each chunk reaches the shard's scheme exactly once, in
order, so the recovered shard is bit-identical to one that never
crashed (tests/test_runtime.py kills workers with SIGKILL to prove it,
on every transport).

Worker death is detected by liveness polls woven into every wait loop —
including blocked backpressure sends, so a crashed consumer can never
wedge the producer. Each restart gets fresh transport resources
(queues, shared-memory rings): a process killed mid-transfer can leave
them unusable, and abandoning them sidesteps that entirely. Everything
here is expressed against the transport protocol — the supervisor does
not know whether bytes move by pickle or by memcpy.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass, field

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError, IngestError
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.runtime.queues import DEFAULT_QUEUE_DEPTH  # noqa: F401  (re-export)
from repro.runtime.transport import (
    BACKPRESSURE_POLICIES,
    ShardChannel,
    Transport,
)
from repro.runtime.worker import WorkerSpec, worker_main

#: Seconds a worker gets to boot/recover before the supervisor gives up.
READY_TIMEOUT = 60.0


def _core_budget() -> int:
    """CPUs actually available to this process (container/affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass
class WorkerHandle:
    """Supervisor-side state of one shard worker."""

    spec: WorkerSpec
    channel: ShardChannel
    process: "mp.process.BaseProcess | None" = None
    next_seq: int = 0  # next chunk sequence number to assign
    retained: dict[int, tuple] = field(default_factory=dict)  # seq -> (pkts, lens)
    restarts: int = 0
    last_checkpoint_seq: int = -1
    last_checkpoint_digest: str | None = None
    finalized: tuple | None = None  # (digest, ck_path, num_packets)
    last_error: str | None = None
    pending_queries: dict[int, tuple] = field(default_factory=dict)
    replies: dict[int, tuple] = field(default_factory=dict)
    drain_sent: bool = False


class ShardSupervisor:
    """Spawns and babysits one worker process per shard."""

    def __init__(
        self,
        specs: list[WorkerSpec],
        *,
        transport: Transport,
        backpressure: str = "block",
        registry: MetricsRegistry | None = None,
        max_restarts: int = 3,
        start_method: str | None = None,
        compute_slots: int | None = None,
    ) -> None:
        if backpressure not in BACKPRESSURE_POLICIES:
            raise ConfigError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
                f"got {backpressure!r}"
            )
        self.metrics = resolve_registry(registry)
        self.backpressure = backpressure
        self.transport = transport
        self.max_restarts = max_restarts
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(start_method)
        # Oversubscription guard: when shard workers outnumber the core
        # budget, uncoordinated compute thrashes the shared caches (see
        # worker._compute_slot). One counting semaphore, sized to the
        # budget, is shared by every worker across all restarts; when
        # the cores cover the workers it is skipped entirely.
        if compute_slots is not None and compute_slots < 1:
            raise ConfigError(
                f"compute_slots must be >= 1, got {compute_slots}"
            )
        slots = _core_budget() if compute_slots is None else compute_slots
        self._compute_gate = (
            self._ctx.Semaphore(slots) if len(specs) > slots else None
        )
        self.handles = [
            WorkerHandle(
                spec=spec,
                channel=transport.channel(
                    spec.shard_id,
                    ctx=self._ctx,
                    policy=backpressure,
                    registry=self.metrics,
                    stall_hook=self.pump,
                ),
            )
            for spec in specs
        ]
        self._pumping = False
        self._stopped = False

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        # Spawn everyone first, then collect readies: worker boot
        # (fork, recover, attach) overlaps across shards instead of
        # paying W serial round-trips.
        for handle in self.handles:
            self._spawn(handle)
        for handle in self.handles:
            self._wait_ready(handle)

    def _spawn(self, handle: WorkerHandle) -> None:
        endpoint = handle.channel.open()
        handle.process = self._ctx.Process(
            target=worker_main,
            args=(handle.spec, endpoint, self._compute_gate),
            daemon=True,
            name=f"repro-shard-{handle.spec.shard_id}",
        )
        handle.process.start()

    def _wait_ready(self, handle: WorkerHandle) -> int:
        """Block until the (re)started worker reports its recovery point."""
        deadline = time.monotonic() + READY_TIMEOUT
        while True:
            msg = handle.channel.recv(timeout=0.05)
            if msg is None:
                if not handle.process.is_alive():
                    raise IngestError(
                        f"shard {handle.spec.shard_id} died during boot"
                        + (f":\n{handle.last_error}" if handle.last_error else "")
                    )
                if time.monotonic() > deadline:
                    raise IngestError(
                        f"shard {handle.spec.shard_id} did not become ready "
                        f"within {READY_TIMEOUT:.0f}s"
                    )
                continue
            if msg[0] == "ready":
                return int(msg[2])  # last durable chunk seq
            if msg[0] == "error":
                handle.last_error = msg[2]
            # anything else (stale ack/reply) is absorbed by _handle_msg
            else:
                self._handle_msg(handle, msg)

    def stop(self) -> None:
        """Graceful shutdown: stop every worker, join, hard-kill stragglers."""
        self._stopped = True
        for handle in self.handles:
            if handle.process is None:
                continue
            if handle.process.is_alive():
                try:
                    handle.channel.send_control(("stop",))
                except (OSError, ValueError):  # pragma: no cover
                    pass
        for handle in self.handles:
            if handle.process is None:
                continue
            # Join in slices, re-waking the worker each time: the stop
            # message may still be in flight behind the wake that was
            # sent with it (see ShardChannel.nudge).
            deadline = time.monotonic() + 5.0
            while handle.process.is_alive() and time.monotonic() < deadline:
                handle.channel.nudge()
                handle.process.join(timeout=0.01)
            if handle.process.is_alive():  # pragma: no cover - hard fallback
                handle.process.kill()
                handle.process.join(timeout=5.0)
            handle.channel.close()

    # -- message pump and crash recovery ------------------------------------

    def _handle_msg(self, handle: WorkerHandle, msg: tuple) -> None:
        kind = msg[0]
        if kind == "ack":
            # Cumulative: everything up to the acked seq is durable
            # worker-side (chunks apply strictly in seq order).
            through = int(msg[2])
            for seq in [s for s in handle.retained if s <= through]:
                handle.retained.pop(seq)
        elif kind == "checkpoint":
            handle.last_checkpoint_seq = int(msg[2])
            handle.last_checkpoint_digest = msg[3]
        elif kind == "finalized":
            handle.finalized = (msg[2], msg[3], int(msg[4]))
        elif kind == "reply":
            _kind, _shard, qid, est, err = msg
            if qid in handle.pending_queries:
                handle.pending_queries.pop(qid)
                handle.replies[qid] = (est, err)
        elif kind == "error":
            handle.last_error = msg[2]

    def pump(self) -> None:
        """Drain worker messages; detect and recover dead workers.

        Called from every wait loop (including blocked backpressure
        sends). Re-entrant calls — a restart's re-feed blocking on a
        *different* shard's full channel — collapse to a no-op.
        """
        if self._pumping or self._stopped:
            return
        self._pumping = True
        try:
            for handle in self.handles:
                for msg in handle.channel.poll():
                    self._handle_msg(handle, msg)
                if handle.process is not None and not handle.process.is_alive():
                    self._restart(handle)
        finally:
            self._pumping = False

    def _restart(self, handle: WorkerHandle) -> None:
        """Restart a dead worker and re-feed everything it lost."""
        shard = handle.spec.shard_id
        if handle.restarts >= self.max_restarts:
            raise IngestError(
                f"shard {shard} exceeded max_restarts={self.max_restarts}"
                + (f"; last error:\n{handle.last_error}" if handle.last_error else "")
            )
        handle.process.join(timeout=1.0)
        # A process killed mid-transfer can leave the transport resources
        # unusable (a half-read pipe, a half-written ring) — abandon them
        # all; _spawn builds fresh ones.
        handle.channel.abandon()
        handle.restarts += 1
        self.metrics.counter("runtime.restarts").inc()
        self.metrics.counter(f"runtime.shard{shard}.restarts").inc()
        self._spawn(handle)
        recovered_through = self._wait_ready(handle)
        refed = 0
        for seq in sorted(handle.retained):
            if seq <= recovered_through:
                # Durable in the worker's WAL before the crash: the boot
                # replay already applied it.
                handle.retained.pop(seq)
                continue
            pkts, lens = handle.retained[seq]
            handle.channel.send_chunk_required(seq, pkts, lens)
            refed += 1
        self.metrics.counter("runtime.refed_chunks").inc(refed)
        for query_msg in list(handle.pending_queries.values()):
            handle.channel.send_control(query_msg)
        if handle.drain_sent:
            handle.channel.send_drain()

    # -- feeding ------------------------------------------------------------

    def send_chunk(
        self,
        shard: int,
        packets: npt.NDArray[np.uint64],
        lengths: npt.NDArray[np.int64] | None,
    ) -> bool:
        """Enqueue one subchunk on its shard (backpressure applies).

        Returns ``False`` when the shed policy dropped it.
        """
        handle = self.handles[shard]
        seq = handle.next_seq
        # Retain *before* sending: a blocked send pumps the message loop,
        # which may deliver this very chunk's ack mid-send — the ack must
        # find the retention entry to drop it.
        handle.retained[seq] = (packets, lengths)
        accepted = handle.channel.send_chunk(seq, packets, lengths)
        if accepted:
            handle.next_seq = seq + 1
            self.metrics.counter("runtime.chunks_sent").inc()
            self.metrics.counter("runtime.packets_sent").inc(len(packets))
        else:
            handle.retained.pop(seq, None)
        self.pump()
        return accepted

    def send_drain(self) -> None:
        for handle in self.handles:
            handle.drain_sent = True
            handle.channel.send_drain()

    def wait_finalized(self, timeout: float = 300.0) -> None:
        deadline = time.monotonic() + timeout
        while any(h.finalized is None for h in self.handles):
            self.pump()
            if time.monotonic() > deadline:
                missing = [
                    h.spec.shard_id for h in self.handles if h.finalized is None
                ]
                raise IngestError(f"shards {missing} did not finalize in {timeout:.0f}s")
            time.sleep(0.005)

    # -- queries ------------------------------------------------------------

    def ask(
        self,
        shard: int,
        qid: int,
        flow_ids: npt.NDArray[np.uint64],
        method: str,
    ) -> None:
        handle = self.handles[shard]
        message = ("query", qid, flow_ids, method)
        handle.pending_queries[qid] = message
        handle.channel.send_control(message)
        self.metrics.counter("runtime.queries").inc()

    def collect_reply(
        self, shard: int, qid: int, timeout: float = 60.0
    ) -> npt.NDArray[np.float64]:
        handle = self.handles[shard]
        deadline = time.monotonic() + timeout
        while qid not in handle.replies:
            self.pump()
            if time.monotonic() > deadline:
                raise IngestError(
                    f"shard {shard} did not answer query {qid} in {timeout:.0f}s"
                )
            time.sleep(0.005)
        est, err = handle.replies.pop(qid)
        if err is not None:
            raise IngestError(f"shard {shard} query failed: {err}")
        return est
