"""Shard-worker supervision: spawn, feed, monitor, restart, re-feed.

The supervisor owns the runtime's process tree. Per shard it keeps a
:class:`WorkerHandle` — the live process, its transport channel
(:class:`~repro.runtime.transport.ShardChannel`), and a *retention
buffer* of every chunk sent but not yet acknowledged. The durability
split is exact:

- chunks the worker **acked** are in the worker's ingest WAL on disk —
  the supervisor drops its copy, and crash recovery replays them from
  the WAL (after restoring the newest checkpoint);
- chunks **not yet acked** (queued, in flight, or lost with a dying
  process) stay retained here and are re-fed, in sequence order, to the
  restarted worker — which skips any it already made durable.

Acks are *cumulative* (``ack seq`` covers every chunk up to ``seq``,
valid because each shard's chunks are applied strictly in sequence
order), which is what lets workers batch them without weakening the
split: a batched ack arriving late just means a few more chunks ride
the retention buffer until it lands.

Either way each chunk reaches the shard's scheme exactly once, in
order, so the recovered shard is bit-identical to one that never
crashed (tests/test_runtime.py kills workers with SIGKILL to prove it,
on every transport).

Worker death is detected by liveness polls woven into every wait loop —
including blocked backpressure sends, so a crashed consumer can never
wedge the producer. Each restart gets fresh transport resources
(queues, shared-memory rings): a process killed mid-transfer can leave
them unusable, and abandoning them sidesteps that entirely. Everything
here is expressed against the transport protocol — the supervisor does
not know whether bytes move by pickle or by memcpy.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError, IngestError
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.runtime.partitioner import ShardMap
from repro.runtime.queues import DEFAULT_QUEUE_DEPTH  # noqa: F401  (re-export)
from repro.runtime.transport import (
    BACKPRESSURE_POLICIES,
    ShardChannel,
    Transport,
)
from repro.runtime.watchdog import (
    DEFAULT_JITTER_SEED,
    DEFAULT_QUARANTINE_AFTER,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    RestartBudget,
    Watchdog,
    WatchdogConfig,
    quarantine_chunk,
    sweep_stale_tmp,
)
from repro.runtime.worker import WorkerSpec, worker_main

#: Seconds a worker gets to boot/recover before the supervisor gives up.
READY_TIMEOUT = 60.0


def _core_budget() -> int:
    """CPUs actually available to this process (container/affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass
class WorkerHandle:
    """Supervisor-side state of one shard worker."""

    spec: WorkerSpec
    channel: ShardChannel
    process: "mp.process.BaseProcess | None" = None
    next_seq: int = 0  # next chunk sequence number to assign
    retained: dict[int, tuple] = field(default_factory=dict)  # seq -> (pkts, lens)
    restarts: int = 0
    last_checkpoint_seq: int = -1
    last_checkpoint_digest: str | None = None
    last_checkpoint_at: float = 0.0  # monotonic time of the last ckpt msg
    finalized: tuple | None = None  # (digest, ck_path, num_packets)
    last_error: str | None = None
    pending_queries: dict[int, tuple] = field(default_factory=dict)
    replies: dict[int, tuple] = field(default_factory=dict)
    drain_sent: bool = False
    seal_sent: bool = False  # reshard seal marker sent (re-sent on restart)
    sealed: tuple | None = None  # (sealed_seq, digest) once the worker sealed
    ready_seq: int | None = None  # async-observed boot report (successors)
    # -- watchdog / restart-discipline state (repro.runtime.watchdog) -------
    last_seen: float = 0.0  # monotonic time of the last worker message
    hang_stage: int = 0  # 0 healthy, 1 nudged, 2 SIGTERMed
    breaker: CircuitBreaker = field(default_factory=CircuitBreaker)
    budget: RestartBudget | None = None  # set by the supervisor at build
    packets_sent: int = 0  # total packet mass routed to this shard
    suspects: dict[int, int] = field(default_factory=dict)  # seq -> crash count
    quarantined: list[tuple[int, int]] = field(default_factory=list)  # (seq, n)


#: Reshard phases, in order. ``sealing``: the donor is flushing acks and
#: cutting its durable checkpoint; its inbound chunks are held. ``replaying``:
#: both successors are booting (history-chain replay); donor still answers
#: queries. ``refeed``: cutover happened — the map flipped, the donor is
#: retired — and the held chunks drain to the successors under the new map.
RESHARD_PHASES = ("sealing", "replaying", "refeed")


@dataclass
class ReshardOp:
    """Supervisor-side state of one in-flight shard split."""

    donor: int
    make_specs: Callable[[int], tuple[WorkerSpec, WorkerSpec]]
    on_cutover: Callable[[ShardMap], None] | None = None
    phase: str = "sealing"
    held: list[tuple] = field(default_factory=list)  # [(packets, lengths), ...]
    sealed_seq: int = -1
    sealed_digest: str | None = None
    successors: list[WorkerHandle] = field(default_factory=list)
    new_map: ShardMap | None = None
    started_at: float = field(default_factory=time.monotonic)


class ShardSupervisor:
    """Spawns and babysits one worker process per shard."""

    def __init__(
        self,
        specs: list[WorkerSpec],
        *,
        transport: Transport,
        backpressure: str = "block",
        registry: MetricsRegistry | None = None,
        max_restarts: int = 3,
        start_method: str | None = None,
        compute_slots: int | None = None,
        restart_refill_per_s: float = 0.0,
        restart_backoff_base: float = 0.25,
        restart_backoff_max: float = 30.0,
        restart_jitter_seed: int = DEFAULT_JITTER_SEED,
        quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
        watchdog: WatchdogConfig | None = WatchdogConfig(),
    ) -> None:
        if backpressure not in BACKPRESSURE_POLICIES:
            raise ConfigError(
                f"backpressure must be one of {BACKPRESSURE_POLICIES}, "
                f"got {backpressure!r}"
            )
        self.metrics = resolve_registry(registry)
        self.backpressure = backpressure
        self.transport = transport
        self.max_restarts = max_restarts
        # Restart discipline: per-shard token bucket + backoff + breaker.
        # The defaults (no refill, immediate first retry) reproduce the
        # historic bare-counter behavior exactly.
        self.restart_refill_per_s = restart_refill_per_s
        self.restart_backoff_base = restart_backoff_base
        self.restart_backoff_max = restart_backoff_max
        self.restart_jitter_seed = restart_jitter_seed
        self.quarantine_after = quarantine_after
        self._watchdog = (
            None if watchdog is None else Watchdog(watchdog, self.metrics)
        )
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(start_method)
        # Oversubscription guard: when shard workers outnumber the core
        # budget, uncoordinated compute thrashes the shared caches (see
        # worker._compute_slot). One counting semaphore, sized to the
        # budget, is shared by every worker across all restarts; when
        # the cores cover the workers it is skipped entirely.
        if compute_slots is not None and compute_slots < 1:
            raise ConfigError(
                f"compute_slots must be >= 1, got {compute_slots}"
            )
        slots = _core_budget() if compute_slots is None else compute_slots
        self._compute_gate = (
            self._ctx.Semaphore(slots) if len(specs) > slots else None
        )
        self.handles = [self._make_handle(spec) for spec in specs]
        self._pumping = False
        self._stopped = False
        self._reshard: ReshardOp | None = None
        self._refeeding = False

    def _make_handle(self, spec: WorkerSpec) -> WorkerHandle:
        return WorkerHandle(
            spec=spec,
            channel=self.transport.channel(
                spec.shard_id,
                ctx=self._ctx,
                policy=self.backpressure,
                registry=self.metrics,
                stall_hook=self.pump,
            ),
            budget=RestartBudget(self.max_restarts, self.restart_refill_per_s),
        )

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> None:
        # Spawn everyone first, then collect readies: worker boot
        # (fork, recover, attach) overlaps across shards instead of
        # paying W serial round-trips.
        for handle in self.handles:
            self._spawn(handle)
        for handle in self.handles:
            self._wait_ready(handle)

    def _spawn(self, handle: WorkerHandle) -> None:
        endpoint = handle.channel.open()
        handle.process = self._ctx.Process(
            target=worker_main,
            args=(handle.spec, endpoint, self._compute_gate),
            daemon=True,
            name=f"repro-shard-{handle.spec.shard_id}",
        )
        handle.process.start()
        # Liveness baseline: boot time counts against the hang timeout
        # only from here, never from a stale pre-restart timestamp.
        handle.last_seen = time.monotonic()
        handle.hang_stage = 0

    def _wait_ready(self, handle: WorkerHandle) -> int:
        """Block until the (re)started worker reports its recovery point."""
        deadline = time.monotonic() + READY_TIMEOUT
        while True:
            msg = handle.channel.recv(timeout=0.05)
            if msg is None:
                if not handle.process.is_alive():
                    raise IngestError(
                        f"shard {handle.spec.shard_id} died during boot"
                        + (f":\n{handle.last_error}" if handle.last_error else "")
                    )
                if time.monotonic() > deadline:
                    raise IngestError(
                        f"shard {handle.spec.shard_id} did not become ready "
                        f"within {READY_TIMEOUT:.0f}s"
                    )
                continue
            if msg[0] == "ready":
                handle.last_seen = time.monotonic()
                handle.hang_stage = 0
                return int(msg[2])  # last durable chunk seq
            if msg[0] == "error":
                handle.last_error = msg[2]
            # anything else (stale ack/reply) is absorbed by _handle_msg
            else:
                self._handle_msg(handle, msg)

    def _all_handles(self) -> list[WorkerHandle]:
        """Every live handle, including not-yet-cutover split successors."""
        out = list(self.handles)
        if self._reshard is not None:
            out.extend(self._reshard.successors)
        return out

    def stop(self) -> None:
        """Graceful shutdown: stop every worker, join, hard-kill stragglers."""
        self._stopped = True
        for handle in self._all_handles():
            if handle.process is None:
                continue
            if handle.process.is_alive():
                try:
                    handle.channel.send_control(("stop",))
                except (OSError, ValueError):  # pragma: no cover
                    pass
        for handle in self._all_handles():
            if handle.process is None:
                continue
            # Join in slices, re-waking the worker each time: the stop
            # message may still be in flight behind the wake that was
            # sent with it (see ShardChannel.nudge).
            deadline = time.monotonic() + 5.0
            while handle.process.is_alive() and time.monotonic() < deadline:
                handle.channel.nudge()
                handle.process.join(timeout=0.01)
            if handle.process.is_alive():  # pragma: no cover - hard fallback
                handle.process.kill()
                handle.process.join(timeout=5.0)
            handle.channel.close()

    # -- message pump and crash recovery ------------------------------------

    def _handle_msg(self, handle: WorkerHandle, msg: tuple) -> None:
        kind = msg[0]
        # Any message is a sign of life: refresh the watchdog's liveness
        # view, cancel any in-flight escalation, and close a half-open
        # breaker — the restarted worker demonstrably works.
        handle.last_seen = time.monotonic()
        handle.hang_stage = 0
        if kind != "error" and handle.breaker.state == BREAKER_HALF_OPEN:
            handle.breaker.record_success()
            self._set_breaker_gauge(handle)
        if kind == "heartbeat":
            return  # receipt alone is the payload
        if kind == "ack":
            # Cumulative: everything up to the acked seq is durable
            # worker-side (chunks apply strictly in seq order).
            through = int(msg[2])
            for seq in [s for s in handle.retained if s <= through]:
                handle.retained.pop(seq)
        elif kind == "checkpoint":
            handle.last_checkpoint_seq = int(msg[2])
            handle.last_checkpoint_digest = msg[3]
            handle.last_checkpoint_at = time.monotonic()
            self.metrics.gauge(
                f"runtime.shard{handle.spec.shard_id}.last_checkpoint_seq"
            ).set(handle.last_checkpoint_seq)
            if len(msg) > 4 and isinstance(msg[4], dict):
                self._record_checkpoint_metrics(msg[4])
        elif kind == "finalized":
            handle.finalized = (msg[2], msg[3], int(msg[4]))
        elif kind == "reply":
            _kind, _shard, qid, est, err = msg
            if qid in handle.pending_queries:
                handle.pending_queries.pop(qid)
                handle.replies[qid] = (est, err)
        elif kind == "sealed":
            handle.sealed = (int(msg[2]), msg[3])
        elif kind == "ready":
            # Successors boot asynchronously (pump polls them); the
            # initial blocking start path consumes "ready" directly in
            # _wait_ready and never reaches here.
            handle.ready_seq = int(msg[2])
        elif kind == "error":
            handle.last_error = msg[2]

    def pump(self) -> None:
        """Drain worker messages; detect and recover dead workers.

        Called from every wait loop (including blocked backpressure
        sends). Re-entrant calls — a restart's re-feed blocking on a
        *different* shard's full channel — collapse to a no-op.
        """
        if self._pumping or self._stopped:
            return
        self._pumping = True
        try:
            for handle in self.handles:
                for msg in handle.channel.poll():
                    self._handle_msg(handle, msg)
                if handle.process is not None and not handle.process.is_alive():
                    self._on_worker_death(handle)
                elif self._watchdog is not None and handle.finalized is None:
                    # Active until the shard finalizes: a worker hung (or
                    # SIGSTOPped) at drain time must still be recovered
                    # or wait_finalized would spin out its full timeout.
                    if self._watchdog.check(handle):
                        # Escalated all the way to SIGKILL: recover in
                        # this pump instead of waiting a cycle.
                        self._on_worker_death(handle)
            self._advance_reshard()
        finally:
            self._pumping = False

    def _record_checkpoint_metrics(self, info: dict) -> None:
        """Fold one checkpoint completion report into the registry.

        Totals (writes, bytes, deltas, ingest stall) accumulate as
        counters; per-write shapes (snapshot/write seconds, delta
        fraction) land as latest-value gauges.
        """
        m = self.metrics
        m.counter("checkpoint.writes").inc()
        if info.get("kind") == "delta":
            m.counter("checkpoint.deltas").inc()
        m.counter("checkpoint.bytes").inc(int(info.get("bytes", 0)))
        stall = float(info.get("stall_seconds", 0.0))
        if stall:
            m.counter("checkpoint.ingest_stall_us").inc(int(stall * 1e6))
        m.gauge("checkpoint.snapshot_seconds").set(
            float(info.get("snapshot_seconds", 0.0))
        )
        m.gauge("checkpoint.write_seconds").set(float(info.get("write_seconds", 0.0)))
        m.gauge("checkpoint.delta_fraction").set(float(info.get("delta_fraction", 1.0)))

    def _set_breaker_gauge(self, handle: WorkerHandle) -> None:
        self.metrics.gauge(
            f"runtime.shard{handle.spec.shard_id}.breaker"
        ).set(handle.breaker.level)

    def _on_worker_death(self, handle: WorkerHandle) -> int | None:
        """A worker is dead: open the breaker (once per death), then
        restart now or schedule the attempt per backoff + budget.

        Returns the recovery point when a restart actually happened,
        ``None`` when it was deferred (breaker open, waiting on backoff
        or a budget token — the next pump retries)."""
        now = time.monotonic()
        breaker = handle.breaker
        if breaker.state != BREAKER_OPEN:
            delay = breaker.record_failure(
                now,
                base=self.restart_backoff_base,
                max_delay=self.restart_backoff_max,
                seed=self.restart_jitter_seed,
                shard=handle.spec.shard_id,
            )
            self._set_breaker_gauge(handle)
            self.metrics.counter("runtime.breaker.opens").inc()
            if delay > 0:
                self.metrics.gauge(
                    f"runtime.shard{handle.spec.shard_id}.backoff_seconds"
                ).set(delay)
        return self._maybe_restart(handle, now)

    def _maybe_restart(self, handle: WorkerHandle, now: float) -> int | None:
        """Attempt a scheduled restart if backoff has elapsed and the
        token bucket allows it; raise when the budget is exhausted and
        can never refill (the configured die-instead-of-degrade mode)."""
        breaker = handle.breaker
        if now < breaker.next_attempt:
            return None
        assert handle.budget is not None
        if not handle.budget.take(now):
            wait = handle.budget.wait_for_token(now)
            if wait is None:
                raise IngestError(
                    f"shard {handle.spec.shard_id} exceeded "
                    f"max_restarts={self.max_restarts}"
                    + (
                        f"; last error:\n{handle.last_error}"
                        if handle.last_error
                        else ""
                    )
                )
            breaker.next_attempt = now + wait
            return None
        breaker.record_probation()
        self._set_breaker_gauge(handle)
        return self._restart(handle)

    def _restart(self, handle: WorkerHandle) -> int:
        """Restart a dead worker and re-feed everything it lost."""
        shard = handle.spec.shard_id
        handle.process.join(timeout=1.0)
        # A process killed mid-transfer can leave the transport resources
        # unusable (a half-read pipe, a half-written ring) — abandon them
        # all; _spawn builds fresh ones. The dead incarnation can also
        # have leaked artifacts (a checkpoint temp file, an orphaned shm
        # segment raced past abandon): sweep them while nothing runs.
        handle.channel.abandon()
        handle.channel.sweep_orphans()
        sweep_stale_tmp(handle.spec.state_dir)
        handle.restarts += 1
        self.metrics.counter("runtime.restarts").inc()
        self.metrics.counter(f"runtime.shard{shard}.restarts").inc()
        self._spawn(handle)
        recovered_through = self._wait_ready(handle)
        self._attribute_crash(handle, recovered_through)
        refed = 0
        process = handle.process
        dead_again = lambda: not process.is_alive()  # noqa: E731
        for seq in sorted(handle.retained):
            if seq <= recovered_through:
                # Durable in the worker's WAL before the crash: the boot
                # replay already applied it.
                handle.retained.pop(seq)
                continue
            if dead_again():
                # Crashed again mid-re-feed (a poison chunk re-fed just
                # above kills every incarnation until quarantined). The
                # rest stays retained; the next pump's death recovery
                # goes back through the breaker/budget and re-feeds it.
                break
            pkts, lens = handle.retained[seq]
            if not handle.channel.send_chunk_required(
                seq, pkts, lens, abort=dead_again
            ):
                break
            refed += 1
        self.metrics.counter("runtime.refed_chunks").inc(refed)
        for query_msg in list(handle.pending_queries.values()):
            handle.channel.send_control(query_msg)
        if handle.seal_sent and handle.sealed is None:
            # Crashed between seal send and the sealed report: re-seal
            # after the re-feed (in-band, so it lands after every chunk;
            # the worker seals the same recovered state idempotently).
            handle.channel.send_seal()
        if handle.drain_sent:
            handle.channel.send_drain()
        return recovered_through

    # -- poison-chunk quarantine ---------------------------------------------

    def _attribute_crash(self, handle: WorkerHandle, recovered_through: int) -> None:
        """Blame the death on the chunk the worker was applying.

        Injected runtime faults (and real poison chunks) fire *before*
        the WAL append, so the killing chunk is never durable: it is the
        lowest retained seq past the recovery point. The same chunk
        blamed ``quarantine_after`` times in a row gets quarantined;
        a crash blamed on a different chunk resets nothing (counts are
        per-seq), and a restart with nothing suspicious pending clears
        the slate — ordinary SIGKILL chaos never accumulates blame.
        """
        if not self.quarantine_after:
            return
        suspect = min(
            (s for s in handle.retained if s > recovered_through), default=None
        )
        if suspect is None:
            handle.suspects.clear()
            return
        count = handle.suspects.get(suspect, 0) + 1
        handle.suspects[suspect] = count
        if count >= self.quarantine_after:
            self._quarantine(handle, suspect, count)

    def _quarantine(self, handle: WorkerHandle, seq: int, crashes: int) -> None:
        """Spill one poison chunk to the quarantine WAL and drop it from
        retention — the restarted worker never sees it again."""
        shard = handle.spec.shard_id
        packets, lengths = handle.retained.pop(seq)
        handle.suspects.pop(seq, None)
        quarantine_chunk(
            handle.spec.state_dir,
            shard,
            seq,
            packets,
            lengths,
            crashes=crashes,
            reason=handle.last_error or "repeated worker crashes on this chunk",
        )
        handle.quarantined.append((seq, len(packets)))
        self.metrics.counter("runtime.quarantine.chunks").inc()
        self.metrics.counter("runtime.quarantine.packets").inc(len(packets))
        self.metrics.gauge(f"runtime.shard{shard}.quarantined_packets").set(
            sum(n for _, n in handle.quarantined)
        )

    # -- elastic resharding --------------------------------------------------

    @property
    def reshard_in_progress(self) -> bool:
        return self._reshard is not None

    @property
    def reshard_phase(self) -> str | None:
        return None if self._reshard is None else self._reshard.phase

    def begin_reshard(
        self,
        donor: int,
        make_specs: Callable[[int], tuple[WorkerSpec, WorkerSpec]],
        on_cutover: Callable[[ShardMap], None] | None = None,
    ) -> None:
        """Start splitting shard ``donor`` into itself + a new shard.

        ``make_specs(sealed_seq)`` is called once the donor seals; it
        must return the two successor :class:`WorkerSpec`\\ s — first the
        donor's heir (same shard id) then the new child (id equal to the
        current shard count) — both carrying the new versioned
        ``shard_map`` and the donor's WAL chain. ``on_cutover`` fires at
        the instant the map flips (the caller swaps its partitioner
        there). The split runs asynchronously through :meth:`pump`;
        other shards keep ingesting throughout, and chunks bound for the
        donor are held and re-fed under the new map after cutover.
        """
        if self._stopped:
            raise IngestError("cannot reshard a stopped supervisor")
        if self._reshard is not None:
            raise IngestError(
                f"reshard of shard {self._reshard.donor} already in progress"
            )
        if not 0 <= donor < len(self.handles):
            raise ConfigError(
                f"reshard donor {donor} out of range for {len(self.handles)} shards"
            )
        handle = self.handles[donor]
        if handle.drain_sent or handle.finalized is not None:
            raise IngestError(f"cannot reshard drained shard {donor}")
        self._reshard = ReshardOp(
            donor=donor, make_specs=make_specs, on_cutover=on_cutover
        )
        handle.seal_sent = True
        handle.sealed = None
        handle.channel.send_seal()
        self.metrics.counter("runtime.reshards").inc()
        self.metrics.gauge("runtime.reshard.in_progress").set(1)
        self.pump()

    def _advance_reshard(self) -> None:
        """Drive the split state machine one step (called from pump,
        inside the re-entrancy guard — state transitions only, never
        chunk sends; the refeed drains in _flush_reshard_refeed)."""
        op = self._reshard
        if op is None:
            return
        if op.phase == "sealing":
            donor = self.handles[op.donor]
            if donor.sealed is None:
                return
            op.sealed_seq, op.sealed_digest = donor.sealed
            spec_a, spec_b = op.make_specs(op.sealed_seq)
            if spec_a.shard_id != op.donor or spec_b.shard_id != len(self.handles):
                raise ConfigError(
                    f"successor specs must carry shard ids {op.donor} and "
                    f"{len(self.handles)}, got {spec_a.shard_id}/{spec_b.shard_id}"
                )
            if spec_b.shard_map is None:
                raise ConfigError("successor specs must carry the new shard map")
            op.new_map = spec_b.shard_map
            for spec in (spec_a, spec_b):
                successor = self._make_handle(spec)
                self._spawn(successor)
                op.successors.append(successor)
            op.phase = "replaying"
            return
        if op.phase == "replaying":
            for successor in op.successors:
                for msg in successor.channel.poll():
                    self._handle_msg(successor, msg)
                if successor.ready_seq is None and not successor.process.is_alive():
                    # Died mid history replay/boot: plain respawn — no
                    # retained chunks, queries, or markers to re-feed.
                    # Goes through the breaker/budget like any death;
                    # a deferred (backed-off) attempt retries next pump.
                    recovered = self._on_worker_death(successor)
                    if recovered is not None:
                        successor.ready_seq = recovered
            donor = self.handles[op.donor]
            if any(s.ready_seq is None for s in op.successors):
                return
            if donor.pending_queries:
                # Queries still routed to the donor under the old map
                # must be answered by the donor; hold the cutover.
                return
            self._cutover(op)
            return
        # phase == "refeed": drains outside the pump guard, in
        # _flush_reshard_refeed (chunk sends must keep pumping).

    def _cutover(self, op: ReshardOp) -> None:
        """Retire the donor and swap in the successors atomically (from
        the caller's perspective: no chunk send happens in between)."""
        donor = self.handles[op.donor]
        succ_a, succ_b = op.successors
        # Retire the donor: everything through sealed_seq is covered by
        # the successors' history replay, so nothing it holds is needed.
        if donor.process is not None and donor.process.is_alive():
            try:
                donor.channel.send_control(("stop",))
            except (OSError, ValueError):  # pragma: no cover
                pass
            deadline = time.monotonic() + 5.0
            while donor.process.is_alive() and time.monotonic() < deadline:
                donor.channel.nudge()
                donor.process.join(timeout=0.01)
            if donor.process.is_alive():  # pragma: no cover - hard fallback
                donor.process.kill()
                donor.process.join(timeout=5.0)
        donor.channel.close()
        donor.retained.clear()
        for successor in op.successors:
            # Both successors continue the donor's chunk numbering: every
            # seq <= sealed_seq is covered by history replay, so the
            # duplicate-re-feed dedup logic works across the split.
            successor.next_seq = op.sealed_seq + 1
        # Answered-but-uncollected replies move to the heir so late
        # collect_reply() lookups through handles[donor] still find them.
        succ_a.replies.update(donor.replies)
        self.handles[op.donor] = succ_a
        self.handles.append(succ_b)
        op.successors.clear()
        op.phase = "refeed"
        if op.on_cutover is not None:
            op.on_cutover(op.new_map)

    def _flush_reshard_refeed(self) -> None:
        """Re-feed the chunks held during the split, re-partitioned
        under the new map. Runs *outside* pump's re-entrancy guard: a
        blocked re-feed send must still detect dead successors through
        its stall hook. Completes the reshard when the backlog drains.
        """
        op = self._reshard
        if op is None or op.phase != "refeed" or self._refeeding or self._pumping:
            return
        self._refeeding = True
        try:
            child = op.new_map.num_shards - 1
            while op.held:
                packets, lengths = op.held.pop(0)
                owners = op.new_map.owner_of(packets)
                for sid in (op.donor, child):
                    mask = owners == sid
                    if mask.any():
                        self.send_chunk(
                            sid,
                            packets[mask],
                            lengths[mask] if lengths is not None else None,
                        )
                        self.metrics.counter("runtime.reshard.refed_chunks").inc()
            self._reshard = None
            self.metrics.gauge("runtime.reshard.in_progress").set(0)
            self.metrics.gauge("runtime.reshard.last_seconds").set(
                time.monotonic() - op.started_at
            )
        finally:
            self._refeeding = False

    def finish_reshard(self, timeout: float = 300.0) -> None:
        """Block until the in-flight reshard (if any) fully completes."""
        deadline = time.monotonic() + timeout
        while self._reshard is not None:
            self.pump()
            self._flush_reshard_refeed()
            if self._reshard is None:
                return
            if time.monotonic() > deadline:
                raise IngestError(
                    f"reshard of shard {self._reshard.donor} stuck in phase "
                    f"{self._reshard.phase!r} after {timeout:.0f}s"
                )
            time.sleep(0.005)

    # -- feeding ------------------------------------------------------------

    def send_chunk(
        self,
        shard: int,
        packets: npt.NDArray[np.uint64],
        lengths: npt.NDArray[np.int64] | None,
    ) -> bool:
        """Enqueue one subchunk on its shard (backpressure applies).

        Returns ``False`` when the shed policy dropped it. During a
        reshard, chunks bound for the split donor are *held* (accepted
        but not yet delivered) and re-fed under the new map after
        cutover; any pending re-feed backlog drains first, so per-flow
        order is preserved across the split.
        """
        self._flush_reshard_refeed()
        op = self._reshard
        if op is not None and shard == op.donor and op.phase in (
            "sealing",
            "replaying",
        ):
            op.held.append((packets, lengths))
            self.metrics.counter("runtime.reshard.held_chunks").inc()
            self.metrics.counter("runtime.reshard.held_packets").inc(len(packets))
            self.pump()
            self._flush_reshard_refeed()
            return True
        handle = self.handles[shard]
        if handle.breaker.state == BREAKER_OPEN or (
            handle.process is not None and not handle.process.is_alive()
        ):
            # Fail-slow: the shard is between incarnations (crashed and
            # backing off, or waiting on a restart token). Accept the
            # chunk into retention without touching the channel — a
            # blocked send to a dead consumer would stall the whole
            # ingest plane — and let the eventual restart's re-feed
            # deliver everything in seq order. pump() below may be the
            # restart itself.
            seq = handle.next_seq
            handle.next_seq = seq + 1
            handle.retained[seq] = (packets, lengths)
            handle.packets_sent += len(packets)
            self.metrics.counter("runtime.chunks_sent").inc()
            self.metrics.counter(f"runtime.shard{shard}.chunks_sent").inc()
            self.metrics.counter("runtime.packets_sent").inc(len(packets))
            self.metrics.counter("runtime.breaker.held_chunks").inc()
            self.pump()
            return True
        seq = handle.next_seq
        # Retain *before* sending: a blocked send pumps the message loop,
        # which may deliver this very chunk's ack mid-send — the ack must
        # find the retention entry to drop it.
        handle.retained[seq] = (packets, lengths)
        accepted = handle.channel.send_chunk(seq, packets, lengths)
        if accepted:
            handle.next_seq = seq + 1
            handle.packets_sent += len(packets)
            self.metrics.counter("runtime.chunks_sent").inc()
            self.metrics.counter(f"runtime.shard{shard}.chunks_sent").inc()
            self.metrics.counter("runtime.packets_sent").inc(len(packets))
        else:
            handle.retained.pop(seq, None)
        self.pump()
        return accepted

    def send_drain(self, timeout: float = 60.0) -> None:
        # A split must fully land before the stream can end: drain
        # markers are routed per-shard, and held chunks still owe the
        # successors their packets.
        self.finish_reshard()
        for handle in self.handles:
            self._force_restart(handle, timeout=timeout)
            handle.drain_sent = True
            handle.channel.send_drain()

    def _force_restart(self, handle: WorkerHandle, timeout: float) -> None:
        """Bring a dead/backing-off shard up *now* (drain path): backoff
        is waived — the stream is over, latency no longer buys safety —
        but the budget still applies, so a shard configured to die dead
        stays dead (and raises) rather than flapping forever."""
        deadline = time.monotonic() + timeout
        while handle.process is not None and not handle.process.is_alive():
            handle.breaker.next_attempt = 0.0
            if self._on_worker_death(handle) is not None:
                return
            if time.monotonic() > deadline:
                raise IngestError(
                    f"shard {handle.spec.shard_id} could not be restarted "
                    f"for drain within {timeout:.0f}s"
                )
            time.sleep(0.01)

    def wait_finalized(self, timeout: float = 300.0) -> None:
        deadline = time.monotonic() + timeout
        while any(h.finalized is None for h in self.handles):
            self.pump()
            if time.monotonic() > deadline:
                missing = [
                    h.spec.shard_id for h in self.handles if h.finalized is None
                ]
                raise IngestError(f"shards {missing} did not finalize in {timeout:.0f}s")
            time.sleep(0.005)
        # Drained and quiet: reclaim whatever any dead incarnation
        # leaked along the way (checkpoint temp files, orphaned shm
        # segments) while every worker is provably past writing them.
        for handle in self.handles:
            sweep_stale_tmp(handle.spec.state_dir)
            handle.channel.sweep_orphans()

    def shard_fills(self) -> dict[int, float]:
        """Data-plane occupancy per shard in ``[0, 1]`` — the
        transport-neutral hot-shard signal the reshard planner watches.
        Shards whose transport cannot tell are omitted."""
        fills: dict[int, float] = {}
        for i, handle in enumerate(self.handles):
            fill = handle.channel.data_fill()
            if fill is not None:
                fills[i] = fill
                self.metrics.gauge(f"runtime.shard{i}.fill").set(fill)
        return fills

    def checkpoint_ages(self) -> dict[int, float]:
        """Seconds since each shard's last reported checkpoint — the
        operator's durability-lag signal. Shards that have never
        checkpointed (fresh boot, or ``checkpoint_every=0``) are
        omitted. Also lands per-shard ``checkpoint_age_seconds``
        gauges in the registry."""
        now = time.monotonic()
        ages: dict[int, float] = {}
        for i, handle in enumerate(self.handles):
            if handle.last_checkpoint_at <= 0:
                continue
            age = max(0.0, now - handle.last_checkpoint_at)
            ages[i] = age
            self.metrics.gauge(f"runtime.shard{i}.checkpoint_age_seconds").set(age)
        return ages

    # -- queries ------------------------------------------------------------

    def shard_available(self, shard: int) -> bool:
        """Whether this shard can plausibly answer a query right now —
        alive and not breaker-open (mid-backoff). Half-open counts as
        available: the restarted worker answers queries fine."""
        handle = self.handles[shard]
        return (
            handle.process is not None
            and handle.process.is_alive()
            and handle.breaker.state != BREAKER_OPEN
        )

    def shard_coverage(self, shard: int) -> float:
        """Fraction of the packet mass sent to this shard that reached
        its counters (quarantined chunks subtract; 1.0 when clean)."""
        handle = self.handles[shard]
        if not handle.packets_sent:
            return 1.0
        missing = sum(n for _, n in handle.quarantined)
        return max(0.0, 1.0 - missing / handle.packets_sent)

    def cancel_query(self, shard: int, qid: int) -> None:
        """Forget one in-flight query (deadline passed): it must not be
        re-sent on the next restart, and a late reply is dropped."""
        handle = self.handles[shard]
        handle.pending_queries.pop(qid, None)
        handle.replies.pop(qid, None)

    def ask(
        self,
        shard: int,
        qid: int,
        flow_ids: npt.NDArray[np.uint64],
        method: str,
    ) -> None:
        handle = self.handles[shard]
        message = ("query", qid, flow_ids, method)
        handle.pending_queries[qid] = message
        handle.channel.send_control(message)
        self.metrics.counter("runtime.queries").inc()

    def collect_reply(
        self, shard: int, qid: int, timeout: float = 60.0
    ) -> npt.NDArray[np.float64]:
        est = self.try_collect_reply(shard, qid, time.monotonic() + timeout)
        if est is None:
            raise IngestError(
                f"shard {shard} did not answer query {qid} in {timeout:.0f}s"
            )
        return est

    def try_collect_reply(
        self, shard: int, qid: int, deadline: float
    ) -> npt.NDArray[np.float64] | None:
        """Like :meth:`collect_reply` against an absolute monotonic
        deadline, but a missed deadline returns ``None`` (the partial-
        answer path) instead of raising; a shard that *answered* with an
        error still raises — that is a genuine query failure, not a
        liveness problem."""
        handle = self.handles[shard]
        while qid not in handle.replies:
            self.pump()
            if time.monotonic() > deadline:
                return None
            time.sleep(0.005)
        est, err = handle.replies.pop(qid)
        if err is not None:
            raise IngestError(f"shard {shard} query failed: {err}")
        return est
