"""Failure detection and graceful degradation for the streaming runtime.

The supervisor's original fault model was fail-*stop*: a worker dies
(``process.is_alive()`` goes false) and the restore/replay/re-feed path
repairs it. This module adds the fail-*slow* half and the discipline
around repeated failure:

- **Heartbeats + hang detection.** Workers emit periodic
  ``("heartbeat", shard, last_seq, wall_time)`` records on the message
  plane (off the data path, so the no-fault bit-identity contract is
  untouched). :class:`Watchdog` tracks the age of the *last message of
  any kind* per shard and escalates a silent worker through
  nudge → SIGTERM → SIGKILL; the kill lands in the existing recovery
  path, so SIGSTOP and deadlocks become recoverable faults instead of
  permanent stalls.

- **Restart discipline.** :class:`RestartBudget` is a token bucket
  (capacity = ``max_restarts``, refill rate 0 by default, which makes
  it behave exactly like the old bare counter); :class:`CircuitBreaker`
  tracks closed/open/half-open per shard and schedules each restart
  attempt with exponential backoff plus *seeded, deterministic* jitter
  (:func:`backoff_delay`) so two runs of the same chaos test restart at
  the same offsets. Breaker state is exported as a gauge
  (``runtime.shard{i}.breaker``: 0 closed, 1 open, 2 half-open).

- **Poison-chunk quarantine.** When the same chunk seq crashes its
  shard ``quarantine_after`` times in a row, the supervisor spills it
  to a CRC'd quarantine WAL (:func:`quarantine_chunk` — same framing as
  the ingest WAL, so the evidence replays) plus a JSON reason record,
  accounts the packet mass, and keeps ingesting. The runtime degrades
  instead of dying; estimates stay calibrated because CSM/MLM de-noise
  with the mass actually landed (``effective_mass``), which never saw
  the quarantined packets.

- **Partial answers.** :class:`PartialEstimate` carries per-shard
  coverage and status for queries that had to skip restarting or
  open-breaker shards, with ``degraded=True`` surfaced through
  ``StreamingRuntime.query(detail=True)``, ``measure()``, and ``serve``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np
import numpy.typing as npt

from repro.obs.registry import MetricsRegistry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.config import CaesarConfig
    from repro.core.sharded import ShardedCaesar
    from repro.runtime.partitioner import ShardMap

__all__ = [
    "DEFAULT_HANG_TIMEOUT",
    "DEFAULT_HEARTBEAT_EVERY",
    "DEFAULT_QUARANTINE_AFTER",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "PartialEstimate",
    "QuarantineRecord",
    "RestartBudget",
    "ShardQueryStatus",
    "Watchdog",
    "WatchdogConfig",
    "backoff_delay",
    "load_quarantine",
    "offline_twin_excluding",
    "quarantine_chunk",
    "sweep_stale_tmp",
]

#: Seconds between worker heartbeats (message plane; off the data path).
DEFAULT_HEARTBEAT_EVERY = 0.25

#: Heartbeat age at which a worker is declared hung. Generous by
#: default: it must exceed the longest legitimate silent stretch (one
#: chunk's compute, a checkpoint write, a deliberate SIGSTOP window in
#: the backpressure tests) by a wide margin. Chaos tests pass much
#: smaller values explicitly.
DEFAULT_HANG_TIMEOUT = 30.0

#: Consecutive crashes attributed to one chunk seq before quarantine.
DEFAULT_QUARANTINE_AFTER = 3

#: Seed for the deterministic restart-backoff jitter.
DEFAULT_JITTER_SEED = 0xBAC0FF

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"

#: Gauge encoding of breaker state (``runtime.shard{i}.breaker``).
BREAKER_LEVELS = {BREAKER_CLOSED: 0, BREAKER_OPEN: 1, BREAKER_HALF_OPEN: 2}

QUARANTINE_WAL = "quarantine.wal"
QUARANTINE_META = "quarantine.json"


# -- restart discipline -------------------------------------------------------


class RestartBudget:
    """Token bucket governing restart attempts for one shard.

    ``capacity`` tokens are available immediately; ``refill_per_s``
    tokens per second flow back (fractional, clamped at capacity). The
    default refill of 0 reduces to the classic ``max_restarts`` counter:
    once the bucket is empty it never refills and the supervisor raises.
    A positive refill turns repeated failure into throttling instead of
    death — the breaker stays open until a token accrues.
    """

    def __init__(self, capacity: int, refill_per_s: float = 0.0) -> None:
        self.capacity = max(int(capacity), 0)
        self.refill_per_s = float(refill_per_s)
        self.tokens = float(self.capacity)
        self._last = time.monotonic()

    def _refill(self, now: float) -> None:
        if self.refill_per_s > 0.0 and now > self._last:
            self.tokens = min(
                self.tokens + (now - self._last) * self.refill_per_s,
                float(self.capacity),
            )
        self._last = now

    def take(self, now: float | None = None) -> bool:
        """Consume one token if available."""
        now = time.monotonic() if now is None else now
        self._refill(now)
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False

    def wait_for_token(self, now: float | None = None) -> float | None:
        """Seconds until one token accrues, or ``None`` if it never will."""
        now = time.monotonic() if now is None else now
        self._refill(now)
        if self.tokens >= 1.0:
            return 0.0
        if self.refill_per_s <= 0.0:
            return None
        return (1.0 - self.tokens) / self.refill_per_s


def backoff_delay(
    consecutive: int,
    *,
    base: float = 0.25,
    max_delay: float = 30.0,
    seed: int = DEFAULT_JITTER_SEED,
    shard: int = 0,
) -> float:
    """Exponential backoff with seeded, deterministic jitter.

    The first failure restarts immediately (delay 0) so a one-off crash
    recovers as fast as the pre-watchdog supervisor did; the ``n``-th
    consecutive failure waits ``base * 2**(n-2)`` (capped) plus a jitter
    draw in ``[0, base)`` from a generator seeded by
    ``(seed, shard, n)`` — fully reproducible, no shared RNG state.
    """
    if consecutive <= 1:
        return 0.0
    delay = min(base * 2.0 ** (consecutive - 2), max_delay)
    jitter = float(np.random.default_rng([seed, shard, consecutive]).uniform(0.0, base))
    return delay + jitter


@dataclass
class CircuitBreaker:
    """Per-shard restart circuit: closed → open (on death) → half-open
    (restarted, on probation) → closed (first sign of life)."""

    state: str = BREAKER_CLOSED
    consecutive: int = 0  # failures without an intervening sign of life
    next_attempt: float = 0.0  # monotonic time before which restarts wait

    def record_failure(
        self,
        now: float,
        *,
        base: float,
        max_delay: float,
        seed: int,
        shard: int,
    ) -> float:
        """Open the breaker and schedule the next restart attempt;
        returns the chosen backoff delay."""
        self.consecutive += 1
        self.state = BREAKER_OPEN
        delay = backoff_delay(
            self.consecutive, base=base, max_delay=max_delay, seed=seed, shard=shard
        )
        self.next_attempt = now + delay
        return delay

    def record_probation(self) -> None:
        """A restart succeeded; stay suspicious until the worker talks."""
        self.state = BREAKER_HALF_OPEN

    def record_success(self) -> None:
        """First post-restart sign of life: close and forget the streak."""
        self.state = BREAKER_CLOSED
        self.consecutive = 0

    @property
    def level(self) -> int:
        return BREAKER_LEVELS[self.state]


# -- hang detection -----------------------------------------------------------


@dataclass(frozen=True)
class WatchdogConfig:
    """Escalation schedule for a silent worker.

    At ``hang_timeout`` seconds of message silence the worker is nudged
    (transport wake-up — a worker merely asleep on a lost doorbell
    recovers here for free); ``term_grace`` seconds later it gets
    SIGTERM; ``kill_grace`` seconds after that, SIGKILL — which lands in
    the supervisor's ordinary death-recovery path.
    """

    hang_timeout: float = DEFAULT_HANG_TIMEOUT
    term_grace: float = 2.0
    kill_grace: float = 2.0

    @classmethod
    def for_timeout(cls, hang_timeout: float) -> "WatchdogConfig":
        """Derive a proportionate schedule from the detection deadline."""
        grace = min(max(hang_timeout / 4.0, 0.2), 2.0)
        return cls(hang_timeout=hang_timeout, term_grace=grace, kill_grace=grace)


class Watchdog:
    """Heartbeat-age tracker + escalation driver (supervisor side).

    Stateless across handles except through the per-handle fields
    ``last_seen`` / ``hang_stage`` (0 = healthy, 1 = nudged,
    2 = SIGTERMed): a handle that talks resets to healthy; one that
    stays silent walks the schedule. :meth:`check` returns ``True``
    when it issued SIGKILL so the caller can run death recovery in the
    same pump instead of waiting a cycle.
    """

    def __init__(self, config: WatchdogConfig, metrics: MetricsRegistry) -> None:
        self.config = config
        self.metrics = metrics

    def observe(self, handle) -> None:
        """Any worker message: refresh liveness, cancel escalation."""
        handle.last_seen = time.monotonic()
        handle.hang_stage = 0

    def check(self, handle, now: float | None = None) -> bool:
        """Escalate one silent handle a step if its deadline passed."""
        import os
        import signal as _signal

        process = handle.process
        if process is None or not process.is_alive():
            return False
        now = time.monotonic() if now is None else now
        age = now - handle.last_seen
        shard = handle.spec.shard_id
        self.metrics.gauge(f"runtime.shard{shard}.heartbeat_age").set(age)
        cfg = self.config
        if handle.hang_stage == 0 and age > cfg.hang_timeout:
            # Stage 1: wake the worker through the transport. A worker
            # that missed a doorbell (not actually hung) recovers here
            # without losing any state.
            handle.channel.nudge()
            handle.hang_stage = 1
            self.metrics.counter("runtime.watchdog.hangs").inc()
            self.metrics.counter("runtime.watchdog.nudges").inc()
        elif handle.hang_stage == 1 and age > cfg.hang_timeout + cfg.term_grace:
            try:
                os.kill(process.pid, _signal.SIGTERM)
            except (ProcessLookupError, OSError):  # pragma: no cover - raced death
                return False
            handle.hang_stage = 2
            self.metrics.counter("runtime.watchdog.sigterms").inc()
        elif handle.hang_stage == 2 and age > (
            cfg.hang_timeout + cfg.term_grace + cfg.kill_grace
        ):
            try:
                os.kill(process.pid, _signal.SIGKILL)
            except (ProcessLookupError, OSError):  # pragma: no cover - raced death
                return False
            handle.hang_stage = 0
            self.metrics.counter("runtime.watchdog.sigkills").inc()
            process.join(timeout=5.0)
            return True
        return False


# -- poison-chunk quarantine --------------------------------------------------


@dataclass(frozen=True)
class QuarantineRecord:
    """One quarantined chunk: provenance plus the packet evidence."""

    shard: int
    seq: int
    n_packets: int
    crashes: int
    reason: str
    packets: npt.NDArray[np.uint64] | None = None
    lengths: npt.NDArray[np.int64] | None = None


def quarantine_chunk(
    state_dir: str | Path,
    shard: int,
    seq: int,
    packets: npt.NDArray[np.uint64],
    lengths: npt.NDArray[np.int64] | None,
    *,
    crashes: int,
    reason: str,
) -> Path:
    """Spill one poison chunk to the shard's CRC'd quarantine WAL.

    Reuses the ingest-WAL chunk framing, so the spilled evidence is
    CRC-protected, torn-tail tolerant, and replayable offline with the
    ordinary WAL tooling. A JSON-lines sidecar records the why.
    """
    from repro.resilience.atomic import fsync_dir
    from repro.resilience.wal import WriteAheadLog
    from repro.runtime.worker import append_ingest_chunk

    state_dir = Path(state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    wal_path = state_dir / QUARANTINE_WAL
    wal = WriteAheadLog(wal_path)
    try:
        append_ingest_chunk(wal, seq, packets, lengths)
        # Evidence of a chunk the runtime is about to *skip* must
        # survive a power cut, not just a process crash.
        wal.sync()
    finally:
        wal.close()
    meta = {
        "shard": shard,
        "seq": seq,
        "packets": int(len(packets)),
        "crashes": int(crashes),
        "reason": reason[-2000:],
    }
    with (state_dir / QUARANTINE_META).open("a", encoding="utf-8") as fh:
        fh.write(json.dumps(meta) + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    fsync_dir(state_dir)
    return wal_path


def load_quarantine(state_dir: str | Path) -> list[QuarantineRecord]:
    """All quarantined chunks under a runtime state dir (all shards)."""
    from repro.resilience.wal import WriteAheadLog
    from repro.runtime.worker import decode_ingest_record

    out: list[QuarantineRecord] = []
    root = Path(state_dir)
    metas = sorted(root.glob(f"shard*/{QUARANTINE_META}"))
    if root.name.startswith("shard") or (root / QUARANTINE_META).exists():
        metas = [root / QUARANTINE_META] + metas
    for meta_path in metas:
        if not meta_path.exists():
            continue
        chunks: dict[int, tuple] = {}
        wal_path = meta_path.parent / QUARANTINE_WAL
        if wal_path.exists() and wal_path.stat().st_size > 0:
            for record in WriteAheadLog.iter_records(wal_path):
                seq, packets, lengths = decode_ingest_record(record)
                chunks[seq] = (packets, lengths)
        for line in meta_path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            meta = json.loads(line)
            packets, lengths = chunks.get(int(meta["seq"]), (None, None))
            out.append(
                QuarantineRecord(
                    shard=int(meta["shard"]),
                    seq=int(meta["seq"]),
                    n_packets=int(meta["packets"]),
                    crashes=int(meta["crashes"]),
                    reason=meta.get("reason", ""),
                    packets=packets,
                    lengths=lengths,
                )
            )
    return out


# -- partial answers ----------------------------------------------------------


@dataclass(frozen=True)
class ShardQueryStatus:
    """How one shard participated in a query.

    ``status`` is one of ``"ok"`` (answered), ``"skipped"`` (restarting
    or breaker-open; never asked), ``"timeout"`` (asked, silent past
    the deadline and one retry). ``coverage`` is the fraction of the
    packet mass sent to this shard that actually reached its counters
    (quarantined chunks subtract; 1.0 for a healthy shard).
    """

    shard: int
    status: str
    coverage: float


@dataclass(frozen=True)
class PartialEstimate:
    """A query answer that may be missing shards or mass.

    ``estimates`` is aligned with the queried flow ids; flows owned by
    a shard that could not answer hold NaN. ``coverage`` is the
    mass-weighted fraction of queried shards' traffic represented in
    the answer. ``degraded`` is True whenever any shard was skipped,
    timed out, or is missing quarantined mass — the signal that the
    caller is looking at a lower bound with a known gap, not a clean
    estimate.
    """

    estimates: npt.NDArray[np.float64]
    degraded: bool
    coverage: float
    shards: tuple[ShardQueryStatus, ...]

    def __len__(self) -> int:
        return len(self.estimates)

    def __array__(self, dtype=None, copy=None) -> np.ndarray:
        est = self.estimates
        if dtype is not None:
            est = est.astype(dtype, copy=False)
        return np.array(est, copy=True) if copy else est


# -- stale-artifact sweeping --------------------------------------------------


def sweep_stale_tmp(state_dir: str | Path) -> int:
    """Remove checkpoint temp files a dying worker left behind.

    ``_save_checkpoint_atomic`` writes ``.tmp_<name>`` then renames; a
    crash between the two leaks the temp file. Safe whenever the shard's
    worker is not running (restart and post-drain paths): a live rename
    never races because the writer is dead.
    """
    swept = 0
    root = Path(state_dir)
    if not root.exists():
        return 0
    for path in root.glob(".tmp_*"):
        path.unlink(missing_ok=True)
        swept += 1
    return swept


# -- offline reconstruction with exclusions -----------------------------------


def offline_twin_excluding(
    config: "CaesarConfig",
    shard_map: "ShardMap",
    stream: npt.NDArray[np.uint64],
    *,
    lengths: npt.NDArray[np.int64] | None = None,
    chunk_packets: int,
    quarantined: "set[tuple[int, int]] | frozenset[tuple[int, int]]",
    divide_budget: bool = True,
) -> "ShardedCaesar":
    """Offline ``ShardedCaesar`` twin of a run that quarantined chunks.

    Re-simulates the runtime's exact ingest: chunk the stream, partition
    each chunk under ``shard_map``, assign per-shard sequence numbers to
    the non-empty subchunks in order, and skip the ``(shard, seq)``
    pairs in ``quarantined``. The result is finalized and bit-identical
    to the degraded deployment's drained state — the verification twin
    for ``serve --verify-offline`` after a poison-chunk fault.

    Assumes the map never changed mid-run (no reshard): sequence
    numbering under a split donor is not reproducible from the final
    map alone.
    """
    from repro.core.sharded import ShardedCaesar
    from repro.runtime.partitioner import StreamPartitioner, chunk_stream

    offline = ShardedCaesar(
        config, None, divide_budget=divide_budget, shard_map=shard_map
    )
    partitioner = StreamPartitioner(shard_map=shard_map)
    seqs = [0] * shard_map.num_shards
    for pkts, lens in chunk_stream(stream, lengths=lengths, chunk_packets=chunk_packets):
        for sid, (sub, sub_lens) in enumerate(partitioner.partition(pkts, lens)):
            if not len(sub):
                continue
            seq = seqs[sid]
            seqs[sid] += 1
            if (sid, seq) in quarantined:
                continue
            offline.shards[sid].process(sub, sub_lens)
    offline.finalize()
    return offline
