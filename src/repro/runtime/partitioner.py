"""RSS-style flow-hash partitioning and stream chunking.

The streaming runtime and the one-shot :class:`~repro.core.sharded.
ShardedScheme` must agree *exactly* on which shard owns which flow —
that agreement is the whole determinism argument (docs/runtime.md): a
flow's packets always land on the same shard, in stream order, so each
shard's substream is independent of chunking, queue depths, and
scheduling interleave. Both layers therefore share this one
:class:`StreamPartitioner`; it reproduces the historical
``ShardedScheme.shard_of`` bit for bit (same hash family, same seed
convention).

:func:`chunk_stream` normalizes every stream shape the ingest paths
accept — one big array, an iterable of packet arrays, or an iterable of
``(packets, lengths)`` pairs — into a uniform sequence of
``(packets, lengths)`` chunks, so the full-array-up-front memory
requirement disappears from every consumer at once.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError
from repro.hashing.family import HashFamily
from repro.types import FlowIdArray

#: Historical default shard seed (kept equal to ``ShardedScheme``'s).
DEFAULT_SHARD_SEED = 0x5AA2D

#: Default packets per chunk when slicing a flat array into a stream.
DEFAULT_CHUNK_PACKETS = 65_536


class StreamPartitioner:
    """Stateless flow → shard map shared by every sharded ingest path."""

    def __init__(self, num_shards: int, *, shard_seed: int = DEFAULT_SHARD_SEED) -> None:
        if num_shards < 1:
            raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
        self.num_shards = int(num_shards)
        self.shard_seed = int(shard_seed)
        self._hash = HashFamily(1, seed=shard_seed)

    def shard_of(self, flow_ids: FlowIdArray) -> npt.NDArray[np.int64]:
        """Which shard owns each flow (RSS-style hash partition)."""
        h = self._hash.hash_array(0, np.asarray(flow_ids, np.uint64))
        return (h % np.uint64(self.num_shards)).astype(np.int64)

    def partition(
        self,
        packets: FlowIdArray,
        lengths: npt.NDArray[np.int64] | None = None,
    ) -> list[tuple[npt.NDArray[np.uint64], npt.NDArray[np.int64] | None]]:
        """Split one chunk into per-shard subchunks, stream order kept.

        Boolean-mask selection preserves the relative order of each
        shard's packets, so concatenating a shard's subchunks over any
        chunking of the stream yields the same substream — the
        chunking-invariance half of the determinism argument.
        """
        packets = np.asarray(packets, dtype=np.uint64)
        owners = self.shard_of(packets)
        out = []
        for s in range(self.num_shards):
            mask = owners == s
            out.append(
                (packets[mask], lengths[mask] if lengths is not None else None)
            )
        return out


def chunk_stream(
    stream: FlowIdArray | Iterable,
    *,
    lengths: npt.NDArray[np.int64] | None = None,
    chunk_packets: int = DEFAULT_CHUNK_PACKETS,
) -> Iterator[tuple[npt.NDArray[np.uint64], npt.NDArray[np.int64] | None]]:
    """Yield ``(packets, lengths)`` chunks from any accepted stream shape.

    ``stream`` may be a flat flow-ID array (sliced into
    ``chunk_packets``-sized chunks, with ``lengths`` sliced alongside),
    or an iterable yielding packet arrays / ``(packets, lengths)``
    pairs (passed through as-is; ``lengths`` must then be ``None``).
    Empty chunks are skipped.
    """
    if chunk_packets < 1:
        raise ConfigError(f"chunk_packets must be >= 1, got {chunk_packets}")
    if isinstance(stream, np.ndarray):
        packets = np.asarray(stream, dtype=np.uint64)
        for start in range(0, len(packets), chunk_packets):
            stop = start + chunk_packets
            chunk = packets[start:stop]
            if len(chunk):
                yield chunk, (lengths[start:stop] if lengths is not None else None)
        return
    if lengths is not None:
        raise ConfigError(
            "lengths= is only valid with a flat packet array; "
            "yield (packets, lengths) pairs from the iterable instead"
        )
    for item in stream:
        if isinstance(item, tuple):
            pkts, lens = item
        else:
            pkts, lens = item, None
        pkts = np.asarray(pkts, dtype=np.uint64)
        if len(pkts):
            yield pkts, (None if lens is None else np.asarray(lens, dtype=np.int64))
