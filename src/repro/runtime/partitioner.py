"""RSS-style flow-hash partitioning, versioned shard maps, chunking.

The streaming runtime and the one-shot :class:`~repro.core.sharded.
ShardedScheme` must agree *exactly* on which shard owns which flow —
that agreement is the whole determinism argument (docs/runtime.md): a
flow's packets always land on the same shard, in stream order, so each
shard's substream is independent of chunking, queue depths, and
scheduling interleave. Both layers therefore share this one
:class:`StreamPartitioner`; it reproduces the historical
``ShardedScheme.shard_of`` bit for bit (same hash family, same seed
convention).

Elastic resharding adds a *versioned* layer on top: a
:class:`ShardMap` is the base RSS partition plus an ordered chain of
:class:`ShardSplit` records. Each split halves exactly one (hot)
shard's flow space with an independent hash bit, so map version
``v+1`` is a **refinement** of version ``v`` — only the donor shard's
flows remap, everyone else's owner is untouched. That refinement is
what makes live shard splits bit-exact: a split shard's successors can
rebuild their substreams purely from the donor's ingest history, and
the final deployment equals an offline run under the final map.

:func:`chunk_stream` normalizes every stream shape the ingest paths
accept — one big array, an iterable of packet arrays, or an iterable of
``(packets, lengths)`` pairs — into a uniform sequence of
``(packets, lengths)`` chunks, so the full-array-up-front memory
requirement disappears from every consumer at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError
from repro.hashing.family import HashFamily
from repro.types import FlowIdArray

#: Historical default shard seed (kept equal to ``ShardedScheme``'s).
DEFAULT_SHARD_SEED = 0x5AA2D

#: Default packets per chunk when slicing a flat array into a stream.
DEFAULT_CHUNK_PACKETS = 65_536


@dataclass(frozen=True)
class ShardSplit:
    """One shard split: ``donor``'s flows re-decide between ``donor``
    and ``child`` with an independent hash bit. ``child`` always equals
    the shard count before the split, so shard IDs stay dense."""

    donor: int
    child: int


@dataclass(frozen=True)
class ShardMap:
    """A versioned, consistent flow → shard map.

    Version 0 is the historical RSS partition ``h0(flow) % num_base``.
    Each :meth:`split` appends a :class:`ShardSplit` and bumps the
    version; split ``k`` re-decides the donor's flows with hash family
    member ``k+1`` (member 0 is the base partition hash, so a map with
    no splits is bit-identical to the historical partitioner).

    Two structural guarantees carry the resharding contract:

    - **refinement** — owners under version ``v+1`` equal owners under
      ``v`` except for the split donor's flows, which land on the donor
      or its child only;
    - **associative composition** — owners depend only on the ordered
      split chain, never on how the chain was built up (splitting
      step by step equals building the full map at once).

    Frozen and picklable: worker processes filter replayed history
    against the map they were born with.
    """

    num_base: int
    shard_seed: int = DEFAULT_SHARD_SEED
    splits: tuple[ShardSplit, ...] = ()

    def __post_init__(self) -> None:
        if self.num_base < 1:
            raise ConfigError(f"num_base must be >= 1, got {self.num_base}")
        count = self.num_base
        for split in self.splits:
            if not 0 <= split.donor < count:
                raise ConfigError(
                    f"split donor {split.donor} out of range for {count} shards"
                )
            if split.child != count:
                raise ConfigError(
                    f"split child must be {count} (the next dense id), "
                    f"got {split.child}"
                )
            count += 1

    @property
    def version(self) -> int:
        """How many splits have been applied (0 = the base map)."""
        return len(self.splits)

    @property
    def num_shards(self) -> int:
        return self.num_base + len(self.splits)

    def split(self, donor: int) -> "ShardMap":
        """The next map version: ``donor``'s flow space halved into
        ``donor`` + a new shard ``self.num_shards``."""
        if not 0 <= donor < self.num_shards:
            raise ConfigError(
                f"split donor {donor} out of range for {self.num_shards} shards"
            )
        return ShardMap(
            num_base=self.num_base,
            shard_seed=self.shard_seed,
            splits=(*self.splits, ShardSplit(donor=donor, child=self.num_shards)),
        )

    def owner_of(self, flow_ids: FlowIdArray) -> npt.NDArray[np.int64]:
        """Which shard owns each flow under this map version."""
        ids = np.asarray(flow_ids, dtype=np.uint64)
        family = _split_family(self.shard_seed, len(self.splits))
        h = family.hash_array(0, ids)
        owners = (h % np.uint64(self.num_base)).astype(np.int64)
        for k, split in enumerate(self.splits):
            mask = owners == split.donor
            if mask.any():
                bit = family.hash_array(k + 1, ids[mask]) & np.uint64(1)
                owners[mask] = np.where(bit == 1, split.child, split.donor)
        return owners

    def describe(self) -> str:
        """Human-readable summary (CLI/log lines)."""
        if not self.splits:
            return f"v0: {self.num_base} shards"
        chain = ", ".join(f"{s.donor}->{s.donor}+{s.child}" for s in self.splits)
        return f"v{self.version}: {self.num_shards} shards ({chain})"


@lru_cache(maxsize=64)
def _split_family(shard_seed: int, num_splits: int) -> HashFamily:
    """Member 0 is the historical base-partition hash; member ``k+1``
    decides split ``k``. Members are derived by iterating splitmix64 on
    the master seed, so growing the family never changes earlier
    members — a map with no splits hashes bit-identically to the
    pre-reshard partitioner."""
    return HashFamily(1 + num_splits, seed=shard_seed)


class StreamPartitioner:
    """Stateless flow → shard map shared by every sharded ingest path.

    Wraps a :class:`ShardMap`; construct from a shard count (the
    historical v0 behaviour) or an explicit map (resharded
    deployments).
    """

    def __init__(
        self,
        num_shards: int | None = None,
        *,
        shard_seed: int = DEFAULT_SHARD_SEED,
        shard_map: ShardMap | None = None,
    ) -> None:
        if shard_map is None:
            if num_shards is None or num_shards < 1:
                raise ConfigError(f"num_shards must be >= 1, got {num_shards}")
            shard_map = ShardMap(num_base=int(num_shards), shard_seed=int(shard_seed))
        elif num_shards is not None and num_shards != shard_map.num_shards:
            raise ConfigError(
                f"num_shards={num_shards} disagrees with shard_map "
                f"({shard_map.num_shards} shards)"
            )
        self.shard_map = shard_map
        self.num_shards = shard_map.num_shards
        self.shard_seed = shard_map.shard_seed

    @property
    def version(self) -> int:
        return self.shard_map.version

    def split(self, donor: int) -> "StreamPartitioner":
        """A new partitioner under the next map version."""
        return StreamPartitioner(shard_map=self.shard_map.split(donor))

    def shard_of(self, flow_ids: FlowIdArray) -> npt.NDArray[np.int64]:
        """Which shard owns each flow (RSS-style hash partition)."""
        return self.shard_map.owner_of(flow_ids)

    def partition(
        self,
        packets: FlowIdArray,
        lengths: npt.NDArray[np.int64] | None = None,
    ) -> list[tuple[npt.NDArray[np.uint64], npt.NDArray[np.int64] | None]]:
        """Split one chunk into per-shard subchunks, stream order kept.

        Boolean-mask selection preserves the relative order of each
        shard's packets, so concatenating a shard's subchunks over any
        chunking of the stream yields the same substream — the
        chunking-invariance half of the determinism argument.
        """
        packets = np.asarray(packets, dtype=np.uint64)
        owners = self.shard_of(packets)
        out = []
        for s in range(self.num_shards):
            mask = owners == s
            out.append(
                (packets[mask], lengths[mask] if lengths is not None else None)
            )
        return out


def chunk_stream(
    stream: FlowIdArray | Iterable,
    *,
    lengths: npt.NDArray[np.int64] | None = None,
    chunk_packets: int = DEFAULT_CHUNK_PACKETS,
) -> Iterator[tuple[npt.NDArray[np.uint64], npt.NDArray[np.int64] | None]]:
    """Yield ``(packets, lengths)`` chunks from any accepted stream shape.

    ``stream`` may be a flat flow-ID array (sliced into
    ``chunk_packets``-sized chunks, with ``lengths`` sliced alongside),
    or an iterable yielding packet arrays / ``(packets, lengths)``
    pairs (passed through as-is; ``lengths`` must then be ``None``).
    Empty chunks are skipped.
    """
    if chunk_packets < 1:
        raise ConfigError(f"chunk_packets must be >= 1, got {chunk_packets}")
    if isinstance(stream, np.ndarray):
        packets = np.asarray(stream, dtype=np.uint64)
        for start in range(0, len(packets), chunk_packets):
            stop = start + chunk_packets
            chunk = packets[start:stop]
            if len(chunk):
                yield chunk, (lengths[start:stop] if lengths is not None else None)
        return
    if lengths is not None:
        raise ConfigError(
            "lengths= is only valid with a flat packet array; "
            "yield (packets, lengths) pairs from the iterable instead"
        )
    for item in stream:
        if isinstance(item, tuple):
            pkts, lens = item
        else:
            pkts, lens = item, None
        pkts = np.asarray(pkts, dtype=np.uint64)
        if len(pkts):
            yield pkts, (None if lens is None else np.asarray(lens, dtype=np.int64))
