"""The zero-copy transport: chunk payloads over shared-memory rings.

The queue transport pickles every chunk through a pipe — serialize,
syscall, copy into the pipe buffer, syscall, copy out, unpickle. At
line rate that transport cost swamps shard parallelism (the backwards
worker scaling in BENCH_micro.json). This transport replaces the data
plane with one ``multiprocessing.shared_memory`` **ring buffer per
shard**: the producer writes the raw NumPy packet bytes straight into
the ring (one memcpy), the worker reads them straight out (one
memcpy), and no pickling, framing allocation, or pipe syscall touches
the hot path. Control and worker messages stay on small queues — they
are rare and tiny; only chunk payloads earn shared memory.

Ring layout (all offsets in bytes)::

    [0 ..  8)   head  — monotonic write counter, producer-owned
    [64 .. 72)  tail  — monotonic read counter, consumer-owned
    [128 .. 128+capacity)  data area

Head and tail are free-running ``uint64`` byte counters (position =
``counter % capacity``), each written by exactly one process — the
classic single-producer/single-consumer ring, no locks. They live 64
bytes apart so the two writers never share a cache line.

Records are 32-byte aligned. Each starts with a fixed-width header row

    ``kind:u32  flags:u32  seq:u64  n_packets:u64  nbytes:u64``

followed by ``nbytes`` of payload: the packet array bytes, then the
length array bytes when present (``FLAG_HAS_LENGTHS``). A record never
straddles the wrap point: when the tail of the buffer is too short,
the producer writes a ``KIND_WRAP`` filler record and continues at
offset zero. Alignment guarantees the filler header always fits.

Chunks larger than half the ring are **fragmented**: split into
``FLAG_MORE``-chained records the worker reassembles before its loop
ever sees the chunk — WAL framing and sequence semantics stay
untouched. (Half the ring, because a wrap filler may precede a record;
``need + fill <= 2*need <= capacity`` guarantees a drained ring always
has room, so the block policy can always make progress.) Under
``shed``/``error`` an oversized chunk can never fit atomically, so it
is shed/raised outright.

Lifecycle: the supervisor's channel owns every segment — it creates a
fresh, uniquely-named ring per worker incarnation, unlinks the old one
on crash restart (a producer killed mid-write leaves an unparseable
ring; abandoning it sidesteps torn records entirely, exactly like the
fresh-queue rule), and unlinks on close. Workers only ever *attach*
and are told not to track the segment, so no cleanup races and no
leaked ``/dev/shm`` entries.
"""

from __future__ import annotations

import struct
import time
import uuid
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from pathlib import Path
from typing import TYPE_CHECKING, Callable

import numpy as np
import numpy.typing as npt

from repro.errors import IngestError
from repro.obs.registry import MetricsRegistry
from repro.runtime.transport import (
    ShardChannel,
    Transport,
    WorkerTransport,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    import multiprocessing.context
    from multiprocessing.queues import Queue
    from multiprocessing.synchronize import Semaphore

__all__ = [
    "DEFAULT_RING_BYTES",
    "RingConsumer",
    "RingProducer",
    "SharedMemoryRingTransport",
    "ShmShardChannel",
    "ShmWorkerTransport",
]

#: Default data capacity of each shard's ring (bytes).
DEFAULT_RING_BYTES = 4 * 1024 * 1024

#: Smallest sane ring: room for the control block plus a few records.
MIN_RING_BYTES = 256

#: Record header: kind, flags, seq, n_packets, payload bytes.
HEADER = struct.Struct("<IIQQQ")

#: Record alignment; equals the header size so a wrap filler always fits.
ALIGN = HEADER.size  # 32

#: Byte offset of the data area (head at 0, tail at 64, one cache line apart).
CTRL_BYTES = 128

KIND_CHUNK = 1
KIND_DRAIN = 2
KIND_WRAP = 3
KIND_SEAL = 4

FLAG_HAS_LENGTHS = 1
FLAG_MORE = 2  # more fragments of this chunk follow

#: Sleep between ring polls (both sides); short because ring operations
#: are memcpys, not syscalls — latency matters more than wakeup cost.
RING_POLL_SECONDS = 0.0005


def _align(n: int) -> int:
    return (n + ALIGN - 1) & ~(ALIGN - 1)


class _RingView:
    """Shared head/tail accounting over one mapped segment."""

    def __init__(self, buf: memoryview, capacity: int) -> None:
        self.buf = buf
        self.capacity = capacity

    @property
    def head(self) -> int:
        return struct.unpack_from("<Q", self.buf, 0)[0]

    @property
    def tail(self) -> int:
        return struct.unpack_from("<Q", self.buf, 64)[0]

    def used(self) -> int:
        return self.head - self.tail


class RingProducer(_RingView):
    """Single-producer side: write records, publish head last."""

    def try_write(
        self,
        kind: int,
        flags: int,
        seq: int,
        n_packets: int,
        payloads: "list[memoryview | bytes]",
        nbytes: int,
    ) -> bool:
        """Write one whole record if it fits *right now*; else ``False``.

        The payload bytes are copied in before the head counter is
        published, so the consumer can never observe a half-written
        record.
        """
        head, tail = self.head, self.tail
        need = _align(HEADER.size + nbytes)
        pos = head % self.capacity
        rem = self.capacity - pos
        fill = rem if rem < need else 0
        if self.capacity - (head - tail) < need + fill:
            return False
        if fill:
            HEADER.pack_into(
                self.buf, CTRL_BYTES + pos, KIND_WRAP, 0, 0, 0, fill - HEADER.size
            )
            head += fill
            pos = 0
        HEADER.pack_into(self.buf, CTRL_BYTES + pos, kind, flags, seq, n_packets, nbytes)
        off = CTRL_BYTES + pos + HEADER.size
        for view in payloads:
            view = memoryview(view).cast("B")
            self.buf[off : off + view.nbytes] = view
            off += view.nbytes
        struct.pack_into("<Q", self.buf, 0, head + need)
        return True


class RingConsumer(_RingView):
    """Single-consumer side: read records, publish tail last."""

    def try_read(self) -> tuple | None:
        """One record as ``(kind, flags, seq, n_packets, payload)`` —
        the payload copied out into a fresh writable buffer — or
        ``None`` when the ring is empty."""
        while True:
            tail = self.tail
            if tail == self.head:
                return None
            pos = tail % self.capacity
            kind, flags, seq, n_packets, nbytes = HEADER.unpack_from(
                self.buf, CTRL_BYTES + pos
            )
            if kind == KIND_WRAP:
                struct.pack_into("<Q", self.buf, 64, tail + HEADER.size + nbytes)
                continue
            start = CTRL_BYTES + pos + HEADER.size
            payload = bytearray(self.buf[start : start + nbytes])
            struct.pack_into("<Q", self.buf, 64, tail + _align(HEADER.size + nbytes))
            return kind, flags, seq, n_packets, payload


def _encode_payload(
    packets: npt.NDArray[np.uint64],
    lengths: npt.NDArray[np.int64] | None,
) -> tuple[list, int, int]:
    """Chunk arrays → (payload views, total bytes, flags); no copies."""
    views: list = [np.ascontiguousarray(packets)]
    nbytes = packets.size * 8
    flags = 0
    if lengths is not None:
        views.append(np.ascontiguousarray(lengths))
        nbytes += lengths.size * 8
        flags |= FLAG_HAS_LENGTHS
    return views, nbytes, flags


def _decode_payload(
    payload: bytearray, n_packets: int, flags: int
) -> tuple[npt.NDArray[np.uint64], npt.NDArray[np.int64] | None]:
    """Invert :func:`_encode_payload` over the copied-out buffer."""
    packets = np.frombuffer(payload, dtype=np.uint64, count=n_packets)
    lengths = None
    if flags & FLAG_HAS_LENGTHS:
        lengths = np.frombuffer(
            payload, dtype=np.int64, count=n_packets, offset=n_packets * 8
        )
    return packets, lengths


@dataclass
class ShmWorkerTransport(WorkerTransport):
    """Worker end: attach the ring by name, reassemble fragments.

    ``doorbell`` is a semaphore the producer releases once per record
    written: the worker blocks on it (futex wait, zero CPU) instead of
    sleep-polling the ring — on few-core machines a polling consumer
    steals exactly the cycles the busy shard needs.
    """

    shm_name: str
    capacity: int
    doorbell: "Semaphore"
    control: "Queue"
    outbox: "Queue"
    _shm: shared_memory.SharedMemory | None = field(default=None, repr=False)
    _ring: RingConsumer | None = field(default=None, repr=False)

    def open(self) -> None:
        try:
            # 3.13+: opt out of resource tracking at attach; the
            # supervisor's channel owns the segment's lifetime.
            self._shm = shared_memory.SharedMemory(name=self.shm_name, track=False)
        except TypeError:
            # Older interpreters register attaches too, but the resource
            # tracker is one process shared across the tree and its cache
            # is a set — the supervisor's unlink unregisters exactly once.
            self._shm = shared_memory.SharedMemory(name=self.shm_name)
        self._ring = RingConsumer(self._shm.buf, self.capacity)

    def recv_data(self, timeout: float) -> tuple | None:
        deadline = time.monotonic() + timeout
        frags: bytearray | None = None
        waited = False
        while True:
            rec = self._ring.try_read()
            if rec is None:
                if frags is not None:
                    # Mid-chunk the producer is actively writing (we are
                    # the only consumer, so it cannot be blocked on us):
                    # wait for the rest instead of surfacing a torn chunk.
                    self.doorbell.acquire(timeout=RING_POLL_SECONDS)
                    continue
                remaining = deadline - time.monotonic()
                if waited or remaining <= 0:
                    # A wake without a record means the doorbell rang for
                    # a control message (send_control rings it too) —
                    # surface so the caller's loop polls the control
                    # plane instead of riding out the timeout.
                    return None
                self.doorbell.acquire(timeout=remaining)
                waited = True
                continue
            waited = False
            kind, flags, seq, n_packets, payload = rec
            if kind == KIND_DRAIN:
                return ("drain",)
            if kind == KIND_SEAL:
                return ("seal",)
            if frags is None and not flags & FLAG_MORE:
                packets, lengths = _decode_payload(payload, n_packets, flags)
                return ("chunk", seq, packets, lengths)
            frags = payload if frags is None else frags + payload
            if flags & FLAG_MORE:
                continue
            packets, lengths = _decode_payload(frags, n_packets, flags)
            return ("chunk", seq, packets, lengths)

    def recv_control(self) -> tuple | None:
        import queue as queue_mod

        try:
            return self.control.get_nowait()
        except queue_mod.Empty:
            return None

    def send(self, message: tuple) -> None:
        self.outbox.put(message)

    def close(self) -> None:
        self._ring = None
        if self._shm is not None:
            self._shm.close()
            self._shm = None


class ShmShardChannel(ShardChannel):
    """Supervisor end: segment lifecycle, zero-copy sends, fragmentation."""

    def __init__(
        self,
        shard_id: int,
        *,
        ring_bytes: int,
        ctx: "multiprocessing.context.BaseContext",
        policy: str = "block",
        registry: MetricsRegistry,
        stall_hook: Callable[[], None] | None = None,
    ) -> None:
        super().__init__(
            shard_id, policy=policy, registry=registry, stall_hook=stall_hook
        )
        self.capacity = ring_bytes & ~(ALIGN - 1)
        # A record (header + payload + possible wrap filler) must fit a
        # drained ring, so single records are capped at half capacity.
        self.max_payload = self.capacity // 2 - 2 * HEADER.size
        self._ctx = ctx
        # Per-channel namespace: every incarnation's segment shares this
        # prefix and no other channel's (not even the same shard id in a
        # concurrent runtime), so sweep_orphans can reclaim crashed
        # incarnations' leaks without ever touching a stranger's segment.
        # Kept short: POSIX shm names have tight limits on some OSes.
        self.segment_prefix = f"repro-s{shard_id}-{uuid.uuid4().hex[:6]}-"
        self._shm: shared_memory.SharedMemory | None = None
        self._ring: RingProducer | None = None
        self._doorbell: "Semaphore | None" = None
        self._control: "Queue | None" = None
        self._outbox: "Queue | None" = None

    # -- lifecycle ----------------------------------------------------------

    def open(self) -> ShmWorkerTransport:
        self.incarnation += 1
        name = f"{self.segment_prefix}i{self.incarnation}-{uuid.uuid4().hex[:6]}"
        self._shm = shared_memory.SharedMemory(
            name=name, create=True, size=CTRL_BYTES + self.capacity
        )
        self._shm.buf[:CTRL_BYTES] = bytes(CTRL_BYTES)  # head = tail = 0
        self._ring = RingProducer(self._shm.buf, self.capacity)
        self._doorbell = self._ctx.Semaphore(0)
        self._control = self._ctx.Queue()
        self._outbox = self._ctx.Queue()
        return ShmWorkerTransport(
            name, self.capacity, self._doorbell, self._control, self._outbox
        )

    def abandon(self) -> None:
        self._ring = None
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            self._shm = None
        for q in (self._control, self._outbox):
            if q is not None:
                q.close()
                q.cancel_join_thread()
        self._control = self._outbox = self._doorbell = None

    def close(self) -> None:
        self.abandon()
        self.sweep_orphans()

    def sweep_orphans(self) -> int:
        """Unlink segments from this channel's *past* incarnations.

        ``abandon`` already unlinks on the normal restart path; this
        catches what slips through it — a supervisor process that died
        between ``open`` and ``abandon``, or an unlink raced by a crash
        — by scanning ``/dev/shm`` for this channel's unique namespace
        prefix. The live incarnation's segment is skipped; unlinking is
        a plain file remove, so no resource-tracker registration churn.
        """
        shm_dir = Path("/dev/shm")
        if not shm_dir.is_dir():  # pragma: no cover - non-Linux
            return 0
        live = None if self._shm is None else self._shm.name
        swept = 0
        for path in shm_dir.glob(f"{self.segment_prefix}*"):
            if path.name == live:
                continue
            try:
                path.unlink()
                swept += 1
            except OSError:  # pragma: no cover - raced by another sweep
                continue
        return swept

    # -- data plane ---------------------------------------------------------

    def _offer_chunk(
        self,
        seq: int,
        packets: npt.NDArray[np.uint64],
        lengths: npt.NDArray[np.int64] | None,
        wait: float,
    ) -> bool:
        views, nbytes, flags = _encode_payload(packets, lengths)
        deadline = time.monotonic() + wait
        while True:
            ring = self._ring
            if ring is not None and ring.try_write(
                KIND_CHUNK, flags, seq, len(packets), views, nbytes
            ):
                self._doorbell.release()
                return True
            if wait <= 0 or time.monotonic() >= deadline:
                return False
            time.sleep(RING_POLL_SECONDS)

    def _chunk_fits(self, packets, lengths) -> bool:
        nbytes = len(packets) * (8 if lengths is None else 16)
        return nbytes <= self.max_payload

    def send_chunk(self, seq, packets, lengths) -> bool:
        if self._chunk_fits(packets, lengths):
            return super().send_chunk(seq, packets, lengths)
        # Oversized: only the lossless block policy can stream it through
        # in fragments; shed/error need whole-chunk atomicity.
        if self.policy == "shed":
            self.metrics.counter("runtime.backpressure.shed_chunks").inc()
            self.metrics.counter("runtime.backpressure.shed_packets").inc(len(packets))
            return False
        if self.policy == "error":
            raise IngestError(
                f"shard {self.shard_id}: chunk of {len(packets)} packets exceeds "
                f"the ring's {self.max_payload}-byte record cap; raise ring_bytes "
                "or lower chunk_packets (backpressure policy 'error')"
            )
        self._stream_fragments(seq, packets, lengths)
        return True

    def send_chunk_required(
        self, seq, packets, lengths, timeout: float = 60.0, abort=None
    ) -> bool:
        if self._chunk_fits(packets, lengths):
            return super().send_chunk_required(seq, packets, lengths, timeout, abort)
        # Oversized fragment streaming has no abort hook: a dead reader
        # is detected by the stall hook's pump swapping the ring, and the
        # bounded timeout still applies.
        self._stream_fragments(seq, packets, lengths, timeout=timeout)
        return True

    def _stream_fragments(
        self,
        seq: int,
        packets: npt.NDArray[np.uint64],
        lengths: npt.NDArray[np.int64] | None,
        timeout: float | None = None,
    ) -> None:
        """Stream one oversized chunk as ``FLAG_MORE``-chained records.

        If a worker restart swaps the ring mid-chunk (the stall hook
        runs the supervisor pump), partially written fragments died
        with the old segment — start the whole chunk over on the fresh
        one; the worker only ever sees complete reassembled chunks.
        """
        _views, _nbytes, base_flags = _encode_payload(packets, lengths)
        blob = b"".join(memoryview(v).cast("B") for v in _views)
        step = self.max_payload & ~(ALIGN - 1)
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            incarnation = self.incarnation
            restarted = False
            for start in range(0, len(blob), step):
                frag = memoryview(blob)[start : start + step]
                more = FLAG_MORE if start + step < len(blob) else 0
                while not self._ring.try_write(
                    KIND_CHUNK, base_flags | more, seq, len(packets), [frag], frag.nbytes
                ):
                    self._record_stall(RING_POLL_SECONDS)
                    time.sleep(RING_POLL_SECONDS)
                    if deadline is not None and time.monotonic() > deadline:
                        raise IngestError(
                            f"shard {self.shard_id} ring stayed full for {timeout:.0f}s"
                        )
                    if self.incarnation != incarnation:
                        restarted = True
                        break
                if restarted:
                    break
                self._doorbell.release()
            if not restarted:
                return

    def _send_marker(self, kind: int, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while not self._ring.try_write(kind, 0, 0, 0, [], 0):
            self._record_stall(RING_POLL_SECONDS, count=False)
            time.sleep(RING_POLL_SECONDS)
            if time.monotonic() > deadline:
                raise IngestError(
                    f"shard {self.shard_id} ring stayed full for {timeout:.0f}s"
                )
        self._doorbell.release()

    def send_drain(self, timeout: float = 60.0) -> None:
        self._send_marker(KIND_DRAIN, timeout)

    def send_seal(self, timeout: float = 60.0) -> None:
        self._send_marker(KIND_SEAL, timeout)

    # -- control plane ------------------------------------------------------

    def send_control(self, message: tuple) -> None:
        self._control.put(message)
        # Ring the doorbell too: a worker idling in its data wait wakes
        # immediately instead of riding out the poll timeout (a spurious
        # wake is just one extra empty try_read).
        if self._doorbell is not None:
            self._doorbell.release()

    def nudge(self) -> None:
        # The put above is asynchronous (mp.Queue feeder thread): the
        # doorbell can ring before the message lands and the worker goes
        # back to sleep. Re-ringing is cheap and idempotent — a spurious
        # wake is one empty try_read plus one control poll.
        if self._doorbell is not None:
            self._doorbell.release()

    # -- message plane ------------------------------------------------------

    def poll(self) -> list[tuple]:
        import queue as queue_mod

        out: list[tuple] = []
        if self._outbox is None:
            return out
        while True:
            try:
                out.append(self._outbox.get_nowait())
            except (queue_mod.Empty, OSError, ValueError):
                return out

    def recv(self, timeout: float) -> tuple | None:
        import queue as queue_mod

        try:
            return self._outbox.get(timeout=timeout)
        except queue_mod.Empty:
            return None

    # -- observability ------------------------------------------------------

    def data_depth(self) -> int | None:
        ring = self._ring
        return None if ring is None else ring.used()

    def data_fill(self) -> float | None:
        depth = self.data_depth()
        return None if depth is None else min(depth / self.capacity, 1.0)

    @property
    def segment_name(self) -> str | None:
        """The live segment's name (introspection/leak tests)."""
        return None if self._shm is None else self._shm.name


@dataclass(frozen=True)
class SharedMemoryRingTransport(Transport):
    """The zero-copy shared-memory ring transport."""

    ring_bytes: int = DEFAULT_RING_BYTES
    name: str = field(default="shm", init=False)

    def __post_init__(self) -> None:
        if self.ring_bytes < MIN_RING_BYTES:
            raise IngestError(
                f"ring_bytes must be >= {MIN_RING_BYTES}, got {self.ring_bytes}"
            )

    def channel(
        self,
        shard_id: int,
        *,
        ctx: "multiprocessing.context.BaseContext",
        policy: str,
        registry: MetricsRegistry,
        stall_hook: Callable[[], None] | None = None,
    ) -> ShmShardChannel:
        return ShmShardChannel(
            shard_id,
            ring_bytes=self.ring_bytes,
            ctx=ctx,
            policy=policy,
            registry=registry,
            stall_hook=stall_hook,
        )
