"""The streaming runtime facade: ingest, query, drain, recover.

:class:`StreamingRuntime` is the deployment-shaped entry point the
one-shot paths lack: ``W`` long-lived worker processes (one CAESAR
shard each, configs derived exactly as :class:`~repro.core.sharded.
ShardedCaesar` derives them), fed through a pluggable transport — the
zero-copy shared-memory ring data plane by default, bounded pickled
queues on request — with a backpressure policy, answering live queries
mid-ingest, and supervised
— a SIGKILLed worker is restarted from its newest checkpoint plus
ingest-WAL replay, then re-fed whatever it lost, finishing
bit-identically to a run that never crashed.

Usage::

    config = CaesarConfig.for_budgets(...)
    with StreamingRuntime(config, num_shards=4, state_dir=d) as rt:
        for chunk in packet_source:
            rt.ingest(chunk)
            live = rt.query(watchlist)        # mid-ingest estimates
        result = rt.drain()                   # finalize all shards
        final = rt.query(all_flows)           # offline estimates
    offline = result.load_scheme()            # local ShardedCaesar twin

Determinism contract (docs/runtime.md): with the default ``"block"``
backpressure policy, ``rt.drain()``'s per-shard states — estimates *and*
checkpoint digests — equal a single-process
``ShardedCaesar(config, W).process(stream)`` run bit for bit, for every
engine and every transport, regardless of chunk sizes, channel
capacities, scheduling interleave, or how many workers were killed
along the way.
"""

from __future__ import annotations

import os
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

import numpy as np
import numpy.typing as npt

from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.core.sharded import ShardedCaesar, shard_caesar_config
from repro.errors import ConfigError, IngestError
from repro.obs.registry import MetricsRegistry, resolve_registry
from repro.resilience.async_ckpt import CHECKPOINT_MODES
from repro.runtime.partitioner import (
    DEFAULT_CHUNK_PACKETS,
    DEFAULT_SHARD_SEED,
    ShardMap,
    StreamPartitioner,
    chunk_stream,
)
from repro.runtime.planner import DEFAULT_SUSTAIN, ReshardPlanner
from repro.runtime.supervisor import DEFAULT_QUEUE_DEPTH, ShardSupervisor
from repro.runtime.transport import (
    DEFAULT_ACK_EVERY,
    DEFAULT_TRANSPORT,
    Transport,
    resolve_transport,
)
from repro.runtime.watchdog import (
    DEFAULT_HANG_TIMEOUT,
    DEFAULT_HEARTBEAT_EVERY,
    DEFAULT_QUARANTINE_AFTER,
    PartialEstimate,
    ShardQueryStatus,
    WatchdogConfig,
)
from repro.runtime.worker import WorkerSpec
from repro.resilience.faults import FaultPlan
from repro.types import FlowIdArray


@dataclass(frozen=True)
class RuntimeResult:
    """What :meth:`StreamingRuntime.drain` returns.

    Carries the per-shard final checkpoint digests (the bit-identity
    witnesses) and enough provenance to rebuild an offline twin of the
    deployment with :meth:`load_scheme`.
    """

    config: CaesarConfig
    num_shards: int
    divide_budget: bool
    shard_seed: int
    shard_digests: tuple[str, ...]
    checkpoint_paths: tuple[str, ...]
    num_packets: int
    restarts: int
    shard_map: ShardMap | None = None  # the final (possibly split) map
    reshards: int = 0  # splits performed during the run
    # Chunks the watchdog quarantined as poison: (shard, seq, n_packets).
    # Their packets were never applied — account for them (or replay them
    # after a fix) via repro.runtime.watchdog.load_quarantine.
    quarantined: tuple[tuple[int, int, int], ...] = ()

    @property
    def degraded(self) -> bool:
        """True when the run finished without some of its input (poison
        chunks were quarantined instead of applied)."""
        return bool(self.quarantined)

    @property
    def quarantined_packets(self) -> int:
        return sum(n for _, _, n in self.quarantined)

    @property
    def quarantined_chunks(self) -> int:
        return len(self.quarantined)

    def load_scheme(self, *, registry: MetricsRegistry | None = None) -> ShardedCaesar:
        """Rebuild the deployment locally from the final checkpoints.

        The returned :class:`ShardedCaesar` is finalized and queryable
        offline, and is bit-identical to the workers' final states —
        the runtime's answer to "hand me the finished measurement". A
        resharded run rebuilds under its *final* shard map, so query
        routing matches the split deployment exactly.
        """
        scheme = ShardedCaesar(
            self.config,
            self.num_shards if self.shard_map is None else None,
            divide_budget=self.divide_budget,
            shard_seed=self.shard_seed,
            shard_map=self.shard_map,
            registry=registry,
        )
        scheme.shards = [Caesar.resume(path) for path in self.checkpoint_paths]
        scheme._finalized = True
        return scheme


class StreamingRuntime:
    """``W`` supervised shard workers behind one ingest/query facade."""

    def __init__(
        self,
        config: CaesarConfig,
        num_shards: int,
        *,
        state_dir: str | Path,
        divide_budget: bool = True,
        shard_seed: int = DEFAULT_SHARD_SEED,
        transport: "str | Transport" = DEFAULT_TRANSPORT,
        queue_depth: int = DEFAULT_QUEUE_DEPTH,
        ring_bytes: int | None = None,
        backpressure: str = "block",
        checkpoint_every: int = 4,
        checkpoint_mode: str = "async",
        checkpoint_level: int = 1,
        ack_every: int = DEFAULT_ACK_EVERY,
        registry: MetricsRegistry | None = None,
        start_method: str | None = None,
        max_restarts: int = 3,
        compute_slots: int | None = None,
        reshard_above: float | None = None,
        reshard_sustain: int = DEFAULT_SUSTAIN,
        max_shards: int | None = None,
        heartbeat_every: float = DEFAULT_HEARTBEAT_EVERY,
        hang_timeout: float | None = DEFAULT_HANG_TIMEOUT,
        restart_refill_per_s: float = 0.0,
        restart_backoff_base: float = 0.25,
        quarantine_after: int = DEFAULT_QUARANTINE_AFTER,
        query_deadline: float = 60.0,
        worker_faults: "dict[int, FaultPlan] | None" = None,
    ) -> None:
        self.config = config
        self.num_shards = int(num_shards)
        self.divide_budget = divide_budget
        self.shard_seed = shard_seed
        self.state_dir = Path(state_dir)
        self.partitioner = StreamPartitioner(num_shards, shard_seed=shard_seed)
        self.checkpoint_every = checkpoint_every
        if checkpoint_mode not in CHECKPOINT_MODES:
            raise ConfigError(
                f"checkpoint_mode must be one of {CHECKPOINT_MODES}, "
                f"got {checkpoint_mode!r}"
            )
        if not 0 <= int(checkpoint_level) <= 9:
            raise ConfigError(
                f"checkpoint_level must be in [0, 9], got {checkpoint_level}"
            )
        self.checkpoint_mode = checkpoint_mode
        self.checkpoint_level = int(checkpoint_level)
        self.ack_every = ack_every
        if max_shards is not None and max_shards < self.num_shards:
            raise ConfigError(
                f"max_shards={max_shards} is below num_shards={num_shards}"
            )
        self.max_shards = max_shards
        # Hot-shard detection: watch sustained data-plane fill and split
        # the offender (see repro.runtime.planner). Off unless asked for.
        self._planner = (
            None
            if reshard_above is None
            else ReshardPlanner(
                threshold=reshard_above,
                sustain=reshard_sustain,
                max_shards=max_shards,
            )
        )
        self.metrics = resolve_registry(registry)
        self.transport = resolve_transport(
            transport, queue_depth=queue_depth, ring_bytes=ring_bytes
        )
        self.heartbeat_every = heartbeat_every
        self.query_deadline = query_deadline
        faults = worker_faults or {}
        specs = [
            WorkerSpec(
                shard_id=i,
                config=shard_caesar_config(
                    config, i, num_shards, divide_budget=divide_budget
                ),
                state_dir=str(self.state_dir / f"shard{i}"),
                checkpoint_every=checkpoint_every,
                checkpoint_mode=checkpoint_mode,
                checkpoint_level=self.checkpoint_level,
                ack_every=ack_every,
                heartbeat_every=heartbeat_every,
                fault_plan=faults.get(i),
            )
            for i in range(self.num_shards)
        ]
        self.supervisor = ShardSupervisor(
            specs,
            transport=self.transport,
            backpressure=backpressure,
            registry=registry,
            max_restarts=max_restarts,
            start_method=start_method,
            compute_slots=compute_slots,
            restart_refill_per_s=restart_refill_per_s,
            restart_backoff_base=restart_backoff_base,
            quarantine_after=quarantine_after,
            watchdog=(
                None if hang_timeout is None else WatchdogConfig.for_timeout(hang_timeout)
            ),
        )
        self._started = False
        self._drained = False
        self._result: RuntimeResult | None = None
        self._next_qid = 0
        self._t0 = 0.0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "StreamingRuntime":
        """Spawn (or recover) every shard worker; idempotent."""
        if not self._started:
            self.state_dir.mkdir(parents=True, exist_ok=True)
            self.supervisor.start()
            self._started = True
            self._t0 = time.perf_counter()
        return self

    def __enter__(self) -> "StreamingRuntime":
        return self.start()

    def __exit__(self, *exc: object) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        """Stop all workers (graceful, then hard). State files remain —
        a new runtime over the same ``state_dir`` recovers them."""
        if self._started:
            self.supervisor.stop()
            self._started = False

    def _require(self, started: bool = True, not_drained: bool = False) -> None:
        if started and not self._started:
            raise IngestError("runtime is not started (call start() or use `with`)")
        if not_drained and self._drained:
            raise IngestError("runtime is drained; no further ingest is possible")

    # -- ingest -------------------------------------------------------------

    def ingest(
        self,
        packets: FlowIdArray,
        lengths: npt.NDArray[np.int64] | None = None,
    ) -> int:
        """Partition one chunk across the shard queues.

        Returns the number of packets accepted (less than ``len(packets)``
        only under the ``"shed"`` backpressure policy).
        """
        self._require(not_drained=True)
        packets = np.asarray(packets, dtype=np.uint64)
        accepted = 0
        pending: tuple | None = (packets, lengths)
        while pending is not None:
            pkts_all, lens_all = pending
            version = self.partitioner.version
            parts = self.partitioner.partition(pkts_all, lens_all)
            pending = None
            for shard, (pkts, lens) in enumerate(parts):
                if not len(pkts):
                    continue
                if self.supervisor.send_chunk(shard, pkts, lens):
                    accepted += len(pkts)
                if self.partitioner.version != version:
                    # A reshard cut over mid-call (a blocked send pumps
                    # the supervisor, and the pump may finish a split):
                    # the not-yet-sent remainder was partitioned under
                    # the retired map — re-partition it under the new
                    # one. Refinement makes this safe: non-donor
                    # subchunks land on the same shard either way, and
                    # per-flow order is preserved (each flow lives in
                    # exactly one unsent subchunk).
                    rest = [p for p in parts[shard + 1 :] if len(p[0])]
                    if rest:
                        pending = (
                            np.concatenate([p for p, _ in rest]),
                            None
                            if lens_all is None
                            else np.concatenate([ln for _, ln in rest]),
                        )
                    break
        self._maybe_plan_reshard()
        return accepted

    def _maybe_plan_reshard(self) -> None:
        """One hot-shard planner observation per ingest call."""
        if (
            self._planner is None
            or self._drained
            or self.supervisor.reshard_in_progress
        ):
            return
        donor = self._planner.observe(self.supervisor.shard_fills())
        if donor is not None and (
            self.max_shards is None or self.num_shards < self.max_shards
        ):
            self.begin_reshard(donor)

    def ingest_stream(
        self,
        stream: FlowIdArray | Iterable,
        *,
        lengths: npt.NDArray[np.int64] | None = None,
        chunk_packets: int = DEFAULT_CHUNK_PACKETS,
    ) -> int:
        """Feed a whole stream (any :func:`chunk_stream` shape) chunk by
        chunk; returns total packets accepted."""
        accepted = 0
        for pkts, lens in chunk_stream(
            stream, lengths=lengths, chunk_packets=chunk_packets
        ):
            accepted += self.ingest(pkts, lens)
        return accepted

    # -- elastic resharding --------------------------------------------------

    @property
    def shard_map(self) -> ShardMap:
        """The versioned flow → shard map currently in force."""
        return self.partitioner.shard_map

    @property
    def reshard_in_progress(self) -> bool:
        return self.supervisor.reshard_in_progress

    def begin_reshard(self, donor: int) -> None:
        """Split shard ``donor`` live: seal it, boot two successors from
        its checkpointed WAL history, flip to the next map version, and
        re-feed anything held in flight — all while the other shards
        keep ingesting. Asynchronous: driven forward by subsequent
        :meth:`ingest` / :meth:`query` / :meth:`drain` calls (or
        :meth:`finish_reshard` to block on completion).
        """
        self._require(not_drained=True)
        if self.max_shards is not None and self.num_shards >= self.max_shards:
            raise IngestError(
                f"cannot split: already at max_shards={self.max_shards}"
            )
        new_map = self.partitioner.shard_map.split(donor)
        child = new_map.num_shards - 1
        donor_spec = self.supervisor.handles[donor].spec
        version = new_map.version

        def make_specs(sealed_seq: int) -> tuple[WorkerSpec, WorkerSpec]:
            # The successors' ancestry: every WAL the donor itself was
            # born from, plus the donor's own (sealed, now-immutable)
            # WAL — recursive splits just grow the chain.
            history = (*donor_spec.history_wals, str(donor_spec.wal_path))
            spec_a, spec_b = (
                WorkerSpec(
                    shard_id=sid,
                    # Budget still divides by the *base* count: a split
                    # scales out; untouched shards' configs never move.
                    config=shard_caesar_config(
                        self.config,
                        sid,
                        new_map.num_base,
                        divide_budget=self.divide_budget,
                    ),
                    state_dir=str(self.state_dir / f"shard{sid}.v{version}"),
                    checkpoint_every=self.checkpoint_every,
                    checkpoint_mode=self.checkpoint_mode,
                    checkpoint_level=self.checkpoint_level,
                    ack_every=self.ack_every,
                    heartbeat_every=self.heartbeat_every,
                    history_wals=history,
                    history_through=sealed_seq,
                    shard_map=new_map,
                )
                for sid in (donor, child)
            )
            return spec_a, spec_b

        def on_cutover(map_: ShardMap) -> None:
            self.partitioner = StreamPartitioner(shard_map=map_)
            self.num_shards = map_.num_shards

        self.supervisor.begin_reshard(donor, make_specs, on_cutover)

    def finish_reshard(self, timeout: float = 300.0) -> None:
        """Block until any in-flight reshard fully completes."""
        self._require()
        self.supervisor.finish_reshard(timeout=timeout)

    # -- queries ------------------------------------------------------------

    def query(
        self,
        flow_ids: FlowIdArray,
        method: str = "csm",
        *,
        deadline: float | None = None,
        detail: bool = False,
    ) -> "npt.NDArray[np.float64] | PartialEstimate":
        """Per-flow estimates from the live workers, in input order.

        Mid-ingest this is the approximate online estimate (flushed SRAM
        state plus cached residue — see ``Caesar.estimate_online``);
        after :meth:`drain` it is the exact offline estimate.

        The query plane degrades instead of hanging: shards that are
        mid-restart or behind an open circuit breaker are *skipped*, and
        shards that miss the per-query ``deadline`` (default: the
        runtime's ``query_deadline``) get exactly one retry with a fresh
        window before their flows are reported as ``NaN``. Pass
        ``detail=True`` to get a :class:`PartialEstimate` carrying the
        per-shard status and mass coverage alongside the estimates;
        otherwise just the (possibly NaN-holed) array is returned.
        """
        self._require()
        window = self.query_deadline if deadline is None else float(deadline)
        t_end = time.monotonic() + window
        flow_ids = np.asarray(flow_ids, dtype=np.uint64)
        owners = self.partitioner.shard_of(flow_ids)
        out = np.full(len(flow_ids), np.nan, dtype=np.float64)
        statuses: dict[int, str] = {}
        masks: dict[int, npt.NDArray[np.bool_]] = {}
        asked = []
        for shard in range(self.num_shards):
            mask = owners == shard
            if not mask.any():
                continue
            masks[shard] = mask
            if not self.supervisor.shard_available(shard):
                statuses[shard] = "skipped"
                continue
            qid = self._next_qid
            self._next_qid += 1
            self.supervisor.ask(shard, qid, flow_ids[mask], method)
            asked.append((shard, qid, mask))
        timed_out = []
        for shard, qid, mask in asked:
            reply = self.supervisor.try_collect_reply(shard, qid, t_end)
            if reply is None:
                self.supervisor.cancel_query(shard, qid)
                timed_out.append((shard, mask))
            else:
                out[mask] = reply
                statuses[shard] = "ok"
        # One retry round for shards that missed the window (typically
        # mid-restart when first asked): fresh qid, fresh window.
        if timed_out:
            t_retry = time.monotonic() + window
            for shard, mask in timed_out:
                if not self.supervisor.shard_available(shard):
                    statuses[shard] = "timeout"
                    continue
                qid = self._next_qid
                self._next_qid += 1
                self.supervisor.ask(shard, qid, flow_ids[mask], method)
                reply = self.supervisor.try_collect_reply(shard, qid, t_retry)
                if reply is None:
                    self.supervisor.cancel_query(shard, qid)
                    statuses[shard] = "timeout"
                else:
                    out[mask] = reply
                    statuses[shard] = "ok"
        shards = tuple(
            ShardQueryStatus(
                shard=s,
                status=statuses[s],
                coverage=self.supervisor.shard_coverage(s),
            )
            for s in sorted(statuses)
        )
        degraded = any(s.status != "ok" or s.coverage < 1.0 for s in shards)
        if degraded:
            self.metrics.counter("runtime.query.degraded").inc()
        if not detail:
            return out
        # Overall coverage: per-flow-weighted mass coverage, with flows
        # on unanswered shards contributing zero.
        total = len(flow_ids)
        covered = sum(
            int(masks[s.shard].sum()) * (s.coverage if s.status == "ok" else 0.0)
            for s in shards
        )
        return PartialEstimate(
            estimates=out,
            degraded=degraded,
            coverage=covered / total if total else 1.0,
            shards=shards,
        )

    # -- drain --------------------------------------------------------------

    def drain(self, timeout: float = 300.0) -> RuntimeResult:
        """Flush every shard to its final state and finalize (idempotent).

        Workers stay alive afterwards to answer offline queries until
        :meth:`shutdown`.
        """
        self._require()
        if self._result is not None:
            return self._result
        self.supervisor.send_drain()
        self.supervisor.wait_finalized(timeout=timeout)
        # Land the durability-lag gauges in the final metrics export.
        self.supervisor.checkpoint_ages()
        elapsed = max(time.perf_counter() - self._t0, 1e-9)
        packets_sent = self.metrics.counter("runtime.packets_sent").value
        self.metrics.gauge("runtime.ingest.packets_per_second").set(
            packets_sent / elapsed
        )
        handles = self.supervisor.handles
        quarantined = tuple(
            (h.spec.shard_id, seq, n_packets)
            for h in handles
            for seq, n_packets in h.quarantined
        )
        self._result = RuntimeResult(
            config=self.config,
            num_shards=self.num_shards,
            divide_budget=self.divide_budget,
            shard_seed=self.shard_seed,
            shard_digests=tuple(h.finalized[0] for h in handles),
            checkpoint_paths=tuple(h.finalized[1] for h in handles),
            num_packets=sum(h.finalized[2] for h in handles),
            restarts=sum(h.restarts for h in handles),
            shard_map=self.partitioner.shard_map,
            reshards=self.partitioner.shard_map.version,
            quarantined=quarantined,
        )
        self._drained = True
        return self._result

    # -- chaos / introspection ----------------------------------------------

    def worker_pid(self, shard: int) -> int:
        """The live process ID of one shard worker (chaos testing)."""
        self._require()
        return int(self.supervisor.handles[shard].process.pid)

    def kill_worker(self, shard: int, sig: int = signal.SIGKILL) -> None:
        """Send a signal to one worker — the fault-injection entry point
        for crash-recovery tests and the CI runtime-smoke job. The
        supervisor detects the death and recovers on its next pump."""
        os.kill(self.worker_pid(shard), sig)

    @property
    def restarts(self) -> int:
        """Worker restarts so far across all shards."""
        return sum(h.restarts for h in self.supervisor.handles)

    def checkpoint_ages(self) -> dict[int, float]:
        """Seconds since each shard's last reported checkpoint (the
        operator-facing durability lag; see
        :meth:`ShardSupervisor.checkpoint_ages`)."""
        self._require()
        return self.supervisor.checkpoint_ages()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "drained" if self._drained else ("live" if self._started else "new")
        return f"StreamingRuntime(W={self.num_shards}, {state})"
