"""Streaming ingest runtime: long-lived shard workers behind one facade.

The one-shot paths (``Caesar.process``, ``ShardedCaesar.process``)
assume the whole trace is an array in hand. This package is the
deployment shape instead: ``W`` long-lived worker processes, one CAESAR
shard each, fed packet chunks through a pluggable transport with a
backpressure policy, answering live queries mid-ingest, and supervised
— a worker killed at any instant is restarted from its newest
checkpoint plus ingest-WAL replay and re-fed what it lost, finishing
bit-identically to a run that never crashed. See ``docs/runtime.md``
for the architecture and the determinism argument.

Module map:

- :mod:`~repro.runtime.partitioner` — RSS-style flow → shard hash
  partitioning and stream chunking (shared with
  :class:`~repro.core.sharded.ShardedScheme` so both ingest paths agree
  bit for bit);
- :mod:`~repro.runtime.transport` — the transport protocol: per-shard
  channels with block/shed/error backpressure, split data/control/
  message planes, restart-safe lifecycle;
- :mod:`~repro.runtime.queues` — the bounded-``mp.Queue`` transport
  (pickled chunks; portable, debuggable);
- :mod:`~repro.runtime.shm` — the zero-copy shared-memory ring
  transport (raw NumPy chunk bytes, fixed-width headers, batched acks;
  the default);
- :mod:`~repro.runtime.worker` — the shard worker process: ingest WAL,
  periodic atomic checkpoints, boot-time recovery;
- :mod:`~repro.runtime.supervisor` — process babysitting: crash
  detection, restart, retained-chunk re-feed, and the live shard-split
  state machine (seal → replay → cutover → refeed);
- :mod:`~repro.runtime.planner` — hot-shard detection
  (:class:`ReshardPlanner`): sustained data-plane fill picks the shard
  to split;
- :mod:`~repro.runtime.watchdog` — liveness and graceful degradation:
  heartbeat hang detection with nudge → SIGTERM → SIGKILL escalation,
  restart token budgets with backoff + per-shard circuit breakers,
  poison-chunk quarantine, and partial query results;
- :mod:`~repro.runtime.client` — :class:`StreamingRuntime`, the
  user-facing facade.
"""

from repro.runtime.partitioner import (
    DEFAULT_CHUNK_PACKETS,
    DEFAULT_SHARD_SEED,
    ShardMap,
    ShardSplit,
    StreamPartitioner,
    chunk_stream,
)
from repro.runtime.planner import DEFAULT_SUSTAIN, ReshardPlanner
from repro.runtime.queues import DEFAULT_QUEUE_DEPTH, QueueTransport
from repro.runtime.shm import DEFAULT_RING_BYTES, SharedMemoryRingTransport
from repro.runtime.supervisor import ShardSupervisor
from repro.runtime.transport import (
    BACKPRESSURE_POLICIES,
    DEFAULT_ACK_EVERY,
    DEFAULT_TRANSPORT,
    TRANSPORTS,
    Transport,
    resolve_transport,
)
from repro.runtime.watchdog import (
    DEFAULT_HANG_TIMEOUT,
    DEFAULT_HEARTBEAT_EVERY,
    DEFAULT_QUARANTINE_AFTER,
    CircuitBreaker,
    PartialEstimate,
    QuarantineRecord,
    RestartBudget,
    ShardQueryStatus,
    Watchdog,
    WatchdogConfig,
    backoff_delay,
    load_quarantine,
    offline_twin_excluding,
)
from repro.runtime.worker import WorkerSpec, boot_shard


def __getattr__(name: str) -> object:
    """Lazy-load the facade: :mod:`~repro.runtime.client` pulls in
    :mod:`repro.core.sharded`, which itself imports this package's
    partitioner — importing it eagerly here would close that cycle."""
    if name in ("StreamingRuntime", "RuntimeResult"):
        from repro.runtime import client

        return getattr(client, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "BACKPRESSURE_POLICIES",
    "CircuitBreaker",
    "DEFAULT_ACK_EVERY",
    "DEFAULT_CHUNK_PACKETS",
    "DEFAULT_HANG_TIMEOUT",
    "DEFAULT_HEARTBEAT_EVERY",
    "DEFAULT_QUARANTINE_AFTER",
    "DEFAULT_QUEUE_DEPTH",
    "DEFAULT_RING_BYTES",
    "DEFAULT_SHARD_SEED",
    "DEFAULT_SUSTAIN",
    "DEFAULT_TRANSPORT",
    "PartialEstimate",
    "QuarantineRecord",
    "QueueTransport",
    "ReshardPlanner",
    "RestartBudget",
    "RuntimeResult",
    "SharedMemoryRingTransport",
    "ShardMap",
    "ShardQueryStatus",
    "ShardSplit",
    "ShardSupervisor",
    "StreamPartitioner",
    "StreamingRuntime",
    "TRANSPORTS",
    "Transport",
    "Watchdog",
    "WatchdogConfig",
    "WorkerSpec",
    "backoff_delay",
    "boot_shard",
    "chunk_stream",
    "load_quarantine",
    "offline_twin_excluding",
    "resolve_transport",
]
