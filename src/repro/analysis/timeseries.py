"""Per-flow time-series analysis over epoch measurements.

The paper's introduction motivates per-flow measurement with intrusion
detection and "scanning speeds of worm-infected hosts" — detecting
*changes* in a flow's rate, not just its total. Combined with
:class:`repro.core.epochs.EpochalCaesar` this module provides the
downstream piece: robust spike/change detection on estimated per-epoch
series, noise-aware so sketch error does not fire alerts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError


@dataclass(frozen=True)
class SpikeAlert:
    """One detected rate anomaly."""

    epoch: int
    value: float
    baseline: float
    score: float  #: robust z-score of the deviation


def robust_zscores(series: npt.NDArray[np.float64]) -> npt.NDArray[np.float64]:
    """Median/MAD z-scores (outlier-robust; Gaussian-consistent 1.4826)."""
    series = np.asarray(series, dtype=np.float64)
    med = float(np.median(series))
    mad = float(np.median(np.abs(series - med)))
    scale = 1.4826 * mad
    if scale == 0:
        # Degenerate (constant) series: any deviation is infinite-score;
        # fall back to mean absolute deviation, then to exact-match 0s.
        scale = float(np.mean(np.abs(series - med))) or 1.0
    return (series - med) / scale


def detect_spikes(
    series: npt.NDArray[np.float64],
    threshold: float = 3.5,
    noise_floor: float = 0.0,
) -> list[SpikeAlert]:
    """Flag epochs whose value deviates from the robust baseline.

    ``noise_floor`` suppresses alerts driven by sketch noise: a
    deviation must also exceed it in absolute terms (pass e.g. three
    empirical noise sigmas from
    :func:`repro.core.csm.empirical_confidence_interval`'s model).
    """
    if threshold <= 0:
        raise ConfigError(f"threshold must be > 0, got {threshold}")
    if noise_floor < 0:
        raise ConfigError(f"noise_floor must be >= 0, got {noise_floor}")
    series = np.asarray(series, dtype=np.float64)
    if len(series) < 3:
        return []
    scores = robust_zscores(series)
    med = float(np.median(series))
    alerts = []
    for i in np.nonzero(np.abs(scores) >= threshold)[0]:
        if abs(series[i] - med) <= noise_floor:
            continue
        alerts.append(
            SpikeAlert(
                epoch=int(i),
                value=float(series[i]),
                baseline=med,
                score=float(scores[i]),
            )
        )
    return alerts


def growth_rate(series: npt.NDArray[np.float64]) -> float:
    """Per-epoch multiplicative growth fit (log-linear least squares).

    > 1 means the flow is ramping — the "scanning host" signature.
    Zero entries are floored at one unit to keep the fit defined.
    """
    series = np.asarray(series, dtype=np.float64)
    if len(series) < 2:
        raise ConfigError("need at least two epochs to fit growth")
    y = np.log(np.maximum(series, 1.0))
    slope = float(np.polyfit(np.arange(len(series)), y, 1)[0])
    return float(np.exp(slope))
