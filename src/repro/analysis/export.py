"""CSV/JSON export of experiment and observability artifacts.

The benchmark harness prints tables; anyone regenerating the paper's
*figures* graphically needs the raw series. These helpers write plain
CSV (no extra dependencies) for the binned-error series, generic
x/y-series, and a whole :class:`ExperimentResult` — plus JSON export
and terminal rendering of a metrics-registry snapshot (the CLI's
``--metrics-out`` and ``stats`` surfaces). :func:`merge_snapshots`
namespaces several registries (``vantage<i>.`` prefixes, one registry
per fabric vantage) into one collision-free exportable snapshot.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Mapping, Sequence

from repro.analysis.metrics import BinnedErrors
from repro.errors import ConfigError
from repro.experiments.base import ExperimentResult
from repro.obs.registry import MetricsRegistry, snapshot_of


def export_binned_errors(path: str | Path, bins: BinnedErrors) -> Path:
    """One row per size bin: the (c)/(d) panel series of Figs. 4-7."""
    path = Path(path)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["bin_lo", "bin_hi", "flows", "mean_abs_rel_error",
             "mean_signed_rel_error", "mean_estimate", "mean_truth"]
        )
        for i in range(len(bins.count)):
            if bins.count[i] == 0:
                continue
            writer.writerow(
                [
                    int(bins.bin_lo[i]),
                    int(bins.bin_hi[i]) - 1,
                    int(bins.count[i]),
                    float(bins.mean_abs_rel_error[i]),
                    float(bins.mean_signed_rel_error[i]),
                    float(bins.mean_estimate[i]),
                    float(bins.mean_truth[i]),
                ]
            )
    return path


def export_series(
    path: str | Path,
    headers: Sequence[str],
    columns: Sequence[Sequence[object]],
) -> Path:
    """Column-oriented series (e.g. the Fig. 8 time-vs-packets sweep)."""
    if not columns or any(len(c) != len(columns[0]) for c in columns):
        raise ConfigError("columns must be non-empty and equal-length")
    if len(headers) != len(columns):
        raise ConfigError("one header per column required")
    path = Path(path)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in zip(*columns):
            writer.writerow(row)
    return path


def export_result(result: ExperimentResult, directory: str | Path) -> list[Path]:
    """Write one experiment's artifacts: ``<id>_measured.csv`` with the
    headline numbers and ``<id>_report.txt`` with the rendered tables.
    Returns the written paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    measured_path = directory / f"{result.experiment_id}_measured.csv"
    with open(measured_path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["metric", "measured", "paper_reference"])
        for key, value in result.measured.items():
            writer.writerow([key, value, result.paper_reference.get(key, "")])
    written.append(measured_path)

    report_path = directory / f"{result.experiment_id}_report.txt"
    report_path.write_text(result.render() + "\n")
    written.append(report_path)
    return written


def merge_snapshots(
    sources: Mapping[str, MetricsRegistry | Mapping],
    *,
    separator: str = ".",
) -> dict:
    """Merge several registries into one namespaced snapshot.

    Each source's metric names are prefixed ``<key><separator>`` —
    e.g. ``{"vantage0": reg0, "vantage1": reg1}`` yields
    ``vantage0.cache.hits`` next to ``vantage1.cache.hits`` — so
    per-deployment registries (one per fabric vantage, one per box)
    can share one exported artifact without colliding. A post-prefix
    name collision (two sources whose prefixed names still clash, or a
    repeated prefix) raises :class:`~repro.errors.ConfigError` rather
    than silently dropping a section. The result is
    :func:`export_metrics`-ready.
    """
    merged: dict = {}
    for key, source in sources.items():
        if not key:
            raise ConfigError("merge_snapshots keys must be non-empty")
        snap = snapshot_of(source)
        for section, metrics in snap.items():
            out = merged.setdefault(section, {})
            for name, value in metrics.items():
                qualified = f"{key}{separator}{name}"
                if qualified in out:
                    raise ConfigError(
                        f"metric name collision in merged snapshot: {qualified!r}"
                    )
                out[qualified] = value
    return merged


def export_metrics(path: str | Path, source: MetricsRegistry | Mapping) -> Path:
    """Write a metrics snapshot as JSON (stable key order).

    ``source`` is a live :class:`~repro.obs.MetricsRegistry` or an
    already-taken snapshot dict. The ``counters`` and ``histograms``
    sections are deterministic under a fixed seed; timer seconds and
    throughput gauges are wall-clock measurements.
    """
    path = Path(path)
    path.write_text(json.dumps(snapshot_of(source), indent=2, sort_keys=True) + "\n")
    return path


def format_metrics(source: MetricsRegistry | Mapping) -> str:
    """Render a metrics snapshot for the terminal (the ``stats`` CLI)."""
    snap = snapshot_of(source)
    lines: list[str] = []
    counters = snap.get("counters", {})
    if counters:
        lines.append("counters:")
        lines += [f"  {name:<32} {value}" for name, value in sorted(counters.items())]
    gauges = snap.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        lines += [f"  {name:<32} {value:g}" for name, value in sorted(gauges.items())]
    histograms = snap.get("histograms", {})
    if histograms:
        lines.append("histograms:")
        for name, h in sorted(histograms.items()):
            lines.append(f"  {name:<32} count={h['count']} total={h['total']}")
            edges, buckets = h["edges"], h["bucket_counts"]
            for i, c in enumerate(buckets):
                if c == 0:
                    continue
                lo = "-inf" if i == 0 else str(edges[i - 1])
                hi = str(edges[i]) if i < len(edges) else "+inf"
                lines.append(f"    ({lo}, {hi}]: {c}")
    timers = snap.get("timers", {})
    if timers:
        lines.append("timers:")
        lines += [
            f"  {name:<32} calls={t['calls']} seconds={t['seconds']:.6f}"
            for name, t in sorted(timers.items())
        ]
    return "\n".join(lines) if lines else "(no metrics recorded)"
