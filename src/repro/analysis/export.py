"""CSV export of experiment artifacts (for external plotting).

The benchmark harness prints tables; anyone regenerating the paper's
*figures* graphically needs the raw series. These helpers write plain
CSV (no extra dependencies) for the binned-error series, generic
x/y-series, and a whole :class:`ExperimentResult`.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Sequence

from repro.analysis.metrics import BinnedErrors
from repro.errors import ConfigError
from repro.experiments.base import ExperimentResult


def export_binned_errors(path: str | Path, bins: BinnedErrors) -> Path:
    """One row per size bin: the (c)/(d) panel series of Figs. 4-7."""
    path = Path(path)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            ["bin_lo", "bin_hi", "flows", "mean_abs_rel_error",
             "mean_signed_rel_error", "mean_estimate", "mean_truth"]
        )
        for i in range(len(bins.count)):
            if bins.count[i] == 0:
                continue
            writer.writerow(
                [
                    int(bins.bin_lo[i]),
                    int(bins.bin_hi[i]) - 1,
                    int(bins.count[i]),
                    float(bins.mean_abs_rel_error[i]),
                    float(bins.mean_signed_rel_error[i]),
                    float(bins.mean_estimate[i]),
                    float(bins.mean_truth[i]),
                ]
            )
    return path


def export_series(
    path: str | Path,
    headers: Sequence[str],
    columns: Sequence[Sequence[object]],
) -> Path:
    """Column-oriented series (e.g. the Fig. 8 time-vs-packets sweep)."""
    if not columns or any(len(c) != len(columns[0]) for c in columns):
        raise ConfigError("columns must be non-empty and equal-length")
    if len(headers) != len(columns):
        raise ConfigError("one header per column required")
    path = Path(path)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in zip(*columns):
            writer.writerow(row)
    return path


def export_result(result: ExperimentResult, directory: str | Path) -> list[Path]:
    """Write one experiment's artifacts: ``<id>_measured.csv`` with the
    headline numbers and ``<id>_report.txt`` with the rendered tables.
    Returns the written paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    measured_path = directory / f"{result.experiment_id}_measured.csv"
    with open(measured_path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["metric", "measured", "paper_reference"])
        for key, value in result.measured.items():
            writer.writerow([key, value, result.paper_reference.get(key, "")])
    written.append(measured_path)

    report_path = directory / f"{result.experiment_id}_report.txt"
    report_path.write_text(result.render() + "\n")
    written.append(report_path)
    return written
