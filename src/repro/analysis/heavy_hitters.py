"""Heavy-hitter detection metrics.

The paper motivates per-flow measurement with intrusion detection and
elephant identification; the heavy-hitter example and tests need the
standard detection metrics: given estimated sizes, rank flows and
score the predicted top-k (or threshold set) against ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError


@dataclass(frozen=True)
class DetectionQuality:
    """Precision/recall/F1 of one detection set."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denom = self.true_positives + self.false_positives
        return self.true_positives / denom if denom else 0.0

    @property
    def recall(self) -> float:
        denom = self.true_positives + self.false_negatives
        return self.true_positives / denom if denom else 0.0

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0


def _score(predicted: set[int], actual: set[int]) -> DetectionQuality:
    return DetectionQuality(
        true_positives=len(predicted & actual),
        false_positives=len(predicted - actual),
        false_negatives=len(actual - predicted),
    )


def top_k_detection(
    flow_ids: npt.NDArray[np.uint64],
    estimates: npt.NDArray[np.float64],
    truth: npt.NDArray[np.int64],
    k: int,
) -> DetectionQuality:
    """Score the estimated top-k against the true top-k."""
    if k < 1:
        raise ConfigError(f"k must be >= 1, got {k}")
    if not (len(flow_ids) == len(estimates) == len(truth)):
        raise ConfigError("flow_ids, estimates, truth must align")
    k = min(k, len(flow_ids))
    pred = set(flow_ids[np.argsort(estimates)[::-1][:k]].tolist())
    act = set(flow_ids[np.argsort(truth)[::-1][:k]].tolist())
    return _score(pred, act)


def threshold_detection(
    flow_ids: npt.NDArray[np.uint64],
    estimates: npt.NDArray[np.float64],
    truth: npt.NDArray[np.int64],
    threshold: float,
) -> DetectionQuality:
    """Score 'size >= threshold' classification (e.g. SLA policers)."""
    if threshold <= 0:
        raise ConfigError(f"threshold must be > 0, got {threshold}")
    if not (len(flow_ids) == len(estimates) == len(truth)):
        raise ConfigError("flow_ids, estimates, truth must align")
    pred = set(flow_ids[estimates >= threshold].tolist())
    act = set(flow_ids[truth >= threshold].tolist())
    return _score(pred, act)
