"""Plain-text table / series rendering for the benchmark harness.

The benchmark output *is* the reproduction artifact, so these helpers
print aligned, copy-pasteable tables without any plotting dependency.
"""

from __future__ import annotations

from typing import Sequence


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == 0:
            return "0"
        if abs(value) >= 1e6 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    x_label: str,
    y_labels: Sequence[str],
    x_values: Sequence[object],
    y_series: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render one-x/many-y figure data as a table (one row per x)."""
    if len(y_labels) != len(y_series):
        raise ValueError("one label per series required")
    for series in y_series:
        if len(series) != len(x_values):
            raise ValueError("every series must align with x_values")
    headers = [x_label, *y_labels]
    rows = [[x, *(series[i] for series in y_series)] for i, x in enumerate(x_values)]
    return format_table(headers, rows, title=title)
