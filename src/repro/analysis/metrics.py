"""Estimation-accuracy metrics.

The paper reports two kinds of accuracy views:

- **estimated-vs-actual scatter** (Figs. 4-7 (a)/(b)) — captured here
  as the raw ``(truth, estimate)`` pairs plus a log-binned summary;
- **average relative error vs actual flow size** (Figs. 4-7 (c)/(d))
  — the per-size-bin mean of ``|x_hat - x| / x``.

A note on "average relative error": averaging ``|rel|`` over *flows*
weights the (very numerous, very noisy) single-packet mice heavily;
averaging the *per-size-bin* means weights sizes evenly, which is what
an error-vs-size plot visually conveys and what the paper's headline
numbers (25.23 % for CSM etc.) are consistent with. :func:`evaluate`
reports both, plus a packet-weighted view, so EXPERIMENTS.md can
compare like with like.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

from repro.errors import ConfigError


def relative_errors(
    estimates: npt.NDArray[np.float64],
    truth: npt.NDArray[np.int64],
) -> npt.NDArray[np.float64]:
    """Signed relative error ``(x_hat - x) / x`` per flow."""
    estimates = np.asarray(estimates, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if estimates.shape != truth.shape:
        raise ConfigError("estimates and truth must be aligned")
    if truth.min() <= 0:
        raise ConfigError("true sizes must be positive")
    return (estimates - truth) / truth


@dataclass(frozen=True)
class BinnedErrors:
    """Per-size-bin error summary (the (c)/(d) panels of Figs. 4-7)."""

    bin_lo: npt.NDArray[np.float64]  #: inclusive lower size edge per bin
    bin_hi: npt.NDArray[np.float64]  #: exclusive upper size edge per bin
    count: npt.NDArray[np.int64]  #: flows per bin
    mean_abs_rel_error: npt.NDArray[np.float64]
    mean_signed_rel_error: npt.NDArray[np.float64]
    mean_estimate: npt.NDArray[np.float64]
    mean_truth: npt.NDArray[np.float64]

    @property
    def overall_binned_are(self) -> float:
        """Mean of per-bin AREs (sizes weighted evenly)."""
        valid = self.count > 0
        return float(self.mean_abs_rel_error[valid].mean()) if valid.any() else float("nan")


def binned_errors(
    estimates: npt.NDArray[np.float64],
    truth: npt.NDArray[np.int64],
    bins_per_decade: int = 4,
) -> BinnedErrors:
    """Bin flows by true size (log-spaced) and summarize errors per bin."""
    if bins_per_decade < 1:
        raise ConfigError(f"bins_per_decade must be >= 1, got {bins_per_decade}")
    estimates = np.asarray(estimates, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    rel = relative_errors(estimates, truth)
    max_size = truth.max()
    num_bins = max(1, int(np.ceil(np.log10(max_size) * bins_per_decade)))
    edges = np.unique(np.floor(10 ** (np.arange(num_bins + 1) / bins_per_decade)))
    edges = np.append(edges[edges <= max_size], max_size + 1.0)
    idx = np.digitize(truth, edges) - 1
    nbin = len(edges) - 1
    count = np.bincount(idx, minlength=nbin)
    with np.errstate(invalid="ignore"):
        safe = np.maximum(count, 1)
        mean_abs = np.bincount(idx, weights=np.abs(rel), minlength=nbin) / safe
        mean_signed = np.bincount(idx, weights=rel, minlength=nbin) / safe
        mean_est = np.bincount(idx, weights=estimates, minlength=nbin) / safe
        mean_truth = np.bincount(idx, weights=truth, minlength=nbin) / safe
    empty = count == 0
    for arr in (mean_abs, mean_signed, mean_est, mean_truth):
        arr[empty] = np.nan
    return BinnedErrors(
        bin_lo=edges[:-1],
        bin_hi=edges[1:],
        count=count.astype(np.int64),
        mean_abs_rel_error=mean_abs,
        mean_signed_rel_error=mean_signed,
        mean_estimate=mean_est,
        mean_truth=mean_truth,
    )


@dataclass(frozen=True)
class EstimateQuality:
    """Aggregate quality of one scheme's estimates on one trace."""

    num_flows: int
    per_flow_are: float  #: mean over flows of |rel error| (mice-dominated)
    binned_are: float  #: mean over size bins of per-bin ARE (paper-style)
    packet_weighted_are: float  #: ARE weighted by true size (elephant view)
    median_abs_rel_error: float
    mean_signed_rel_error: float  #: relative bias (mice-noise dominated)
    mean_signed_error_packets: float  #: absolute bias E[x_hat - x] in packets
    bins: BinnedErrors

    def summary(self) -> str:
        return (
            f"flows={self.num_flows}  ARE/flow={self.per_flow_are:.4f}  "
            f"ARE/bin={self.binned_are:.4f}  ARE/packet={self.packet_weighted_are:.4f}  "
            f"median|rel|={self.median_abs_rel_error:.4f}  bias={self.mean_signed_rel_error:+.4f}"
        )


def evaluate(
    estimates: npt.NDArray[np.float64],
    truth: npt.NDArray[np.int64],
    bins_per_decade: int = 4,
) -> EstimateQuality:
    """Full accuracy evaluation of one estimate vector."""
    rel = relative_errors(estimates, truth)
    bins = binned_errors(estimates, truth, bins_per_decade)
    truth_f = np.asarray(truth, dtype=np.float64)
    return EstimateQuality(
        num_flows=len(truth_f),
        per_flow_are=float(np.abs(rel).mean()),
        binned_are=bins.overall_binned_are,
        packet_weighted_are=float((np.abs(rel) * truth_f).sum() / truth_f.sum()),
        median_abs_rel_error=float(np.median(np.abs(rel))),
        mean_signed_rel_error=float(rel.mean()),
        mean_signed_error_packets=float((np.asarray(estimates, dtype=np.float64) - truth_f).mean()),
        bins=bins,
    )


def top_flow_are(
    estimates: npt.NDArray[np.float64],
    truth: npt.NDArray[np.int64],
    top: int = 50,
) -> float:
    """ARE over the ``top`` largest flows.

    Elephant flows dwarf the shared-counter noise at any scale, so this
    is the cleanest window onto systematic effects like RCS's
    loss-induced under-count (Fig. 7's 67.68 % / 90.06 %).
    """
    if top < 1:
        raise ConfigError(f"top must be >= 1, got {top}")
    truth = np.asarray(truth, dtype=np.float64)
    estimates = np.asarray(estimates, dtype=np.float64)
    order = np.argsort(truth)[::-1][: min(top, len(truth))]
    return float(np.mean(np.abs(estimates[order] - truth[order]) / truth[order]))


def ci_coverage(
    lo: npt.NDArray[np.float64],
    hi: npt.NDArray[np.float64],
    truth: npt.NDArray[np.int64],
) -> float:
    """Fraction of flows whose true size falls inside ``[lo, hi]``.

    Validates the paper's confidence intervals (Eqs. 26 / 32): at
    reliability ``alpha`` the coverage should be at least ``alpha``
    under the paper's variance model.
    """
    lo = np.asarray(lo, dtype=np.float64)
    hi = np.asarray(hi, dtype=np.float64)
    truth = np.asarray(truth, dtype=np.float64)
    if not (lo.shape == hi.shape == truth.shape):
        raise ConfigError("lo, hi, truth must be aligned")
    return float(np.mean((truth >= lo) & (truth <= hi)))
