"""Accuracy metrics, binned error series, and report rendering."""

from repro.analysis.metrics import (
    BinnedErrors,
    EstimateQuality,
    binned_errors,
    ci_coverage,
    evaluate,
    relative_errors,
)
from repro.analysis.tables import format_series, format_table

__all__ = [
    "BinnedErrors",
    "EstimateQuality",
    "binned_errors",
    "ci_coverage",
    "evaluate",
    "format_series",
    "format_table",
    "relative_errors",
]
