"""Unit tests for the flow-size distributions."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.traffic.distributions import (
    BoundedZipf,
    DiscreteParetoDist,
    EmpiricalDist,
    GeometricDist,
    calibrate_zipf_to_mean,
)


class TestBoundedZipf:
    def test_pmf_sums_to_one(self):
        d = BoundedZipf(1.5, 1000)
        assert abs(d.pmf.sum() - 1.0) < 1e-12

    def test_pmf_decreasing(self):
        d = BoundedZipf(1.2, 500)
        assert np.all(np.diff(d.pmf) < 0)

    def test_probability_lookup(self):
        d = BoundedZipf(2.0, 100)
        assert d.probability(1) == pytest.approx(float(d.pmf[0]))
        assert d.probability(0) == 0.0
        assert d.probability(101) == 0.0

    def test_moments_match_manual(self):
        d = BoundedZipf(1.8, 50)
        support = np.arange(1, 51, dtype=float)
        mean = float((support * d.pmf).sum())
        assert d.mean == pytest.approx(mean)
        var = float((((support - mean) ** 2) * d.pmf).sum())
        assert d.variance == pytest.approx(var)
        assert d.second_moment == pytest.approx(var + mean**2)

    def test_sampling_within_support(self, rng):
        d = BoundedZipf(1.5, 200)
        s = d.sample(10000, rng)
        assert s.min() >= 1 and s.max() <= 200

    def test_sample_mean_converges(self, rng):
        d = BoundedZipf(1.7, 300)
        s = d.sample(200_000, rng)
        assert abs(s.mean() - d.mean) < 0.1 * d.mean

    def test_sample_frequencies_match_pmf_head(self, rng):
        d = BoundedZipf(2.0, 100)
        s = d.sample(100_000, rng)
        freq1 = float(np.mean(s == 1))
        assert abs(freq1 - d.probability(1)) < 0.01

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            BoundedZipf(0.0, 100)
        with pytest.raises(ConfigError):
            BoundedZipf(1.0, 0)

    def test_fraction_below(self):
        d = BoundedZipf(1.5, 100)
        assert d.fraction_below(1) == 0.0
        assert d.fraction_below(101) == pytest.approx(1.0)
        assert d.fraction_below(2) == pytest.approx(d.probability(1))


class TestDiscretePareto:
    def test_pmf_valid(self):
        d = DiscreteParetoDist(1.3, 1000)
        assert abs(d.pmf.sum() - 1.0) < 1e-12
        assert np.all(d.pmf >= 0)

    def test_heavier_alpha_means_lighter_tail(self):
        light = DiscreteParetoDist(2.5, 1000)
        heavy = DiscreteParetoDist(0.8, 1000)
        assert light.mean < heavy.mean


class TestGeometric:
    def test_mean_close_to_untruncated(self):
        d = GeometricDist(0.2, 200)
        assert d.mean == pytest.approx(1 / 0.2, rel=0.01)

    def test_rejects_bad_prob(self):
        with pytest.raises(ConfigError):
            GeometricDist(0.0, 10)
        with pytest.raises(ConfigError):
            GeometricDist(1.0, 10)


class TestEmpirical:
    def test_reconstructs_observed_frequencies(self):
        sizes = np.array([1, 1, 1, 2, 2, 5])
        d = EmpiricalDist(sizes)
        assert d.probability(1) == pytest.approx(0.5)
        assert d.probability(2) == pytest.approx(1 / 3)
        assert d.probability(5) == pytest.approx(1 / 6)
        assert d.probability(3) == 0.0
        assert d.max_size == 5

    def test_mean_matches_sample(self):
        sizes = np.array([3, 3, 9])
        assert EmpiricalDist(sizes).mean == pytest.approx(5.0)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ConfigError):
            EmpiricalDist([])
        with pytest.raises(ConfigError):
            EmpiricalDist([0, 1])


class TestMixture:
    def test_pmf_is_weighted_sum(self):
        from repro.traffic.distributions import MixtureDist

        body = GeometricDist(0.3, 50)
        tail = BoundedZipf(1.2, 200)
        mix = MixtureDist([body, tail], [0.9, 0.1])
        assert mix.max_size == 200
        expected = 0.9 * body.probability(1) + 0.1 * tail.probability(1)
        assert mix.probability(1) == pytest.approx(expected)
        # Beyond the body's support only the tail contributes.
        assert mix.probability(100) == pytest.approx(0.1 * tail.probability(100))

    def test_mean_is_weighted(self):
        from repro.traffic.distributions import MixtureDist

        a = GeometricDist(0.5, 100)
        b = GeometricDist(0.1, 100)
        mix = MixtureDist([a, b], [0.5, 0.5])
        assert mix.mean == pytest.approx(0.5 * a.mean + 0.5 * b.mean)

    def test_sampling(self, rng):
        from repro.traffic.distributions import MixtureDist

        mix = MixtureDist([GeometricDist(0.4, 30), BoundedZipf(1.5, 500)], [0.8, 0.2])
        s = mix.sample(50_000, rng)
        assert abs(s.mean() - mix.mean) < 0.1 * mix.mean

    def test_validation(self):
        from repro.traffic.distributions import MixtureDist

        with pytest.raises(ConfigError):
            MixtureDist([], [])
        with pytest.raises(ConfigError):
            MixtureDist([GeometricDist(0.5, 10)], [1.0, 2.0])
        with pytest.raises(ConfigError):
            MixtureDist([GeometricDist(0.5, 10)], [-1.0])


class TestCalibration:
    def test_hits_target_mean(self):
        d = calibrate_zipf_to_mean(27.32, 20000)
        assert d.mean == pytest.approx(27.32, abs=0.01)

    def test_paper_tail_properties(self):
        # The calibrated default must satisfy both Section 6 observations.
        d = calibrate_zipf_to_mean(27.32, 20000)
        assert d.fraction_below(d.mean) > 0.92
        assert d.fraction_below(2 * d.mean) > 0.95

    def test_unreachable_targets_rejected(self):
        with pytest.raises(ConfigError):
            calibrate_zipf_to_mean(1.0001, 100, alpha_hi=1.5)
        with pytest.raises(ConfigError):
            calibrate_zipf_to_mean(99.0, 100)
