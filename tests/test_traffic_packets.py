"""Unit tests for the packet-stream interleavers and the loss model."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.traffic.distributions import BoundedZipf
from repro.traffic.flows import FlowSet
from repro.traffic.packets import apply_loss, bursty_stream, round_robin_stream, uniform_stream


@pytest.fixture(scope="module")
def flows() -> FlowSet:
    return FlowSet.generate(50, BoundedZipf(1.5, 60), seed=5)


def _counts(packets, flows):
    ids, counts = np.unique(packets, return_counts=True)
    order = np.argsort(flows.ids)
    np.testing.assert_array_equal(ids, flows.ids[order])
    np.testing.assert_array_equal(counts, flows.sizes[order])


class TestUniformStream:
    def test_conserves_mass(self, flows):
        _counts(uniform_stream(flows, seed=1), flows)

    def test_deterministic(self, flows):
        np.testing.assert_array_equal(uniform_stream(flows, seed=1), uniform_stream(flows, seed=1))

    def test_seed_changes_order(self, flows):
        assert not np.array_equal(uniform_stream(flows, seed=1), uniform_stream(flows, seed=2))


class TestRoundRobinStream:
    def test_conserves_mass(self, flows):
        _counts(round_robin_stream(flows), flows)

    def test_first_pass_touches_every_flow(self, flows):
        stream = round_robin_stream(flows)
        first = stream[: flows.num_flows]
        assert len(np.unique(first)) == flows.num_flows

    def test_round_structure(self):
        fs = FlowSet(
            ids=np.array([1, 2, 3], dtype=np.uint64),
            sizes=np.array([3, 1, 2], dtype=np.int64),
        )
        stream = round_robin_stream(fs).tolist()
        assert stream == [1, 2, 3, 1, 3, 1]


class TestBurstyStream:
    def test_conserves_mass(self, flows):
        _counts(bursty_stream(flows, burst_length=8, seed=2), flows)

    def test_bursts_are_contiguous(self):
        fs = FlowSet(
            ids=np.array([1, 2], dtype=np.uint64), sizes=np.array([6, 4], dtype=np.int64)
        )
        stream = bursty_stream(fs, burst_length=100, seed=0)
        # With bursts longer than any flow, each flow is one block.
        changes = int((np.diff(stream.astype(np.int64)) != 0).sum())
        assert changes == 1

    def test_rejects_bad_burst(self, flows):
        with pytest.raises(ConfigError):
            bursty_stream(flows, burst_length=0)


class TestApplyLoss:
    def test_zero_loss_identity(self, flows):
        stream = uniform_stream(flows, seed=3)
        assert apply_loss(stream, 0.0) is stream

    def test_loss_rate_approximate(self):
        big = FlowSet.generate(400, BoundedZipf(1.5, 200), seed=6)
        stream = uniform_stream(big, seed=3)
        kept = apply_loss(stream, 2 / 3, seed=4)
        assert abs(len(kept) / len(stream) - 1 / 3) < 0.02

    def test_kept_packets_are_subset(self, flows):
        stream = uniform_stream(flows, seed=3)
        kept = apply_loss(stream, 0.5, seed=4)
        kept_ids = set(np.unique(kept).tolist())
        assert kept_ids <= set(np.unique(stream).tolist())

    def test_rejects_bad_rate(self, flows):
        stream = uniform_stream(flows, seed=3)
        with pytest.raises(ConfigError):
            apply_loss(stream, 1.0)
        with pytest.raises(ConfigError):
            apply_loss(stream, -0.1)
