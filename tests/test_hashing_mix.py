"""Unit tests for the 64-bit mixers."""

import numpy as np
import pytest

from repro.hashing import mix


class TestSplitmix64:
    def test_deterministic(self):
        assert mix.splitmix64(42) == mix.splitmix64(42)

    def test_range_is_64_bit(self):
        for x in (0, 1, 2**63, 2**64 - 1):
            out = mix.splitmix64(x)
            assert 0 <= out < 2**64

    def test_distinct_inputs_distinct_outputs(self):
        outs = {mix.splitmix64(x) for x in range(1000)}
        assert len(outs) == 1000  # bijective finalizer: no collisions

    def test_avalanche_single_bit_flip(self):
        # Flipping one input bit should flip ~half the output bits.
        base = mix.splitmix64(0xDEADBEEF)
        flipped = mix.splitmix64(0xDEADBEEF ^ 1)
        diff_bits = bin(base ^ flipped).count("1")
        assert 16 <= diff_bits <= 48

    def test_array_matches_scalar(self):
        xs = np.array([0, 1, 12345, 2**64 - 1], dtype=np.uint64)
        out = mix.splitmix64_array(xs)
        for i, x in enumerate([0, 1, 12345, 2**64 - 1]):
            assert int(out[i]) == mix.splitmix64(x)

    def test_array_does_not_mutate_input(self):
        xs = np.array([7, 8, 9], dtype=np.uint64)
        copy = xs.copy()
        mix.splitmix64_array(xs)
        np.testing.assert_array_equal(xs, copy)


class TestXxmix64:
    def test_deterministic(self):
        assert mix.xxmix64(99) == mix.xxmix64(99)

    def test_range(self):
        assert 0 <= mix.xxmix64(2**64 - 1) < 2**64

    def test_array_matches_scalar(self):
        xs = np.array([3, 5, 2**40], dtype=np.uint64)
        out = mix.xxmix64_array(xs)
        for i, x in enumerate([3, 5, 2**40]):
            assert int(out[i]) == mix.xxmix64(x)

    def test_differs_from_splitmix(self):
        assert mix.xxmix64(1234) != mix.splitmix64(1234)


class TestCombine:
    def test_seed_changes_output(self):
        assert mix.combine(1, 42) != mix.combine(2, 42)

    def test_array_matches_scalar(self):
        xs = np.array([10, 20, 30], dtype=np.uint64)
        out = mix.combine_array(777, xs)
        for i, x in enumerate([10, 20, 30]):
            assert int(out[i]) == mix.combine(777, x)

    def test_uniformity_of_low_bits(self):
        # Hash mod small m should be near-uniform: chi-square sanity.
        m = 16
        xs = np.arange(16000, dtype=np.uint64)
        buckets = mix.combine_array(5, xs) % np.uint64(m)
        counts = np.bincount(buckets.astype(np.int64), minlength=m)
        expected = len(xs) / m
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 50  # df=15, this is a generous bound
