"""Unit tests for the captured-headers binary format and pipeline."""

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.traffic import headers as hdrs
from repro.types import FiveTuple


class TestFiveTuplePacking:
    def test_roundtrip(self):
        ft = FiveTuple(0xC0A80001, 0x08080808, 54321, 443, 6)
        assert FiveTuple.unpack(ft.pack()) == ft

    def test_pack_length(self):
        assert len(FiveTuple(1, 2, 3, 4, 5).pack()) == 13

    def test_unpack_wrong_length(self):
        with pytest.raises(ValueError):
            FiveTuple.unpack(b"\x00" * 12)

    def test_field_validation(self):
        with pytest.raises(ValueError):
            FiveTuple(2**32, 0, 0, 0, 0)
        with pytest.raises(ValueError):
            FiveTuple(0, 0, 2**16, 0, 0)
        with pytest.raises(ValueError):
            FiveTuple(0, 0, 0, 0, 256)


class TestHeaderFile:
    def test_roundtrip(self, tmp_path):
        tuples = [FiveTuple(i, i * 2, 1000 + i, 80, 6) for i in range(20)]
        path = tmp_path / "capture.chd"
        hdrs.write_headers(path, tuples)
        assert hdrs.read_headers(path) == tuples

    def test_empty_capture(self, tmp_path):
        path = tmp_path / "empty.chd"
        hdrs.write_headers(path, [])
        assert hdrs.read_headers(path) == []

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.chd"
        path.write_bytes(b"NOPE" + (0).to_bytes(8, "little"))
        with pytest.raises(TraceFormatError):
            hdrs.read_headers(path)

    def test_truncated_body(self, tmp_path):
        path = tmp_path / "trunc.chd"
        path.write_bytes(hdrs.MAGIC + (2).to_bytes(8, "little") + b"\x00" * 13)
        with pytest.raises(TraceFormatError):
            hdrs.read_headers(path)


class TestCapturePipeline:
    def test_same_header_same_flow_id(self):
        ft = FiveTuple(1, 2, 3, 4, 6)
        stream = hdrs.headers_to_packet_stream([ft, ft, ft])
        assert len(np.unique(stream)) == 1

    def test_synthetic_capture_sizes(self):
        sizes = np.array([3, 1, 2], dtype=np.int64)
        capture = hdrs.synthetic_capture(3, sizes, seed=1)
        assert len(capture) == 6

    def test_trace_from_headers_ground_truth(self):
        sizes = np.array([5, 2, 9], dtype=np.int64)
        capture = hdrs.synthetic_capture(3, sizes, seed=2)
        trace = hdrs.trace_from_headers(capture)
        assert trace.num_packets == 16
        assert trace.num_flows == 3
        assert sorted(trace.flows.sizes.tolist()) == [2, 5, 9]

    def test_wrong_size_vector_rejected(self):
        with pytest.raises(TraceFormatError):
            hdrs.synthetic_capture(2, np.array([1, 2, 3], dtype=np.int64))
