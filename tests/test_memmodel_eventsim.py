"""Event-driven pipeline simulator: unit tests + agreement with the
analytic ingress model."""

import pytest

from repro.errors import ConfigError
from repro.memmodel.costmodel import rcs_counts
from repro.memmodel.eventsim import simulate
from repro.memmodel.pipeline import IngressModel
from repro.memmodel.technologies import LatencyModel


class TestBasics:
    def test_validation(self):
        with pytest.raises(ConfigError):
            simulate(-1, interarrival_ns=1, front_ns=1, items_per_packet=1,
                     back_ns=1, fifo_depth=1)
        with pytest.raises(ConfigError):
            simulate(1, interarrival_ns=0, front_ns=1, items_per_packet=1,
                     back_ns=1, fifo_depth=1)
        with pytest.raises(ConfigError):
            simulate(1, interarrival_ns=1, front_ns=1, items_per_packet=-1,
                     back_ns=1, fifo_depth=1)

    def test_empty_stream(self):
        r = simulate(0, interarrival_ns=1, front_ns=1, items_per_packet=1,
                     back_ns=10, fifo_depth=10)
        assert r.ingress_ns == 0.0 and r.generated_items == 0

    def test_line_rate_when_underloaded(self):
        # Fast front, no back items: ingress = arrival of the last
        # packet plus its front service.
        r = simulate(1000, interarrival_ns=1.0, front_ns=0.5,
                     items_per_packet=0.0, back_ns=0.0, fifo_depth=10)
        assert r.ingress_ns == pytest.approx(999 * 1.0 + 0.5)
        assert r.generated_items == 0

    def test_front_bound(self):
        # Front slower than line rate: ingress = n * front.
        r = simulate(1000, interarrival_ns=1.0, front_ns=5.0,
                     items_per_packet=0.0, back_ns=0.0, fifo_depth=10)
        assert r.ingress_ns == pytest.approx(1000 * 5.0)

    def test_item_generation_rate(self):
        r = simulate(1000, interarrival_ns=1.0, front_ns=0.1,
                     items_per_packet=0.25, back_ns=0.1, fifo_depth=10**6)
        assert r.generated_items == 250


class TestStallMode:
    def test_kink_behaviour(self):
        """Below FIFO depth the ingress stays at line rate; far above
        it the back end dictates (the Figure-8 RCS shape)."""
        kwargs = dict(interarrival_ns=1.0, front_ns=0.5, items_per_packet=1.0,
                      back_ns=10.0, fifo_depth=1000, stall=True)
        small = simulate(900, **kwargs)
        assert small.ingress_ns < 1000  # line-rate: FIFO absorbs
        big = simulate(20_000, **kwargs)
        per_packet = big.ingress_ns / 20_000
        assert 9.0 < per_packet <= 10.5  # back-end bound
        assert big.dropped_items == 0

    def test_drain_covers_all_items(self):
        r = simulate(500, interarrival_ns=1.0, front_ns=0.5,
                     items_per_packet=1.0, back_ns=10.0, fifo_depth=100)
        assert r.drain_ns == pytest.approx(r.generated_items * 10.0, rel=0.05)

    def test_queue_depth_bounded(self):
        r = simulate(5000, interarrival_ns=1.0, front_ns=0.5,
                     items_per_packet=1.0, back_ns=10.0, fifo_depth=64)
        assert r.max_queue_depth <= 64


class TestDropMode:
    def test_loss_rate_matches_speed_gap(self):
        """Figure 7's mechanism: at a 10x line/SRAM gap, ~9/10 of the
        items are dropped."""
        r = simulate(50_000, interarrival_ns=1.0, front_ns=0.5,
                     items_per_packet=1.0, back_ns=10.0, fifo_depth=32,
                     stall=False)
        assert r.item_loss_rate == pytest.approx(0.9, abs=0.02)

    def test_loss_rate_at_3x_gap(self):
        r = simulate(50_000, interarrival_ns=1.0, front_ns=0.5,
                     items_per_packet=1.0, back_ns=3.0, fifo_depth=32,
                     stall=False)
        assert r.item_loss_rate == pytest.approx(2 / 3, abs=0.02)

    def test_no_loss_when_back_keeps_up(self):
        r = simulate(10_000, interarrival_ns=1.0, front_ns=0.5,
                     items_per_packet=0.05, back_ns=10.0, fifo_depth=16,
                     stall=False)
        assert r.dropped_items == 0

    def test_ingress_stays_line_rate_in_drop_mode(self):
        r = simulate(10_000, interarrival_ns=1.0, front_ns=0.5,
                     items_per_packet=1.0, back_ns=10.0, fifo_depth=16,
                     stall=False)
        assert r.ingress_ns == pytest.approx(10_000, rel=0.01)


class TestAgreementWithAnalyticModel:
    """The closed forms of pipeline.IngressModel against the simulator."""

    @pytest.mark.parametrize("n", [1_000, 50_000, 200_000])
    def test_rcs_ingress_times_agree(self, n):
        lat = LatencyModel()
        analytic = IngressModel(lat, fifo_depth=10_000).process(rcs_counts(n))
        sim = simulate(
            n,
            interarrival_ns=lat.packet_interarrival_ns,
            front_ns=lat.hash_ns,
            items_per_packet=1.0,
            back_ns=lat.sram_rmw_ns,
            fifo_depth=10_000,
            stall=True,
        )
        assert sim.ingress_ns == pytest.approx(analytic.ingress_ns, rel=0.15)

    def test_rcs_loss_agrees(self):
        lat = LatencyModel()
        analytic = IngressModel(lat, fifo_depth=1000).process(rcs_counts(100_000))
        sim = simulate(
            100_000,
            interarrival_ns=lat.packet_interarrival_ns,
            front_ns=lat.hash_ns,
            items_per_packet=1.0,
            back_ns=lat.sram_rmw_ns,
            fifo_depth=1000,
            stall=False,
        )
        assert sim.item_loss_rate == pytest.approx(analytic.loss_rate, abs=0.03)

    def test_caesar_like_low_rate_agrees(self):
        lat = LatencyModel()
        sim = simulate(
            100_000,
            interarrival_ns=1.0,
            front_ns=lat.cache_access_ns,
            items_per_packet=0.04,
            back_ns=lat.hash_ns + lat.sram_rmw_ns,
            fifo_depth=10_000,
            stall=True,
        )
        # Amortized eviction traffic fits inside line rate: no stretch.
        assert sim.ingress_ns == pytest.approx(100_000, rel=0.01)
        assert sim.dropped_items == 0
