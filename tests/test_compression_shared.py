"""Unit tests for SAC, CEDAR, and ICE-buckets."""

import numpy as np
import pytest

from repro.baselines.compression.cedar import CedarSketch, calibrate_delta, cedar_levels
from repro.baselines.compression.icebuckets import IceBucketsSketch
from repro.baselines.compression.sac import SacSketch
from repro.errors import ConfigError


class TestCedarLevels:
    def test_levels_increasing(self):
        levels = cedar_levels(0.1, 100)
        assert np.all(np.diff(levels) >= 1.0)
        assert levels[0] == 0.0

    def test_small_delta_near_exact(self):
        levels = cedar_levels(1e-6, 50)
        np.testing.assert_allclose(levels, np.arange(51), atol=1e-3)

    def test_calibrate_reaches_target(self):
        delta = calibrate_delta(64, 100_000)
        assert cedar_levels(delta, 64)[-1] >= 100_000

    def test_calibrate_minimal(self):
        delta = calibrate_delta(64, 100_000)
        assert cedar_levels(delta * 0.8, 64)[-1] < 100_000

    def test_rejects_unreachable(self):
        with pytest.raises(ConfigError):
            calibrate_delta(3, 1e12)

    def test_rejects_bad_delta(self):
        with pytest.raises(ConfigError):
            cedar_levels(0.0, 10)


class TestCedarSketch:
    def test_estimates_are_levels(self, tiny_trace):
        sk = CedarSketch(512, 63, float(tiny_trace.flows.sizes.max()) * 2)
        sk.process(tiny_trace.packets)
        est = sk.estimate(tiny_trace.flows.ids)
        level_set = set(np.round(sk.levels, 6).tolist())
        assert all(round(float(e), 6) in level_set for e in est)

    def test_unbiased_single_counter(self):
        n_packets, trials = 300, 150
        finals = []
        for t in range(trials):
            sk = CedarSketch(1, 63, 5000, seed=t)
            sk.process(np.full(n_packets, 7, dtype=np.uint64))
            finals.append(sk.estimate(np.array([7], dtype=np.uint64))[0])
        assert np.mean(finals) == pytest.approx(n_packets, rel=0.1)

    def test_memory_accounting(self):
        sk = CedarSketch(8192, 63, 1000)
        assert sk.bits_per_counter == 6
        assert sk.memory_kilobytes == pytest.approx(6.0)


class TestSacSketch:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SacSketch(0)
        with pytest.raises(ConfigError):
            SacSketch(10, mantissa_bits=0)
        with pytest.raises(ConfigError):
            SacSketch(10, ell=0)

    def test_small_counts_exact(self):
        sk = SacSketch(16, seed=3)
        packets = np.full(10, 5, dtype=np.uint64)
        sk.process(packets)
        # Mode stays 0 for small counts: exact counting.
        assert sk.estimate(np.array([5], dtype=np.uint64))[0] == 10

    def test_unbiased_large_counts(self):
        n_packets, trials = 2000, 100
        finals = []
        for t in range(trials):
            sk = SacSketch(1, mantissa_bits=5, exponent_bits=4, ell=2, seed=t)
            for _ in range(n_packets):
                sk.increment(0)
            finals.append(sk._mantissa[0] * 2.0 ** (sk.ell * sk._exponent[0]))
        assert np.mean(finals) == pytest.approx(n_packets, rel=0.12)

    def test_renormalization_raises_exponent(self):
        sk = SacSketch(1, mantissa_bits=3, exponent_bits=4, ell=1, seed=1)
        for _ in range(200):
            sk.increment(0)
        assert sk._exponent[0] > 0

    def test_memory(self):
        sk = SacSketch(8192, mantissa_bits=6, exponent_bits=4)
        assert sk.bits_per_counter == 10
        assert sk.memory_kilobytes == pytest.approx(10.0)


class TestIceBuckets:
    def test_validation(self):
        with pytest.raises(ConfigError):
            IceBucketsSketch(0, 15, 100)
        with pytest.raises(ConfigError):
            IceBucketsSketch(10, 15, 100, bucket_size=0)
        with pytest.raises(ConfigError):
            IceBucketsSketch(10, 3, 1e15, num_scales=2)

    def test_small_flows_near_exact(self, tiny_trace):
        """Fine initial scale: buckets without elephants count ~exactly."""
        sk = IceBucketsSketch(4096, 255, 1e6, seed=4)
        mice = np.repeat(
            np.arange(100, dtype=np.uint64), 3
        )  # 100 flows of size 3
        sk.process(mice)
        est = sk.estimate(np.arange(100, dtype=np.uint64))
        # Collisions are rare at this load; most estimates exactly 3.
        assert float(np.mean(np.abs(est - 3) < 0.5)) > 0.9

    def test_upgrades_triggered_by_elephants(self):
        sk = IceBucketsSketch(64, 31, 1e6, bucket_size=8, seed=5)
        sk.process(np.full(50_000, 9, dtype=np.uint64))
        assert sk.upgrades > 0

    def test_elephant_tracked_after_upgrades(self):
        # Coarse-scale levels are geometric, so one run quantizes
        # heavily; the estimator is unbiased on average over seeds.
        finals = []
        for seed in range(30):
            sk = IceBucketsSketch(64, 255, 1e6, bucket_size=8, seed=seed)
            sk.process(np.full(30_000, 9, dtype=np.uint64))
            finals.append(sk.estimate(np.array([9], dtype=np.uint64))[0])
        assert np.mean(finals) == pytest.approx(30_000, rel=0.25)

    def test_memory_includes_scale_bits(self):
        sk = IceBucketsSketch(1024, 63, 1e5, bucket_size=64, num_scales=8)
        expected = (1024 * 6 + 16 * 3) / 8192
        assert sk.memory_kilobytes == pytest.approx(expected)
