"""Unit and integration tests for the Caesar scheme."""

import numpy as np
import pytest

from repro.analysis.metrics import top_flow_are
from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.errors import ConfigError, QueryError


def make_caesar(trace, **overrides):
    defaults = dict(
        cache_entries=max(8, trace.num_flows // 8),
        entry_capacity=max(2, int(2 * trace.mean_flow_size)),
        k=3,
        bank_size=max(64, trace.num_flows // 3),
        counter_capacity=2**30,
        seed=5,
    )
    defaults.update(overrides)
    return Caesar(CaesarConfig(**defaults))


class TestLifecycle:
    def test_estimate_before_finalize_raises(self, tiny_trace):
        caesar = make_caesar(tiny_trace)
        caesar.process(tiny_trace.packets)
        with pytest.raises(QueryError):
            caesar.estimate(tiny_trace.flows.ids)

    def test_process_after_finalize_raises(self, tiny_trace):
        caesar = make_caesar(tiny_trace)
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        with pytest.raises(QueryError):
            caesar.process(tiny_trace.packets)

    def test_finalize_idempotent(self, tiny_trace):
        caesar = make_caesar(tiny_trace)
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        mass = caesar.counters.total_mass
        caesar.finalize()
        assert caesar.counters.total_mass == mass

    def test_unknown_method_rejected(self, tiny_trace):
        caesar = make_caesar(tiny_trace)
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        with pytest.raises(ConfigError):
            caesar.estimate(tiny_trace.flows.ids, "map")


class TestConservation:
    @pytest.mark.parametrize("replacement", ["lru", "random"])
    @pytest.mark.parametrize("remainder", ["random", "even"])
    def test_counter_mass_equals_packets(self, tiny_trace, replacement, remainder):
        """Key invariant: after finalize, sum of all SRAM counters is n."""
        caesar = make_caesar(tiny_trace, replacement=replacement, remainder=remainder)
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        assert caesar.counters.total_mass == tiny_trace.num_packets
        assert caesar.num_packets == tiny_trace.num_packets

    def test_incremental_processing_equivalent_mass(self, tiny_trace):
        caesar = make_caesar(tiny_trace)
        half = len(tiny_trace.packets) // 2
        caesar.process(tiny_trace.packets[:half])
        caesar.process(tiny_trace.packets[half:])
        caesar.finalize()
        assert caesar.counters.total_mass == tiny_trace.num_packets


class TestEstimation:
    def test_isolated_flow_exact(self):
        """A single flow with an empty SRAM: estimate == truth exactly
        (no sharing noise, CSM subtracts n/L of itself... small)."""
        packets = np.full(100, 42, dtype=np.uint64)
        caesar = Caesar(
            CaesarConfig(cache_entries=4, entry_capacity=10, k=3, bank_size=1000)
        )
        caesar.process(packets)
        caesar.finalize()
        est = caesar.estimate(np.array([42], dtype=np.uint64))
        assert est[0] == pytest.approx(100 - 100 / 1000)

    def test_large_flows_accurate(self, small_trace):
        caesar = make_caesar(small_trace)
        caesar.process(small_trace.packets)
        caesar.finalize()
        for method in ("csm", "mlm"):
            est = caesar.estimate(small_trace.flows.ids, method)
            assert top_flow_are(est, small_trace.flows.sizes, top=20) < 0.35

    def test_csm_unbiased_in_aggregate(self, small_trace):
        caesar = make_caesar(small_trace)
        caesar.process(small_trace.packets)
        caesar.finalize()
        est = caesar.estimate(small_trace.flows.ids, "csm")
        resid = est - small_trace.flows.sizes
        # Mean absolute bias far below the per-flow noise scale.
        assert abs(resid.mean()) < 0.1 * np.abs(resid).mean() + 1.0

    def test_clip_negative_flag(self, small_trace):
        caesar = make_caesar(small_trace)
        caesar.process(small_trace.packets)
        caesar.finalize()
        raw = caesar.estimate(small_trace.flows.ids, "csm", clip_negative=False)
        clipped = caesar.estimate(small_trace.flows.ids, "csm", clip_negative=True)
        assert clipped.min() >= 0.0
        assert (raw < 0).any()  # with this much sharing, some go negative
        np.testing.assert_array_equal(clipped, np.maximum(raw, 0.0))

    def test_median_method_available(self, small_trace):
        caesar = make_caesar(small_trace)
        caesar.process(small_trace.packets)
        caesar.finalize()
        est = caesar.estimate(small_trace.flows.ids, "median")
        assert top_flow_are(est, small_trace.flows.sizes, top=20) < 0.5

    def test_counter_values_shape(self, tiny_trace):
        caesar = make_caesar(tiny_trace)
        caesar.process(tiny_trace.packets)
        caesar.finalize()
        w = caesar.counter_values(tiny_trace.flows.ids[:7])
        assert w.shape == (7, 3)

    def test_deterministic_given_seed(self, tiny_trace):
        results = []
        for _ in range(2):
            caesar = make_caesar(tiny_trace, seed=77)
            caesar.process(tiny_trace.packets)
            caesar.finalize()
            results.append(caesar.estimate(tiny_trace.flows.ids, "csm"))
        np.testing.assert_array_equal(results[0], results[1])


class TestConfidenceIntervals:
    def test_interval_contains_estimate(self, small_trace):
        caesar = make_caesar(small_trace)
        caesar.process(small_trace.packets)
        caesar.finalize()
        for method in ("csm", "mlm"):
            est = caesar.estimate(small_trace.flows.ids, method, clip_negative=False)
            lo, hi = caesar.confidence_interval(small_trace.flows.ids, method)
            assert (lo <= est + 1e-9).all() and (est <= hi + 1e-9).all()

    def test_empirical_interval_covers(self, small_trace):
        """The clustering-aware CI (extension) reaches near-nominal
        coverage where the paper's Eq. 26 under-covers."""
        caesar = make_caesar(small_trace)
        caesar.process(small_trace.packets)
        caesar.finalize()
        ids = small_trace.flows.ids
        truth = small_trace.flows.sizes
        lo_p, hi_p = caesar.confidence_interval(ids, "csm", alpha=0.95)
        lo_e, hi_e = caesar.confidence_interval(
            ids, "csm", alpha=0.95, variance_model="empirical"
        )
        cover_paper = float(np.mean((truth >= lo_p) & (truth <= hi_p)))
        cover_emp = float(np.mean((truth >= lo_e) & (truth <= hi_e)))
        assert cover_emp > 0.85
        assert cover_emp > cover_paper

    def test_empirical_interval_csm_only(self, small_trace):
        caesar = make_caesar(small_trace)
        caesar.process(small_trace.packets)
        caesar.finalize()
        with pytest.raises(ConfigError):
            caesar.confidence_interval(
                small_trace.flows.ids, "mlm", variance_model="empirical"
            )
        with pytest.raises(ConfigError):
            caesar.confidence_interval(
                small_trace.flows.ids, "csm", variance_model="bayesian"
            )

    def test_higher_alpha_wider(self, small_trace):
        caesar = make_caesar(small_trace)
        caesar.process(small_trace.packets)
        caesar.finalize()
        lo90, hi90 = caesar.confidence_interval(small_trace.flows.ids, "csm", alpha=0.90)
        lo99, hi99 = caesar.confidence_interval(small_trace.flows.ids, "csm", alpha=0.99)
        assert ((hi99 - lo99) >= (hi90 - lo90) - 1e-9).all()
