"""The MeasurementScheme protocol: conformance and the generic layers.

Every scheme (CAESAR, CASE, RCS) and the sharded composite must
satisfy the structural protocol, so orchestration code written against
it — ``run_scheme``, ``ShardedScheme``, the experiment builders — works
for any of them without per-scheme branches.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.case import Case, CaseConfig
from repro.baselines.rcs import RCS, RCSConfig
from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.core.scheme import MeasurementScheme, run_scheme
from repro.core.sharded import ShardedCaesar, ShardedScheme
from repro.errors import QueryError


def _caesar() -> Caesar:
    return Caesar(
        CaesarConfig(cache_entries=64, entry_capacity=8, bank_size=128, seed=1)
    )


def _case(max_value: float) -> Case:
    return Case(
        CaseConfig(
            cache_entries=64,
            entry_capacity=8,
            num_counters=256,
            counter_capacity=255,
            max_value=max_value,
            seed=2,
        )
    )


def _rcs() -> RCS:
    return RCS(RCSConfig(k=3, bank_size=128, seed=3))


def _schemes(trace):
    return [_caesar(), _case(float(trace.flows.sizes.max())), _rcs()]


def test_all_schemes_satisfy_protocol(tiny_trace):
    for scheme in _schemes(tiny_trace):
        assert isinstance(scheme, MeasurementScheme), type(scheme).__name__


def test_sharded_layers_satisfy_protocol():
    config = CaesarConfig(cache_entries=64, entry_capacity=8, bank_size=128)
    assert isinstance(ShardedCaesar(config, 2), MeasurementScheme)
    generic = ShardedScheme(lambda i: _rcs(), 2)
    assert isinstance(generic, MeasurementScheme)


def test_run_scheme_drives_any_scheme(tiny_trace):
    ids = tiny_trace.flows.ids
    for scheme in _schemes(tiny_trace):
        est = run_scheme(scheme, tiny_trace.packets, ids)
        assert est.shape == (len(ids),)
        assert np.isfinite(est).all()
        assert scheme.num_packets == len(tiny_trace.packets)
        assert scheme.memory_bits > 0


def test_finalize_is_idempotent(tiny_trace):
    for scheme in _schemes(tiny_trace):
        scheme.process(tiny_trace.packets[:2000])
        scheme.finalize()
        first = scheme.estimate(tiny_trace.flows.ids[:50]).copy()
        scheme.finalize()
        np.testing.assert_array_equal(
            first, scheme.estimate(tiny_trace.flows.ids[:50])
        )


def test_cache_schemes_reject_process_after_finalize(tiny_trace):
    for scheme in (_caesar(), _case(float(tiny_trace.flows.sizes.max()))):
        scheme.process(tiny_trace.packets[:500])
        scheme.finalize()
        with pytest.raises(QueryError):
            scheme.process(tiny_trace.packets[:500])


def test_generic_sharded_scheme_over_rcs(tiny_trace):
    """ShardedScheme composes a scheme whose process() takes no lengths
    argument — the protocol's minimal surface."""
    sharded = ShardedScheme(lambda i: RCS(RCSConfig(k=3, bank_size=64, seed=10 + i)), 3)
    sharded.process(tiny_trace.packets)
    sharded.finalize()
    est = sharded.estimate(tiny_trace.flows.ids)
    assert est.shape == (len(tiny_trace.flows.ids),)
    assert sharded.num_packets == len(tiny_trace.packets)
    assert sharded.memory_bits == sum(s.memory_bits for s in sharded.shards)


def test_sharded_caesar_engine_flows_through_config(tiny_trace):
    """The sharded layer consumes the protocol only, so each shard runs
    the engine its config selects — and all engines agree."""
    results = {}
    for engine in ("scalar", "batched", "runs"):
        config = CaesarConfig(
            cache_entries=64, entry_capacity=8, bank_size=128, seed=5, engine=engine
        )
        sharded = ShardedCaesar(config, 3, divide_budget=False)
        assert all(shard.engine == engine for shard in sharded.shards)
        sharded.process(tiny_trace.packets)
        sharded.finalize()
        results[engine] = sharded.estimate(tiny_trace.flows.ids)
    np.testing.assert_array_equal(results["scalar"], results["batched"])
    np.testing.assert_array_equal(results["scalar"], results["runs"])


def test_measure_api_engine_selection(tiny_trace):
    import repro

    batched = repro.measure(tiny_trace.packets, sram_kb=1.0, cache_kb=0.5)
    scalar = repro.measure(
        tiny_trace.packets, sram_kb=1.0, cache_kb=0.5, engine="scalar"
    )
    runs = repro.measure(tiny_trace.packets, sram_kb=1.0, cache_kb=0.5, engine="runs")
    assert batched.caesar.engine == "batched"
    assert scalar.caesar.engine == "scalar"
    assert runs.caesar.engine == "runs"
    ids = tiny_trace.flows.ids
    np.testing.assert_array_equal(batched.estimate(ids), scalar.estimate(ids))
    np.testing.assert_array_equal(batched.estimate(ids), runs.estimate(ids))
    assert batched.top_flows(5) == scalar.top_flows(5)
    assert batched.top_flows(5) == runs.top_flows(5)


def test_cli_engine_flag(tiny_trace, tmp_path, capsys):
    from repro.cli import main

    trace_path = str(tmp_path / "trace.npz")
    tiny_trace.save(trace_path)
    outputs = {}
    for engine in ("scalar", "batched", "runs"):
        assert (
            main(
                [
                    "measure",
                    "--trace",
                    trace_path,
                    "--sram-kb",
                    "1.0",
                    "--cache-kb",
                    "0.5",
                    "--top",
                    "3",
                    "--engine",
                    engine,
                ]
            )
            == 0
        )
        outputs[engine] = capsys.readouterr().out
    assert outputs["scalar"] == outputs["batched"] == outputs["runs"]
    assert "top 3 flows" in outputs["batched"]
