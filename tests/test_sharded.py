"""Tests for sharded (multi-queue) CAESAR."""

import numpy as np
import pytest

from repro.analysis.metrics import top_flow_are
from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.core.sharded import ShardedCaesar
from repro.errors import ConfigError, QueryError


def make_config(trace, **overrides):
    defaults = dict(
        cache_entries=max(16, trace.num_flows // 4),
        entry_capacity=max(2, int(2 * trace.mean_flow_size)),
        k=3,
        bank_size=max(128, trace.num_flows),
        seed=31,
    )
    defaults.update(overrides)
    return CaesarConfig(**defaults)


class TestPartitioning:
    def test_shard_assignment_deterministic(self, tiny_trace):
        sc = ShardedCaesar(make_config(tiny_trace), num_shards=4)
        a = sc.shard_of(tiny_trace.flows.ids)
        b = sc.shard_of(tiny_trace.flows.ids)
        np.testing.assert_array_equal(a, b)
        assert a.min() >= 0 and a.max() < 4

    def test_shards_roughly_balanced(self, small_trace):
        sc = ShardedCaesar(make_config(small_trace), num_shards=4)
        owners = sc.shard_of(small_trace.flows.ids)
        counts = np.bincount(owners, minlength=4)
        assert counts.min() > 0.15 * small_trace.num_flows

    def test_budget_division(self, tiny_trace):
        cfg = make_config(tiny_trace, bank_size=1024, cache_entries=256)
        sc = ShardedCaesar(cfg, num_shards=4)
        assert sc.shard_config.bank_size == 256
        assert sc.shard_config.cache_entries == 64
        sc2 = ShardedCaesar(cfg, num_shards=4, divide_budget=False)
        assert sc2.shard_config.bank_size == 1024

    def test_rejects_zero_shards(self, tiny_trace):
        with pytest.raises(ConfigError):
            ShardedCaesar(make_config(tiny_trace), num_shards=0)


class TestMeasurement:
    def test_mass_conserved_across_shards(self, tiny_trace):
        sc = ShardedCaesar(make_config(tiny_trace), num_shards=3)
        sc.process(tiny_trace.packets)
        sc.finalize()
        total = sum(s.counters.total_mass for s in sc.shards)
        assert total == tiny_trace.num_packets
        assert sc.num_packets == tiny_trace.num_packets
        assert sc.recorded_mass == tiny_trace.num_packets

    def test_estimates_routed_correctly(self, small_trace):
        sc = ShardedCaesar(
            make_config(small_trace), num_shards=4, divide_budget=False
        )
        sc.process(small_trace.packets)
        sc.finalize()
        est = sc.estimate(small_trace.flows.ids)
        assert top_flow_are(est, small_trace.flows.sizes, top=20) < 0.35

    def test_query_before_finalize_raises(self, tiny_trace):
        sc = ShardedCaesar(make_config(tiny_trace), num_shards=2)
        sc.process(tiny_trace.packets)
        with pytest.raises(QueryError):
            sc.estimate(tiny_trace.flows.ids)

    def test_process_after_finalize_raises(self, tiny_trace):
        sc = ShardedCaesar(make_config(tiny_trace), num_shards=2)
        sc.process(tiny_trace.packets)
        sc.finalize()
        with pytest.raises(QueryError):
            sc.process(tiny_trace.packets)

    def test_single_shard_matches_plain_caesar(self, tiny_trace):
        cfg = make_config(tiny_trace)
        sc = ShardedCaesar(cfg, num_shards=1, divide_budget=False)
        sc.process(tiny_trace.packets)
        sc.finalize()
        plain = Caesar(CaesarConfig(
            cache_entries=cfg.cache_entries, entry_capacity=cfg.entry_capacity,
            k=cfg.k, bank_size=cfg.bank_size, seed=cfg.seed,
        ))
        plain.process(tiny_trace.packets)
        plain.finalize()
        np.testing.assert_allclose(
            sc.estimate(tiny_trace.flows.ids),
            plain.estimate(tiny_trace.flows.ids),
        )

    def test_parallel_construction_matches_sequential(self, tiny_trace):
        cfg = make_config(tiny_trace)
        seq = ShardedCaesar(cfg, num_shards=2)
        seq.process(tiny_trace.packets)
        seq.finalize()
        par = ShardedCaesar(cfg, num_shards=2)
        par.process(tiny_trace.packets, max_workers=2)
        par.finalize()
        np.testing.assert_allclose(
            seq.estimate(tiny_trace.flows.ids),
            par.estimate(tiny_trace.flows.ids),
        )

    def test_process_stream_matches_one_shot(self, tiny_trace):
        """Chunked streaming ingest is bit-identical to one-shot
        process(), whatever the chunk size (docs/runtime.md)."""
        cfg = make_config(tiny_trace)
        one_shot = ShardedCaesar(cfg, num_shards=3)
        one_shot.process(tiny_trace.packets)
        one_shot.finalize()
        for chunk_packets in (777, 4096):
            streamed = ShardedCaesar(cfg, num_shards=3)
            streamed.process_stream(tiny_trace.packets, chunk_packets=chunk_packets)
            streamed.finalize()
            np.testing.assert_array_equal(
                one_shot.estimate(tiny_trace.flows.ids),
                streamed.estimate(tiny_trace.flows.ids),
            )
            for a, b in zip(one_shot.shards, streamed.shards):
                assert a.checkpoint().digest == b.checkpoint().digest

    def test_process_stream_accepts_iterables(self, tiny_trace):
        cfg = make_config(tiny_trace)
        a = ShardedCaesar(cfg, num_shards=2)
        a.process(tiny_trace.packets)
        a.finalize()
        pieces = np.array_split(tiny_trace.packets, 5)
        b = ShardedCaesar(cfg, num_shards=2)
        b.process_stream(iter(pieces))
        b.finalize()
        np.testing.assert_array_equal(
            a.estimate(tiny_trace.flows.ids), b.estimate(tiny_trace.flows.ids)
        )

    def test_process_stream_after_finalize_raises(self, tiny_trace):
        sc = ShardedCaesar(make_config(tiny_trace), num_shards=2)
        sc.process(tiny_trace.packets)
        sc.finalize()
        with pytest.raises(QueryError):
            sc.process_stream(tiny_trace.packets)

    def test_volume_through_shards(self, tiny_trace):
        from repro.traffic.lengths import constant_lengths

        cfg = make_config(tiny_trace, entry_capacity=10_000, counter_capacity=2**40)
        sc = ShardedCaesar(cfg, num_shards=2)
        lengths = constant_lengths(tiny_trace.num_packets, 100)
        sc.process(tiny_trace.packets, lengths)
        sc.finalize()
        assert sc.recorded_mass == 100 * tiny_trace.num_packets
