"""Tests for the pcap reader/writer and the capture-to-stream feed."""

import struct

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.traffic.pcap import (
    PCAP_MAGIC,
    CapturedPacket,
    pcap_to_streams,
    read_pcap,
    write_pcap,
)
from repro.types import FiveTuple


def sample_headers():
    return [
        FiveTuple(0x0A000001, 0x0A000002, 1234, 80, 6),
        FiveTuple(0x0A000001, 0x0A000002, 1234, 80, 6),
        FiveTuple(0xC0A80101, 0x08080808, 5353, 53, 17),
        FiveTuple(0x0A000003, 0x0A000004, 0, 0, 1),  # ICMP, portless
    ]


class TestRoundtrip:
    def test_write_read(self, tmp_path):
        path = tmp_path / "t.pcap"
        headers = sample_headers()
        lengths = np.array([100, 1500, 60, 84], dtype=np.int64)
        write_pcap(path, headers, lengths)
        result = read_pcap(path)
        assert result.skipped == 0
        assert len(result.packets) == 4
        for pkt, h, length in zip(result.packets, headers, lengths):
            assert pkt.header == h
            assert pkt.ip_length == length

    def test_timestamps_monotone(self, tmp_path):
        path = tmp_path / "t.pcap"
        write_pcap(path, sample_headers(), interarrival_s=0.5)
        times = [p.timestamp for p in read_pcap(path).packets]
        assert times == sorted(times)


class TestRobustness:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.pcap"
        path.write_bytes(b"\x00" * 64)
        with pytest.raises(TraceFormatError):
            read_pcap(path)

    def test_too_short(self, tmp_path):
        path = tmp_path / "short.pcap"
        path.write_bytes(b"\x01")
        with pytest.raises(TraceFormatError):
            read_pcap(path)

    def test_non_ipv4_frames_skipped(self, tmp_path):
        path = tmp_path / "mixed.pcap"
        write_pcap(path, sample_headers()[:1])
        raw = bytearray(path.read_bytes())
        # Append an ARP frame record (ethertype 0x0806).
        frame = b"\x02" * 12 + (0x0806).to_bytes(2, "big") + b"\x00" * 28
        raw += struct.pack("<IIII", 0, 0, len(frame), len(frame)) + frame
        path.write_bytes(bytes(raw))
        result = read_pcap(path)
        assert len(result.packets) == 1
        assert result.skipped == 1

    def test_truncated_record(self, tmp_path):
        path = tmp_path / "trunc.pcap"
        write_pcap(path, sample_headers()[:1])
        raw = path.read_bytes()
        path.write_bytes(raw[:-3])
        with pytest.raises(TraceFormatError):
            read_pcap(path)


class TestStreamFeed:
    def test_streams_align(self, tmp_path):
        path = tmp_path / "t.pcap"
        headers = sample_headers()
        lengths = np.array([100, 1500, 60, 84], dtype=np.int64)
        write_pcap(path, headers, lengths)
        ids, lens = pcap_to_streams(path)
        assert len(ids) == 4
        np.testing.assert_array_equal(lens, lengths)
        # Same 5-tuple -> same flow ID.
        assert ids[0] == ids[1]
        assert len(np.unique(ids)) == 3

    def test_feeds_caesar(self, tmp_path):
        from repro.core.caesar import Caesar
        from repro.core.config import CaesarConfig

        rng = np.random.default_rng(5)
        headers = []
        base = sample_headers()[0]
        for _ in range(300):
            which = rng.integers(0, 3)
            headers.append(
                FiveTuple(base.src_ip + int(which), base.dst_ip, 1000, 80, 6)
            )
        path = tmp_path / "t.pcap"
        write_pcap(path, headers)
        ids, lens = pcap_to_streams(path)
        caesar = Caesar(
            CaesarConfig(
                cache_entries=16, entry_capacity=100_000, k=3, bank_size=64,
                counter_capacity=2**40,
            )
        )
        caesar.process(ids, lens)
        caesar.finalize()
        assert caesar.counters.total_mass == int(lens.sum())
