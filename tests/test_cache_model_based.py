"""Model-based testing of FlowCache against a naive reference model.

The production cache uses O(1) policy structures (OrderedDict, swap
lists). The reference model here is deliberately naive — plain lists,
linear scans — so its correctness is obvious by inspection. Hypothesis
drives both with the same random streams and demands identical
observable behaviour: eviction sequences, residency, and statistics.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cachesim.base import EvictionReason
from repro.cachesim.cache import FlowCache


class ReferenceLRUCache:
    """Obviously-correct LRU flow cache: lists and linear scans."""

    def __init__(self, num_entries: int, entry_capacity: int) -> None:
        self.num_entries = num_entries
        self.entry_capacity = entry_capacity
        self.entries: list[list] = []  # [flow_id, count], most recent last
        self.evictions: list[tuple[int, int, str]] = []

    def _find(self, fid: int):
        for i, entry in enumerate(self.entries):
            if entry[0] == fid:
                return i
        return None

    def access(self, fid: int) -> None:
        pos = self._find(fid)
        if pos is not None:
            entry = self.entries.pop(pos)
            self.entries.append(entry)  # touch: most recent
            entry[1] += 1
            if entry[1] >= self.entry_capacity:
                self.evictions.append((fid, entry[1], "overflow"))
                entry[1] = 0
            return
        if len(self.entries) >= self.num_entries:
            victim = self.entries.pop(0)  # least recent
            if victim[1] > 0:
                self.evictions.append((victim[0], victim[1], "replacement"))
        self.entries.append([fid, 1])

    def dump(self) -> None:
        for fid, count in self.entries:
            if count > 0:
                self.evictions.append((fid, count, "final_dump"))
        self.entries = []


REASON_NAME = {
    EvictionReason.OVERFLOW: "overflow",
    EvictionReason.REPLACEMENT: "replacement",
    EvictionReason.FINAL_DUMP: "final_dump",
}


@given(
    st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=500),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=2, max_value=12),
)
@settings(max_examples=120, deadline=None)
def test_lru_cache_matches_reference_model(stream, entries, capacity):
    """Every eviction (flow, value, reason, order) must match the
    naive model exactly, for arbitrary streams and geometries."""
    cache = FlowCache(entries, capacity, policy="lru")
    observed: list[tuple[int, int, str]] = []

    def sink(fid, value, reason):
        observed.append((fid, value, REASON_NAME[reason]))

    reference = ReferenceLRUCache(entries, capacity)
    for fid in stream:
        reference.access(fid)
    cache.process(np.array(stream, dtype=np.uint64), sink)

    assert observed == reference.evictions[: len(observed)]
    # Residency must agree too.
    assert sorted((e[0], e[1]) for e in reference.entries) == sorted(
        cache.iter_entries()
    )
    cache.dump(sink)
    reference.dump()
    # Dump order may differ (dict order vs recency order); compare as sets.
    assert sorted(observed) == sorted(reference.evictions)


@given(
    st.lists(st.integers(min_value=0, max_value=6), min_size=1, max_size=300),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=60, deadline=None)
def test_random_policy_conserves_and_bounds(stream, entries):
    """Random replacement can't be compared trace-for-trace, but its
    conservation and occupancy invariants are policy-independent."""
    cache = FlowCache(entries, 5, policy="random", seed=9)
    flushed: dict[int, int] = {}

    def sink(fid, value, reason):
        flushed[fid] = flushed.get(fid, 0) + value

    for fid in stream:
        cache.access(int(fid), sink)
        assert len(cache) <= entries
    cache.dump(sink)
    truth: dict[int, int] = {}
    for fid in stream:
        truth[fid] = truth.get(fid, 0) + 1
    assert flushed == truth
