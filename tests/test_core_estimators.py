"""Unit tests for the CSM and MLM estimators (pure functions)."""

import numpy as np
import pytest

from repro.core.csm import counter_median_estimate, csm_confidence_interval, csm_estimate
from repro.core.mlm import mlm_confidence_interval, mlm_estimate
from repro.errors import ConfigError


class TestCsmEstimate:
    def test_single_flow_vector(self):
        # Eq. 20: x_hat = sum(counters) - n/L.
        est = csm_estimate(np.array([10, 12, 8]), num_packets=3000, bank_size=100)
        assert est == pytest.approx(30 - 30)

    def test_matrix_form(self):
        w = np.array([[1, 2, 3], [4, 5, 6]])
        est = csm_estimate(w, num_packets=0, bank_size=10)
        np.testing.assert_allclose(est, [6, 15])

    def test_clipping(self):
        est = csm_estimate(np.array([[1, 1, 1]]), num_packets=1000, bank_size=10)
        assert est[0] == pytest.approx(3 - 100)
        est_c = csm_estimate(
            np.array([[1, 1, 1]]), num_packets=1000, bank_size=10, clip_negative=True
        )
        assert est_c[0] == 0.0

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            csm_estimate(np.array([1.0]), num_packets=10, bank_size=0)
        with pytest.raises(ConfigError):
            csm_estimate(np.array([1.0]), num_packets=-1, bank_size=10)


class TestCounterMedianEstimate:
    def test_agrees_with_csm_when_counters_equal(self):
        w = np.array([[100, 100, 100]])
        med = counter_median_estimate(w, num_packets=1000, bank_size=100)
        csm = csm_estimate(w, num_packets=1000, bank_size=100)
        assert med[0] == pytest.approx(csm[0])

    def test_ignores_one_polluted_counter(self):
        # One counter inflated by a colliding elephant: median unmoved.
        clean = counter_median_estimate(
            np.array([[100, 100, 100]]), num_packets=0, bank_size=10
        )
        polluted = counter_median_estimate(
            np.array([[100, 100, 99_999]]), num_packets=0, bank_size=10
        )
        assert polluted[0] == clean[0]

    def test_csm_is_moved_by_pollution(self):
        clean = csm_estimate(np.array([[100, 100, 100]]), 0, 10)
        polluted = csm_estimate(np.array([[100, 100, 99_999]]), 0, 10)
        assert polluted[0] > clean[0] + 90_000

    def test_clip(self):
        est = counter_median_estimate(
            np.array([[0, 0, 0]]), num_packets=1000, bank_size=10, clip_negative=True
        )
        assert est[0] == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            counter_median_estimate(np.array([1.0]), 10, 0)


class TestMlmEstimate:
    def test_zero_noise_recovers_truth(self):
        # With equal counters x/k and no noise, MLM ~ CSM ~ x.
        x, k, y = 900, 3, 54
        w = np.full((1, k), x / k)
        est = mlm_estimate(w, num_packets=0, bank_size=1000, entry_capacity=y)
        # x_hat = 0.5*(sqrt(c^2 + 4k * k*(x/k)^2) - c) with c=(k-1)^2/y
        c = (k - 1) ** 2 / y
        expected = 0.5 * (np.sqrt(c * c + 4 * k * k * (x / k) ** 2) - c)
        assert est[0] == pytest.approx(expected)
        assert est[0] == pytest.approx(x, rel=0.01)

    def test_noise_subtraction(self):
        w = np.full((1, 3), 100.0)
        noisy = mlm_estimate(w, num_packets=5000, bank_size=100, entry_capacity=54)
        clean = mlm_estimate(w, num_packets=0, bank_size=100, entry_capacity=54)
        assert noisy[0] == pytest.approx(clean[0] - 50.0)  # minus 2*(n/L)/2

    def test_k1_degenerates_to_identity(self):
        w = np.array([[42.0]])
        est = mlm_estimate(w, num_packets=0, bank_size=10, entry_capacity=54)
        assert est[0] == pytest.approx(42.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ConfigError):
            mlm_estimate(np.array([1.0]), 10, 0, entry_capacity=5)
        with pytest.raises(ConfigError):
            mlm_estimate(np.array([1.0]), 10, 5, entry_capacity=0)

    def test_clip(self):
        w = np.zeros((1, 3))
        est = mlm_estimate(
            w, num_packets=10000, bank_size=10, entry_capacity=54, clip_negative=True
        )
        assert est[0] == 0.0


class TestConfidenceIntervals:
    kwargs = dict(k=3, entry_capacity=54, bank_size=1000, num_packets=100_000)

    def test_csm_interval_symmetric(self):
        est = np.array([100.0, 500.0])
        lo, hi = csm_confidence_interval(est, **self.kwargs, alpha=0.95)
        np.testing.assert_allclose((lo + hi) / 2, est)
        assert ((hi - lo) > 0).all()

    def test_csm_width_grows_with_size(self):
        est = np.array([10.0, 10_000.0])
        lo, hi = csm_confidence_interval(est, **self.kwargs)
        assert hi[1] - lo[1] > hi[0] - lo[0]

    def test_mlm_interval_valid(self):
        est = np.array([250.0])
        lo, hi = mlm_confidence_interval(est, **self.kwargs, alpha=0.95)
        assert lo[0] < est[0] < hi[0]

    def test_mlm_requires_k2(self):
        with pytest.raises(ConfigError):
            mlm_confidence_interval(
                np.array([1.0]), k=1, entry_capacity=5, bank_size=5, num_packets=5
            )

    def test_alpha_validation(self):
        with pytest.raises(ConfigError):
            csm_confidence_interval(np.array([1.0]), **self.kwargs, alpha=1.5)
        with pytest.raises(ConfigError):
            mlm_confidence_interval(np.array([1.0]), **self.kwargs, alpha=0.0)

    def test_mlm_tighter_than_csm(self):
        # Section 5.2: MLM is the more accurate method under the
        # paper's variance model, so its CI must be narrower.
        est = np.array([1000.0])
        lo_c, hi_c = csm_confidence_interval(est, **self.kwargs)
        lo_m, hi_m = mlm_confidence_interval(est, **self.kwargs)
        assert hi_m[0] - lo_m[0] < hi_c[0] - lo_c[0]
