"""Tests for the sampling baseline and Counter Tree."""

import numpy as np
import pytest

from repro.analysis.metrics import top_flow_are
from repro.baselines.counter_tree import CounterTree, CounterTreeConfig
from repro.baselines.sampling import SampledCounter
from repro.errors import ConfigError


class TestSampledCounter:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SampledCounter(0.0)
        with pytest.raises(ConfigError):
            SampledCounter(1.5)

    def test_full_rate_is_exact(self, tiny_trace):
        sc = SampledCounter(1.0)
        sc.process(tiny_trace.packets)
        est = sc.estimate(tiny_trace.flows.ids)
        np.testing.assert_allclose(est, tiny_trace.flows.sizes)

    def test_unbiased_at_low_rate(self):
        trials, size, p = 300, 400, 0.05
        packets = np.full(size, 3, dtype=np.uint64)
        ests = []
        for t in range(trials):
            sc = SampledCounter(p, seed=t)
            sc.process(packets)
            ests.append(sc.estimate(np.array([3], dtype=np.uint64))[0])
        assert np.mean(ests) == pytest.approx(size, rel=0.07)

    def test_mice_are_lost(self, small_trace):
        """The paper's critique: low-rate sampling misses small flows."""
        sc = SampledCounter(0.01, seed=4)
        sc.process(small_trace.packets)
        est = sc.estimate(small_trace.flows.ids)
        mice = small_trace.flows.sizes <= 3
        assert float(np.mean(est[mice] == 0)) > 0.9

    def test_elephants_survive(self, small_trace):
        sc = SampledCounter(0.05, seed=4)
        sc.process(small_trace.packets)
        est = sc.estimate(small_trace.flows.ids)
        assert top_flow_are(est, small_trace.flows.sizes, top=10) < 0.4

    def test_state_smaller_than_flow_count(self, small_trace):
        sc = SampledCounter(0.01, seed=4)
        sc.process(small_trace.packets)
        assert sc.num_tracked_flows < 0.5 * small_trace.num_flows
        assert sc.memory_kilobytes() > 0


class TestCounterTree:
    def test_validation(self):
        with pytest.raises(ConfigError):
            CounterTreeConfig(num_leaves=0)
        with pytest.raises(ConfigError):
            CounterTreeConfig(leaf_bits=0)
        with pytest.raises(ConfigError):
            CounterTreeConfig(degree=0)

    def test_memory_accounting(self):
        cfg = CounterTreeConfig(num_leaves=4096, leaf_bits=6, degree=8, parent_bits=24)
        assert cfg.num_parents == 512
        assert cfg.memory_kilobytes == pytest.approx((4096 * 6 + 512 * 24) / 8192)

    def test_mass_conservation_through_carries(self, tiny_trace):
        tree = CounterTree(CounterTreeConfig(num_leaves=1024))
        tree.process(tiny_trace.packets)
        assert tree.total_mass == tiny_trace.num_packets

    def test_single_flow_exact_through_wraps(self):
        tree = CounterTree(CounterTreeConfig(num_leaves=256, leaf_bits=4))
        tree.process(np.full(10_000, 9, dtype=np.uint64))
        est = tree.estimate(np.array([9], dtype=np.uint64))
        # The sibling-noise expectation correction cannot exclude the
        # queried flow's own carries from the layer-wide average, so a
        # flow holding most of the mass is shaved by ~(degree-1)/leaves.
        assert est[0] == pytest.approx(10_000, rel=0.05)

    def test_elephants_tracked_in_shared_tree(self, small_trace):
        tree = CounterTree(
            CounterTreeConfig(num_leaves=4 * small_trace.num_flows, leaf_bits=6)
        )
        tree.process(small_trace.packets)
        est = tree.estimate(small_trace.flows.ids)
        assert top_flow_are(est, small_trace.flows.sizes, top=10) < 0.5

    def test_incremental_batches(self, tiny_trace):
        a = CounterTree(CounterTreeConfig(num_leaves=512))
        a.process(tiny_trace.packets)
        b = CounterTree(CounterTreeConfig(num_leaves=512))
        half = len(tiny_trace.packets) // 2
        b.process(tiny_trace.packets[:half])
        b.process(tiny_trace.packets[half:])
        assert a.total_mass == b.total_mass
        np.testing.assert_allclose(
            a.estimate(tiny_trace.flows.ids), b.estimate(tiny_trace.flows.ids)
        )

    def test_estimates_nonnegative(self, tiny_trace):
        tree = CounterTree(CounterTreeConfig(num_leaves=128))
        tree.process(tiny_trace.packets)
        assert (tree.estimate(tiny_trace.flows.ids) >= 0).all()
