"""Unit tests for CaesarConfig."""

import pytest

from repro.core.config import CaesarConfig
from repro.errors import ConfigError


class TestValidation:
    def test_defaults_valid(self):
        cfg = CaesarConfig(cache_entries=100, entry_capacity=54)
        assert cfg.k == 3
        assert cfg.replacement == "lru"

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(cache_entries=0, entry_capacity=10),
            dict(cache_entries=10, entry_capacity=0),
            dict(cache_entries=10, entry_capacity=10, k=0),
            dict(cache_entries=10, entry_capacity=10, bank_size=0),
            dict(cache_entries=10, entry_capacity=10, counter_capacity=5),
            dict(cache_entries=10, entry_capacity=10, replacement="mru"),
            dict(cache_entries=10, entry_capacity=10, remainder="weird"),
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            CaesarConfig(**kwargs)


class TestMemoryAccounting:
    def test_sram_kilobytes(self):
        cfg = CaesarConfig(
            cache_entries=10, entry_capacity=10, k=3, bank_size=1000,
            counter_capacity=2**20 - 1,
        )
        assert cfg.sram_kilobytes == pytest.approx(3 * 1000 * 20 / 8192)

    def test_cache_kilobytes(self):
        cfg = CaesarConfig(cache_entries=1024, entry_capacity=63)
        assert cfg.cache_kilobytes == pytest.approx(1024 * 6 / 8192)


class TestForBudgets:
    def test_paper_sizing_rule(self):
        cfg = CaesarConfig.for_budgets(
            sram_kb=91.55, cache_kb=97.66, num_packets=27_720_011, num_flows=1_014_601
        )
        # y = floor(2 * 27.32) = 54
        assert cfg.entry_capacity == 54
        assert cfg.sram_kilobytes <= 91.55
        assert cfg.cache_kilobytes <= 97.66
        # The derived bank size matches the paper geometry (20-bit l).
        assert 12000 <= cfg.bank_size <= 13000

    def test_budget_never_exceeded(self):
        for sram_kb in (1.0, 4.5, 91.55):
            cfg = CaesarConfig.for_budgets(
                sram_kb=sram_kb, cache_kb=2.0, num_packets=100_000, num_flows=5_000
            )
            assert cfg.sram_kilobytes <= sram_kb

    def test_rejects_empty_traffic(self):
        with pytest.raises(ConfigError):
            CaesarConfig.for_budgets(
                sram_kb=1, cache_kb=1, num_packets=0, num_flows=10
            )

    def test_describe_mentions_key_params(self):
        cfg = CaesarConfig(cache_entries=100, entry_capacity=54)
        text = cfg.describe()
        assert "M=100" in text and "y=54" in text and "k=3" in text
