"""Observability layer: registry semantics, trace ring, determinism,
scheme gauges, export, and the CLI surface.

The contract under test (docs/observability.md): metrics are *opt-in*
(``registry=None`` everywhere means off, via the shared null registry),
*deterministic* in their counter/histogram/timer-call sections under a
fixed seed, and *non-perturbing* — which tests/test_engine_equivalence.py
enforces at the bit level.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.export import export_metrics, format_metrics
from repro.api import measure
from repro.baselines.rcs import RCS, RCSConfig
from repro.cachesim.base import EvictionReason
from repro.cli import main
from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.core.epochs import EpochalCaesar
from repro.core.sharded import ShardedCaesar
from repro.errors import ConfigError
from repro.obs import (
    NULL_REGISTRY,
    EvictionTrace,
    MetricsRegistry,
    NullRegistry,
    observe_scheme,
    resolve_registry,
    snapshot_of,
)


def _tiny_config(**overrides) -> CaesarConfig:
    defaults = dict(
        cache_entries=64, entry_capacity=8, k=3, bank_size=128, seed=0xD0
    )
    defaults.update(overrides)
    return CaesarConfig(**defaults)


# -- registry instruments ---------------------------------------------------------


class TestRegistry:
    def test_counter_get_or_create(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.counter("a").inc(3)
        assert reg.snapshot()["counters"] == {"a": 4}

    def test_gauge_is_last_value(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(2)
        reg.gauge("g").set(7.5)
        assert reg.snapshot()["gauges"] == {"g": 7.5}

    def test_histogram_bucket_boundaries(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", edges=(1, 2, 4))
        # bucket i counts edges[i-1] < v <= edges[i]; last bucket is overflow
        for v in (1, 2, 2, 3, 4, 5, 100):
            h.observe(v)
        assert h.bucket_counts == [1, 2, 2, 2]
        assert h.count == 7
        assert h.total == 1 + 2 + 2 + 3 + 4 + 5 + 100

    def test_histogram_observe_many_matches_scalar(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 3000, size=500).astype(np.int64)
        reg = MetricsRegistry()
        one, many = reg.histogram("one"), reg.histogram("many")
        for v in values.tolist():
            one.observe(v)
        many.observe_many(values)
        many.observe_many(values[:0])  # empty chunk is a no-op
        assert one.bucket_counts == many.bucket_counts
        assert (one.count, one.total) == (many.count, many.total)

    def test_histogram_edge_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("h", edges=(1, 2))
        with pytest.raises(ConfigError):
            reg.histogram("h", edges=(1, 2, 3))
        with pytest.raises(ConfigError):
            reg.histogram("bad", edges=(2, 2))

    def test_timer_accumulates_calls_and_seconds(self):
        reg = MetricsRegistry()
        for _ in range(3):
            with reg.timer("t"):
                pass
        snap = reg.snapshot()["timers"]["t"]
        assert snap["calls"] == 3
        assert snap["seconds"] >= 0.0

    def test_snapshot_sorted_and_json_stable(self):
        reg = MetricsRegistry()
        reg.counter("b").inc()
        reg.counter("a").inc()
        assert list(reg.snapshot()["counters"]) == ["a", "b"]
        assert json.loads(reg.to_json()) == reg.snapshot()

    def test_reset_drops_instruments(self):
        reg = MetricsRegistry()
        reg.counter("a").inc()
        reg.reset()
        assert reg.snapshot()["counters"] == {}


class TestNullRegistry:
    def test_shared_singletons_and_no_state(self):
        null = NullRegistry()
        assert null.counter("x") is null.counter("y")
        assert null.gauge("x") is null.gauge("y")
        assert null.histogram("x") is null.histogram("y", edges=(9,))
        assert null.timer("x") is null.timer("y")
        null.counter("x").inc(5)
        null.gauge("x").set(5)
        null.histogram("x").observe(5)
        null.histogram("x").observe_many(np.array([1, 2], dtype=np.int64))
        with null.timer("x"):
            pass
        assert null.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}, "timers": {}
        }
        assert not null.enabled

    def test_resolve_registry_maps_none(self):
        assert resolve_registry(None) is NULL_REGISTRY
        reg = MetricsRegistry()
        assert resolve_registry(reg) is reg

    def test_snapshot_of_accepts_mapping(self):
        snap = {"counters": {"a": 1}}
        assert snapshot_of(snap) == snap
        reg = MetricsRegistry()
        assert snapshot_of(reg) == reg.snapshot()


# -- eviction-trace ring ----------------------------------------------------------


class TestEvictionTrace:
    def test_capacity_validated(self):
        with pytest.raises(ConfigError):
            EvictionTrace(capacity=0)

    def test_ring_keeps_most_recent_in_order(self):
        trace = EvictionTrace(capacity=4)
        for i in range(7):
            trace.record(i, 10 * i, 0, i)
        assert trace.recorded == 7
        assert len(trace) == 4
        assert [e.flow_id for e in trace.events()] == [3, 4, 5, 6]
        assert [e.value for e in trace.events()] == [30, 40, 50, 60]

    def test_record_batch_matches_scalar_records(self):
        rng = np.random.default_rng(1)
        ids = rng.integers(0, 50, size=33).astype(np.uint64)
        values = rng.integers(1, 9, size=33).astype(np.int64)
        reasons = rng.integers(0, 3, size=33).astype(np.uint8)
        scalar, batched = EvictionTrace(capacity=8), EvictionTrace(capacity=8)
        for f, v, r in zip(ids.tolist(), values.tolist(), reasons.tolist()):
            scalar.record(f, v, r, 99)
        batched.record_batch(ids, values, reasons, packet_index=99)
        assert scalar.events() == batched.events()

    def test_jumbo_chunk_keeps_tail(self):
        trace = EvictionTrace(capacity=4)
        n = 11
        trace.record_batch(
            np.arange(n, dtype=np.uint64),
            np.arange(n, dtype=np.int64),
            np.zeros(n, dtype=np.uint8),
            packet_index=5,
        )
        assert trace.recorded == n
        assert [e.flow_id for e in trace.events()] == [7, 8, 9, 10]

    def test_to_dicts_round_trips_reason(self):
        trace = EvictionTrace(capacity=2)
        trace.record(1, 2, EvictionReason.FINAL_DUMP.code, 3)
        (d,) = trace.to_dicts()
        assert d == {"flow_id": 1, "value": 2, "reason": "final_dump", "packet_index": 3}

    def test_caesar_records_eviction_stream(self, tiny_trace):
        trace = EvictionTrace(capacity=64)
        caesar = Caesar(_tiny_config(), eviction_trace=trace)
        caesar.process(tiny_trace.packets[:3000])
        caesar.finalize()
        assert trace.recorded > 0
        reasons = {e.reason for e in trace.events()}
        assert reasons <= set(EvictionReason)
        assert all(0 <= e.packet_index <= 3000 for e in trace.events())


# -- determinism ------------------------------------------------------------------


def _instrumented_run(packets) -> dict:
    registry = MetricsRegistry()
    caesar = Caesar(_tiny_config(), registry=registry)
    caesar.process(packets)
    caesar.finalize()
    return registry.snapshot()


def test_snapshot_deterministic_under_fixed_seed(tiny_trace):
    packets = tiny_trace.packets[:4000]
    a, b = _instrumented_run(packets), _instrumented_run(packets)
    assert a["counters"] == b["counters"]
    assert a["histograms"] == b["histograms"]
    assert a["gauges"] == b["gauges"]  # no wall-clock gauges in this path
    assert {n: t["calls"] for n, t in a["timers"].items()} == {
        n: t["calls"] for n, t in b["timers"].items()
    }


def test_expected_instrument_names_present(tiny_trace):
    snap = _instrumented_run(tiny_trace.packets[:4000])
    assert "cache.drain_chunks" in snap["counters"]
    assert "cache.chunk_rows" in snap["histograms"]
    for timer in ("cache.process", "cache.drain", "cache.dump",
                  "caesar.process", "caesar.finalize", "caesar.index",
                  "caesar.split", "caesar.scatter_add"):
        assert timer in snap["timers"], timer
    for gauge in ("caesar.memory_bits", "caesar.num_packets",
                  "caesar.cache.hit_rate", "caesar.cache.accesses"):
        assert gauge in snap["gauges"], gauge


# -- scheme-level gauges ----------------------------------------------------------


def test_measure_reports_throughput(tiny_trace):
    registry = MetricsRegistry()
    result = measure(
        tiny_trace.packets[:3000],
        sram_kb=2.0,
        cache_kb=1.0,
        registry=registry,
        eviction_trace=EvictionTrace(capacity=32),
    )
    gauges = registry.snapshot()["gauges"]
    assert gauges["measure.num_packets"] == 3000
    assert gauges["measure.throughput_pps"] > 0
    assert gauges["measure.memory_bits"] == result.caesar.memory_bits


def test_rcs_scheme_gauges(tiny_trace):
    registry = MetricsRegistry()
    rcs = RCS(RCSConfig(k=3, bank_size=64, seed=1), registry=registry)
    rcs.process(tiny_trace.packets[:3000])
    rcs.finalize()
    snap = registry.snapshot()
    assert snap["gauges"]["rcs.num_packets"] == 3000
    assert snap["counters"]["rcs.chunks"] >= 1
    assert snap["timers"]["rcs.process"]["calls"] == 1


def test_epochal_caesar_per_epoch_gauges(tiny_trace):
    registry = MetricsRegistry()
    epochs = EpochalCaesar(_tiny_config(), registry=registry)
    for chunk in np.array_split(tiny_trace.packets[:4000], 4):
        epochs.process(chunk)
        epochs.close_epoch()
    snap = registry.snapshot()
    assert snap["counters"]["epochs.closed"] == 4
    assert "epoch.hit_rate" in snap["gauges"]


def test_sharded_scheme_per_shard_gauges(tiny_trace):
    registry = MetricsRegistry()
    sharded = ShardedCaesar(_tiny_config(), num_shards=2, registry=registry)
    sharded.process(tiny_trace.packets[:3000])
    sharded.finalize()
    gauges = registry.snapshot()["gauges"]
    assert gauges["sharded.num_packets"] == 3000
    assert "sharded.shard0.num_packets" in gauges
    assert "sharded.shard1.num_packets" in gauges
    assert (
        gauges["sharded.shard0.num_packets"] + gauges["sharded.shard1.num_packets"]
        == 3000
    )


def test_observe_scheme_disabled_is_noop(tiny_trace):
    caesar = Caesar(_tiny_config())
    caesar.process(tiny_trace.packets[:500])
    caesar.finalize()
    observe_scheme(NULL_REGISTRY, caesar, "x", elapsed_seconds=1.0)
    assert NULL_REGISTRY.snapshot()["gauges"] == {}


# -- export and CLI ---------------------------------------------------------------


def test_export_metrics_round_trip(tmp_path, tiny_trace):
    registry = MetricsRegistry()
    caesar = Caesar(_tiny_config(), registry=registry)
    caesar.process(tiny_trace.packets[:2000])
    caesar.finalize()
    path = export_metrics(tmp_path / "m.json", registry)
    loaded = json.loads(path.read_text())
    assert loaded == json.loads(json.dumps(registry.snapshot()))


def test_format_metrics_renders_all_sections(tiny_trace):
    registry = MetricsRegistry()
    caesar = Caesar(_tiny_config(), registry=registry)
    caesar.process(tiny_trace.packets[:2000])
    caesar.finalize()
    text = format_metrics(registry)
    for section in ("counters:", "gauges:", "histograms:", "timers:"):
        assert section in text
    assert "cache.drain_chunks" in text
    assert format_metrics(MetricsRegistry()) == "(no metrics recorded)"


def test_cli_measure_metrics_out_then_stats(tmp_path, capsys):
    trace_path = str(tmp_path / "t.npz")
    metrics_path = str(tmp_path / "m.json")
    assert main(["trace", "--scale", "0.003", "--seed", "2", "--out", trace_path]) == 0
    assert (
        main(
            ["measure", "--trace", trace_path, "--sram-kb", "2", "--cache-kb", "1",
             "--metrics-out", metrics_path]
        )
        == 0
    )
    snap = json.loads((tmp_path / "m.json").read_text())
    assert snap["counters"]["cache.drain_chunks"] >= 1
    assert "caesar.num_packets" in snap["gauges"]
    capsys.readouterr()
    assert main(["stats", metrics_path]) == 0
    out = capsys.readouterr().out
    assert "cache.drain_chunks" in out
    assert "timers:" in out


def test_cli_run_metrics_out_deterministic(tmp_path):
    paths = [str(tmp_path / f"m{i}.json") for i in (1, 2)]
    for path in paths:
        assert main(["run", "fig3", "--scale", "0.003", "--metrics-out", path]) == 0
    a, b = (json.loads(open(p).read()) for p in paths)
    assert a["counters"] == b["counters"]
    assert a["histograms"] == b["histograms"]
