"""Flow-volume (byte counting) tests across lengths, cache, and CAESAR."""

import numpy as np
import pytest

from repro.analysis.metrics import top_flow_are
from repro.core.caesar import Caesar
from repro.core.config import CaesarConfig
from repro.errors import ConfigError
from repro.traffic.lengths import (
    IMIX_MEAN,
    constant_lengths,
    flow_volumes,
    imix_lengths,
    uniform_lengths,
)


class TestLengthModels:
    def test_imix_values(self):
        lengths = imix_lengths(20_000, seed=1)
        assert set(np.unique(lengths)) <= {40, 576, 1500}
        assert abs(lengths.mean() - IMIX_MEAN) < 5.0

    def test_imix_deterministic(self):
        np.testing.assert_array_equal(imix_lengths(100, seed=2), imix_lengths(100, seed=2))

    def test_uniform_range(self):
        lengths = uniform_lengths(5000, low=100, high=200, seed=3)
        assert lengths.min() >= 100 and lengths.max() <= 200

    def test_constant(self):
        lengths = constant_lengths(10, length=576)
        assert (lengths == 576).all()

    def test_validation(self):
        with pytest.raises(ConfigError):
            imix_lengths(-1)
        with pytest.raises(ConfigError):
            uniform_lengths(10, low=0)
        with pytest.raises(ConfigError):
            constant_lengths(10, length=0)


class TestFlowVolumes:
    def test_ground_truth(self):
        packets = np.array([1, 2, 1, 1], dtype=np.uint64)
        lengths = np.array([10, 20, 30, 40], dtype=np.int64)
        ids, volumes = flow_volumes(packets, lengths)
        assert ids.tolist() == [1, 2]
        assert volumes.tolist() == [80, 20]

    def test_misaligned_rejected(self):
        with pytest.raises(ConfigError):
            flow_volumes(np.array([1], dtype=np.uint64), np.array([1, 2]))


class TestVolumeMeasurement:
    def test_byte_conservation(self, tiny_trace):
        lengths = imix_lengths(tiny_trace.num_packets, seed=5)
        caesar = Caesar(
            CaesarConfig(
                cache_entries=64,
                entry_capacity=int(2 * tiny_trace.mean_flow_size * IMIX_MEAN),
                k=3,
                bank_size=512,
                counter_capacity=2**40,
            )
        )
        caesar.process(tiny_trace.packets, lengths)
        caesar.finalize()
        assert caesar.counters.total_mass == int(lengths.sum())
        assert caesar.recorded_mass == int(lengths.sum())
        assert caesar.num_packets == tiny_trace.num_packets

    def test_volume_estimates_track_elephants(self, small_trace):
        lengths = imix_lengths(small_trace.num_packets, seed=6)
        ids, volumes = flow_volumes(small_trace.packets, lengths)
        caesar = Caesar(
            CaesarConfig(
                cache_entries=256,
                entry_capacity=int(2 * small_trace.mean_flow_size * IMIX_MEAN),
                k=3,
                bank_size=1024,
                counter_capacity=2**40,
            )
        )
        caesar.process(small_trace.packets, lengths)
        caesar.finalize()
        est = caesar.estimate(ids)
        assert top_flow_are(est, volumes, top=20) < 0.35

    def test_constant_lengths_scale_size_measurement(self, tiny_trace):
        """With every packet 100 bytes, volume == 100 x size exactly —
        the paper's 'same distribution except magnitude' in the sharpest
        form."""
        lengths = constant_lengths(tiny_trace.num_packets, length=100)
        caesar = Caesar(
            CaesarConfig(
                cache_entries=64,
                entry_capacity=int(200 * tiny_trace.mean_flow_size),
                k=3,
                bank_size=512,
                counter_capacity=2**40,
                seed=9,
            )
        )
        caesar.process(tiny_trace.packets, lengths)
        caesar.finalize()
        ids, volumes = flow_volumes(tiny_trace.packets, lengths)
        order = np.argsort(tiny_trace.flows.ids)
        np.testing.assert_array_equal(volumes, tiny_trace.flows.sizes[order] * 100)

    def test_jumbo_single_update_overflow(self):
        """One weighted update larger than the entry capacity must be
        flushed immediately, not lost."""
        caesar = Caesar(
            CaesarConfig(
                cache_entries=4, entry_capacity=100, k=3, bank_size=64,
                counter_capacity=2**40,
            )
        )
        packets = np.array([5], dtype=np.uint64)
        lengths = np.array([1500], dtype=np.int64)
        caesar.process(packets, lengths)
        caesar.finalize()
        assert caesar.counters.total_mass == 1500

    def test_misaligned_weights_rejected(self, tiny_trace):
        caesar = Caesar(
            CaesarConfig(cache_entries=4, entry_capacity=100, k=3, bank_size=64)
        )
        with pytest.raises(ConfigError):
            caesar.process(tiny_trace.packets, np.array([1, 2], dtype=np.int64))
