"""Tests for heavy-hitter detection metrics."""

import numpy as np
import pytest

from repro.analysis.heavy_hitters import (
    DetectionQuality,
    threshold_detection,
    top_k_detection,
)
from repro.errors import ConfigError


class TestDetectionQuality:
    def test_perfect(self):
        q = DetectionQuality(true_positives=5, false_positives=0, false_negatives=0)
        assert q.precision == 1.0 and q.recall == 1.0 and q.f1 == 1.0

    def test_empty(self):
        q = DetectionQuality(0, 0, 0)
        assert q.precision == 0.0 and q.recall == 0.0 and q.f1 == 0.0

    def test_partial(self):
        q = DetectionQuality(true_positives=3, false_positives=1, false_negatives=2)
        assert q.precision == pytest.approx(0.75)
        assert q.recall == pytest.approx(0.6)
        assert q.f1 == pytest.approx(2 * 0.75 * 0.6 / 1.35)


class TestTopK:
    def test_perfect_estimates(self):
        ids = np.arange(10, dtype=np.uint64)
        truth = np.arange(10, dtype=np.int64) + 1
        q = top_k_detection(ids, truth.astype(float), truth, k=3)
        assert q.f1 == 1.0

    def test_shuffled_estimates_detected(self):
        ids = np.arange(6, dtype=np.uint64)
        truth = np.array([1, 1, 1, 100, 200, 300])
        est = np.array([50.0, 2.0, 1.0, 90.0, 210.0, 290.0])
        q = top_k_detection(ids, est, truth, k=3)
        # est's top-3 = flows 4, 5, 3 — but flow 0 (est 50) ranks 4th,
        # so the true top-3 {3,4,5} is fully recovered.
        assert q.recall == 1.0

    def test_k_larger_than_population(self):
        ids = np.arange(3, dtype=np.uint64)
        truth = np.array([1, 2, 3])
        q = top_k_detection(ids, truth.astype(float), truth, k=100)
        assert q.f1 == 1.0

    def test_validation(self):
        ids = np.arange(3, dtype=np.uint64)
        with pytest.raises(ConfigError):
            top_k_detection(ids, np.zeros(3), np.ones(3, dtype=np.int64), k=0)
        with pytest.raises(ConfigError):
            top_k_detection(ids, np.zeros(2), np.ones(3, dtype=np.int64), k=1)


class TestThreshold:
    def test_classification(self):
        ids = np.arange(4, dtype=np.uint64)
        truth = np.array([10, 200, 300, 5])
        est = np.array([150.0, 190.0, 310.0, 1.0])  # flow 0 false positive
        q = threshold_detection(ids, est, truth, threshold=100)
        assert q.true_positives == 2
        assert q.false_positives == 1
        assert q.false_negatives == 0

    def test_validation(self):
        ids = np.arange(2, dtype=np.uint64)
        with pytest.raises(ConfigError):
            threshold_detection(ids, np.zeros(2), np.ones(2, dtype=np.int64), 0.0)
