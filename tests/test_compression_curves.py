"""Unit tests for the compression curves and the compressed counter array."""

import numpy as np
import pytest

from repro.baselines.compression.anls import AnlsCurve, AnlsSketch
from repro.baselines.compression.base import CompressedCounterArray
from repro.baselines.compression.disco import DiscoCurve, DiscoSketch
from repro.errors import ConfigError


class TestDiscoCurve:
    def test_endpoints(self):
        c = DiscoCurve(gamma=2.0, capacity=100, max_value=10_000)
        assert c.rep(np.array([0.0]))[0] == 0.0
        assert c.rep(np.array([100.0]))[0] == pytest.approx(10_000)

    def test_inverse_roundtrip(self):
        c = DiscoCurve(gamma=2.0, capacity=100, max_value=10_000)
        vals = np.array([1.0, 10.0, 55.5, 100.0])
        np.testing.assert_allclose(c.inverse(c.rep(vals)), vals, rtol=1e-10)

    def test_monotone(self):
        DiscoCurve(2.0, 64, 5000).validate_monotone(64)

    def test_increment_probability_decreases(self):
        c = DiscoCurve(2.0, 100, 10_000)
        p = c.increment_probability(np.arange(1, 100))
        assert np.all(np.diff(p) < 0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            DiscoCurve(0.5, 10, 100)
        with pytest.raises(ConfigError):
            DiscoCurve(2.0, 0, 100)
        with pytest.raises(ConfigError):
            DiscoCurve(2.0, 10, 0)


class TestAnlsCurve:
    def test_rep_formula(self):
        c = AnlsCurve(omega=0.1)
        # rep(1) = ((1.1)^1 - 1)/0.1 = 1
        assert c.rep(np.array([1.0]))[0] == pytest.approx(1.0)
        assert c.rep(np.array([0.0]))[0] == 0.0

    def test_inverse_roundtrip(self):
        c = AnlsCurve(omega=0.05)
        vals = np.array([0.0, 3.0, 17.0, 42.0])
        np.testing.assert_allclose(c.inverse(c.rep(vals)), vals, rtol=1e-9)

    def test_for_range_covers(self):
        c = AnlsCurve.for_range(capacity=64, max_value=100_000)
        assert c.rep(np.array([64.0]))[0] >= 100_000
        # And it is not absurdly stretched: capacity-1 falls short.
        assert c.rep(np.array([50.0]))[0] < 100_000

    def test_unbiased_increments(self, rng):
        """Probabilistic increments keep rep() unbiased: feed N packets
        into one ANLS counter and check the decompressed mean."""
        n_packets, trials = 400, 200
        curve = AnlsCurve.for_range(capacity=127, max_value=5000)
        finals = []
        for t in range(trials):
            arr = CompressedCounterArray(curve, 1, 127, seed=t)
            for _ in range(n_packets):
                arr.increment(0)
            finals.append(arr.estimate(np.array([0]))[0])
        assert np.mean(finals) == pytest.approx(n_packets, rel=0.08)


class TestCompressedCounterArray:
    def test_add_value_unbiased(self, rng):
        """CASE's eviction path: adding V should move rep by ~V on average."""
        curve = DiscoCurve(2.0, 1000, 100_000)
        gains = []
        for t in range(300):
            arr = CompressedCounterArray(curve, 1, 1000, seed=t)
            arr.add_value(0, 500)
            gains.append(arr.estimate(np.array([0]))[0])
        assert np.mean(gains) == pytest.approx(500, rel=0.1)

    def test_add_value_zero_noop(self):
        arr = CompressedCounterArray(DiscoCurve(2.0, 10, 100), 4, 10, seed=1)
        arr.add_value(2, 0)
        assert arr.values[2] == 0

    def test_add_value_rejects_negative(self):
        arr = CompressedCounterArray(DiscoCurve(2.0, 10, 100), 4, 10, seed=1)
        with pytest.raises(ConfigError):
            arr.add_value(0, -1)

    def test_saturation_accounted(self):
        arr = CompressedCounterArray(DiscoCurve(2.0, 4, 100), 1, 4, seed=1)
        arr.add_value(0, 10_000)  # far beyond max_value
        assert arr.values[0] == 4
        assert arr.saturated_updates == 1

    def test_counter_never_decreases(self, rng):
        curve = DiscoCurve(2.0, 100, 10_000)
        arr = CompressedCounterArray(curve, 1, 100, seed=2)
        prev = 0
        for _ in range(50):
            arr.add_value(0, 37)
            assert arr.values[0] >= prev
            prev = int(arr.values[0])

    def test_memory_accounting(self):
        arr = CompressedCounterArray(DiscoCurve(2.0, 1023, 100), 8192, 1023, seed=0)
        assert arr.bits_per_counter == 10
        assert arr.memory_kilobytes == pytest.approx(10.0)

    def test_increment_batch_matches_sequential(self):
        curve = DiscoCurve(2.0, 200, 3000)
        a = CompressedCounterArray(curve, 4, 200, seed=9)
        idx = np.array([0, 1, 0, 2, 0, 1] * 40, dtype=np.int64)
        a.increment_batch(idx)
        assert a.values.sum() > 0
        assert (a.values <= 200).all()


class TestSketches:
    def test_disco_sketch_pipeline(self, tiny_trace):
        sk = DiscoSketch(tiny_trace.num_flows * 2, 255, float(tiny_trace.flows.sizes.max()))
        sk.process(tiny_trace.packets)
        est = sk.estimate(tiny_trace.flows.ids)
        assert est.shape == tiny_trace.flows.sizes.shape
        assert (est >= 0).all()

    def test_anls_sketch_elephants(self, small_trace):
        sk = AnlsSketch(small_trace.num_flows * 4, 255, float(small_trace.flows.sizes.max()))
        sk.process(small_trace.packets)
        est = sk.estimate(small_trace.flows.ids)
        truth = small_trace.flows.sizes
        top = np.argsort(truth)[-10:]
        rel = np.abs(est[top] - truth[top]) / truth[top]
        assert rel.mean() < 0.5
